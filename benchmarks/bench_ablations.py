"""Ablation benchmarks for the design choices DESIGN.md section 5 calls
out.  Each one quantifies a claim the paper makes qualitatively.

* **Search strategy**: the paper argues a well-seeded modified line
  search "reduces the problem of search to a low order term".  We
  compare the line search against random sampling and measure result
  quality per evaluation.
* **Seeding**: FKO-defaults start vs a cold (everything-off) start.
* **Repeatable transforms**: the CISC peephole's effect on code size.
* **Register allocators**: global linear scan vs the greedy local one
  under heavy unrolling.
"""

import dataclasses
import itertools

import numpy as np
import pytest
from conftest import save_result

from repro.fko import FKO, PrefetchParams, TransformParams
from repro.ir import Opcode, PrefetchHint
from repro.kernels import get_kernel
from repro.machine import Context, pentium4e, summarize
from repro.search import LineSearch, build_space
from repro.timing.timer import Timer

P4E = pentium4e()
N = 20000


def _evaluator(spec, machine, n):
    fko = FKO(machine)
    timer = Timer(machine, Context.OUT_OF_CACHE, n)

    def evaluate(params):
        return timer.time(fko.compile(spec.hil, params), spec).cycles
    return fko, evaluate


def _random_search(evaluate, space, budget, seed=7):
    rng = np.random.default_rng(seed)
    best = float("inf")
    for _ in range(budget):
        params = TransformParams(
            sv=bool(rng.integers(2)) if True in space.sv_options else False,
            unroll=int(rng.choice(space.unroll_options)),
            ae=int(rng.choice(space.ae_options)),
            wnt=bool(rng.integers(2)) if True in space.wnt_options else False)
        for arr in space.prefetch_arrays:
            d = int(rng.choice(space.dist_options))
            h = rng.choice(space.hint_options) if d else None
            params.prefetch[arr] = PrefetchParams(h, d)
        best = min(best, evaluate(params))
    return best


def test_ablation_line_vs_random_search(benchmark, results_dir):
    spec = get_kernel("dasum")
    fko, evaluate = _evaluator(spec, P4E, N)
    a = fko.analyze(spec.hil)
    space = build_space(a, P4E)
    start = fko.defaults(spec.hil)

    def run():
        ls = LineSearch(space, start, output_arrays=a.output_arrays)
        line = ls.run(evaluate)
        rand = _random_search(evaluate, space, ls.n_evaluations)
        return line, rand

    line, rand = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (f"line search: {line.best_cycles:.0f} cycles in "
            f"{line.n_evaluations} evals\n"
            f"random search (same budget): {rand:.0f} cycles\n"
            f"line/random quality: {rand / line.best_cycles:.3f}")
    save_result(results_dir, "ablation_search.txt", text)
    # the structured search is at least as good at equal budget
    assert line.best_cycles <= rand * 1.05


def test_ablation_seeding(benchmark, results_dir):
    """FKO-default seeding vs a cold start (all transforms off)."""
    spec = get_kernel("ddot")
    fko, evaluate = _evaluator(spec, P4E, N)
    a = fko.analyze(spec.hil)
    space = build_space(a, P4E)

    def run():
        seeded = LineSearch(space, fko.defaults(spec.hil),
                            output_arrays=a.output_arrays).run(evaluate)
        cold = LineSearch(space,
                          TransformParams(sv=False, unroll=1, ae=1),
                          output_arrays=a.output_arrays).run(evaluate)
        return seeded, cold

    seeded, cold = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (f"seeded: {seeded.best_cycles:.0f} cycles / "
            f"{seeded.n_evaluations} evals\n"
            f"cold:   {cold.best_cycles:.0f} cycles / "
            f"{cold.n_evaluations} evals")
    save_result(results_dir, "ablation_seeding.txt", text)
    # intelligent defaults land at least as good a point
    assert seeded.best_cycles <= cold.best_cycles * 1.10


def test_ablation_peephole_code_size(benchmark, results_dir):
    """The CISC fold removes one instruction per foldable load."""
    spec = get_kernel("ddot")
    fko = FKO(P4E)
    params_on = TransformParams(sv=True, unroll=8, peephole=True)
    params_off = TransformParams(sv=True, unroll=8, peephole=False)

    def run():
        on = fko.compile(spec.hil, params_on)
        off = fko.compile(spec.hil, params_off)
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)

    def body_len(k):
        return sum(len(k.fn.block(n).instrs) for n in k.fn.loop.body)

    text = (f"loop body instructions with peephole: {body_len(on)}\n"
            f"loop body instructions without:       {body_len(off)}")
    save_result(results_dir, "ablation_peephole.txt", text)
    assert body_len(on) < body_len(off)
    # and the folds show up as memory-operand arithmetic
    folded = sum(1 for nme in on.fn.loop.body
                 for i in on.fn.block(nme).instrs
                 if i.op is Opcode.VMUL and i.reads_mem)
    assert folded >= 8


def test_ablation_register_allocators(benchmark, results_dir):
    """Global linear scan vs the greedy local allocator at high unroll:
    the local one spills more, which costs real cycles."""
    spec = get_kernel("dasum")
    fko = FKO(P4E)
    timer = Timer(P4E, Context.IN_L2, 1024)

    def run():
        out = {}
        for strat in ("global", "local"):
            params = TransformParams(sv=True, unroll=16, ae=4,
                                     register_allocation=strat)
            k = fko.compile(spec.hil, params)
            out[strat] = (k.applied["spilled"], timer.time(k, spec).cycles)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join(f"{s}: {sp} spilled, {cy:.0f} cycles"
                     for s, (sp, cy) in out.items())
    save_result(results_dir, "ablation_regalloc.txt", text)
    assert out["local"][0] >= out["global"][0]
    assert out["local"][1] >= out["global"][1] * 0.999


def test_ablation_hw_prefetcher(benchmark, results_dir):
    """Disable the hardware stream prefetcher: untuned code craters,
    tuned code barely notices — software prefetch has replaced it."""
    spec = get_kernel("dasum")
    weak = dataclasses.replace(P4E, hw_prefetch_ahead=0)

    def run():
        out = {}
        for label, mach in (("hw", P4E), ("no-hw", weak)):
            fko = FKO(mach)
            timer = Timer(mach, Context.OUT_OF_CACHE, N)
            plain = fko.compile(spec.hil, TransformParams(sv=True, unroll=4))
            tuned = fko.compile(spec.hil, TransformParams(
                sv=True, unroll=4,
                prefetch={"X": PrefetchParams(PrefetchHint.NTA, 1024)}))
            out[label] = (timer.time(plain, spec).cycles,
                          timer.time(tuned, spec).cycles)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join(f"{label}: plain {p:.0f}cy tuned {t:.0f}cy"
                     for label, (p, t) in out.items())
    save_result(results_dir, "ablation_hw_prefetch.txt", text)
    plain_hit = out["no-hw"][0] / out["hw"][0]
    tuned_hit = out["no-hw"][1] / out["hw"][1]
    assert plain_hit > 1.5          # untuned relied on the HW prefetcher
    assert tuned_hit < plain_hit    # software prefetch covers the loss


def test_ablation_block_fetch_closes_dcopy_gap(benchmark, results_dir):
    """DESIGN.md section 5 / paper section 3.3: block fetch "can be
    performed generally and safely in a compiler, and we are planning to
    add it to FKO."  This reproduction added it: with the transform
    searchable, ifko matches ATLAS's hand block-fetch dcopy* on the P4E
    — its one remaining non-iamax loss."""
    from repro.atlas import atlas_search
    from repro.machine import Context
    from repro.search import LineSearch, build_space
    from repro.timing.timer import Timer

    spec = get_kernel("dcopy")
    fko = FKO(P4E)
    a = fko.analyze(spec.hil)
    timer = Timer(P4E, Context.OUT_OF_CACHE, N)

    def ev(params):
        return timer.time(fko.compile(spec.hil, params), spec).cycles

    def run():
        out = {}
        for bf in (False, True):
            space = build_space(a, P4E, enable_block_fetch=bf)
            r = LineSearch(space, fko.defaults(spec.hil),
                           output_arrays=a.output_arrays).run(ev)
            out[bf] = r.best_cycles
        out["atlas"] = atlas_search(spec, P4E, Context.OUT_OF_CACHE, N,
                                    run_tester=False).timing.cycles
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (f"ifko without BF: {out[False]:.0f} cycles\n"
            f"ifko with BF:    {out[True]:.0f} cycles\n"
            f"ATLAS dcopy*:    {out['atlas']:.0f} cycles")
    save_result(results_dir, "ablation_block_fetch.txt", text)
    assert out[True] < out[False]                 # BF is a real win
    assert out[True] <= out["atlas"] * 1.02       # gap closed


def test_ablation_search_strategies(benchmark, results_dir):
    """Section 2.3's named alternatives, at equal evaluation budget."""
    from repro.machine import Context
    from repro.search import (LineSearch, build_space, genetic_search,
                              random_search, simulated_annealing)
    from repro.timing.timer import Timer

    spec = get_kernel("ddot")
    fko = FKO(P4E)
    a = fko.analyze(spec.hil)
    space = build_space(a, P4E)
    start = fko.defaults(spec.hil)
    timer = Timer(P4E, Context.OUT_OF_CACHE, N)
    cache = {}

    def ev(params):
        key = params.key()
        if key not in cache:
            cache[key] = timer.time(fko.compile(spec.hil, params),
                                    spec).cycles
        return cache[key]

    def run():
        line = LineSearch(space, start,
                          output_arrays=a.output_arrays).run(ev)
        budget = line.n_evaluations
        return {
            "line": (line.best_cycles, line.n_evaluations),
            "random": _res(random_search(ev, space, start, budget, seed=5)),
            "anneal": _res(simulated_annealing(ev, space, start, budget,
                                               seed=5)),
            "genetic": (lambda r: (r.best_cycles, r.n_evaluations))(
                genetic_search(ev, space, start, budget, seed=5)),
        }

    def _res(r):
        return (r.best_cycles, r.n_evaluations)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join(f"{name:8s} {c:.0f} cycles in {n} evals"
                     for name, (c, n) in out.items())
    save_result(results_dir, "ablation_strategies.txt", text)
    best_other = min(c for name, (c, n) in out.items() if name != "line")
    # the seeded line search is competitive with every alternative
    assert out["line"][0] <= best_other * 1.05
