#!/usr/bin/env python
"""Blocked vs unblocked GEMM — the Level-3 acceptance run.

Sweeps the cache-blocking tile sizes over an out-of-cache ``dgemm``
(matrix order 512 by default: 6MB of operands against a 1MB L2),
comparing every blocked configuration against two baselines:

* **untransformed** — the scalar, unblocked nest (``sv=False``);
* **inner-tuned** — the best inner-loop pipeline without blocking
  (SV + unroll), i.e. what the pre-Level-3 search surface could reach.

The acceptance gate: the best blocked configuration must beat the
untransformed baseline by at least ``--min-speedup`` (default 2.0x) in
cycles on the gate machine (P4E, the paper's primary platform — the
Opteron's scalar baseline is already close enough to its bus roofline
that blocking alone tops out right at ~2x there; it is reported but
not gated).  Results land in ``results/BENCH_blocked_gemm.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_blocked_gemm.py
    PYTHONPATH=src python benchmarks/bench_blocked_gemm.py --quick
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.fko import FKO, TransformParams
from repro.kernels import get_kernel
from repro.machine import Context, get_machine
from repro.timing.timer import Timer

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"


def _time(timer, fko, spec, params):
    t = timer.time(fko.compile(spec.hil, params), spec)
    return {"params": params.describe(), "cycles": t.cycles,
            "mflops": t.mflops}


def run(machine: str, n: int, tiles, unroll: int):
    mach = get_machine(machine)
    spec = get_kernel("dgemm")
    fko = FKO(mach)
    timer = Timer(mach, Context.OUT_OF_CACHE, n)

    base = _time(timer, fko, spec, TransformParams(sv=False))
    inner = _time(timer, fko, spec,
                  TransformParams(sv=True, unroll=unroll))

    sweep = []
    for t in tiles:
        for tiled_ivars in (("k",), ("j",), ("k", "j")):
            params = TransformParams(sv=True, unroll=unroll)
            for v in tiled_ivars:
                params = params.with_ext(f"tile:{v}", t)
            row = _time(timer, fko, spec, params)
            row.update(tile=t, ivars=list(tiled_ivars))
            sweep.append(row)
    best = min(sweep, key=lambda r: r["cycles"])
    return {"machine": mach.name, "n": n,
            "untransformed": base, "inner_tuned": inner,
            "sweep": sweep, "best": best,
            "speedup_vs_untransformed":
                round(base["cycles"] / best["cycles"], 3),
            "speedup_vs_inner_tuned":
                round(inner["cycles"] / best["cycles"], 3)}


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="one machine, trimmed tile grid (CI smoke)")
    ap.add_argument("--n", type=int, default=512,
                    help="matrix order (out-of-cache at the default)")
    ap.add_argument("--unroll", type=int, default=8)
    ap.add_argument("--min-speedup", type=float, default=2.0,
                    help="acceptance floor vs the untransformed baseline")
    ap.add_argument("--gate-machine", default="p4e",
                    help="machine the acceptance floor applies to")
    ap.add_argument("--out", default=str(RESULTS / "BENCH_blocked_gemm.json"))
    args = ap.parse_args(argv)

    tiles = (32, 64, 128) if args.quick else (16, 32, 64, 96, 128, 192)
    machines = ["p4e"] if args.quick else ["p4e", "opteron"]

    report = {"quick": args.quick, "n": args.n, "runs": []}
    ok = True
    for machine in machines:
        r = run(machine, args.n, tiles, args.unroll)
        report["runs"].append(r)
        b = r["best"]
        print(f"== {r['machine']} dgemm N={r['n']} ==")
        print(f"untransformed: {r['untransformed']['cycles']:.3e} cy "
              f"({r['untransformed']['mflops']:.1f} MFLOPS)")
        print(f"inner-tuned:   {r['inner_tuned']['cycles']:.3e} cy "
              f"({r['inner_tuned']['mflops']:.1f} MFLOPS)")
        print(f"best blocked:  {b['cycles']:.3e} cy ({b['mflops']:.1f} "
              f"MFLOPS) tile={b['tile']} ivars={b['ivars']}")
        print(f"speedup: {r['speedup_vs_untransformed']}x vs untransformed, "
              f"{r['speedup_vs_inner_tuned']}x vs inner-tuned")
        gated = machine.lower() == args.gate_machine.lower()
        if gated and r["speedup_vs_untransformed"] < args.min_speedup:
            ok = False
            print(f"FAIL: below the {args.min_speedup}x acceptance floor",
                  file=sys.stderr)

    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
