"""Micro-benchmarks of the framework's own components (not the paper's
results): compile throughput, timing-model evaluation speed, and a full
ifko search.  These guard the tool's usability — an iterative compiler
is only as good as its iteration rate."""

import pytest

from repro.fko import FKO, TransformParams
from repro.kernels import get_kernel
from repro.machine import Context, pentium4e, summarize, time_kernel
from repro.search import TuneConfig, tune_kernel

P4E = pentium4e()
DDOT = get_kernel("ddot")


def test_compile_ddot_defaults(benchmark):
    fko = FKO(P4E)
    result = benchmark(lambda: fko.compile(DDOT.hil))
    assert result.fn.loop is not None


def test_compile_ddot_heavy(benchmark):
    fko = FKO(P4E)
    params = TransformParams(sv=True, unroll=16, ae=4)
    result = benchmark(lambda: fko.compile(DDOT.hil, params))
    assert result.applied["unroll"] == 16


def test_timing_model_out_of_cache(benchmark):
    k = FKO(P4E).compile(DDOT.hil)
    summ = summarize(k.fn)
    res = benchmark(lambda: time_kernel(summ, P4E,
                                        Context.OUT_OF_CACHE, 80000))
    assert res.cycles > 0


def test_timing_model_in_l2(benchmark):
    k = FKO(P4E).compile(DDOT.hil)
    summ = summarize(k.fn)
    res = benchmark(lambda: time_kernel(summ, P4E, Context.IN_L2, 1024))
    assert res.cycles > 0


def test_full_ifko_search_ddot(benchmark):
    res = benchmark.pedantic(
        lambda: tune_kernel(DDOT, P4E, Context.OUT_OF_CACHE, 20000,
                            config=TuneConfig(run_tester=False)),
        rounds=1, iterations=1)
    assert res.search.n_evaluations > 10


def test_interpreter_throughput(benchmark):
    import numpy as np
    from repro.machine import run_function
    k = FKO(P4E).compile(DDOT.hil, TransformParams(sv=True, unroll=4))
    X = np.ones(512)
    Y = np.ones(512)
    res = benchmark(lambda: run_function(
        k.fn, {"X": X.copy(), "Y": Y.copy()}, {"N": 512}))
    assert res.ret == pytest.approx(512.0)
