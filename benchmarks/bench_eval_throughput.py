#!/usr/bin/env python
"""Evaluation-throughput harness for the search engine's hot path.

Measures three things and writes ``results/BENCH_eval_throughput.json``:

1. **Divergence gate** — fast (steady-state replay) vs full-walk cycles
   across kernels x machines x contexts x params.  The contract is
   bit-identical equality; ANY divergence makes the script exit
   nonzero.  Everything else (slow hardware, low speedup) is reported
   but never fails the run — CI uses this as a non-gating smoke job
   whose only hard failure is divergence.
2. **Timing-path speedup** — wall time of ``LoopTimer.time`` with
   ``fast=True`` vs ``fast=False`` on pre-built loop summaries; the
   paper-size out-of-cache path (N=80000) is reported separately since
   that is where the acceptance criterion (>= 5x) lives.
3. **End-to-end eval throughput** — full compile+time evaluations per
   second through ``FKO`` + ``Timer`` (front-end cache warm, the way a
   line search actually uses them), serial and optionally with
   ``--jobs N`` worker processes.
4. **Observability overhead guard** — ``evaluate_params`` with the
   ``repro.obs`` instrumentation *disabled* vs the bare compile+time
   loop of (3), measured paired and interleaved in one process
   (best-of-k, so machine load cancels out).  Disabled instrumentation
   costing more than 3% is a hard failure — the second gating check
   besides divergence.  The *metrics-enabled* variant (the live
   registry behind ``/v1/metrics`` switched on, collector still off —
   the daemon's steady state) is held to the same 3% bar.  The
   collector-enabled (``--observe``) cost is reported informationally.
5. **Batched evaluation** — the exact workload of (3) through the
   batched path: one FKO per machine (prefix/full compile memo shared
   across kernels and contexts) and share-keyed timing walks.  Reports
   the compile-vs-timing wall split, prefix-cache hit rate and batch
   speedup; ANY per-eval cycle mismatch against the unbatched section
   is a hard failure (third gating check).

Usage::

    PYTHONPATH=src python benchmarks/bench_eval_throughput.py
    PYTHONPATH=src python benchmarks/bench_eval_throughput.py --quick
    PYTHONPATH=src python benchmarks/bench_eval_throughput.py --jobs 4
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.fko import FKO, PrefetchParams, TransformParams
from repro.ir import PrefetchHint
from repro.kernels import KERNEL_ORDER, get_kernel
from repro.machine import (Context, LoopTimer, get_machine, opteron,
                           pentium4e, summarize)
from repro.timing.timer import Timer, paper_n

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"


def _params_list(spec):
    arrs = list(spec.vector_args)
    out = [TransformParams(),
           TransformParams(sv=True, unroll=8, ae=4)]
    if arrs:
        pf = {a: PrefetchParams(PrefetchHint.NTA, 512) for a in arrs}
        out.append(TransformParams(sv=True, unroll=8, ae=4, prefetch=pf))
    if spec.output_args:
        out.append(TransformParams(sv=True, unroll=4, wnt=True))
    return out


def _cases(quick: bool):
    kernels = ["ddot", "daxpy", "dscal"] if quick else KERNEL_ORDER
    machines = [pentium4e(), opteron()]
    contexts = [Context.OUT_OF_CACHE, Context.IN_L2]
    for kname in kernels:
        spec = get_kernel(kname)
        for mach in machines:
            for ctx in contexts:
                for params in _params_list(spec):
                    yield spec, mach, ctx, params


# ---------------------------------------------------------------------------
# 1. divergence gate + 2. timing-path speedup

def timing_path(quick: bool):
    mismatches = []
    t_fast = t_slow = 0.0
    t_fast_ooc80k = t_slow_ooc80k = 0.0
    n_cases = 0
    fko_by_mach = {}
    for spec, mach, ctx, params in _cases(quick):
        fko = fko_by_mach.setdefault(mach.name, FKO(mach))
        summary = summarize(fko.compile(spec.hil, params).fn)
        n = paper_n(ctx)
        t0 = time.perf_counter()
        fast = LoopTimer(mach, ctx, fast=True).time(summary, n)
        t1 = time.perf_counter()
        slow = LoopTimer(mach, ctx, fast=False).time(summary, n)
        t2 = time.perf_counter()
        t_fast += t1 - t0
        t_slow += t2 - t1
        if ctx is Context.OUT_OF_CACHE:
            t_fast_ooc80k += t1 - t0
            t_slow_ooc80k += t2 - t1
        n_cases += 1
        if fast.cycles != slow.cycles:
            mismatches.append({
                "kernel": spec.name, "machine": mach.name,
                "context": ctx.value, "n": n,
                "params": params.describe(),
                "fast_cycles": fast.cycles, "slow_cycles": slow.cycles})
    return {"cases": n_cases,
            "mismatches": mismatches,
            "fast_wall_s": round(t_fast, 4),
            "slow_wall_s": round(t_slow, 4),
            "speedup": round(t_slow / t_fast, 2) if t_fast > 0 else None,
            "speedup_ooc_n80000": (round(t_slow_ooc80k / t_fast_ooc80k, 2)
                                   if t_fast_ooc80k > 0 else None)}


# ---------------------------------------------------------------------------
# 3. end-to-end eval throughput

def _workload(quick: bool):
    """The canonical throughput workload: (machine, context, kernel, n,
    (unroll, ae) grid) batches — shared by the unbatched and batched
    sections so their cycles are comparable eval for eval."""
    unrolls = [1, 2, 4, 8] if quick else [1, 2, 3, 4, 6, 8, 12, 16]
    keys = [(u, ae) for u in unrolls for ae in (1, 2, 4)]
    kernels = ["ddot", "daxpy"] if quick else ["ddot", "daxpy", "dscal",
                                               "dasum"]
    batches = []
    for kernel in kernels:
        for mname in ("p4e", "opteron"):
            for ctx in (Context.OUT_OF_CACHE, Context.IN_L2):
                batches.append((mname, ctx.value, kernel, paper_n(ctx), keys))
    return batches


def _eval_batch(machine_name, context_value, kernel, n, keys, fast=True):
    """Run a batch of full evaluations the pre-batching way — fresh FKO
    per batch, no compile memo, no shared walks.  Returns (wall seconds,
    per-eval cycles).  Module level so worker processes can import it."""
    mach = get_machine(machine_name)
    spec = get_kernel(kernel)
    fko = FKO(mach, prefix_cache=False)
    timer = Timer(mach, Context(context_value), n, fast=fast)
    cycles = []
    t0 = time.perf_counter()
    for unroll, ae in keys:
        params = TransformParams(sv=True, unroll=unroll, ae=ae)
        cycles.append(timer.time(fko.compile(spec.hil, params), spec).cycles)
    return time.perf_counter() - t0, cycles


def eval_throughput(quick: bool, jobs: int):
    batches = _workload(quick)
    n_evals = sum(len(b[4]) for b in batches)

    cycles = []
    t0 = time.perf_counter()
    for batch in batches:
        cycles.extend(_eval_batch(*batch)[1])
    serial_wall = time.perf_counter() - t0
    out = {"evaluations": n_evals,
           "serial_wall_s": round(serial_wall, 3),
           "serial_evals_per_sec": round(n_evals / serial_wall, 1)}

    if jobs > 1:
        import concurrent.futures as cf
        t0 = time.perf_counter()
        with cf.ProcessPoolExecutor(max_workers=jobs) as pool:
            list(pool.map(_eval_batch_star, batches))
        par_wall = time.perf_counter() - t0
        out.update(jobs=jobs, parallel_wall_s=round(par_wall, 3),
                   parallel_evals_per_sec=round(n_evals / par_wall, 1),
                   parallel_speedup=round(serial_wall / par_wall, 2))
    return out, cycles


def _eval_batch_star(batch):
    return _eval_batch(*batch)


# ---------------------------------------------------------------------------
# 5. batched evaluation path (prefix-memoized compiles + shared walks)

def _batched_run(batches):
    """One pass of the workload through the batched path.  A candidate
    whose share key already has a memoized walk skips compile and
    summarize entirely (``Timer.peek_base``) — under a share key the
    compiled IR is bit-identical, so the skipped work could not have
    changed the cycles; the mismatch gate checks exactly that."""
    fkos = {}
    timers = {}
    compile_wall = timing_wall = 0.0
    cycles = []
    t0 = time.perf_counter()
    for mname, ctxv, kernel, n, keys in batches:
        mach = get_machine(mname)
        spec = get_kernel(kernel)
        fko = fkos.setdefault(mname, FKO(mach))
        timer = timers.setdefault((mname, ctxv, n),
                                  Timer(mach, Context(ctxv), n, fast=True))
        flops = spec.flops(n)
        for unroll, ae in keys:
            params = TransformParams(sv=True, unroll=unroll, ae=ae)
            c0 = time.perf_counter()
            share = fko.share_key(spec.hil, params)
            base = timer.peek_base(share)
            if base is None:
                compiled = fko.compile(spec.hil, params)
                c1 = time.perf_counter()
                base = timer.base(summarize(compiled.fn), share)
            else:
                c1 = time.perf_counter()
            timing = timer.finish(base, flops,
                                  ident=f"{spec.name}|{params.key()}")
            c2 = time.perf_counter()
            compile_wall += c1 - c0
            timing_wall += c2 - c1
            cycles.append(timing.cycles)
    wall = time.perf_counter() - t0
    return {"wall": wall, "compile_wall": compile_wall,
            "timing_wall": timing_wall, "cycles": cycles,
            "fkos": fkos, "timers": timers}


def batched_throughput(quick: bool, reference: dict, ref_cycles: list,
                       reps: int = 3):
    """The same workload through the batched path: one FKO per machine
    (its prefix/full compile caches live across contexts and kernels,
    exactly as a ``TuningSession`` shares them) and share-keyed timing
    walks.  Cycles must match the unbatched section bit for bit — any
    mismatch is a hard failure, same contract as the fast/slow gate.
    Wall numbers are best-of-``reps`` (each rep rebuilds every cache
    from cold); the mismatch gate is checked on every rep."""
    batches = _workload(quick)
    best = None
    mismatches = 0
    for _ in range(reps):
        run = _batched_run(batches)
        mismatches = max(mismatches, sum(
            1 for a, b in zip(run["cycles"], ref_cycles) if a != b))
        if best is None or run["wall"] < best["wall"]:
            best = run
    fkos, timers = best["fkos"], best["timers"]
    prefix_hits = sum(f.prefix_hits for f in fkos.values())
    prefix_misses = sum(f.prefix_misses for f in fkos.values())
    full_hits = sum(f.full_hits for f in fkos.values())
    walk_hits = sum(t.base_hits for t in timers.values())
    walk_misses = sum(t.base_misses for t in timers.values())
    n_evals = len(best["cycles"])
    wall = best["wall"]
    return {"evaluations": n_evals,
            "reps": reps,
            "serial_wall_s": round(wall, 3),
            "serial_evals_per_sec": round(n_evals / wall, 1),
            "compile_wall_s": round(best["compile_wall"], 3),
            "timing_wall_s": round(best["timing_wall"], 3),
            "prefix_hits": prefix_hits,
            "prefix_misses": prefix_misses,
            "full_hits": full_hits,
            "prefix_hit_rate": round(prefix_hits / n_evals, 4),
            "walk_hits": walk_hits,
            "walk_misses": walk_misses,
            "batch_speedup": round(reference["serial_wall_s"] / wall, 2)
            if wall > 0 else None,
            "cycle_mismatches": mismatches}


# ---------------------------------------------------------------------------
# 4. observability overhead guard

def _evaluate_batch(machine_name, context_value, kernel, n, keys,
                    observe=False):
    """The same work as ``_eval_batch`` but through the engine's
    ``evaluate_params`` front door, with obs off or on.  Compile
    caching is off to match the bare loop: every key in this workload
    is a distinct compile prefix, so an enabled cache would only add
    maintenance cost (snapshot clones on miss) and the comparison
    would charge that to observability."""
    from repro.search import evaluate_params
    mach = get_machine(machine_name)
    spec = get_kernel(kernel)
    fko = FKO(mach, prefix_cache=False)
    timer = Timer(mach, Context(context_value), n, fast=True)
    flops = spec.flops(n)
    t0 = time.perf_counter()
    for unroll, ae in keys:
        params = TransformParams(sv=True, unroll=unroll, ae=ae)
        evaluate_params(fko, timer, spec.hil, params, flops, "bench|",
                        observe=observe)
    return time.perf_counter() - t0


def _evaluate_batch_metrics(case):
    """``_evaluate_batch`` with the live metrics registry enabled (and
    the collector still off) — the steady state of a serving daemon.
    The registry is reset afterwards so reps don't accumulate."""
    from repro.obs import metrics as _metrics
    _metrics.enable()
    try:
        return _evaluate_batch(*case)
    finally:
        _metrics.disable()
        _metrics.reset()


def obs_overhead(quick: bool, threshold: float = 0.03):
    """Paired reps: bare loop vs obs-disabled vs metrics-enabled vs
    collector-enabled, interleaved within each rep so transient machine
    load cannot bias any single variant.  The full key grid is used
    even under ``--quick`` — the overhead is a *relative* measure, and
    short reps put the noise floor above the threshold being
    enforced."""
    unrolls = [1, 2, 3, 4, 6, 8, 12, 16]
    keys = [(u, ae) for u in unrolls for ae in (1, 2, 4)]
    ctx = Context.OUT_OF_CACHE
    case = ("p4e", ctx.value, "ddot", paper_n(ctx), keys)
    # single draws are still ±5% noisy, so the estimator is the MEDIAN
    # of per-rep paired ratios: each variant is divided by the bare
    # wall of its own rep (temporally adjacent, so CPU-frequency and
    # load drift cancel), then the median over reps rejects the
    # outlier draws that min-of-k lets through.  The order of the four
    # variants ROTATES each rep — a fixed order couples each variant to
    # a fixed position in the scheduler/boost-clock cycle, which showed
    # up as a reproducible ±4% position bias.
    # per-draw noise on a contended box is ~5% stdev, roughly i.i.d.;
    # the median of n paired ratios then has ~(1.25 * 7% / sqrt(n))
    # spread, so n=40 puts the estimator's noise near 1% — small
    # enough to enforce a 3% threshold without coin-flip failures
    import statistics
    reps = 40
    variants = [("bare", lambda: _eval_batch(*case)[0]),
                ("disabled", lambda: _evaluate_batch(*case)),
                ("metrics", lambda: _evaluate_batch_metrics(case)),
                ("enabled", lambda: _evaluate_batch(*case, observe=True))]
    # warm every path once (imports, front-end caches, allocator pools)
    for _, run in variants:
        run()
    walls = {name: [] for name, _ in variants}
    for rep in range(reps):
        for name, run in variants[rep % 4:] + variants[:rep % 4]:
            walls[name].append(run())

    def paired(name):
        return statistics.median(
            w / b for w, b in zip(walls[name], walls["bare"]))

    bare_w, disabled_w = walls["bare"], walls["disabled"]
    metrics_w, enabled_w = walls["metrics"], walls["enabled"]
    overhead_disabled = paired("disabled") - 1.0
    overhead_enabled = paired("enabled") - 1.0
    # the metrics gate isolates exactly the registry's cost: same
    # evaluate_params path with the registry on vs off, so the only
    # difference between the paired walls is the instrumentation
    # being judged (disabled-vs-bare also spans the engine-front-door
    # bookkeeping, which is the *other* gate's job)
    overhead_metrics = statistics.median(
        m / d for m, d in zip(metrics_w, disabled_w)) - 1.0
    return {"evaluations_per_rep": len(keys), "reps": reps,
            "bare_wall_s": round(min(bare_w), 4),
            "disabled_wall_s": round(min(disabled_w), 4),
            "metrics_wall_s": round(min(metrics_w), 4),
            "enabled_wall_s": round(min(enabled_w), 4),
            "overhead_disabled": round(overhead_disabled, 4),
            "overhead_metrics": round(overhead_metrics, 4),
            "overhead_enabled": round(overhead_enabled, 4),
            "threshold": threshold,
            "ok": (overhead_disabled <= threshold
                   and overhead_metrics <= threshold)}


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small case set (CI smoke)")
    ap.add_argument("--jobs", type=int, default=1,
                    help="also measure parallel throughput with N workers")
    ap.add_argument("--obs-threshold", type=float, default=0.03,
                    help="max tolerated obs-disabled overhead (fraction)")
    ap.add_argument("--out", default=str(RESULTS / "BENCH_eval_throughput.json"))
    args = ap.parse_args(argv)

    print("== timing-path: fast vs full walk ==")
    tp = timing_path(args.quick)
    print(f"cases: {tp['cases']}, mismatches: {len(tp['mismatches'])}")
    print(f"fast {tp['fast_wall_s']}s vs slow {tp['slow_wall_s']}s "
          f"-> {tp['speedup']}x (OOC N=80000: {tp['speedup_ooc_n80000']}x)")

    print("== end-to-end eval throughput ==")
    et, ref_cycles = eval_throughput(args.quick, args.jobs)
    print(f"{et['evaluations']} evaluations, serial "
          f"{et['serial_evals_per_sec']} evals/s")
    if args.jobs > 1:
        print(f"jobs={args.jobs}: {et['parallel_evals_per_sec']} evals/s "
              f"({et['parallel_speedup']}x)")

    print("== batched evaluation (prefix-memoized + shared walks) ==")
    bt = batched_throughput(args.quick, et, ref_cycles)
    print(f"{bt['evaluations']} evaluations, serial "
          f"{bt['serial_evals_per_sec']} evals/s "
          f"({bt['batch_speedup']}x over unbatched)")
    print(f"wall split: compile {bt['compile_wall_s']}s, timing "
          f"{bt['timing_wall_s']}s; prefix hit rate "
          f"{bt['prefix_hit_rate']:.0%} ({bt['prefix_hits']} hits / "
          f"{bt['prefix_misses']} misses, {bt['full_hits']} full), "
          f"shared walks {bt['walk_hits']}/{bt['walk_hits'] + bt['walk_misses']}")
    print(f"cycle mismatches vs unbatched: {bt['cycle_mismatches']}")

    print("== observability overhead (disabled and metrics-on must "
          f"be <= {args.obs_threshold:.0%}) ==")
    oo = obs_overhead(args.quick, args.obs_threshold)
    print(f"bare {oo['bare_wall_s']}s, obs-disabled {oo['disabled_wall_s']}s "
          f"({oo['overhead_disabled']:+.1%}), metrics-on "
          f"{oo['metrics_wall_s']}s ({oo['overhead_metrics']:+.1%}), "
          f"obs-enabled {oo['enabled_wall_s']}s "
          f"({oo['overhead_enabled']:+.1%})")

    report = {"quick": args.quick, "timing_path": tp,
              "eval_throughput": et, "batched_throughput": bt,
              "obs_overhead": oo}
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    rc = 0
    if tp["mismatches"]:
        print("FAIL: fast/slow divergence detected", file=sys.stderr)
        rc = 1
    if bt["cycle_mismatches"]:
        print(f"FAIL: batched path diverged from unbatched on "
              f"{bt['cycle_mismatches']} evaluations", file=sys.stderr)
        rc = 1
    if not oo["ok"]:
        print(f"FAIL: observability overhead exceeds the "
              f"{args.obs_threshold:.0%} threshold (disabled "
              f"{oo['overhead_disabled']:+.1%}, metrics-on "
              f"{oo['overhead_metrics']:+.1%})", file=sys.stderr)
        rc = 1
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
