"""Figure 2 — relative speedups of all six tuning methodologies on the
simulated P4E, out of cache (the paper's headline comparison)."""

from conftest import save_result

from repro.experiments.relative import relative_performance
from repro.machine import Context, pentium4e


def test_figure2(benchmark, store, results_dir):
    res = benchmark.pedantic(
        lambda: relative_performance(pentium4e(), Context.OUT_OF_CACHE,
                                     store),
        rounds=1, iterations=1)
    text = res.render(f"Figure 2. Relative speedups, P4E, N={res.n}, "
                      f"out-of-cache")
    save_result(results_dir, "fig2.txt", text)

    # the paper's headline: ifko best on average, ATLAS second
    assert res.best_method_on_average() == "ifko"
    assert res.avg["ATLAS"] > res.avg["icc+prof"]
    # every percent column tops out at 100
    assert max(max(res.percent[m]) for m in res.percent) <= 100.0 + 1e-9
