"""Figure 3 — relative speedups on the simulated Opteron, out of cache,
including the icc+prof blind-WNT collapse on swap/axpy."""

from conftest import save_result

from repro.experiments.relative import relative_performance
from repro.machine import Context, opteron


def test_figure3(benchmark, store, results_dir):
    res = benchmark.pedantic(
        lambda: relative_performance(opteron(), Context.OUT_OF_CACHE, store),
        rounds=1, iterations=1)
    text = res.render(f"Figure 3. Relative speedups, Opteron, N={res.n}, "
                      f"out-of-cache")
    save_result(results_dir, "fig3.txt", text)

    # "icc+prof is many times slower than icc+ref" for swap and axpy
    for kernel in ("sswap", "dswap", "saxpy", "daxpy"):
        i = next(j for j, k in enumerate(res.kernels)
                 if k.rstrip("*") == kernel)
        assert res.percent["icc+prof"][i] < res.percent["icc+ref"][i]
    # ifko tops the vectorizable average
    assert max(res.vavg, key=res.vavg.get) == "ifko"
