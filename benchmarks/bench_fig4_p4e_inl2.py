"""Figure 4 — relative speedups on the simulated P4E with operands
resident in L2 (N=1024), where computational tuning (UR/AE) dominates."""

from conftest import save_result

from repro.experiments.relative import relative_performance
from repro.machine import Context, pentium4e


def test_figure4(benchmark, store, results_dir):
    res = benchmark.pedantic(
        lambda: relative_performance(pentium4e(), Context.IN_L2, store),
        rounds=1, iterations=1)
    text = res.render(f"Figure 4. Relative speedups, P4E, N={res.n}, "
                      f"in-L2 cache")
    save_result(results_dir, "fig4.txt", text)

    assert res.best_method_on_average() == "ifko"
    # in-cache the gap to plain FKO stays real (AE/UR tuning)
    assert res.avg["ifko"] > res.avg["FKO"]
