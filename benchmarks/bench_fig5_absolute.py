"""Figure 5 — (a) absolute ifko MFLOPS per routine out of cache on both
machines; (b) P4E in-L2 speedup over out-of-cache (bus-boundedness)."""

from conftest import save_result

from repro.experiments.fig5 import figure5
from repro.kernels import KERNEL_ORDER


def test_figure5(benchmark, store, results_dir):
    res = benchmark.pedantic(lambda: figure5(store), rounds=1, iterations=1)
    text = res.render()
    save_result(results_dir, "fig5.txt", text)

    vals = dict(zip(res.kernels, res.ooc_mflops["P4E"]))
    # "ASUM ... is always the fastest routine" (among the f32 kernels,
    # isamax shares its stream profile)
    assert vals["sasum"] >= max(v for k, v in vals.items()
                                if k not in ("sasum", "isamax"))
    # "single precision ... always faster than double"
    for base in ("swap", "scal", "copy", "axpy", "dot", "asum"):
        assert vals["s" + base] >= vals["d" + base] * 0.99
    # 5(b): the most bus-bound op gains the most from cache residency
    ratios = dict(zip(res.kernels, res.incache_speedup))
    assert ratios["dswap"] > ratios["dasum"]
