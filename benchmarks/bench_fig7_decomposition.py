"""Figure 7 — the per-parameter decomposition of ifko's speedup over
statically-tuned FKO, averaged over kernels, machines and contexts.

Paper average: [WNT, PF DST, PF INS, UR, AE] = [2, 26, 3, 2, 5]%,
total 1.38x.  The reproduction checks the *shape*: PF DST dominates,
each term is a modest positive, total lands in the same regime.
"""

from conftest import save_result

from repro.experiments.fig7 import figure7


def test_figure7(benchmark, store, results_dir):
    res = benchmark.pedantic(lambda: figure7(store), rounds=1, iterations=1)
    text = res.render()
    save_result(results_dir, "fig7.txt", text)

    avg = res.average_gains()
    # prefetch-distance tuning is the dominant contributor
    assert avg["PF DST"] > max(avg["WNT"], avg["PF INS"], avg["UR"],
                               avg["AE"])
    # no phase is (on average) harmful
    for phase in ("WNT", "PF DST", "PF INS", "UR", "AE"):
        assert avg[phase] >= 0.999, (phase, avg[phase])
    # overall 'empirically-tuned kernels run ~1.4x faster than static'
    assert 1.1 < avg["total"] < 2.2
