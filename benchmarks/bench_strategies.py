#!/usr/bin/env python
"""Strategy race: every registered global-search strategy on the full
kernel x machine x context grid at equal evaluation budget.

Each grid point is tuned once per strategy through the same
:class:`TuningSession` machinery (same budget accounting, same
evaluation cache, same simulated machines), so the comparison is at
equal measured-compilation cost.  Writes
``results/BENCH_strategies.json`` with per-point best cycles, speedups
over the FKO-defaults start, and a summary of who won where.

Every strategy's session records a search trace, and the race also
emits the **anytime-performance curves** derived from them
(``results/BENCH_strategy_curves.json`` + ``.md``): mean
ratio-of-best-known per strategy at power-of-two budget checkpoints,
so strategies are compared along the whole budget, not just at the
finish line (``repro curves`` renders the same view for any trace).

The one hard failure (nonzero exit) is a *structured-search regression*:
``anneal``, ``genetic``, ``surrogate`` or ``transfer`` losing to
uniform ``random`` sampling on any grid point at equal budget.
Everything else (who wins overall, wall time) is reported but never
fails the run — CI uses this as a non-gating smoke job.

``transfer`` races with a warm store built from the ``random``
strategy's own results on the same grid (the serve result-store
layout, written through ``repro.search.warmstart``), so the race also
exercises the neighbor lookup and its spelling canonicalization
end-to-end.  The full grid includes blocked GEMM, whose ``tile:``
dimensions are exactly the space the surrogate exists for.

Usage::

    PYTHONPATH=src python benchmarks/bench_strategies.py
    PYTHONPATH=src python benchmarks/bench_strategies.py --quick
    PYTHONPATH=src python benchmarks/bench_strategies.py --budget 64 --jobs 4
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time
from itertools import chain

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.kernels import KERNEL_ORDER
from repro.machine import Context
from repro.obs import (aggregate_curves, collect_curves, curves_document,
                       render_curves_markdown)
from repro.search import TraceStream, TuneConfig, TuningSession

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"

STRATEGIES = ("line", "random", "anneal", "genetic", "surrogate",
              "transfer")
#: strategies the race hard-gates against uniform random sampling
GATED = ("anneal", "genetic", "surrogate", "transfer")

#: small enough to keep the full race to minutes, big enough that the
#: out-of-cache physics (prefetch, bus) dominates like at the paper's N
SIZES = {Context.OUT_OF_CACHE: 8000, Context.IN_L2: 1024}
#: blocked-GEMM matrix orders (full grid only): the wire-schema
#: defaults — 512 puts the working set out of cache so the tile:
#: dimensions carry real speedup, 160 keeps the operands L2-resident
GEMM_SIZES = {Context.OUT_OF_CACHE: 512, Context.IN_L2: 160}


def _grid(quick: bool):
    kernels = ["ddot", "dasum", "dcopy"] if quick else list(KERNEL_ORDER)
    machines = ["p4e"] if quick else ["p4e", "opteron"]
    for kernel in kernels:
        for machine in machines:
            for ctx, n in SIZES.items():
                yield kernel, machine, ctx, n
    if not quick:
        # blocked GEMM: the Level-3 nest whose tile: dimensions the
        # surrogate's generic feature encoding has to handle unchanged
        for machine in machines:
            for ctx, n in GEMM_SIZES.items():
                yield "dgemm", machine, ctx, n


def race(quick: bool, budget: int, seed: int, jobs: int,
         trace_dir: pathlib.Path):
    from repro.search import write_warm_entry

    grid = {}
    walls = {}
    traces = []
    warm_dir = trace_dir / "warmstore"
    for strategy in STRATEGIES:
        trace = trace_dir / f"race_{strategy}.jsonl"
        traces.append(trace)
        cfg = TuneConfig(strategy=strategy, seed=seed, max_evals=budget,
                         run_tester=False, jobs=jobs, trace=str(trace),
                         # transfer warm-starts from random's results on
                         # this very grid (written below), so its gate
                         # below is also an end-to-end check of the
                         # neighbor lookup's canonicalization
                         warm_start=(str(warm_dir)
                                     if strategy == "transfer" else None))
        t0 = time.perf_counter()
        with TuningSession(cfg) as session:
            for kernel, machine, ctx, n in _grid(quick):
                r = session.tune(kernel, machine, ctx, n).search
                point = grid.setdefault(
                    f"{kernel}:{machine}:{ctx.value}:{n}",
                    {"start_cycles": r.start_cycles})
                point[strategy] = {
                    "best_cycles": r.best_cycles,
                    "n_evaluations": r.n_evaluations,
                    "speedup_over_start": round(r.speedup_over_start, 4),
                }
                if strategy == "random":
                    write_warm_entry(warm_dir, kernel=kernel,
                                     machine=machine, context=ctx, n=n,
                                     params=r.best_params,
                                     cycles=r.best_cycles)
        walls[strategy] = round(time.perf_counter() - t0, 2)
    return grid, walls, traces


def summarize(grid):
    wins = dict.fromkeys(STRATEGIES, 0)
    regressions = []
    for key, point in sorted(grid.items()):
        best = min(point[s]["best_cycles"] for s in STRATEGIES)
        for s in STRATEGIES:
            if point[s]["best_cycles"] == best:
                wins[s] += 1
        for s in GATED:
            if point[s]["best_cycles"] > point["random"]["best_cycles"]:
                regressions.append({
                    "point": key, "strategy": s,
                    "best_cycles": point[s]["best_cycles"],
                    "random_cycles": point["random"]["best_cycles"]})
    return {"points": len(grid), "wins_or_ties": wins,
            "random_regressions": regressions}


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small grid (CI smoke)")
    ap.add_argument("--budget", type=int, default=48,
                    help="max_evals given to every strategy")
    ap.add_argument("--seed", type=int, default=0,
                    help="random seed of the seeded strategies")
    ap.add_argument("--jobs", type=int, default=1,
                    help="worker processes per tuning session")
    ap.add_argument("--out", default=str(RESULTS / "BENCH_strategies.json"))
    args = ap.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-strategies-") as td:
        grid, walls, traces = race(args.quick, args.budget, args.seed,
                                   args.jobs, pathlib.Path(td))
        curves = collect_curves(chain.from_iterable(
            TraceStream(str(t)) for t in traces if t.exists()))
        aggregate = aggregate_curves(curves)
    summary = summarize(grid)

    print(f"== strategy race: {summary['points']} grid points, "
          f"budget {args.budget}, seed {args.seed} ==")
    for s in STRATEGIES:
        print(f"{s:8s} wins-or-ties {summary['wins_or_ties'][s]:3d} "
              f"points in {walls[s]}s")
    for reg in summary["random_regressions"]:
        print(f"REGRESSION: {reg['strategy']} lost to random on "
              f"{reg['point']} ({reg['best_cycles']:.0f} vs "
              f"{reg['random_cycles']:.0f} cycles)", file=sys.stderr)

    report = {"quick": args.quick, "budget": args.budget, "seed": args.seed,
              "jobs": args.jobs, "strategies": list(STRATEGIES),
              "sizes": {c.value: n for c, n in SIZES.items()},
              "wall_s": walls, "grid": grid, "summary": summary}
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out}")

    curves_json = out.parent / "BENCH_strategy_curves.json"
    curves_md = out.parent / "BENCH_strategy_curves.md"
    doc = curves_document(curves, aggregate)
    doc.update(quick=args.quick, budget=args.budget, seed=args.seed)
    curves_json.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    curves_md.write_text(render_curves_markdown(
        curves, aggregate,
        title=f"Anytime performance (budget {args.budget}, "
              f"seed {args.seed})") + "\n")
    print(f"wrote {curves_json} and {curves_md}")
    for strategy, row in aggregate.get("strategies", {}).items():
        cells = " ".join(
            f"@{k}={row['ratio_of_best'][k]:.3f}"
            for k in aggregate["checkpoints"]
            if row["ratio_of_best"].get(k) is not None)
        print(f"anytime {strategy:8s} {cells}")

    if summary["random_regressions"]:
        print("FAIL: structured search lost to uniform random sampling",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
