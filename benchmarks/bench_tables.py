"""Benchmarks regenerating the paper's tables.

* Table 1 — BLAS summary (static; render speed only).
* Table 2 — platform/compiler info (static).
* Table 3 — the empirically selected transformation parameters for all
  14 kernels x 3 (machine, context) configurations.  This is the big
  one: it runs 42 complete ifko searches (memoized in the shared store).
"""

from conftest import save_result

from repro.experiments import table1, table2
from repro.experiments.table3 import table3


def test_table1(benchmark, results_dir):
    text = benchmark(table1.render)
    save_result(results_dir, "table1.txt", text)
    assert "iamax" in text


def test_table2(benchmark, results_dir):
    text = benchmark(table2.render)
    save_result(results_dir, "table2.txt", text)
    assert "P4E" in text and "Opteron" in text


def test_table3(benchmark, store, results_dir):
    result = benchmark.pedantic(lambda: table3(store),
                                rounds=1, iterations=1)
    text = result.render()
    save_result(results_dir, "table3.txt", text)
    # every kernel row present, with the three config column groups
    assert len(result.rows) == 14
    assert len(result.headers) == 1 + 3 * 4
