"""Benchmark-suite fixtures.

One memoized result store is shared by every figure/table benchmark, so
the expensive tuning sweeps are computed once per pytest session (the
first benchmark touching a configuration pays for it — exactly like an
ATLAS install).  Rendered outputs are also written to ``results/``.

Sizes: quick (N=20000 out-of-cache) by default; set ``REPRO_FULL=1``
for the paper's N=80000.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.store import ResultStore

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def store():
    return ResultStore()   # honors REPRO_FULL


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n")
