#!/usr/bin/env python
"""Architecture adaptation — and the cost of not adapting.

Reproduces the paper's sharpest anecdote (section 3.3): a profiling
compiler that "blindly applies WNT" because the profile says the loop
is long does great on the P4E and is disastrous on the Opteron, while
the empirical search "tries it, sees the slowdown, and therefore does
not use it."

Also demonstrates the section 3.2 anecdote: icc refuses to vectorize
the ATLAS loop form until the source is rewritten.
"""

from repro import Context, TuneConfig, get_kernel, get_machine, tune_kernel
from repro.refcomp import Icc, IccProf
from repro.reporting import format_table

N = 80000


def main() -> int:
    rows = []
    for mname in ("p4e", "opteron"):
        machine = get_machine(mname)
        for kname in ("dswap", "daxpy", "dcopy"):
            spec = get_kernel(kname)
            ref = Icc().build(spec, machine, Context.OUT_OF_CACHE, N)
            prof = IccProf().build(spec, machine, Context.OUT_OF_CACHE, N)
            ifko = tune_kernel(spec, machine, Context.OUT_OF_CACHE, N,
                               config=TuneConfig(run_tester=False))
            rows.append([machine.name, kname,
                         f"{ref.mflops:.0f}", f"{prof.mflops:.0f}",
                         f"{ifko.mflops:.0f}",
                         "Y" if ifko.params.wnt else "N"])
    print(format_table(
        ["machine", "kernel", "icc+ref", "icc+prof", "ifko", "ifko WNT?"],
        rows, title="Blind profiling vs empirical tuning (MFLOPS)"))

    print("""
On the P4E, icc+prof's blanket WNT is fine (streaming stores want it).
On the Opteron it wrecks swap/axpy — the write-combining buffers flush
on read-write streams — while the empirical search simply measures the
slowdown and leaves WNT off.  Note ifko *does* keep WNT for dcopy on
the Opteron, where the output is write-only.
""")

    # --- the loop-form anecdote (section 3.2) ---------------------------
    spec = get_kernel("ddot")
    machine = get_machine("p4e")
    orig = Icc().build(spec, machine, Context.OUT_OF_CACHE, N,
                       modified_source=False)
    fixed = Icc().build(spec, machine, Context.OUT_OF_CACHE, N,
                        modified_source=True)
    print("icc and the ATLAS loop form, ddot on the P4E:")
    print(f"  for(i=N; i; i--)   (original ATLAS form): "
          f"{orig.mflops:7.1f} MFLOPS  (not vectorized)")
    print(f"  for(i=0; i<N; i++) (modified form):       "
          f"{fixed.mflops:7.1f} MFLOPS  (vectorized)")
    assert fixed.mflops >= orig.mflops
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
