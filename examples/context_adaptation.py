#!/usr/bin/env python
"""Context adaptation (paper section 3.3, Figure 4 / Table 3).

"In addition to adapting to the architecture, empirical methods can be
utilized to tune a kernel to the particular context in which it is
being used" — the same kernel wants different parameters when its
operands are already resident in L2 than when they stream from memory.

This example tunes several kernels for both contexts on the P4E and
shows how the chosen parameters diverge: out of cache, prefetch
distance rules; in cache, WNT turns off and computational optimizations
(unrolling, accumulator expansion) take over.
"""

from repro import Context, get_kernel, pentium4e, tune_kernel
from repro.reporting import format_table

KERNELS = ("ddot", "sasum", "dcopy", "dswap")


def main() -> int:
    machine = pentium4e()
    rows = []
    for name in KERNELS:
        spec = get_kernel(name)
        oc = tune_kernel(spec, machine, Context.OUT_OF_CACHE, 80000)
        ic = tune_kernel(spec, machine, Context.IN_L2, 1024)
        rows.append([name, "out-of-cache", f"{oc.mflops:.0f}",
                     oc.params.describe()])
        rows.append([name, "in-L2", f"{ic.mflops:.0f}",
                     ic.params.describe()])

        # cross-context sanity: running the out-of-cache-tuned kernel
        # in cache is worse than the in-cache-tuned one
        from repro.machine import summarize, time_kernel
        cross = time_kernel(summarize(oc.compiled.fn), machine,
                            Context.IN_L2, 1024)
        mismatch = cross.cycles / (ic.timing.cycles or 1)
        rows.append(["", "-> oc params run in-L2", "",
                     f"{mismatch:.2f}x slower than in-L2-tuned"])

    print(format_table(["kernel", "tuned for", "MFLOPS", "parameters"],
                       rows,
                       title="Context adaptation on the simulated P4E"))
    print("\nNote how WNT flips off in-cache, prefetch shrinks in "
          "importance,\nand in-cache reductions lean on AE — the paper's "
          "section 3.3 story.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
