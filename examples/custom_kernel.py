#!/usr/bin/env python
"""Tuning a kernel that is NOT one of the shipped BLAS routines.

The paper's point about ifko versus library generators: "in keeping the
search in the compiler, we hope to generalize it enough to tune almost
any floating point kernel."  Here we write a new kernel in HIL — a
fused 'dzsum': sum of squares plus absolute sum in one pass — tune it,
and verify it against NumPy through the functional interpreter.
"""

import numpy as np

from repro import Context, FKO, pentium4e, run_function
from repro.fko.params import TransformParams
from repro.machine import summarize, time_kernel
from repro.search import LineSearch, build_space
from repro.timing.timer import Timer

# a kernel of our own: RETURN sum(x*x) + sum(|x|), one pass over X
HIL = """
ROUTINE dzsum(N: int, X: ptr double) RETURNS double;
double ssq = 0.0;
double asum = 0.0;
double x;
double ax;
@TUNE
LOOP i = 0, N
LOOP_BODY
    x = X[0];
    ssq += x * x;
    ax = ABS x;
    asum += ax;
    X += 1;
LOOP_END
double total;
total = ssq + asum;
RETURN total;
"""

N = 80000


def main() -> int:
    machine = pentium4e()
    fko = FKO(machine)

    print("=== custom kernel: dzsum (sum x^2 + sum |x|) ===\n")
    analysis = fko.analyze(HIL)
    print(analysis.describe())
    assert analysis.vectorizable
    assert len(analysis.accumulators) == 2   # ssq and asum both expand

    # wire up an ifko search by hand (what tune_kernel does for the
    # shipped kernels)
    timer = Timer(machine, Context.OUT_OF_CACHE, N)
    flops = 3 * N  # mul+add for ssq, abs+add for asum -> 3 "paper" flops

    def evaluate(params: TransformParams) -> float:
        compiled = fko.compile(HIL, params)
        summ = summarize(compiled.fn)
        return timer.time_summary(summ, flops, ident=str(params.key())).cycles

    space = build_space(analysis, machine)
    start = fko.defaults(HIL)
    result = LineSearch(space, start,
                        output_arrays=analysis.output_arrays).run(evaluate)

    best = fko.compile(HIL, result.best_params)
    timing = timer.time_summary(summarize(best.fn), flops, ident="best")
    print(f"\nFKO defaults -> ifko: {result.speedup_over_start:.2f}x "
          f"({result.n_evaluations} evaluations)")
    print(f"best: {timing.mflops:.1f} MFLOPS with "
          f"{result.best_params.describe()}")

    # verify against NumPy on several sizes, including remainder cases
    rng = np.random.default_rng(42)
    for n in (0, 1, 7, 100, 1001):
        X = rng.standard_normal(max(n, 1))
        got = run_function(best.fn, {"X": X.copy()}, {"N": n}).ret
        want = float(np.sum(X[:n] ** 2) + np.abs(X[:n]).sum())
        ok = abs(got - want) <= 1e-9 * max(1.0, abs(want))
        print(f"  N={n:5d}: kernel={got:+.12g}  numpy={want:+.12g}  "
              f"{'OK' if ok else 'MISMATCH'}")
        assert ok
    print("\ncustom kernel tuned and verified.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
