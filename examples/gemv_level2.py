#!/usr/bin/env python
"""Beyond Level 1: tuning a nested-loop (Level 2 BLAS) kernel.

The paper's closing argument is that keeping the search inside the
compiler generalizes it "to tune almost any floating point kernel" —
and notes early (untuned) wins on higher-level BLAS.  This example
writes dgemv (y = A x, row-major) as two nested HIL loops, marks the
inner dot-product loop with @TUNE, and runs the ifko machinery on it.

Things to notice in the output:

* the alignment analysis reports that *no* array is provably aligned
  (each row of A starts at an arbitrary offset), so the vectorizer
  emits unaligned vector loads (movups-style `vldu`);
* the runtime pointer reset ``X -= N`` between rows lowers to an
  IMUL/SUB pair;
* the inner-loop search still finds vectorization + accumulator
  expansion + prefetch worthwhile, exactly as for Level 1 dot.
"""

import numpy as np

from repro import Context, FKO, pentium4e
from repro.ir import format_function
from repro.kernels.blas2 import get_blas2, run_blas2
from repro.machine import summarize, time_kernel
from repro.search import LineSearch, build_space
from repro.timing.timer import Timer

M, N = 64, 1024   # row length dominates: inner loop is what matters


def main() -> int:
    spec = get_blas2("dgemv")
    machine = pentium4e()
    fko = FKO(machine)

    print("=== dgemv: nested loops, @TUNE on the inner dot loop ===\n")
    analysis = fko.analyze(spec.hil)
    print(analysis.describe())
    print(f"provably aligned arrays: {sorted(analysis.aligned_arrays) or '{}'}"
          " (rows of A start anywhere -> unaligned vector ops)\n")

    timer = Timer(machine, Context.OUT_OF_CACHE, M * N)

    def evaluate(params):
        compiled = fko.compile(spec.hil, params)
        summ = summarize(compiled.fn)
        return timer.time_summary(summ, spec.flops(M, N),
                                  ident=str(params.key())).cycles

    space = build_space(analysis, machine)
    start = fko.defaults(spec.hil)
    result = LineSearch(space, start,
                        output_arrays=analysis.output_arrays).run(evaluate)
    best = fko.compile(spec.hil, result.best_params)
    timing = timer.time_summary(summarize(best.fn), spec.flops(M, N),
                                ident="best")

    print(f"FKO defaults -> tuned inner loop: "
          f"{result.speedup_over_start:.2f}x in {result.n_evaluations} evals")
    print(f"tuned: {timing.mflops:.1f} model-MFLOPS with "
          f"{result.best_params.describe()}\n")

    # verify against NumPy for a spread of shapes
    rng = np.random.default_rng(11)
    for m, n in ((1, 1), (3, 5), (7, 23), (16, 64), (5, 1000)):
        got, want = run_blas2(best.fn, spec, m, n, rng)
        assert np.allclose(got["Y"], want["Y"], rtol=1e-11), (m, n)
        print(f"  gemv {m:4d}x{n:<5d} matches NumPy")

    print("\ninner loop of the tuned kernel:")
    text = format_function(best.fn)
    in_loop = False
    for line in text.splitlines():
        if "<loop body>" in line:
            in_loop = True
        elif line.endswith(":") and in_loop:
            break
        if in_loop:
            print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
