#!/usr/bin/env python
"""Quickstart: empirically tune one BLAS kernel with ifko.

Runs the full paper pipeline on ddot for the simulated Pentium 4E:
FKO analysis -> iterative line search -> verified best kernel, and
prints the analysis report, the chosen parameters, the speedup
decomposition, and the generated "assembly".

    python examples/quickstart.py [kernel] [machine]
"""

import sys

from repro import (Context, FKO, compile_default, get_kernel, get_machine,
                   tune_kernel)
from repro.ir import format_function

N = 80000


def main() -> int:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "ddot"
    machine = get_machine(sys.argv[2] if len(sys.argv) > 2 else "p4e")
    spec = get_kernel(kernel)

    print(f"=== {spec.name} on the simulated {machine.name}, "
          f"N={N}, out of cache ===\n")

    # 1. FKO's analysis — what the search is told about the kernel
    fko = FKO(machine)
    print("FKO analysis:")
    print("  " + fko.analyze(spec.hil).describe().replace("\n", "\n  "))

    # 2. plain FKO: static defaults, no search
    fk = compile_default(spec, machine, Context.OUT_OF_CACHE, N)
    print(f"\nFKO (static defaults): {fk.mflops:8.1f} MFLOPS"
          f"   [{fk.compiled.params.describe()}]")

    # 3. ifko: the iterative, empirical search
    tk = tune_kernel(spec, machine, Context.OUT_OF_CACHE, N)
    print(f"ifko (empirical):      {tk.mflops:8.1f} MFLOPS"
          f"   [{tk.params.describe()}]")
    print(f"\nsearch: {tk.search.n_evaluations} timed compilations, "
          f"{tk.search.speedup_over_start:.2f}x over FKO defaults")
    print("gain per tuned parameter (Figure 7 decomposition):")
    for phase, gain in tk.search.phase_speedups().items():
        if abs(gain - 1.0) > 0.002:
            print(f"  {phase:7s} {100 * (gain - 1):+6.1f}%")

    print("\ngenerated kernel (FKO optimized assembly):\n")
    print(format_function(tk.compiled.fn))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
