#!/usr/bin/env python
"""Comparing search strategies over the optimization space.

"So many papers have discussed search techniques that many researchers
have come to believe that fast searches are the primary barrier ...
Our own ATLAS work directly contradicts this" (section 1.1) — the paper
argues a simple, well-seeded line search makes the search a low-order
term.  This example puts that claim on trial: line search vs random
sampling, simulated annealing and a genetic algorithm (the alternatives
section 2.3 names), all at the *same* evaluation budget, plus a small
exhaustive sweep as the gold standard.
"""

from repro import Context, FKO, get_kernel, pentium4e
from repro.reporting import format_table
from repro.search import (LineSearch, build_space, exhaustive_search,
                          genetic_search, random_search,
                          simulated_annealing)
from repro.timing.timer import Timer

KERNEL = "dasum"
N = 80000


def main() -> int:
    spec = get_kernel(KERNEL)
    machine = pentium4e()
    fko = FKO(machine)
    analysis = fko.analyze(spec.hil)
    timer = Timer(machine, Context.OUT_OF_CACHE, N)
    cache = {}

    def evaluate(params):
        key = params.key()
        if key not in cache:
            cache[key] = timer.time(fko.compile(spec.hil, params),
                                    spec).cycles
        return cache[key]

    # a space small enough that the exhaustive sweep stays affordable
    space = build_space(analysis, machine, unrolls=(1, 2, 4, 8, 16),
                        aes=(1, 2, 4), dist_lines=(2, 4, 8, 16, 24))
    start = fko.defaults(spec.hil)

    line = LineSearch(space, start,
                      output_arrays=analysis.output_arrays).run(evaluate)
    budget = line.n_evaluations
    gold = exhaustive_search(evaluate, space, start, max_evals=10 ** 6)

    rows = []
    def add(name, res):
        mf = spec.flops(N) / (res.best_cycles / machine.freq_hz) / 1e6
        rows.append([name, f"{res.best_cycles:.0f}", res.n_evaluations,
                     f"{mf:.1f}",
                     f"{100 * res.best_cycles / gold.best_cycles - 100:+.2f}%"])

    add("line search (ifko)", line)
    add("random", random_search(evaluate, space, start, budget, seed=11))
    add("simulated annealing",
        simulated_annealing(evaluate, space, start, budget, seed=11))
    add("genetic", genetic_search(evaluate, space, start, budget, seed=11))
    add("exhaustive (gold)", gold)

    print(format_table(
        ["strategy", "cycles", "evals", "model-MFLOPS", "vs gold"], rows,
        title=f"Search strategies on {KERNEL}, simulated P4E, N={N}"))
    print(f"\nfull cross-product of this (trimmed) space: {space.size} "
          f"points; the line search used {budget}.")
    print("The paper's position holds: the seeded line search reaches the "
          "exhaustive optimum\nwithin noise, at a small fraction of the "
          "evaluations.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
