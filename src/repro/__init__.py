"""repro — a reproduction of "Tuning High Performance Kernels through
Empirical Compilation" (Whaley & Whalley, ICPP 2005).

The package implements the paper's complete system, in Python:

* **HIL** (:mod:`repro.hil`) — the kernel input language;
* **FKO** (:mod:`repro.fko`) — the specialized backend compiler with
  the paper's fundamental (SV, UR, LC, AE, PF, WNT) and repeatable
  (copy propagation, peephole, register allocation, control-flow
  cleanup) transformations;
* **ifko** (:mod:`repro.search`) — the iterative/empirical driver:
  analysis-seeded modified line search over the transform space;
* **machines** (:mod:`repro.machine`) — cycle-approximate simulations
  of the paper's Pentium 4E and Opteron testbeds (the one substitution,
  see DESIGN.md), plus a functional interpreter for correctness;
* **baselines** (:mod:`repro.refcomp`, :mod:`repro.atlas`) — modeled
  gcc/icc/icc+prof and the ATLAS hand-tuned kernel search;
* **experiments** (:mod:`repro.experiments`) — regenerate every table
  and figure of the paper's evaluation.

Quick start::

    from repro import pentium4e, tune_kernel, Context, get_kernel

    spec = get_kernel("ddot")
    tuned = tune_kernel(spec, pentium4e(), Context.OUT_OF_CACHE, 80000)
    print(tuned.mflops, tuned.params.describe())
"""

# defined before the subpackage imports so that submodules (the search
# engine's cache keys, the experiment store's filenames) can do
# ``from .. import __version__`` without an import-order trap
__version__ = "1.1.0"

from .errors import (HILError, HILSemanticError, HILSyntaxError, IRError,
                     IRVerifyError, KernelTestFailure, MachineError,
                     RegisterPressureError, ReproError, SearchError,
                     SimulationFault, TransformError)
from .fko import (FKO, CompiledKernel, KernelAnalysis, PrefetchParams,
                  TransformParams, compile_kernel, fko_defaults)
from .hil import compile_hil
from .kernels import KERNEL_ORDER, KernelSpec, all_kernels, get_kernel
from .machine import (Context, MachineConfig, get_machine, opteron,
                      pentium4e, run_function, summarize, time_kernel)
from .search import (BatchResult, LineSearch, SearchResult, TuneConfig,
                     TunedKernel, TuningJob, TuningSession, build_space,
                     compile_default, registry_jobs, tune_kernel)
from .timing import Timer, test_kernel

__all__ = [
    # errors
    "HILError", "HILSemanticError", "HILSyntaxError", "IRError",
    "IRVerifyError", "KernelTestFailure", "MachineError",
    "RegisterPressureError", "ReproError", "SearchError",
    "SimulationFault", "TransformError",
    # compiler
    "FKO", "CompiledKernel", "KernelAnalysis", "PrefetchParams",
    "TransformParams", "compile_kernel", "fko_defaults", "compile_hil",
    # kernels
    "KERNEL_ORDER", "KernelSpec", "all_kernels", "get_kernel",
    # machines
    "Context", "MachineConfig", "get_machine", "opteron", "pentium4e",
    "run_function", "summarize", "time_kernel",
    # search
    "BatchResult", "LineSearch", "SearchResult", "TuneConfig",
    "TunedKernel", "TuningJob", "TuningSession", "build_space",
    "compile_default", "registry_jobs", "tune_kernel",
    # timing
    "Timer", "test_kernel",
    "__version__",
]
