"""repro — a reproduction of "Tuning High Performance Kernels through
Empirical Compilation" (Whaley & Whalley, ICPP 2005).

The package implements the paper's complete system, in Python:

* **HIL** (:mod:`repro.hil`) — the kernel input language;
* **FKO** (:mod:`repro.fko`) — the specialized backend compiler with
  the paper's fundamental (SV, UR, LC, AE, PF, WNT) and repeatable
  (copy propagation, peephole, register allocation, control-flow
  cleanup) transformations;
* **ifko** (:mod:`repro.search`) — the iterative/empirical driver:
  analysis-seeded modified line search over the transform space;
* **machines** (:mod:`repro.machine`) — cycle-approximate simulations
  of the paper's Pentium 4E and Opteron testbeds (the one substitution,
  see DESIGN.md), plus a functional interpreter for correctness;
* **baselines** (:mod:`repro.refcomp`, :mod:`repro.atlas`) — modeled
  gcc/icc/icc+prof and the ATLAS hand-tuned kernel search;
* **experiments** (:mod:`repro.experiments`) — regenerate every table
  and figure of the paper's evaluation;
* **service** (:mod:`repro.service` + :mod:`repro.client`) — tuning as
  a service: the ``repro serve`` daemon (async job queue, request
  dedup, persistent results) and the local/HTTP client facade.

Quick start::

    from repro import pentium4e, tune_kernel, Context, get_kernel

    spec = get_kernel("ddot")
    tuned = tune_kernel(spec, pentium4e(), Context.OUT_OF_CACHE, 80000)
    print(tuned.mflops, tuned.params.describe())
"""

# defined before the subpackage imports so that submodules (the search
# engine's cache keys, the experiment store's filenames) can do
# ``from .. import __version__`` without an import-order trap
__version__ = "1.1.0"

from .errors import (HILError, HILSemanticError, HILSyntaxError, IRError,
                     IRVerifyError, KernelTestFailure, MachineError,
                     RegisterPressureError, ReproError, SearchError,
                     SimulationFault, TransformError)
from .fko import (FKO, CompiledKernel, KernelAnalysis, PrefetchParams,
                  TransformParams, compile_kernel, fko_defaults)
from .hil import compile_hil
from .kernels import KERNEL_ORDER, KernelSpec, all_kernels, get_kernel
from .machine import (Context, MachineConfig, get_machine, opteron,
                      pentium4e, run_function, summarize, time_kernel)
from . import obs
from .search import (BatchResult, LineSearch, Searcher, SearchResult,
                     TuneConfig, TunedKernel, TuningJob, TuningSession,
                     build_space, compile_default, make_searcher,
                     registry_jobs, searcher_names, tune_kernel)
from .timing import Timer, test_kernel
from .timing.timer import paper_n
from .service import TuneRequest, TuneResponse, history_digest
from .client import (LocalClient, ServeClient, ServiceError, TuneClient,
                     make_client)


# ---------------------------------------------------------------------------
# the three-verb public API: repro.tune / repro.compile / repro.analyze.
# Thin coercing fronts over the full drivers — kernels, machines and
# contexts may be given by registry name, N defaults to the paper's
# problem size for the context.

def _coerce(kernel, machine, context):
    spec = get_kernel(kernel) if isinstance(kernel, str) else kernel
    mach = get_machine(machine) if isinstance(machine, str) else machine
    ctx = context if isinstance(context, Context) else Context(context)
    return spec, mach, ctx


def tune(kernel, machine="p4e", context=Context.OUT_OF_CACHE,
         n=None, config=None, **options) -> TunedKernel:
    """Empirically tune one kernel (ifko: analysis -> search -> best).

    ``kernel``/``machine``/``context`` accept registry names ("ddot",
    "p4e", "out-of-cache") or the full objects; ``n`` defaults to the
    paper's problem size for the context.  Keyword ``options`` are
    :class:`TuneConfig` fields (``strategy="anneal"``, ``seed=3``,
    ``max_evals=100``, ...); pass ``config=TuneConfig(...)`` instead to
    reuse a prepared configuration (the two are mutually exclusive).
    """
    if config is not None and options:
        raise TypeError("pass either config= or TuneConfig field "
                        "keywords, not both")
    spec, mach, ctx = _coerce(kernel, machine, context)
    cfg = config if config is not None else TuneConfig(**options)
    return tune_kernel(spec, mach, ctx, n if n is not None else paper_n(ctx),
                       config=cfg)


def compile(kernel, machine="p4e", context=Context.OUT_OF_CACHE,  # noqa: A001
            n=None, config=None) -> TunedKernel:
    """Compile one kernel with FKO's static defaults (no search) and
    time it — the "FKO" baseline :func:`tune` is measured against."""
    spec, mach, ctx = _coerce(kernel, machine, context)
    return compile_default(spec, mach, ctx,
                           n if n is not None else paper_n(ctx),
                           config=config)


def analyze(kernel, machine="p4e") -> KernelAnalysis:
    """FKO's kernel analysis — the feedback that seeds the search."""
    spec = get_kernel(kernel) if isinstance(kernel, str) else kernel
    mach = get_machine(machine) if isinstance(machine, str) else machine
    return FKO(mach).analyze(spec.hil)

__all__ = [
    # errors
    "HILError", "HILSemanticError", "HILSyntaxError", "IRError",
    "IRVerifyError", "KernelTestFailure", "MachineError",
    "RegisterPressureError", "ReproError", "SearchError",
    "SimulationFault", "TransformError",
    # compiler
    "FKO", "CompiledKernel", "KernelAnalysis", "PrefetchParams",
    "TransformParams", "compile_kernel", "fko_defaults", "compile_hil",
    # kernels
    "KERNEL_ORDER", "KernelSpec", "all_kernels", "get_kernel",
    # machines
    "Context", "MachineConfig", "get_machine", "opteron", "pentium4e",
    "run_function", "summarize", "time_kernel",
    # search
    "BatchResult", "LineSearch", "Searcher", "SearchResult", "TuneConfig",
    "TunedKernel", "TuningJob", "TuningSession", "build_space",
    "compile_default", "make_searcher", "registry_jobs", "searcher_names",
    "tune_kernel",
    # timing
    "Timer", "paper_n", "test_kernel",
    # observability
    "obs",
    # service + client (tuning-as-a-service)
    "TuneRequest", "TuneResponse", "history_digest", "TuneClient",
    "LocalClient", "ServeClient", "ServiceError", "make_client",
    # the three-verb facade
    "tune", "compile", "analyze",
    "__version__",
]
