"""``python -m repro`` — the command-line driver (see repro.cli)."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
