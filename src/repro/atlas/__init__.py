"""The ATLAS baseline: hand-tuned kernel variants + empirical selection."""

from .handtuned import build_dual_indexed_copy, build_vector_iamax
from .variants import Candidate, Variant, variants_for
from .search import AtlasResult, atlas_search

__all__ = ["build_dual_indexed_copy", "build_vector_iamax", "Candidate",
           "Variant", "variants_for", "AtlasResult", "atlas_search"]
