"""Hand-tuned all-assembly kernels — ATLAS's ``*`` variants.

"When ATLAS has selected a hand-tuned all-assembly kernel ... the
routine name is suffixed by a * ... hand-tuning in assembly allows for
more complete and lower-level optimization (eg. SIMD vectorization,
exploitation of CISC ISA features, etc.)." (section 3.3)

These builders construct IR directly (the moral equivalent of writing
assembly) and implement the three techniques the paper credits for the
cases where the hand-tuned code beats ifko:

* :func:`build_vector_iamax` — SIMD-vectorized iamax: a packed
  abs/compare/movemask fast path with a rare scalar lane-scan on a new
  maximum.  Neither icc nor ifko can vectorize the loop automatically
  (the index tracking defeats them); the hand-tuner can.
* :func:`build_dual_indexed_copy` — copy with CISC base+index
  addressing: both arrays indexed off one counter register, saving the
  second pointer update per iteration (the technique ifko lacks on
  Opteron scopy, section 3.3).
* block fetch for dcopy is a *scheduling* technique (batching reads
  and writes into large blocks to minimize bus turnarounds, AMD's
  "block prefetch" [14]); it is expressed as a deeper effective write
  batch on the kernel's timing summary (``write_batch_override``).

All builders return genuine executable IR — the tester runs them
against the NumPy references like any compiled kernel.
"""

from __future__ import annotations

from typing import Optional

from ..ir import (Cond, DType, Function, IRBuilder, Imm, Instruction,
                  Label, LoopDescriptor, Mem, Opcode, Param, PrefetchHint,
                  RegClass, VReg, sse, veclen, verify)
from ..kernels.blas1 import KernelSpec


def build_vector_iamax(spec: KernelSpec,
                       prefetch: Optional[PrefetchHint] = PrefetchHint.NTA,
                       prefetch_dist: int = 1024,
                       unroll: int = 1) -> Function:
    """Hand-vectorized iamax (isamax*/idamax*).

    ``unroll`` vectors are compared per trip with their masks OR-combined
    before a single movemask+test, amortizing the branch overhead — the
    kind of low-level structure only hand-tuning (or a much smarter
    vectorizer) produces.
    """
    elem = spec.dtype.type(0).dtype
    dt = DType.F32 if spec.precision == "s" else DType.F64
    vt = sse(dt)
    vl = vt.lanes
    esz = dt.size

    n_p = VReg("N", RegClass.GP, DType.I64)
    x_p = VReg("X", RegClass.GP, DType.PTR)
    fn = Function(spec.name + "*", [Param("N", DType.I64, reg=n_p),
                                    Param("X", DType.PTR, elem=dt, reg=x_p)],
                  ret=Param("<ret>", DType.I64))
    b = IRBuilder(fn)

    amax = b.fp("amax", dt)
    imax = b.gp("imax")
    vamax = b.vec("vamax", vt)
    i = b.gp("i")
    bound = b.gp("bound")

    b.new_block("entry")
    b.mov(imax, Imm(0))
    b.load(amax, Mem(x_p, dt, array="X"))
    b.unop(Opcode.FABS, amax, amax)
    b.vbcast(vamax, amax)

    b.new_block("pre")
    b.mov(i, Imm(0), comment="counter")
    b.binop(Opcode.SUB, bound, n_p, Imm(unroll * vl - 1),
            comment="main bound")

    b.new_block("head")
    b.cmp(i, bound)
    b.jcc(Cond.GE, "cln_head", comment="main exit")

    b.new_block("body")
    g = b.gp("g")
    acc_mask = None
    for u in range(unroll):
        v = b.vec(f"v{u}", vt)
        va = b.vec(f"va{u}", vt)
        m = b.vec(f"m{u}", vt)
        b.load(v, Mem(x_p, vt, disp=u * vl * esz, array="X"))
        b.unop(Opcode.VABS, va, v)
        b.binop(Opcode.VCMPGT, m, va, vamax)
        if acc_mask is None:
            acc_mask = m
        else:
            nm = b.vec(f"mm{u}", vt)
            b.binop(Opcode.VOR, nm, acc_mask, m)
            acc_mask = nm
    if prefetch is not None and prefetch_dist > 0:
        lines = max(1, (unroll * vl * esz) // 64)
        for j in range(lines):
            b.prefetch(Mem(x_p, dt, disp=prefetch_dist + j * 64,
                           array="X"), prefetch)
    b.unop(Opcode.VMASK, g, acc_mask)
    b.emit(Instruction(Opcode.TEST, None, (g, g)))
    b.jcc(Cond.NE, "update", comment="rare: new max in this block")

    b.new_block("cont")
    b.add(x_p, x_p, Imm(unroll * vl * esz), comment="X advance")

    b.new_block("latch")
    b.add(i, i, Imm(unroll * vl), comment="counter step")
    b.jmp("head")

    # rare path: scalar scan of the block's lanes (first occurrence
    # wins).  Each lane's hit code lives in its own block so conditional
    # branches always terminate their blocks.
    total_lanes = unroll * vl
    for k in range(total_lanes):
        b.new_block("update" if k == 0 else f"lane{k}")
        xk = b.fp(f"x{k}", dt)
        b.load(xk, Mem(x_p, dt, disp=k * esz, array="X"))
        b.unop(Opcode.FABS, xk, xk)
        b.fcmp(xk, amax)
        nxt = f"lane{k + 1}" if k + 1 < total_lanes else "rebroadcast"
        b.jcc(Cond.LE, nxt)
        b.new_block(f"lane{k}_hit" if k else "update_hit")
        b.mov(amax, xk)
        b.binop(Opcode.ADD, imax, i, Imm(k), comment=f"imax = i+{k}")
    b.new_block("rebroadcast")
    b.vbcast(vamax, amax)
    b.jmp("cont")

    # scalar remainder
    b.new_block("cln_head")
    b.cmp(i, n_p)
    b.jcc(Cond.GE, "done", comment="cleanup exit")
    b.new_block("cln_body")
    xs = b.fp("xs", dt)
    b.load(xs, Mem(x_p, dt, array="X"))
    b.unop(Opcode.FABS, xs, xs)
    b.fcmp(xs, amax)
    b.jcc(Cond.LE, "cln_skip")
    b.new_block("cln_hit")
    b.mov(amax, xs)
    b.mov(imax, i)
    b.new_block("cln_skip")
    b.add(x_p, x_p, Imm(esz))
    b.new_block("cln_latch")
    b.add(i, i, Imm(1))
    b.jmp("cln_head")

    b.new_block("done")
    b.ret(imax)

    body_names = ["body", "cont", "update", "update_hit"] \
        + [x for k in range(1, total_lanes)
           for x in (f"lane{k}", f"lane{k}_hit")] + ["rebroadcast"]
    fn.loop = LoopDescriptor(
        header="head", body=body_names, latch="latch", preheader="pre",
        exit="cln_head", counter=i, start=Imm(0), end=n_p, step=1,
        pointers={"X": x_p}, elem=dt, ptr_incs={"X": 1},
        unroll=unroll, vectorized=True, veclen=vl,
        cleanup_body=["cln_head", "cln_body", "cln_hit", "cln_skip",
                      "cln_latch"])
    verify(fn)
    return fn


def build_dual_indexed_copy(spec: KernelSpec, unroll: int = 4,
                            nontemporal: bool = False,
                            prefetch: Optional[PrefetchHint] = PrefetchHint.NTA,
                            prefetch_dist: int = 512,
                            block_fetch: bool = False) -> Function:
    """Hand copy kernel using CISC base+index addressing: one counter
    register indexes both arrays (``movapd (%esi,%eax,8), %xmm0``), so
    the loop has a single integer update.  ``block_fetch=True`` tags the
    kernel for block-fetch scheduling (dcopy* on the P4E)."""
    dt = DType.F32 if spec.precision == "s" else DType.F64
    vt = sse(dt)
    vl = vt.lanes
    esz = dt.size

    n_p = VReg("N", RegClass.GP, DType.I64)
    x_p = VReg("X", RegClass.GP, DType.PTR)
    y_p = VReg("Y", RegClass.GP, DType.PTR)
    fn = Function(spec.name + "*",
                  [Param("N", DType.I64, reg=n_p),
                   Param("X", DType.PTR, elem=dt, reg=x_p),
                   Param("Y", DType.PTR, elem=dt, reg=y_p)])
    b = IRBuilder(fn)

    i = b.gp("i")
    off = b.gp("off")          # byte offset = i * esz, kept by strength
    bound = b.gp("bound")      # reduction so scale stays in {1,2,4,8}

    b.new_block("entry")
    b.new_block("pre")
    b.mov(i, Imm(0))
    b.mov(off, Imm(0))
    b.binop(Opcode.SUB, bound, n_p, Imm(vl * unroll - 1),
            comment="main bound")

    b.new_block("head")
    b.cmp(i, bound)
    b.jcc(Cond.GE, "cln_head")

    b.new_block("body")
    for k in range(unroll):
        v = b.vec(f"v{k}", vt)
        disp = k * vl * esz
        b.load(v, Mem(x_p, vt, index=off, scale=1, disp=disp, array="X"))
        b.store(Mem(y_p, vt, index=off, scale=1, disp=disp, array="Y"), v,
                nontemporal=nontemporal)
    if prefetch is not None and prefetch_dist > 0:
        lines = max(1, (vl * unroll * esz) // 64)
        for j in range(lines):
            b.prefetch(Mem(x_p, dt, index=off, scale=1,
                           disp=prefetch_dist + j * 64, array="X"), prefetch)
    b.add(off, off, Imm(vl * unroll * esz), comment="single index update")

    b.new_block("latch")
    b.add(i, i, Imm(vl * unroll))
    b.jmp("head")

    b.new_block("cln_head")
    b.cmp(i, n_p)
    b.jcc(Cond.GE, "done")
    b.new_block("cln_body")
    x = b.fp("x", dt)
    b.load(x, Mem(x_p, dt, index=off, scale=1, array="X"))
    b.store(Mem(y_p, dt, index=off, scale=1, array="Y"), x)
    b.add(off, off, Imm(esz))
    b.new_block("cln_latch")
    b.add(i, i, Imm(1))
    b.jmp("cln_head")

    b.new_block("done")
    b.ret()

    fn.loop = LoopDescriptor(
        header="head", body=["body"], latch="latch", preheader="pre",
        exit="cln_head", counter=i, start=Imm(0), end=n_p, step=1,
        pointers={"X": x_p, "Y": y_p}, elem=dt,
        ptr_incs={"X": 1, "Y": 1}, unroll=unroll, vectorized=True,
        veclen=vl,
        cleanup_body=["cln_head", "cln_body", "cln_latch"])
    fn.loop.block_fetch = block_fetch  # consumed by the ATLAS search
    verify(fn)
    return fn
