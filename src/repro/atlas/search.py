"""ATLAS's empirical kernel selection.

"ATLAS: The best kernel found by ATLAS's empirical search, installed
with both icc and gcc." (section 3.3)

ATLAS's search is the simplest possible: time every candidate
implementation, keep the fastest, verify it.  The interesting content
lives in the candidate library (:mod:`repro.atlas.variants`), just as
in real ATLAS the interesting content is the hand-written kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import KernelTestFailure
from ..ir import Function
from ..kernels.blas1 import KernelSpec
from ..machine.config import MachineConfig
from ..machine.loopinfo import summarize
from ..machine.timing import Context
from ..timing.timer import KernelTiming, Timer
from ..timing.tester import test_function
from .variants import Candidate, Variant, variants_for


@dataclass
class AtlasResult:
    spec: KernelSpec
    machine: MachineConfig
    context: Context
    n: int
    best_label: str
    is_assembly: bool
    fn: Function
    timing: KernelTiming
    n_candidates: int
    all_timings: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def mflops(self) -> float:
        return self.timing.mflops

    @property
    def display_name(self) -> str:
        """Paper convention: all-assembly winners are starred (dcopy*)."""
        return self.spec.name + ("*" if self.is_assembly else "")


def atlas_search(spec: KernelSpec, machine: MachineConfig, context: Context,
                 n: int, run_tester: bool = True) -> AtlasResult:
    timer = Timer(machine, context, n)
    best: Optional[Tuple[float, Candidate, Function, KernelTiming]] = None
    all_timings: List[Tuple[str, float]] = []
    count = 0
    for variant in variants_for(spec, machine, context):
        for cand in variant.candidates:
            fn = cand.build()
            summary = summarize(fn)
            if getattr(fn.loop, "block_fetch", False):
                # AMD block-fetch scheduling: reads and writes move in
                # large blocks, amortizing bus turnarounds further
                summary.write_batch_override = 16
            timing = timer.time_summary(summary, spec.flops(n),
                                        ident=f"{spec.name}|{cand.label}")
            count += 1
            all_timings.append((cand.label, timing.cycles))
            if best is None or timing.cycles < best[0]:
                best = (timing.cycles, cand, fn, timing)
    assert best is not None, "no candidates built"

    _, cand, fn, timing = best
    if run_tester:
        test_function(fn, spec)
    return AtlasResult(spec=spec, machine=machine, context=context, n=n,
                       best_label=cand.label, is_assembly=cand.is_assembly,
                       fn=fn, timing=timing, n_candidates=count,
                       all_timings=sorted(all_timings, key=lambda t: t[1]))
