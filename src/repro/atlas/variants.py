"""The ATLAS kernel variant library.

"ATLAS empirically searches a series of implementations, which were
laboriously written and hand-tuned using mixtures of assembly and ANSI
C, and contain a multitude of both high and low-level optimizations"
(section 3.3).

Each kernel gets a list of :class:`Variant` entries:

* ``c-ref``      — the plain ANSI C kernel as a native compiler builds it
  (ATLAS installs with both gcc and icc and keeps the better);
* ``c-pf``       — the common ATLAS case: C code with inline-assembly
  prefetch, hand-unrolled, over a small hand-chosen parameter grid;
* ``asm``        — all-assembly kernels: SIMD vectorized with good
  register blocking, prefetch and (where the author chose) WNT;
* ``asm-*``      — the special hand techniques: vectorized iamax,
  block-fetch dcopy, dual-indexed copy.

The grids are deliberately coarse — a human wrote a handful of
candidate implementations, not a compiler sweep.  That is exactly why
ifko's finer empirical search usually edges ATLAS out on average while
the special hand techniques still win their kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

from ..fko import FKO, TransformParams
from ..fko.params import PrefetchParams
from ..ir import Function, PrefetchHint
from ..kernels.blas1 import KernelSpec
from ..machine.config import MachineConfig
from ..machine.timing import Context
from . import handtuned


@dataclass
class Candidate:
    """One concrete implementation ATLAS's search will time."""

    label: str
    build: Callable[[], Function]     # -> executable IR
    is_assembly: bool = False


@dataclass
class Variant:
    name: str
    candidates: List[Candidate] = field(default_factory=list)


def _fko_candidate(spec: KernelSpec, machine: MachineConfig, label: str,
                   params: TransformParams,
                   is_assembly: bool = False) -> Candidate:
    def build() -> Function:
        return FKO(machine).compile(spec.hil, params).fn
    return Candidate(label=label, build=build, is_assembly=is_assembly)


# The hand kernels predate both evaluation machines: their parameter
# grids reflect the platforms they were written on (shorter prefetch
# distances, modest unrolling).  ATLAS's search can only select among
# them — it cannot retune distances finely, which is exactly where
# ifko's in-compiler search gains its average win (section 3.3).
_PF_GRID = (128, 256, 512)
_UR_GRID = (4, 8)


def variants_for(spec: KernelSpec, machine: MachineConfig,
                 context: Context) -> List[Variant]:
    out: List[Variant] = []

    # ---- plain C reference (gcc-ish and icc-ish builds)
    cref = Variant("c-ref")
    cref.candidates.append(_fko_candidate(
        spec, machine, "c-ref/gcc",
        TransformParams(sv=False, unroll=4)))
    cref.candidates.append(_fko_candidate(
        spec, machine, "c-ref/icc",
        TransformParams(sv=True, unroll=2)))
    out.append(cref)

    # ---- C with inline prefetch assembly, hand-picked grids
    cpf = Variant("c-pf")
    for ur in _UR_GRID:
        for dist in _PF_GRID:
            params = TransformParams(sv=True, unroll=ur)
            for arr in spec.vector_args:
                params.prefetch[arr] = PrefetchParams(PrefetchHint.NTA, dist)
            cpf.candidates.append(_fko_candidate(
                spec, machine, f"c-pf/ur{ur}/d{dist}", params))
    out.append(cpf)

    # ---- all-assembly variants.  Historically these were written for
    # Intel machines; the K8 was too new to have dedicated hand kernels,
    # so the Opteron install selects among the C variants and the
    # portable special techniques only.
    asm = Variant("asm")
    wnt_opts = ((False, True) if spec.output_args else (False,)) \
        if machine.name != "Opteron" else ()
    for wnt in wnt_opts:
        for dist in (128, 256):
            for ae in ((1, 2) if spec.returns == "float" else (1,)):
                params = TransformParams(sv=True, unroll=4, ae=ae, wnt=wnt)
                for arr in spec.vector_args:
                    params.prefetch[arr] = PrefetchParams(
                        PrefetchHint.NTA, dist)
                asm.candidates.append(_fko_candidate(
                    spec, machine,
                    f"asm/wnt{int(wnt)}/d{dist}/ae{ae}", params,
                    is_assembly=True))
    out.append(asm)

    # ---- the special hand techniques
    if spec.base == "amax":
        special = Variant("asm-simd")
        # the iamax kernels were hand-retuned per platform (they are
        # the paper's flagship hand-tuning win); their grid is not dated
        for ur in (1, 2, 4):
            for dist in (512, 1024, 1536):
                special.candidates.append(Candidate(
                    label=f"asm-simd/u{ur}/d{dist}",
                    build=lambda u=ur, d=dist: handtuned.build_vector_iamax(
                        spec, PrefetchHint.NTA, d, unroll=u),
                    is_assembly=True))
        out.append(special)

    if spec.base == "copy":
        special = Variant("asm-hand")
        for nt in (False, True):
            for dist in (512, 1024):
                # dual-indexed CISC addressing; on the P4E the double
                # precision version also uses AMD-style block fetch
                special.candidates.append(Candidate(
                    label=f"asm-hand/nt{int(nt)}/d{dist}",
                    build=lambda nt=nt, d=dist: handtuned.build_dual_indexed_copy(
                        spec, unroll=4, nontemporal=nt,
                        prefetch=PrefetchHint.NTA, prefetch_dist=d,
                        block_fetch=(machine.name == "P4E"
                                     and spec.precision == "d")),
                    is_assembly=True))
        out.append(special)

    return out
