"""Command-line driver — the reproduction's ``ifko`` binary.

The paper's system is a compiler plus search drivers invoked from the
command line; this module provides the same ergonomics::

    python -m repro analyze ddot --machine p4e
    python -m repro compile ddot --machine p4e --unroll 4 --ae 2 \\
        --prefetch X=nta:512 --asm
    python -m repro tune dasum --machine opteron --context oc
    python -m repro kernels
    python -m repro experiments fig2 table3

``analyze``/``compile``/``tune`` accept either a built-in kernel name
(``ddot``, ``isamax``, ...) or a path to a ``.hil`` source file, so the
tool works on user kernels exactly like the shipped ones.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional, Tuple

from .fko import FKO, PrefetchParams, TransformParams
from .ir import PrefetchHint, emit_att, format_function
from .kernels import KERNEL_ORDER, REGISTRY, get_kernel
from .kernels.blas1 import KernelSpec
from .machine import Context, get_machine
from .search import LineSearch, build_space
from .timing.tester import test_function
from .timing.timer import Timer, paper_n


def _load_source(name_or_path: str) -> Tuple[str, Optional[KernelSpec]]:
    """Resolve a kernel argument: registry name or .hil file path."""
    if name_or_path in REGISTRY:
        spec = get_kernel(name_or_path)
        return spec.hil, spec
    path = pathlib.Path(name_or_path)
    if path.suffix == ".hil" or path.exists():
        return path.read_text(), None
    raise SystemExit(
        f"error: {name_or_path!r} is neither a built-in kernel "
        f"({', '.join(KERNEL_ORDER)}) nor a .hil file")


def _context(value: str) -> Context:
    if value.lower() in ("oc", "ooc", "out", "out-of-cache"):
        return Context.OUT_OF_CACHE
    if value.lower() in ("ic", "inl2", "in-l2", "in-cache"):
        return Context.IN_L2
    raise argparse.ArgumentTypeError(f"unknown context {value!r}")


def _parse_prefetch(items) -> dict:
    """``X=nta:512`` pairs -> prefetch dict."""
    out = {}
    for item in items or ():
        try:
            arr, rest = item.split("=", 1)
            hint_s, dist_s = rest.split(":", 1)
            hint = None if hint_s == "none" else PrefetchHint(hint_s)
            out[arr] = PrefetchParams(hint, int(dist_s))
        except (ValueError, KeyError) as exc:
            raise SystemExit(f"error: bad --prefetch {item!r} "
                             f"(want ARRAY=hint:distance): {exc}")
    return out


def _params_from_args(args) -> TransformParams:
    return TransformParams(
        sv=not args.no_sv,
        unroll=args.unroll,
        lc=not args.no_lc,
        ae=args.ae,
        wnt=args.wnt,
        block_fetch=args.block_fetch,
        prefetch=_parse_prefetch(args.prefetch),
        register_allocation=args.regalloc,
    )


# ---------------------------------------------------------------------------
# subcommands

def cmd_kernels(args) -> int:
    print("built-in kernels (paper Table 1):")
    for name in KERNEL_ORDER:
        spec = get_kernel(name)
        print(f"  {name:8s} {spec.ctype:7s} flops={spec.flops_per_elem}N "
              f"vectors={','.join(spec.vector_args)}"
              + (f" scalars={','.join(spec.scalar_args)}"
                 if spec.scalar_args else ""))
    return 0


def cmd_analyze(args) -> int:
    source, _ = _load_source(args.kernel)
    machine = get_machine(args.machine)
    fko = FKO(machine)
    print(f"# FKO analysis of {args.kernel} for {machine.name}")
    print(fko.analyze(source).describe())
    return 0


def cmd_compile(args) -> int:
    source, spec = _load_source(args.kernel)
    machine = get_machine(args.machine)
    fko = FKO(machine)
    params = _params_from_args(args)
    compiled = fko.compile(source, params, debug_verify=True)
    if args.test:
        if spec is None:
            print("warning: --test requires a built-in kernel "
                  "(no reference for user sources)", file=sys.stderr)
        else:
            test_function(compiled.fn, spec)
            print(f"# tester: {spec.name} OK", file=sys.stderr)
    print(f"# applied: {compiled.applied}", file=sys.stderr)
    if args.asm:
        print(emit_att(compiled.fn, comment_ir=args.verbose))
    else:
        print(format_function(compiled.fn))
    return 0


def cmd_tune(args) -> int:
    source, spec = _load_source(args.kernel)
    machine = get_machine(args.machine)
    context = args.context
    n = args.n or paper_n(context)
    fko = FKO(machine)
    analysis = fko.analyze(source)
    if not analysis.has_tuned_loop:
        raise SystemExit("error: no @TUNE loop in kernel")

    timer = Timer(machine, context, n)
    flops = (spec.flops(n) if spec is not None
             else analysis.elem.size * n)  # bytes as a neutral unit

    def evaluate(params: TransformParams) -> float:
        k = fko.compile(source, params)
        from .machine import summarize
        return timer.time_summary(summarize(k.fn), flops,
                                  ident=str(params.key())).cycles

    space = build_space(analysis, machine,
                        enable_block_fetch=args.enable_block_fetch)
    start = fko.defaults(source)
    result = LineSearch(evaluate, space, start,
                        max_evals=args.max_evals,
                        output_arrays=analysis.output_arrays).run()

    best = fko.compile(source, result.best_params)
    if spec is not None:
        test_function(best.fn, spec)
    from .machine import summarize
    timing = timer.time_summary(summarize(best.fn), flops, ident="best")

    print(f"# ifko: {args.kernel} on {machine.name}, {context.value}, N={n}")
    print(f"# evaluations: {result.n_evaluations}, "
          f"speedup over FKO defaults: {result.speedup_over_start:.2f}x")
    print(f"# best parameters: {result.best_params.describe()}")
    if spec is not None:
        print(f"# performance: {timing.mflops:.1f} model-MFLOPS")
    gains = [(p, g) for p, g in result.phase_speedups().items()
             if abs(g - 1) > 0.002]
    if gains:
        print("# gains: " + "  ".join(f"{p}={100 * (g - 1):+.1f}%"
                                      for p, g in gains))
    if args.asm:
        print(emit_att(best.fn))
    elif args.verbose:
        print(format_function(best.fn))
    return 0


def cmd_experiments(args) -> int:
    from .experiments.__main__ import main as exp_main
    return exp_main(args.which)


# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ifko reproduction: empirical compilation of floating "
                    "point kernels on simulated 2005 x86 machines")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kernels", help="list built-in kernels").set_defaults(
        func=cmd_kernels)

    def add_common(p):
        p.add_argument("kernel", help="built-in kernel name or .hil file")
        p.add_argument("--machine", "-m", default="p4e",
                       help="p4e or opteron (default p4e)")

    pa = sub.add_parser("analyze",
                        help="run FKO's analysis phase and print the report")
    add_common(pa)
    pa.set_defaults(func=cmd_analyze)

    pc = sub.add_parser("compile",
                        help="compile once with explicit parameters")
    add_common(pc)
    pc.add_argument("--no-sv", action="store_true",
                    help="disable SIMD vectorization")
    pc.add_argument("--unroll", "-u", type=int, default=1)
    pc.add_argument("--no-lc", action="store_true",
                    help="disable loop-control optimization")
    pc.add_argument("--ae", type=int, default=1,
                    help="number of accumulators (1 = off)")
    pc.add_argument("--wnt", action="store_true",
                    help="non-temporal stores on output arrays")
    pc.add_argument("--block-fetch", action="store_true")
    pc.add_argument("--prefetch", "-p", action="append", metavar="X=nta:512",
                    help="per-array prefetch (repeatable)")
    pc.add_argument("--regalloc", choices=("global", "local", "off"),
                    default="global")
    pc.add_argument("--asm", action="store_true",
                    help="emit AT&T assembly instead of IR")
    pc.add_argument("--test", action="store_true",
                    help="verify against the NumPy reference")
    pc.add_argument("--verbose", "-v", action="store_true")
    pc.set_defaults(func=cmd_compile)

    pt = sub.add_parser("tune", help="run the full ifko empirical search")
    add_common(pt)
    pt.add_argument("--context", "-c", type=_context,
                    default=Context.OUT_OF_CACHE,
                    help="oc (out-of-cache) or ic (in-L2)")
    pt.add_argument("--n", type=int, default=None,
                    help="problem size (default: paper sizes)")
    pt.add_argument("--max-evals", type=int, default=400)
    pt.add_argument("--enable-block-fetch", action="store_true",
                    help="make the BF extension searchable")
    pt.add_argument("--asm", action="store_true",
                    help="emit the tuned kernel as AT&T assembly")
    pt.add_argument("--verbose", "-v", action="store_true")
    pt.set_defaults(func=cmd_tune)

    pe = sub.add_parser("experiments",
                        help="regenerate the paper's tables and figures")
    pe.add_argument("which", nargs="*",
                    help="subset, e.g. fig2 table3 (default: all)")
    pe.set_defaults(func=cmd_experiments)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
