"""Command-line driver — the reproduction's ``ifko`` binary.

The paper's system is a compiler plus search drivers invoked from the
command line; this module provides the same ergonomics::

    python -m repro analyze ddot --machine p4e
    python -m repro compile ddot --machine p4e --unroll 4 --ae 2 \\
        --prefetch X=nta:512 --asm
    python -m repro tune dasum --machine opteron --context oc --jobs 4
    python -m repro tune-all --jobs 4 --cache-dir .repro-cache \\
        --trace-out tune.jsonl --observe
    python -m repro serve --port 8642 --jobs 4 --cache-dir .repro-cache \\
        --results-dir .repro-results
    python -m repro tune ddot --serve-url http://127.0.0.1:8642
    python -m repro fuzz --budget 50 --via-serve http://127.0.0.1:8642
    python -m repro fuzz --seed 0 --budget 200 --artifact-dir fuzz-out
    python -m repro fuzz --replay fuzz-out/fuzz-ddot-p4e-return-1.json
    python -m repro trace tune.jsonl
    python -m repro trace tune.jsonl --perfetto tune.perfetto.json
    python -m repro report tune.jsonl -o report.md
    python -m repro metrics --serve-url http://127.0.0.1:8642
    python -m repro curves tune.jsonl --json curves.json -o curves.md
    python -m repro perf diff results/OLD.json results/NEW.json
    python -m repro kernels
    python -m repro experiments fig2 table3 --jobs 4

``analyze``/``compile``/``tune`` accept either a built-in kernel name
(``ddot``, ``isamax``, ...) or a path to a ``.hil`` source file, so the
tool works on user kernels exactly like the shipped ones.  All tuning
runs through the batch engine (:mod:`repro.search.engine`): ``--jobs``
fans evaluations/jobs across worker processes, ``--cache-dir`` persists
the evaluation cache across runs, ``--resume`` checkpoints a batch, and
``--trace-out`` records a JSONL search trace that ``repro trace``
summarizes.

Registry-kernel tuning goes through :mod:`repro.client` — the same
request/response path whether the work runs in this process or in a
``repro serve`` daemon (``--serve-url``), so the answers are
bit-identical by construction.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from typing import Optional, Tuple

from .fko import FKO, PrefetchParams, TransformParams
from .ir import PrefetchHint, emit_att, format_function
from .kernels import KERNEL_ORDER, REGISTRY, get_kernel
from .kernels.blas3 import BLAS3_ORDER
from .kernels.blas1 import KernelSpec
from .machine import Context, get_machine
from .obs import (aggregate_curves, collect_curves, curves_document,
                  diff_metrics, load_artifact, render_curves_markdown,
                  render_diff, render_report, write_perfetto)
from .search import (TraceStream, TuneConfig, TuningSession, read_trace,
                     registry_jobs, render_trace_summary, searcher_names,
                     summarize_trace)
from .timing.tester import test_function
from .timing.timer import paper_n


def _load_source(name_or_path: str) -> Tuple[str, Optional[KernelSpec]]:
    """Resolve a kernel argument: registry name or .hil file path."""
    if name_or_path in REGISTRY:
        spec = get_kernel(name_or_path)
        return spec.hil, spec
    path = pathlib.Path(name_or_path)
    if path.suffix == ".hil" or path.exists():
        return path.read_text(), None
    raise SystemExit(
        f"error: {name_or_path!r} is neither a built-in kernel "
        f"({', '.join(KERNEL_ORDER)}) nor a .hil file")


def _context(value: str) -> Context:
    if value.lower() in ("oc", "ooc", "out", "out-of-cache"):
        return Context.OUT_OF_CACHE
    if value.lower() in ("ic", "inl2", "in-l2", "in-cache"):
        return Context.IN_L2
    raise argparse.ArgumentTypeError(f"unknown context {value!r}")


def _jobs(value: str) -> int:
    jobs = int(value)
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _strategy(value: str) -> str:
    from .search import valid_strategy
    if not valid_strategy(value):
        raise argparse.ArgumentTypeError(
            f"unknown strategy {value!r}; valid: "
            f"{', '.join(searcher_names())} (or transfer:<strategy>)")
    return value


def _parse_prefetch(items) -> dict:
    """``X=nta:512`` pairs -> prefetch dict."""
    out = {}
    for item in items or ():
        try:
            arr, rest = item.split("=", 1)
            hint_s, dist_s = rest.split(":", 1)
            hint = None if hint_s == "none" else PrefetchHint(hint_s)
            out[arr] = PrefetchParams(hint, int(dist_s))
        except (ValueError, KeyError) as exc:
            raise SystemExit(f"error: bad --prefetch {item!r} "
                             f"(want ARRAY=hint:distance): {exc}")
    return out


def _params_from_args(args) -> TransformParams:
    return TransformParams(
        sv=not args.no_sv,
        unroll=args.unroll,
        lc=not args.no_lc,
        ae=args.ae,
        wnt=args.wnt,
        block_fetch=args.block_fetch,
        prefetch=_parse_prefetch(args.prefetch),
        register_allocation=args.regalloc,
    )


# ---------------------------------------------------------------------------
# subcommands

def cmd_kernels(args) -> int:
    print("built-in kernels (paper Table 1):")
    for name in KERNEL_ORDER:
        spec = get_kernel(name)
        print(f"  {name:8s} {spec.ctype:7s} flops={spec.flops_per_elem}N "
              f"vectors={','.join(spec.vector_args)}"
              + (f" scalars={','.join(spec.scalar_args)}"
                 if spec.scalar_args else ""))
    print("Level-3 / nest kernels (cache-blocking extension):")
    for name in BLAS3_ORDER:
        spec = get_kernel(name)
        order = f"N^{spec.flops_order}" if spec.flops_order > 1 else "N"
        print(f"  {name:9s} {spec.ctype:7s} "
              f"flops={spec.flops_per_elem}*{order} "
              f"arrays={','.join(spec.array_args)}"
              + (f" scalars={','.join(spec.scalar_args)}"
                 if spec.scalar_args else ""))
    return 0


def cmd_analyze(args) -> int:
    source, _ = _load_source(args.kernel)
    machine = get_machine(args.machine)
    fko = FKO(machine)
    print(f"# FKO analysis of {args.kernel} for {machine.name}")
    print(fko.analyze(source).describe())
    return 0


def cmd_compile(args) -> int:
    source, spec = _load_source(args.kernel)
    machine = get_machine(args.machine)
    fko = FKO(machine)
    params = _params_from_args(args)
    compiled = fko.compile(source, params, debug_verify=True)
    if args.test:
        if spec is None:
            print("warning: --test requires a built-in kernel "
                  "(no reference for user sources)", file=sys.stderr)
        else:
            test_function(compiled.fn, spec)
            print(f"# tester: {spec.name} OK", file=sys.stderr)
    print(f"# applied: {compiled.applied}", file=sys.stderr)
    if args.asm:
        print(emit_att(compiled.fn, comment_ir=args.verbose))
    else:
        print(format_function(compiled.fn))
    return 0


def _engine_config(args, run_tester: bool) -> TuneConfig:
    """TuneConfig from the shared engine flags."""
    return TuneConfig(max_evals=args.max_evals,
                      run_tester=run_tester,
                      strategy=getattr(args, "strategy", "line"),
                      seed=getattr(args, "seed", 0),
                      jobs=args.jobs,
                      cache_dir=args.cache_dir,
                      trace=args.trace_out,
                      timeout=args.timeout,
                      resume=getattr(args, "resume", None),
                      enable_block_fetch=getattr(args, "enable_block_fetch",
                                                 False),
                      fast_timing=not getattr(args, "no_fast_timing", False),
                      batch_size=getattr(args, "batch_size", 1),
                      prefix_cache=not getattr(args, "no_prefix_cache",
                                               False),
                      observe=getattr(args, "observe", False),
                      verify_ir=getattr(args, "verify_ir", False),
                      test_best=getattr(args, "test_best", False),
                      warm_start=getattr(args, "warm_start", None))


def _file_spec(source: str, name: str, elem_size: int) -> KernelSpec:
    """Wrap a user ``.hil`` source as a minimal KernelSpec so it runs
    through the engine like a registry kernel.  With no reference
    implementation the tester is skipped, and "FLOPs" are counted as
    bytes moved (a neutral unit for user kernels)."""
    return KernelSpec(name=name, base=name, precision="d", hil=source,
                      vector_args=(), output_args=(),
                      flops_per_elem=elem_size)


def cmd_tune(args) -> int:
    if args.kernel in REGISTRY:
        return _tune_service(args)
    if getattr(args, "serve_url", None):
        raise SystemExit("error: --serve-url tunes registry kernels only "
                         "(a daemon cannot load local .hil files)")
    return _tune_file_direct(args)


def _tune_service(args) -> int:
    """Registry kernels tune through :mod:`repro.client`: in-process by
    default, against a ``repro serve`` daemon with ``--serve-url`` —
    one code path, bit-identical answers."""
    from .client import ServiceError, make_client
    from .service import TuneRequest
    try:
        request = TuneRequest(
            kernel=args.kernel, machine=args.machine, context=args.context,
            n=args.n, strategy=args.strategy, seed=args.seed,
            budget=args.max_evals, observe=args.observe,
            verify_ir=args.verify_ir,
            fast_timing=not args.no_fast_timing,
            enable_block_fetch=args.enable_block_fetch,
            timeout=args.timeout, test=True)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    config = _engine_config(args, run_tester=True)
    if getattr(args, "serve_url", None) and config.warm_start:
        print("# note: --warm-start is an engine-side knob; the daemon "
              "at --serve-url tunes without it")
    try:
        with make_client(getattr(args, "serve_url", None),
                         config=config) as client:
            response = client.tune(request)
    except ServiceError as exc:
        raise SystemExit(f"error: {exc}")
    tuned = response.tuned()
    result = tuned.search

    print(f"# ifko: {args.kernel} on {tuned.machine.name}, "
          f"{request.context}, N={request.n}"
          + (f" (via {args.serve_url})"
             if getattr(args, "serve_url", None) else ""))
    print(f"# strategy: {request.strategy} (seed {request.seed})")
    if response.served_from:
        print(f"# served from {response.served_from}: request "
              f"{response.digest[:12]} already answered (no engine run)")
    print(f"# evaluations: {result.n_evaluations}, "
          f"speedup over FKO defaults: {result.speedup_over_start:.2f}x")
    hits = response.stats.get("cache_hits", 0)
    if hits:
        print(f"# evaluation cache: {hits} hits, "
              f"{response.stats.get('evaluations', 0)} computed")
    print(f"# best parameters: {result.best_params.describe()}")
    print(f"# performance: {tuned.timing.mflops:.1f} model-MFLOPS")
    gains = [(p, g) for p, g in result.phase_speedups().items()
             if abs(g - 1) > 0.002]
    if gains:
        print("# gains: " + "  ".join(f"{p}={100 * (g - 1):+.1f}%"
                                      for p, g in gains))
    if args.asm:
        print(emit_att(tuned.compiled.fn))
    elif args.verbose:
        print(format_function(tuned.compiled.fn))
    return 0


def _tune_file_direct(args) -> int:
    """User ``.hil`` kernels have no registry reference, so they tune
    through an in-process session directly (the service only answers
    for named registry kernels)."""
    source, _ = _load_source(args.kernel)
    machine = get_machine(args.machine)
    context = args.context
    n = args.n or paper_n(context)
    fko = FKO(machine)
    analysis = fko.analyze(source)
    if not analysis.has_tuned_loop:
        raise SystemExit("error: no @TUNE loop in kernel")

    spec = _file_spec(source, pathlib.Path(args.kernel).stem,
                      analysis.elem.size)

    config = _engine_config(args, run_tester=False)
    with TuningSession(config) as session:
        tuned = session.tune(spec, machine, context, n)
    result = tuned.search

    print(f"# ifko: {args.kernel} on {machine.name}, {context.value}, N={n}")
    print(f"# strategy: {config.strategy} (seed {config.seed})")
    print(f"# evaluations: {result.n_evaluations}, "
          f"speedup over FKO defaults: {result.speedup_over_start:.2f}x")
    if session.stats.cache_hits:
        print(f"# evaluation cache: {session.stats.cache_hits} hits, "
              f"{session.stats.evaluations} computed")
    print(f"# best parameters: {result.best_params.describe()}")
    gains = [(p, g) for p, g in result.phase_speedups().items()
             if abs(g - 1) > 0.002]
    if gains:
        print("# gains: " + "  ".join(f"{p}={100 * (g - 1):+.1f}%"
                                      for p, g in gains))
    if args.asm:
        print(emit_att(tuned.compiled.fn))
    elif args.verbose:
        print(format_function(tuned.compiled.fn))
    return 0


def cmd_tune_all(args) -> int:
    machines = [m.strip() for m in args.machine.split(",") if m.strip()]
    kernels = ([k.strip() for k in args.kernels.split(",") if k.strip()]
               if args.kernels else None)
    for k in kernels or ():
        if k not in REGISTRY:
            raise SystemExit(f"error: unknown kernel {k!r}")
    jobs = registry_jobs(kernels=kernels, machines=machines,
                         contexts=(args.context,), n=args.n)
    if getattr(args, "serve_url", None):
        return _tune_all_via_serve(args, jobs)
    config = _engine_config(args, run_tester=args.test)
    with TuningSession(config) as session:
        batch = session.run(jobs)

    print(f"# tune-all: {len(batch.results)}/{len(jobs)} jobs "
          f"({len(batch.resumed)} resumed from checkpoint) "
          f"in {batch.wall:.1f}s with jobs={args.jobs}")
    s = session.stats
    print(f"# evaluations: {s.evaluations} computed, {s.cache_hits} "
          f"cache hits, {s.timeouts} timeouts, {s.faults} faults")
    print(f"# throughput: {s.throughput(batch.wall):.1f} evals/s, "
          f"cache hit rate {s.cache_hit_rate:.1%}, "
          f"fast-path {s.fast_path}/slow-path {s.slow_path}")
    width = max(len(k) for k in (list(batch.results) + list(batch.errors)))
    for job in jobs:
        key = job.key()
        if key in batch.errors:
            print(f"  {key:{width}s}  ERROR: {batch.errors[key]}")
            continue
        tk = batch.results[key]
        evals = tk.search.n_evaluations if tk.search else 0
        print(f"  {key:{width}s}  {tk.mflops:8.1f} MFLOPS  "
              f"evals={evals:<4d} {tk.params.describe()}")
    return 1 if batch.errors else 0


def _tune_all_via_serve(args, jobs) -> int:
    """Batch-tune against a running daemon: submit everything up front
    (identical requests coalesce on the daemon; repeats answer from its
    result store), then collect in order."""
    import time

    from .client import ServeClient, ServiceError
    from .service import TuneRequest

    client = ServeClient(args.serve_url)
    t0 = time.perf_counter()
    tickets = []
    for job in jobs:
        request = TuneRequest(
            kernel=job.kernel, machine=job.machine,
            context=job.context, n=job.n,
            strategy=args.strategy, seed=args.seed, budget=args.max_evals,
            observe=args.observe, verify_ir=args.verify_ir,
            fast_timing=not args.no_fast_timing,
            timeout=args.timeout, test=args.test)
        try:
            tickets.append((job, client.submit(request)))
        except ServiceError as exc:
            raise SystemExit(f"error: {exc}")
    print(f"# tune-all via {client.url}: {len(jobs)} jobs submitted")
    errors = 0
    width = max(len(j.key()) for j in jobs)
    for job, ticket in tickets:
        try:
            response = client.wait(ticket["job_id"])
        except (ServiceError, TimeoutError) as exc:
            print(f"  {job.key():{width}s}  ERROR: {exc}")
            errors += 1
            continue
        if not response.ok:
            print(f"  {job.key():{width}s}  ERROR: {response.error}")
            errors += 1
            continue
        tk = response.tuned()
        evals = tk.search.n_evaluations if tk.search else 0
        note = (f"  [{response.served_from}]"
                if response.served_from else "")
        print(f"  {job.key():{width}s}  {tk.mflops:8.1f} MFLOPS  "
              f"evals={evals:<4d} {tk.params.describe()}{note}")
    stats = client.stats()
    print(f"# daemon: {stats.get('launched', 0)} engine runs, "
          f"{stats.get('deduped', 0)} deduped, "
          f"{stats.get('cache_answers', 0)} cache answers "
          f"in {time.perf_counter() - t0:.1f}s")
    return 1 if errors else 0


def cmd_trace(args) -> int:
    if args.perfetto:
        try:
            events = read_trace(args.file)
        except OSError as exc:
            raise SystemExit(
                f"error: cannot read trace {args.file!r}: {exc}")
        if not events:
            print(f"# trace: {args.file} is empty")
            return 0
        doc = write_perfetto(events, args.perfetto)
        print(f"# perfetto: {len(doc['traceEvents'])} trace events "
              f"-> {args.perfetto} (open in https://ui.perfetto.dev "
              f"or chrome://tracing)")
        return 0
    # the summary never needs the events in memory: one streamed pass
    try:
        summary = summarize_trace(TraceStream(args.file))
    except OSError as exc:
        raise SystemExit(f"error: cannot read trace {args.file!r}: {exc}")
    if not summary.get("n_events"):
        print(f"# trace: {args.file} is empty")
        return 0
    print(render_trace_summary(summary))
    return 0


def cmd_report(args) -> int:
    try:
        events = read_trace(args.file)
    except OSError as exc:
        raise SystemExit(f"error: cannot read trace {args.file!r}: {exc}")
    if not events:
        print(f"# trace: {args.file} is empty")
        return 1
    text = render_report(events, title=args.title)
    if args.out:
        pathlib.Path(args.out).write_text(text)
        print(f"# report -> {args.out}")
    else:
        print(text)
    return 0


def cmd_serve(args) -> int:
    from .service import serve
    config = TuneConfig(jobs=args.jobs, cache_dir=args.cache_dir,
                        trace=args.trace_out)
    return serve(host=args.host, port=args.port, config=config,
                 results_dir=args.results_dir, verbose=args.verbose,
                 max_total_evals=args.max_total_evals,
                 metrics=not args.no_metrics)


def cmd_metrics(args) -> int:
    """Snapshot a running daemon's ``/v1/metrics``."""
    import urllib.error
    import urllib.request

    url = args.serve_url.rstrip("/") + "/v1/metrics"
    if args.json:
        url += "?format=json"
    try:
        with urllib.request.urlopen(url, timeout=10.0) as resp:
            body = resp.read().decode()
    except (urllib.error.URLError, OSError) as exc:
        raise SystemExit(f"error: cannot fetch {url}: {exc} "
                         f"(is `repro serve` running?)")
    sys.stdout.write(body if body.endswith("\n") else body + "\n")
    return 0


def cmd_curves(args) -> int:
    """Anytime-performance curves from one or more search traces."""
    from itertools import chain

    for path in args.files:
        if not pathlib.Path(path).exists():
            raise SystemExit(f"error: cannot read trace {path!r}: "
                             f"no such file")
    streams = [TraceStream(path) for path in args.files]
    curves = collect_curves(chain.from_iterable(streams))
    if not curves:
        # an empty (or curve-event-free) trace is a valid answer, not
        # an error: report "no data" and exit clean so pipelines that
        # tee every trace through here don't trip on quiet ones
        print(f"# curves: no convergence data in "
              f"{', '.join(args.files)}")
        return 0
    aggregate = aggregate_curves(curves)
    if args.json:
        doc = curves_document(curves, aggregate)
        pathlib.Path(args.json).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"# curves json -> {args.json}")
    text = render_curves_markdown(
        curves, aggregate, title=args.title or "Anytime performance")
    if args.out:
        pathlib.Path(args.out).write_text(text + "\n")
        print(f"# curves -> {args.out}")
    elif not args.json:
        print(text)
    return 0


def cmd_perf_diff(args) -> int:
    """Diff two benchmark artifacts; exit 1 on a gated regression."""
    try:
        old = load_artifact(args.old)
        new = load_artifact(args.new)
    except OSError as exc:
        raise SystemExit(f"error: cannot load artifact: {exc}")
    except (json.JSONDecodeError, ValueError) as exc:
        raise SystemExit(f"error: malformed artifact: {exc}")
    report = diff_metrics(old, new, threshold=args.threshold)
    if args.json:
        pathlib.Path(args.json).write_text(
            json.dumps(report, indent=2) + "\n")
        print(f"# perf diff json -> {args.json}")
    print(f"# perf diff: {args.old} -> {args.new}")
    print(render_diff(report, verbose=args.verbose))
    return 1 if report["regressions"] else 0


def cmd_fuzz(args) -> int:
    from .qa import replay_artifact, run_fuzz

    if args.replay:
        try:
            result = replay_artifact(args.replay)
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(
                f"error: cannot replay artifact {args.replay!r}: {exc}")
        print(f"# replay: {args.replay}")
        print(result.describe())
        return 1 if result.observed is not None else 0

    machines = [m.strip() for m in args.machine.split(",") if m.strip()]
    kernels = ([k.strip() for k in args.kernels.split(",") if k.strip()]
               if args.kernels else None)
    for k in kernels or ():
        if k not in REGISTRY:
            raise SystemExit(f"error: unknown kernel {k!r}")
    fuzz_kwargs = {}
    if args.via_serve:
        from .qa.fuzz import serve_check
        fuzz_kwargs["check"] = serve_check(args.via_serve)
    report = run_fuzz(seed=args.seed, budget=args.budget,
                      kernels=kernels, machines=machines,
                      shrink=not args.no_shrink,
                      artifact_dir=args.artifact_dir,
                      log=(print if args.verbose else None),
                      **fuzz_kwargs)
    print(report.describe())
    return 0 if report.ok else 1


def cmd_experiments(args) -> int:
    from .experiments.__main__ import main as exp_main
    argv = list(args.which)
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    if args.cache_dir is not None:
        argv += ["--cache-dir", args.cache_dir]
    return exp_main(argv)


# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ifko reproduction: empirical compilation of floating "
                    "point kernels on simulated 2005 x86 machines")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kernels", help="list built-in kernels").set_defaults(
        func=cmd_kernels)

    def add_common(p):
        p.add_argument("kernel", help="built-in kernel name or .hil file")
        p.add_argument("--machine", "-m", default="p4e",
                       help="p4e or opteron (default p4e)")

    pa = sub.add_parser("analyze",
                        help="run FKO's analysis phase and print the report")
    add_common(pa)
    pa.set_defaults(func=cmd_analyze)

    pc = sub.add_parser("compile",
                        help="compile once with explicit parameters")
    add_common(pc)
    pc.add_argument("--no-sv", action="store_true",
                    help="disable SIMD vectorization")
    pc.add_argument("--unroll", "-u", type=int, default=1)
    pc.add_argument("--no-lc", action="store_true",
                    help="disable loop-control optimization")
    pc.add_argument("--ae", type=int, default=1,
                    help="number of accumulators (1 = off)")
    pc.add_argument("--wnt", action="store_true",
                    help="non-temporal stores on output arrays")
    pc.add_argument("--block-fetch", action="store_true")
    pc.add_argument("--prefetch", "-p", action="append", metavar="X=nta:512",
                    help="per-array prefetch (repeatable)")
    pc.add_argument("--regalloc", choices=("global", "local", "off"),
                    default="global")
    pc.add_argument("--asm", action="store_true",
                    help="emit AT&T assembly instead of IR")
    pc.add_argument("--test", action="store_true",
                    help="verify against the NumPy reference")
    pc.add_argument("--verbose", "-v", action="store_true")
    pc.set_defaults(func=cmd_compile)

    def add_engine(p, resume: bool = True):
        """The batch-engine knobs shared by tune / tune-all."""
        p.add_argument("--context", "-c", type=_context,
                       default=Context.OUT_OF_CACHE,
                       help="oc (out-of-cache) or ic (in-L2)")
        p.add_argument("--n", type=int, default=None,
                       help="problem size (default: paper sizes)")
        p.add_argument("--max-evals", type=int, default=400)
        p.add_argument("--strategy", default="line", type=_strategy,
                       metavar="NAME",
                       help="global-search strategy: one of "
                            f"{', '.join(searcher_names())}, or "
                            "transfer:<name> to warm-startable-wrap "
                            "another strategy (default: the paper's "
                            "modified line search)")
        p.add_argument("--seed", type=int, default=0,
                       help="random seed of the strategy (ignored by "
                            "the deterministic line search)")
        p.add_argument("--warm-start", default=None, metavar="DIR",
                       help="warm-start from a `repro serve` result "
                            "store: the strategy is wrapped in the "
                            "transfer layer and seeded with the best "
                            "params of the nearest previously-tuned "
                            "problem (spelling variants canonicalize)")
        p.add_argument("--jobs", "-j", type=_jobs, default=1,
                       help="worker processes (1 = serial)")
        p.add_argument("--cache-dir", default=None,
                       help="persistent evaluation cache directory")
        p.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write a JSONL search trace to FILE")
        p.add_argument("--timeout", type=float, default=None,
                       help="wall-clock seconds allowed per evaluation")
        p.add_argument("--no-fast-timing", action="store_true",
                       help="disable the timing model's steady-state "
                            "extrapolation (bit-identical, just slower)")
        p.add_argument("--batch-size", type=int, default=1, metavar="K",
                       help="evaluate candidates in prefix-sharing groups "
                            "of at most K (bit-identical for every value; "
                            "1 = per-candidate dispatch)")
        p.add_argument("--no-prefix-cache", action="store_true",
                       help="disable prefix-memoized compilation and "
                            "shared-walk timing (bit-identical, just "
                            "slower — the equivalence escape hatch)")
        p.add_argument("--observe", action="store_true",
                       help="record pass-level compile spans and cycle "
                            "attribution into the trace (schema v2; "
                            "non-perturbing — results are bit-identical)")
        p.add_argument("--verify-ir", action="store_true",
                       help="run the IR verifier at every pass boundary "
                            "of every evaluation's compile "
                            "(non-perturbing; a violation fails loudly)")
        p.add_argument("--test-best", action="store_true",
                       help="tester-check the winning kernel before it "
                            "is reported; a rejection is recorded as a "
                            "best-rejected trace event")
        if resume:
            p.add_argument("--resume", default=None, metavar="FILE",
                           help="checkpoint completed jobs to FILE and "
                                "skip them when re-run")

    pt = sub.add_parser("tune", help="run the full ifko empirical search")
    add_common(pt)
    add_engine(pt, resume=False)
    pt.add_argument("--enable-block-fetch", action="store_true",
                    help="make the BF extension searchable")
    pt.add_argument("--serve-url", default=None, metavar="URL",
                    help="tune through a running `repro serve` daemon "
                         "instead of in-process (registry kernels only; "
                         "answers are bit-identical)")
    pt.add_argument("--asm", action="store_true",
                    help="emit the tuned kernel as AT&T assembly")
    pt.add_argument("--verbose", "-v", action="store_true")
    pt.set_defaults(func=cmd_tune)

    pta = sub.add_parser("tune-all",
                         help="batch-tune every registry kernel through "
                              "the engine")
    pta.add_argument("--machine", "-m", default="p4e",
                     help="comma-separated machine list (default p4e)")
    pta.add_argument("--kernels", default=None,
                     help="comma-separated subset (default: all kernels)")
    pta.add_argument("--test", action="store_true",
                     help="verify each winner against the NumPy reference")
    pta.add_argument("--serve-url", default=None, metavar="URL",
                     help="submit the whole batch to a running "
                          "`repro serve` daemon and collect the answers")
    add_engine(pta)
    pta.set_defaults(func=cmd_tune_all)

    psv = sub.add_parser("serve",
                         help="run the tuning daemon: a local HTTP/JSON "
                              "API (/v1/tune, /v1/jobs, /v1/results, "
                              "/v1/stats) over one shared engine session "
                              "with request dedup and a persistent "
                              "result store")
    psv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default 127.0.0.1)")
    psv.add_argument("--port", type=int, default=8642,
                     help="TCP port (default 8642; 0 picks a free one)")
    psv.add_argument("--jobs", "-j", type=_jobs, default=1,
                     help="worker processes per tuning job (1 = serial)")
    psv.add_argument("--cache-dir", default=None,
                     help="persistent evaluation cache directory "
                          "(shared by every request)")
    psv.add_argument("--results-dir", default=None, metavar="DIR",
                     help="persist answered requests here; repeats are "
                          "served instantly without re-tuning")
    psv.add_argument("--trace-out", default=None, metavar="FILE",
                     help="append every job's JSONL search trace to FILE")
    psv.add_argument("--max-total-evals", type=int, default=None,
                     help="refuse new engine runs once this many "
                          "evaluations have been spent across all jobs")
    psv.add_argument("--no-metrics", action="store_true",
                     help="do not enable the process metrics registry "
                          "(GET /v1/metrics then answers empty series)")
    psv.add_argument("--verbose", "-v", action="store_true",
                     help="log every HTTP request to stderr")
    psv.set_defaults(func=cmd_serve)

    pmx = sub.add_parser("metrics",
                         help="print a running daemon's /v1/metrics "
                              "snapshot (Prometheus text exposition)")
    pmx.add_argument("--serve-url", default="http://127.0.0.1:8642",
                     metavar="URL",
                     help="daemon base URL (default "
                          "http://127.0.0.1:8642)")
    pmx.add_argument("--json", action="store_true",
                     help="fetch the JSON snapshot instead of the "
                          "Prometheus text format")
    pmx.set_defaults(func=cmd_metrics)

    ptr = sub.add_parser("trace",
                         help="summarize a JSONL search trace")
    ptr.add_argument("file", help="trace file written by --trace-out")
    ptr.add_argument("--perfetto", default=None, metavar="FILE",
                     help="export the trace as Chrome-trace-event JSON "
                          "for ui.perfetto.dev instead of summarizing")
    ptr.set_defaults(func=cmd_trace)

    pr = sub.add_parser("report",
                        help="render a markdown run report from a trace "
                             "(pass costs + cycle attribution need a "
                             "trace recorded with --observe)")
    pr.add_argument("file", help="trace file written by --trace-out")
    pr.add_argument("--out", "-o", default=None, metavar="FILE",
                    help="write the report to FILE instead of stdout")
    pr.add_argument("--title", default=None,
                    help="report title (default: generic)")
    pr.set_defaults(func=cmd_report)

    pcv = sub.add_parser("curves",
                         help="render fixed-budget anytime-performance "
                              "curves per search strategy from one or "
                              "more traces (markdown + JSON)")
    pcv.add_argument("files", nargs="+",
                     help="trace file(s) written by --trace-out")
    pcv.add_argument("--json", default=None, metavar="FILE",
                     help="also write the curves document as JSON")
    pcv.add_argument("--out", "-o", default=None, metavar="FILE",
                     help="write the markdown to FILE instead of stdout")
    pcv.add_argument("--title", default=None,
                     help="markdown title (default: generic)")
    pcv.set_defaults(func=cmd_curves)

    ppf = sub.add_parser("perf",
                         help="performance regression tracking over "
                              "benchmark artifacts")
    ppfs = ppf.add_subparsers(dest="perf_command", required=True)
    ppd = ppfs.add_parser(
        "diff",
        help="compare two results/BENCH_*.json artifacts (or two "
             ".jsonl traces, reduced to their summaries); exits 1 "
             "when a gated deterministic metric regresses")
    ppd.add_argument("old", help="baseline artifact (JSON or .jsonl)")
    ppd.add_argument("new", help="candidate artifact (JSON or .jsonl)")
    ppd.add_argument("--threshold", type=float, default=0.05,
                     metavar="F",
                     help="relative regression threshold "
                          "(default 0.05 = 5%%)")
    ppd.add_argument("--json", default=None, metavar="FILE",
                     help="also write the full diff report as JSON")
    ppd.add_argument("--verbose", "-v", action="store_true",
                     help="list every compared metric, not just "
                          "notable movements")
    ppd.set_defaults(func=cmd_perf_diff)

    pf = sub.add_parser("fuzz",
                        help="differentially fuzz the transform space: "
                             "every sample compiles with pass-boundary "
                             "IR verification and is checked against "
                             "the untransformed baseline and the NumPy "
                             "reference; failures are shrunk to minimal "
                             "JSON repro artifacts")
    pf.add_argument("--seed", type=int, default=0,
                    help="fuzz seed (the sample stream is deterministic "
                         "per seed)")
    pf.add_argument("--budget", type=int, default=200,
                    help="number of samples to check (default 200)")
    pf.add_argument("--machine", "-m", default="p4e,opteron",
                    help="comma-separated machine list "
                         "(default: both machines)")
    pf.add_argument("--kernels", default=None,
                    help="comma-separated subset (default: all kernels)")
    pf.add_argument("--artifact-dir", default=None, metavar="DIR",
                    help="write one JSON repro artifact per distinct "
                         "failure into DIR")
    pf.add_argument("--no-shrink", action="store_true",
                    help="keep raw failing samples instead of greedily "
                         "minimizing them")
    pf.add_argument("--via-serve", default=None, metavar="URL",
                    help="also compile every clean sample through a "
                         "running `repro serve` daemon and fail on any "
                         "IR divergence from the local compile (service "
                         "soak mode)")
    pf.add_argument("--replay", default=None, metavar="FILE",
                    help="re-run a repro artifact and report whether "
                         "the identical failure reproduces (exit 0 = "
                         "clean, 1 = still failing)")
    pf.add_argument("--verbose", "-v", action="store_true",
                    help="print each failure as it is found")
    pf.set_defaults(func=cmd_fuzz)

    pe = sub.add_parser("experiments",
                        help="regenerate the paper's tables and figures")
    pe.add_argument("which", nargs="*",
                    help="subset, e.g. fig2 table3 (default: all)")
    pe.add_argument("--jobs", "-j", type=_jobs, default=None,
                    help="worker processes for the tuning engine")
    pe.add_argument("--cache-dir", default=None,
                    help="persist results + evaluation cache here")
    pe.set_defaults(func=cmd_experiments)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:   # e.g. `python -m repro trace ... | head`
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
