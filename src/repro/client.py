"""``repro.client`` — one client interface, two transports.

Everything that consumes the tuning service (the CLI, the experiment
store, user code) talks to a :class:`TuneClient`; whether the work runs
in this process or in a ``repro serve`` daemon is a constructor choice:

* :class:`LocalClient` drives an in-process
  :class:`~repro.service.jobs.JobManager` — the same submit/dedup/
  cache/execute path the daemon runs, minus HTTP;
* :class:`ServeClient` speaks the daemon's ``/v1`` JSON API over
  stdlib ``urllib`` (no dependencies).

Because both transports end in the same job layer over the same
deterministic engine, a tune through either is bit-identical — cycles,
best parameters and the full search-history digest — to the other and
to a plain in-process :class:`~repro.search.engine.TuningSession`.

::

    from repro import TuneRequest, make_client

    client = make_client()                       # in-process
    client = make_client("http://127.0.0.1:8642")  # daemon
    resp = client.tune(TuneRequest(kernel="ddot", machine="p4e",
                                   budget=100))
    print(resp.tuned().mflops, resp.history_digest)
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional, Union

from .errors import ReproError
from .search.config import TuneConfig
from .service.jobs import JobManager
from .service.schema import TuneRequest, TuneResponse


class ServiceError(ReproError):
    """The service refused or failed a request (bad request, unknown
    job, transport failure)."""


def _coerce_request(request: Union[TuneRequest, Dict, None],
                    fields: Dict) -> TuneRequest:
    if request is not None and fields:
        raise TypeError("pass either a TuneRequest or field keywords, "
                        "not both")
    if request is None:
        return TuneRequest(**fields)
    if isinstance(request, dict):
        return TuneRequest.from_dict(request)
    return request


class TuneClient:
    """The shared client surface (transport-agnostic)."""

    def tune(self, request: Union[TuneRequest, Dict, None] = None,
             **fields) -> TuneResponse:
        """Submit and wait: one call, one :class:`TuneResponse`.
        Accepts a prepared request or ``TuneRequest`` field keywords
        (``client.tune(kernel="ddot", budget=100)``)."""
        raise NotImplementedError

    def submit(self, request: Union[TuneRequest, Dict, None] = None,
               **fields) -> Dict:
        """Enqueue without waiting; returns the submit ticket
        ``{job_id, digest, status, how}``."""
        raise NotImplementedError

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> TuneResponse:
        raise NotImplementedError

    def job(self, job_id: str) -> Dict:
        raise NotImplementedError

    def events(self, job_id: str, start: int = 0,
               follow: bool = False) -> Iterator[Dict]:
        """The job's trace-v2 events from ``start``; with ``follow``,
        yields live until the job finishes."""
        raise NotImplementedError

    def stats(self) -> Dict:
        raise NotImplementedError

    def results(self, limit: Optional[int] = None) -> List[Dict]:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class LocalClient(TuneClient):
    """In-process transport: owns (or borrows) a
    :class:`~repro.service.jobs.JobManager` and drains submitted work
    in the calling thread."""

    def __init__(self, config: Optional[TuneConfig] = None,
                 results_dir: Optional[str] = None,
                 manager: Optional[JobManager] = None):
        self._own = manager is None
        self.manager = manager if manager is not None else JobManager(
            config=config, results_dir=results_dir)

    @property
    def session(self):
        """The underlying engine session (stats, cache, trace)."""
        return self.manager.session

    def tune(self, request=None, **fields) -> TuneResponse:
        request = _coerce_request(request, fields)
        response = self.manager.run_inline(request)
        if not response.ok:
            raise ServiceError(f"tune failed: {response.error}")
        return response

    def submit(self, request=None, **fields) -> Dict:
        request = _coerce_request(request, fields)
        job, how = self.manager.submit(request)
        return {"job_id": job.id, "digest": job.digest,
                "status": job.state, "how": how}

    def wait(self, job_id, timeout=None) -> TuneResponse:
        # no dispatcher: drain anything queued before blocking
        if (self.manager._dispatcher is None
                or not self.manager._dispatcher.is_alive()):
            while True:
                head = self.manager.queue.pop()
                if head is None:
                    break
                self.manager._execute(head)
        return self.manager.wait(job_id, timeout=timeout)

    def job(self, job_id) -> Dict:
        job = self.manager.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job.snapshot()

    def events(self, job_id, start=0, follow=False) -> Iterator[Dict]:
        idx = start
        while True:
            events, finished = self.manager.events_since(
                job_id, idx, wait=follow, timeout=0.25)
            yield from events
            idx += len(events)
            if not follow or (finished and not events):
                tail, _ = self.manager.events_since(job_id, idx)
                yield from tail
                return

    def stats(self) -> Dict:
        return self.manager.stats_dict()

    def results(self, limit=None) -> List[Dict]:
        return self.manager.results(limit=limit)

    def close(self) -> None:
        if self._own:
            self.manager.close()


class ServeClient(TuneClient):
    """HTTP transport to a running ``repro serve`` daemon."""

    def __init__(self, url: str, timeout: float = 600.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- low-level ------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None):
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            return urllib.request.urlopen(req, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read()).get("error", "")
            except (OSError, json.JSONDecodeError, AttributeError):
                detail = ""
            raise ServiceError(
                f"{method} {path} -> HTTP {exc.code}"
                + (f": {detail}" if detail else "")) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(f"cannot reach daemon at {self.url}: "
                               f"{exc.reason}") from exc

    def _json(self, method: str, path: str,
              body: Optional[Dict] = None) -> Dict:
        with self._request(method, path, body) as resp:
            return json.loads(resp.read())

    # -- API ------------------------------------------------------------
    def tune(self, request=None, **fields) -> TuneResponse:
        request = _coerce_request(request, fields)
        payload = self._json("POST", "/v1/tune?wait=1",
                             request.to_dict())
        response = TuneResponse.from_dict(payload)
        if not response.ok:
            raise ServiceError(f"tune failed: {response.error}")
        return response

    def submit(self, request=None, **fields) -> Dict:
        request = _coerce_request(request, fields)
        return self._json("POST", "/v1/tune", request.to_dict())

    def wait(self, job_id, timeout=None) -> TuneResponse:
        import time
        deadline = (time.time() + timeout) if timeout is not None else None
        while True:
            snap = self.job(job_id)
            if snap["state"] in ("done", "error"):
                if snap.get("response"):
                    return TuneResponse.from_dict(snap["response"])
                return TuneResponse(digest=snap["digest"], job_id=job_id,
                                    status=snap["state"],
                                    error=snap.get("error") or "job lost")
            if deadline is not None and time.time() > deadline:
                raise TimeoutError(f"job {job_id} still "
                                   f"{snap['state']} after {timeout}s")
            time.sleep(0.05)

    def job(self, job_id) -> Dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def events(self, job_id, start=0, follow=False) -> Iterator[Dict]:
        path = (f"/v1/jobs/{job_id}/events?from={int(start)}"
                + ("&follow=1" if follow else ""))
        with self._request("GET", path) as resp:
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line)

    def compile(self, kernel: str, machine: str = "p4e",
                params: Optional[Dict] = None) -> Dict:
        """One verified compile on the daemon; answers ``{ok, applied,
        ir_digest}`` (the fuzzer's ``--via-serve`` oracle)."""
        return self._json("POST", "/v1/compile",
                          {"kernel": kernel, "machine": machine,
                           "params": params or {}})

    def stats(self) -> Dict:
        return self._json("GET", "/v1/stats")

    def results(self, limit=None) -> List[Dict]:
        path = "/v1/results" + (f"?limit={int(limit)}" if limit else "")
        return self._json("GET", path)["results"]

    def healthz(self) -> Dict:
        return self._json("GET", "/v1/healthz")


def make_client(serve_url: Optional[str] = None,
                config: Optional[TuneConfig] = None,
                results_dir: Optional[str] = None) -> TuneClient:
    """The one constructor callers need: a daemon URL gets an HTTP
    client, no URL gets an in-process one — the CLI's tune paths call
    this so local and daemon execution share one code path."""
    if serve_url:
        return ServeClient(serve_url)
    return LocalClient(config=config, results_dir=results_dir)


__all__ = ["TuneClient", "LocalClient", "ServeClient", "ServiceError",
           "make_client"]
