"""Exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError` so that
callers can catch the whole family with one handler.  Sub-hierarchies mirror
the pipeline stages: HIL front end, IR construction/verification, transform
legality, machine simulation, and search.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro package."""


class HILError(ReproError):
    """Base class for errors in the HIL front end."""


class HILSyntaxError(HILError):
    """Raised by the lexer/parser on malformed HIL source.

    Carries the 1-based ``line`` and ``col`` of the offending token when
    known so that error messages can point at the source location.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.line = line
        self.col = col
        if line:
            message = f"{line}:{col}: {message}"
        super().__init__(message)


class HILSemanticError(HILError):
    """Raised by semantic analysis (type errors, undeclared names, bad
    markup, aliasing violations declared without mark-up, ...)."""


class IRError(ReproError):
    """Base class for errors at the IR layer."""


class IRVerifyError(IRError):
    """Raised by the IR verifier when a function violates an invariant."""


class TransformError(ReproError):
    """Raised when a transform is asked to do something illegal.

    The FKO transforms are *queried* for legality first (via the analysis
    phase); applying a transform whose preconditions do not hold raises
    this instead of producing wrong code.
    """


class RegisterPressureError(TransformError):
    """Raised by the register allocator when even spilling cannot produce a
    valid allocation (e.g. a single instruction needs more registers than
    the machine has)."""


class MachineError(ReproError):
    """Base class for errors in the simulated machine."""


class SimulationFault(MachineError):
    """Raised by the functional interpreter on faults: out-of-bounds
    access, unaligned vector access, executing an unknown opcode,
    use of an undefined register, or exceeding the instruction budget."""


class SearchError(ReproError):
    """Raised by the search drivers on misconfiguration (empty parameter
    space, budget <= 0, ...)."""


class KernelTestFailure(ReproError):
    """Raised by the tester when a compiled kernel's output disagrees with
    the reference implementation."""
