"""Experiment harnesses — one per paper table/figure (DESIGN.md section 4).

* :mod:`repro.experiments.table1`   — Table 1 (BLAS summary)
* :mod:`repro.experiments.table2`   — Table 2 (platforms/compilers)
* :mod:`repro.experiments.relative` — Figures 2, 3, 4 (relative speedups)
* :mod:`repro.experiments.fig5`     — Figure 5 (absolute MFLOPS + in-cache)
* :mod:`repro.experiments.table3`   — Table 3 (selected parameters)
* :mod:`repro.experiments.fig7`     — Figure 7 (per-parameter gains)
* :mod:`repro.experiments.store`    — shared memoized result store

Run everything: ``python -m repro.experiments``.
"""

from .store import METHODS, MethodResult, ResultStore, global_store, paper_sizes
from .relative import (RelativeResult, figure2, figure3, figure4,
                       relative_performance, render_figure)
from .fig5 import Figure5, figure5
from .fig7 import Figure7, figure7
from .table3 import Table3, table3
from . import table1, table2

__all__ = ["METHODS", "MethodResult", "ResultStore", "global_store",
           "paper_sizes", "RelativeResult", "figure2", "figure3",
           "figure4", "relative_performance", "render_figure", "Figure5",
           "figure5", "Figure7", "figure7", "Table3", "table3",
           "table1", "table2"]
