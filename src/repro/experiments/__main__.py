"""Run every experiment harness and print the paper's tables/figures.

Usage::

    python -m repro.experiments            # quick sizes (N=20000 ooc)
    REPRO_FULL=1 python -m repro.experiments   # paper sizes (N=80000)
    python -m repro.experiments fig2 table3    # a subset
"""

from __future__ import annotations

import sys
import time

from . import fig5, fig7, relative, table1, table2
from .table3 import table3 as make_table3
from .store import global_store


def main(argv) -> int:
    wanted = set(a.lower() for a in argv) or {
        "table1", "table2", "fig2", "fig3", "fig4", "fig5", "table3", "fig7"}
    store = global_store()
    t0 = time.time()
    print(f"# repro experiment suite "
          f"({'quick' if store.quick else 'paper'} sizes)\n")
    if "table1" in wanted:
        print(table1.render(), "\n")
    if "table2" in wanted:
        print(table2.render(), "\n")
    for w, num in (("fig2", 2), ("fig3", 3), ("fig4", 4)):
        if w in wanted:
            print(relative.render_figure(num, store), "\n")
    if "fig5" in wanted:
        print(fig5.figure5(store).render(), "\n")
    if "table3" in wanted:
        print(make_table3(store).render(), "\n")
    if "fig7" in wanted:
        print(fig7.figure7(store).render(), "\n")
    print(f"# done in {time.time() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
