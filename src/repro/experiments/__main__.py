"""Run every experiment harness and print the paper's tables/figures.

Usage::

    python -m repro.experiments            # quick sizes (N=20000 ooc)
    REPRO_FULL=1 python -m repro.experiments   # paper sizes (N=80000)
    python -m repro.experiments fig2 table3    # a subset
    python -m repro.experiments --jobs 4 --cache-dir .repro-cache

``--jobs`` fans the tuning runs across worker processes and
``--cache-dir`` persists both the per-figure summaries and the engine's
per-evaluation cache, so a rerun reloads instead of re-tuning
(``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` set the same defaults).
"""

from __future__ import annotations

import argparse
import sys
import time

from . import fig5, fig7, relative, table1, table2
from .table3 import table3 as make_table3
from .store import global_store

ALL = ("table1", "table2", "fig2", "fig3", "fig4", "fig5", "table3", "fig7")


def main(argv, jobs=None, cache_dir=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="regenerate the paper's tables and figures")
    parser.add_argument("which", nargs="*",
                        help=f"subset of {', '.join(ALL)} (default: all)")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes for the tuning engine")
    parser.add_argument("--cache-dir", default=None,
                        help="persist results + evaluation cache here")
    args = parser.parse_args(list(argv))

    wanted = set(a.lower() for a in args.which) or set(ALL)
    unknown = wanted - set(ALL)
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(sorted(unknown))}")
    store = global_store(jobs=args.jobs if jobs is None else jobs,
                         cache_dir=(args.cache_dir if cache_dir is None
                                    else cache_dir))
    t0 = time.time()
    print(f"# repro experiment suite "
          f"({'quick' if store.quick else 'paper'} sizes)\n")
    if "table1" in wanted:
        print(table1.render(), "\n")
    if "table2" in wanted:
        print(table2.render(), "\n")
    for w, num in (("fig2", 2), ("fig3", 3), ("fig4", 4)):
        if w in wanted:
            print(relative.render_figure(num, store), "\n")
    if "fig5" in wanted:
        print(fig5.figure5(store).render(), "\n")
    if "table3" in wanted:
        print(make_table3(store).render(), "\n")
    if "fig7" in wanted:
        print(fig7.figure7(store).render(), "\n")
    print(f"# done in {time.time() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
