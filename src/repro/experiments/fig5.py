"""Figure 5 — absolute BLAS performance of ifko-tuned kernels.

(a) out-of-cache MFLOPS per routine on both machines ("the more
bus-bound an operation is, the worse the performance; ASUM ... is
always the fastest routine, with single precision always faster than
double");

(b) speedup of P4E in-L2 timings over out-of-cache per routine ("a very
good measure of how bus-bound an operation is").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..kernels import KERNEL_ORDER
from ..machine import Context, opteron, pentium4e
from ..reporting import bar_chart, format_table
from .store import ResultStore, global_store


@dataclass
class Figure5:
    kernels: List[str]
    ooc_mflops: Dict[str, List[float]]      # machine -> per-kernel MFLOPS
    incache_speedup: List[float]            # P4E in-L2 / out-of-cache

    def render(self) -> str:
        a = bar_chart(self.kernels, self.ooc_mflops,
                      title="Figure 5(a). ifko MFLOPS, out of cache",
                      unit=" MF")
        b = bar_chart(self.kernels, {"in-L2/ooc": self.incache_speedup},
                      title="Figure 5(b). P4E in-L2 speedup over "
                            "out-of-cache", unit="x")
        rows = [[k] + [self.ooc_mflops[m][i] for m in self.ooc_mflops]
                + [self.incache_speedup[i]]
                for i, k in enumerate(self.kernels)]
        t = format_table(["kernel"] + list(self.ooc_mflops) + ["inL2/ooc"],
                         rows, title="Figure 5 data")
        return "\n\n".join([a, b, t])


def figure5(store: Optional[ResultStore] = None) -> Figure5:
    store = store or global_store()
    p4e, opt = pentium4e(), opteron()
    kernels = list(KERNEL_ORDER)

    ooc: Dict[str, List[float]] = {"P4E": [], "Opteron": []}
    speedup: List[float] = []
    for k in kernels:
        r_p4 = store.get(p4e, Context.OUT_OF_CACHE, k, "ifko")
        r_op = store.get(opt, Context.OUT_OF_CACHE, k, "ifko")
        r_ic = store.get(p4e, Context.IN_L2, k, "ifko")
        ooc["P4E"].append(r_p4.mflops)
        ooc["Opteron"].append(r_op.mflops)
        speedup.append(r_ic.mflops / r_p4.mflops if r_p4.mflops else 0.0)
    return Figure5(kernels=kernels, ooc_mflops=ooc, incache_speedup=speedup)


if __name__ == "__main__":
    print(figure5().render())
