"""Figure 7 — speedup of ifko over FKO, decomposed by tuned parameter.

"Figure 7 shows, as a percentage of FKO's speed, the results of
empirically tuning these parameters ... For each BLAS kernel, we show a
bar for each architecture (p4e/opt) and context (ic / oc).  Each bar
shows the total speedup over FKO, and how much tuning each
transformation parameter contributed ... on average over all
operations, architectures and contexts, empirically tuning [WNT,
PF DST, PF INS, UR, AE], provided speedups of [2, 26, 3, 2, 5]%,
respectively, resulting in the empirically-tuned kernels on average
running 1.38 times faster than our statically-tuned kernels."
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..kernels import KERNEL_ORDER
from ..machine import Context, opteron, pentium4e
from ..reporting import format_table
from ..search.linesearch import PHASES
from .store import ResultStore, global_store

#: (label, machine factory, context) — the paper's bar groups
BARS: Tuple[Tuple[str, object, Context], ...] = (
    ("p4e/oc", pentium4e, Context.OUT_OF_CACHE),
    ("p4e/ic", pentium4e, Context.IN_L2),
    ("opt/oc", opteron, Context.OUT_OF_CACHE),
)

#: the tuned parameters the paper decomposes (SV is the pipeline default)
DECOMPOSED = ("WNT", "PF DST", "PF INS", "UR", "AE")


@dataclass
class Figure7:
    # kernel -> bar label -> {phase: multiplicative gain, "total": x}
    gains: Dict[str, Dict[str, Dict[str, float]]]

    def average_gains(self) -> Dict[str, float]:
        """Geometric-mean gain per phase over all kernels/configs."""
        logs: Dict[str, List[float]] = {p: [] for p in DECOMPOSED}
        logs["total"] = []
        for bars in self.gains.values():
            for decomposition in bars.values():
                for p in DECOMPOSED:
                    logs[p].append(math.log(max(1e-9, decomposition[p])))
                logs["total"].append(
                    math.log(max(1e-9, decomposition["total"])))
        return {p: math.exp(sum(v) / len(v)) if v else 1.0
                for p, v in logs.items()}

    def render(self) -> str:
        headers = ["kernel", "config"] + list(DECOMPOSED) + ["total"]
        rows: List[List[object]] = []
        for k in self.gains:
            for bar, d in self.gains[k].items():
                rows.append([k, bar]
                            + [f"{100 * (d[p] - 1):+5.1f}%" for p in DECOMPOSED]
                            + [f"{d['total']:.2f}x"])
        avg = self.average_gains()
        rows.append(["AVG", "all"]
                    + [f"{100 * (avg[p] - 1):+5.1f}%" for p in DECOMPOSED]
                    + [f"{avg['total']:.2f}x"])
        return format_table(headers, rows,
                            title="Figure 7. ifko speedup over FKO by "
                                  "empirically tuned parameter")


def figure7(store: Optional[ResultStore] = None,
            kernels: Optional[List[str]] = None) -> Figure7:
    store = store or global_store()
    kernels = kernels or list(KERNEL_ORDER)
    gains: Dict[str, Dict[str, Dict[str, float]]] = {}
    for k in kernels:
        gains[k] = {}
        for label, mk, ctx in BARS:
            res = store.get(mk(), ctx, k, "ifko")
            if res.search is None:
                continue
            d = res.search.phase_speedups()
            d = {p: d.get(p, 1.0) for p in PHASES}
            d["total"] = res.search.speedup_over_start
            gains[k][label] = d
    return Figure7(gains=gains)


if __name__ == "__main__":
    print(figure7().render())
