"""Figures 2-4 — relative speedups of the tuning methodologies.

"For each kernel, we find the mechanism that gave the best kernel
performance, and all other results are divided by that number ...  The
second-to-last column (AVG) gives the average over all studied
routines, and the last column (VAVG) gives the average for the
operations where SIMD vectorization was successfully supplied; in
practice, this means the average of all routines excluding iamax."
(section 3.3)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..kernels import KERNEL_ORDER
from ..machine import Context
from ..machine.config import MachineConfig
from ..reporting import bar_chart, format_table
from .store import METHODS, MethodResult, ResultStore, global_store


@dataclass
class RelativeResult:
    machine: str
    context: Context
    n: int
    kernels: List[str]                      # display names (stars applied)
    mflops: Dict[str, List[float]]          # method -> per-kernel
    percent: Dict[str, List[float]]         # method -> percent of best
    avg: Dict[str, float]
    vavg: Dict[str, float]

    def best_method_on_average(self) -> str:
        return max(self.avg, key=self.avg.get)

    def table_rows(self) -> List[List[object]]:
        rows = []
        for m in METHODS:
            rows.append([m] + [round(v, 1) for v in self.percent[m]]
                        + [round(self.avg[m], 1), round(self.vavg[m], 1)])
        return rows

    def render(self, title: str) -> str:
        headers = ["method"] + self.kernels + ["AVG", "VAVG"]
        table = format_table(headers, self.table_rows(), title=title)
        chart = bar_chart(self.kernels,
                          {m: self.percent[m] for m in METHODS},
                          title=f"{title} (percent of best)",
                          unit="%", vmax=100.0)
        return table + "\n\n" + chart


def relative_performance(machine: MachineConfig, context: Context,
                         store: Optional[ResultStore] = None,
                         kernels: Optional[List[str]] = None
                         ) -> RelativeResult:
    store = store or global_store()
    kernels = kernels or list(KERNEL_ORDER)
    matrix = store.matrix(machine, context, kernels)

    display: List[str] = []
    mflops: Dict[str, List[float]] = {m: [] for m in METHODS}
    for k in kernels:
        row = matrix[k]
        display.append(row["ATLAS"].display_kernel)
        for m in METHODS:
            mflops[m].append(row[m].mflops)

    percent: Dict[str, List[float]] = {m: [] for m in METHODS}
    for i in range(len(kernels)):
        best = max(mflops[m][i] for m in METHODS) or 1.0
        for m in METHODS:
            percent[m].append(100.0 * mflops[m][i] / best)

    vec_idx = [i for i, k in enumerate(kernels) if "amax" not in k]
    avg = {m: sum(percent[m]) / len(percent[m]) for m in METHODS}
    vavg = {m: sum(percent[m][i] for i in vec_idx) / len(vec_idx)
            for m in METHODS}
    return RelativeResult(machine=machine.name, context=context,
                          n=store.n_for(context), kernels=display,
                          mflops=mflops, percent=percent, avg=avg, vavg=vavg)


# --- the three paper figures ------------------------------------------------

def figure2(store: Optional[ResultStore] = None) -> RelativeResult:
    """Figure 2: P4E, out of cache."""
    from ..machine import pentium4e
    return relative_performance(pentium4e(), Context.OUT_OF_CACHE, store)


def figure3(store: Optional[ResultStore] = None) -> RelativeResult:
    """Figure 3: Opteron, out of cache."""
    from ..machine import opteron
    return relative_performance(opteron(), Context.OUT_OF_CACHE, store)


def figure4(store: Optional[ResultStore] = None) -> RelativeResult:
    """Figure 4: P4E, in-L2 cache."""
    from ..machine import pentium4e
    return relative_performance(pentium4e(), Context.IN_L2, store)


def render_figure(which: int, store: Optional[ResultStore] = None) -> str:
    fn = {2: figure2, 3: figure3, 4: figure4}[which]
    res = fn(store)
    titles = {
        2: f"Figure 2. Relative speedups, {res.machine}, N={res.n}, "
           f"out-of-cache",
        3: f"Figure 3. Relative speedups, {res.machine}, N={res.n}, "
           f"out-of-cache",
        4: f"Figure 4. Relative speedups, {res.machine}, N={res.n}, "
           f"in-L2 cache",
    }
    return res.render(titles[which])


if __name__ == "__main__":
    for w in (2, 3, 4):
        print(render_figure(w))
        print()
