"""Shared result store for the experiment harnesses.

Figures 2-4 need every (kernel x method) timing, Table 3 and Figure 7
need the ifko search results, Figure 5 needs ifko timings across both
contexts — all for the same configurations.  The store computes each
result once per process and memoizes it.

All tuning runs through one :class:`repro.search.TuningSession`, so the
figures share the engine's persistent evaluation cache, can fan out
across worker processes (``jobs`` argument or ``REPRO_JOBS``), can be
traced (``trace`` argument), and can swap the global-search strategy
(``strategy``/``seed`` arguments or ``REPRO_STRATEGY``/``REPRO_SEED``)
to regenerate the figures under an alternative searcher.

Problem sizes default to the paper's (N=80000 out of cache, N=1024
in-L2).  ``quick=True`` shrinks the out-of-cache N (same physics, fewer
simulated lines) so the full suite runs fast under pytest; the
benchmark harness uses the paper sizes.

Setting ``REPRO_CACHE_DIR`` (or passing ``cache_dir``) additionally
persists results to disk as JSON, the way an ATLAS install records its
search results: a second run of the experiment suite reloads instead of
re-tuning.  The cache key includes the package version and problem
sizes, so stale entries are never reused across code changes.  Since
``SearchResult`` round-trips through JSON, ifko rows reload complete
with their search detail; the engine's per-evaluation cache lives in an
``evals/`` subdirectory of the same tree.

Setting ``REPRO_SERVE_URL`` (or passing ``serve_url``) routes the ifko
rows through a running ``repro serve`` daemon instead of the in-process
session: many experiment processes then share one engine, one
evaluation cache and the daemon's persistent result store — with
bit-identical answers, since the engine is deterministic.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..atlas import atlas_search
from ..kernels import KERNEL_ORDER, get_kernel
from ..machine import Context, get_machine
from ..machine.config import MachineConfig
from ..refcomp import ALL_COMPILERS
from ..search import SearchResult, TuneConfig, TunedKernel, TuningSession

#: column order of the paper's figures
METHODS = ("gcc+ref", "icc+ref", "icc+prof", "ATLAS", "FKO", "ifko")


@dataclass
class MethodResult:
    method: str
    kernel: str
    mflops: float
    cycles: float
    label: str = ""              # params / winning variant description
    starred: bool = False        # ATLAS picked an all-assembly kernel
    search: Optional[SearchResult] = None

    @property
    def display_kernel(self) -> str:
        return self.kernel + ("*" if self.starred else "")


def paper_sizes(quick: bool = False) -> Dict[Context, int]:
    ooc = 20000 if quick else 80000
    return {Context.OUT_OF_CACHE: ooc, Context.IN_L2: 1024}


class ResultStore:
    """Memoized (machine, context, kernel, method) -> MethodResult."""

    def __init__(self, quick: Optional[bool] = None,
                 cache_dir: Optional[str] = None,
                 jobs: Optional[int] = None,
                 trace: Optional[str] = None,
                 strategy: Optional[str] = None,
                 seed: Optional[int] = None,
                 serve_url: Optional[str] = None):
        if quick is None:
            quick = os.environ.get("REPRO_FULL", "") == ""
        self.quick = quick
        self.sizes = paper_sizes(quick)
        self._cache: Dict[Tuple[str, Context, str, str], MethodResult] = {}
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        if jobs is None:
            jobs = int(os.environ.get("REPRO_JOBS", "1") or 1)
        self.jobs = jobs
        if strategy is None:
            strategy = os.environ.get("REPRO_STRATEGY", "") or "line"
        self.strategy = strategy
        if seed is None:
            seed = int(os.environ.get("REPRO_SEED", "0") or 0)
        self.seed = seed
        if serve_url is None:
            serve_url = os.environ.get("REPRO_SERVE_URL") or None
        self.serve_url = serve_url
        self._serve_client = None
        eval_cache = (str(self.cache_dir / "evals")
                      if self.cache_dir is not None else None)
        self.session = TuningSession(TuneConfig(
            jobs=jobs, cache_dir=eval_cache, trace=trace, run_tester=False,
            strategy=strategy, seed=seed))

    # ------------------------------------------------------------------
    # optional JSON persistence (search results round-trip through
    # SearchResult.to_dict, so ifko rows reload with full detail)
    def _disk_path(self, key) -> Optional[pathlib.Path]:
        if self.cache_dir is None:
            return None
        from .. import __version__
        mname, ctx, kernel, method = key
        n = self.n_for(ctx)
        # non-default strategy/seed runs are tagged so they never alias
        # the canonical line-search rows (default filenames unchanged)
        tag = ("" if (self.strategy, self.seed) == ("line", 0)
               else f"_{self.strategy}{self.seed}")
        fname = (f"v{__version__}_{mname}_{ctx.name}_{n}_{kernel}_"
                 f"{method.replace('+', '_')}{tag}.json")
        return self.cache_dir / fname

    def _load_disk(self, key) -> Optional[MethodResult]:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
            search = (SearchResult.from_dict(data["search"])
                      if data.get("search") else None)
        except (OSError, json.JSONDecodeError, KeyError, ValueError,
                TypeError):
            return None
        return MethodResult(method=data["method"], kernel=data["kernel"],
                            mflops=data["mflops"], cycles=data["cycles"],
                            label=data.get("label", ""),
                            starred=data.get("starred", False),
                            search=search)

    def _save_disk(self, key, result: MethodResult) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        data = {"method": result.method, "kernel": result.kernel,
                "mflops": result.mflops, "cycles": result.cycles,
                "label": result.label, "starred": result.starred,
                "search": (result.search.to_dict()
                           if result.search else None)}
        path.write_text(json.dumps(data, indent=1))

    # ------------------------------------------------------------------
    def n_for(self, context: Context) -> int:
        return self.sizes[context]

    @staticmethod
    def canon_machine(machine) -> str:
        """The wire schema's machine canonicalization (alias fold
        through ``get_machine``, lowercased) — store keys and disk tags
        use it so every spelling of one machine shares one row, and the
        tags agree with service digests and warm-start lookups instead
        of diverging on case (``"P4E"`` vs ``"p4e"``)."""
        name = getattr(machine, "name", machine)
        return get_machine(str(name)).name.lower()

    def get(self, machine: MachineConfig, context: Context, kernel: str,
            method: str) -> MethodResult:
        key = (self.canon_machine(machine), context, kernel, method)
        if key not in self._cache:
            disk = self._load_disk(key)
            if disk is not None:
                self._cache[key] = disk
            else:
                result = self._compute(machine, context, kernel, method)
                self._cache[key] = result
                self._save_disk(key, result)
        return self._cache[key]

    def row(self, machine: MachineConfig, context: Context,
            kernel: str) -> Dict[str, MethodResult]:
        return {m: self.get(machine, context, kernel, m) for m in METHODS}

    def matrix(self, machine: MachineConfig, context: Context,
               kernels: Optional[List[str]] = None
               ) -> Dict[str, Dict[str, MethodResult]]:
        kernels = kernels or list(KERNEL_ORDER)
        return {k: self.row(machine, context, k) for k in kernels}

    # ------------------------------------------------------------------
    def _compute(self, machine: MachineConfig, context: Context,
                 kernel: str, method: str) -> MethodResult:
        spec = get_kernel(kernel)
        n = self.n_for(context)
        if method in ("gcc+ref", "icc+ref", "icc+prof"):
            cname = {"gcc+ref": "gcc", "icc+ref": "icc",
                     "icc+prof": "icc+prof"}[method]
            comp = next(c for c in ALL_COMPILERS if c.name == cname)
            build = comp.build(spec, machine, context, n)
            return MethodResult(method, kernel, build.mflops,
                                build.timing.cycles,
                                label=comp.flags(machine))
        if method == "ATLAS":
            res = atlas_search(spec, machine, context, n, run_tester=False)
            return MethodResult(method, kernel, res.mflops,
                                res.timing.cycles, label=res.best_label,
                                starred=res.is_assembly)
        if method == "FKO":
            tk = self.session.compile_default(spec, machine, context, n)
            return MethodResult(method, kernel, tk.mflops, tk.timing.cycles,
                                label=tk.params.describe())
        if method == "ifko":
            tk = self._tune_ifko(spec, machine, context, n)
            return MethodResult(method, kernel, tk.mflops, tk.timing.cycles,
                                label=tk.params.describe(), search=tk.search)
        raise KeyError(f"unknown method {method!r}")

    def _tune_ifko(self, spec, machine: MachineConfig, context: Context,
                   n: int) -> TunedKernel:
        """The ifko rows optionally route through a running ``repro
        serve`` daemon (``serve_url`` argument or ``REPRO_SERVE_URL``):
        many experiment processes then share one engine, one evaluation
        cache and the daemon's result store.  FKO is deterministic, so
        the winner recompiled from the daemon's response is
        bit-identical to an in-process tune."""
        if self.serve_url:
            if self._serve_client is None:
                from ..client import ServeClient
                self._serve_client = ServeClient(self.serve_url)
            from ..service import TuneRequest
            request = TuneRequest(kernel=spec.name, machine=machine.name,
                                  context=context, n=n,
                                  strategy=self.strategy, seed=self.seed,
                                  test=False)
            return self._serve_client.tune(request).tuned()
        return self.session.tune(spec, machine, context, n)


#: one store shared by all harnesses in a process
_GLOBAL: Optional[ResultStore] = None


def global_store(quick: Optional[bool] = None,
                 jobs: Optional[int] = None,
                 cache_dir: Optional[str] = None) -> ResultStore:
    global _GLOBAL
    if (_GLOBAL is None
            or (quick is not None and _GLOBAL.quick != quick)
            or (jobs is not None and _GLOBAL.jobs != jobs)
            or (cache_dir is not None
                and _GLOBAL.cache_dir != pathlib.Path(cache_dir))):
        _GLOBAL = ResultStore(quick, cache_dir=cache_dir, jobs=jobs)
    return _GLOBAL
