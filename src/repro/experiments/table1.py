"""Table 1 — Level 1 BLAS summary (operations and FLOP conventions)."""

from __future__ import annotations

from typing import List, Tuple

from ..kernels import KERNEL_ORDER, get_kernel
from ..reporting import format_table

_SUMMARY = {
    "swap": ("tmp=y[i]; y[i]=x[i]; x[i]=tmp", "N"),
    "scal": ("y[i] *= alpha", "N"),
    "copy": ("y[i] = x[i]", "N"),
    "axpy": ("y[i] += alpha * x[i]", "2N"),
    "dot":  ("dot += y[i] * x[i]", "2N"),
    "asum": ("sum += fabs(x[i])", "2N"),
    "amax": ("if (fabs(x[i]) > maxval) {imax=i; maxval=fabs(x[i]);}", "2N"),
}


def rows() -> List[Tuple[str, str, str]]:
    out = []
    seen = set()
    for name in KERNEL_ORDER:
        spec = get_kernel(name)
        if spec.base in seen:
            continue
        seen.add(spec.base)
        op, flops = _SUMMARY[spec.base]
        label = spec.base if spec.base != "amax" else "iamax"
        out.append((label, op, flops))
    return out


def render() -> str:
    return format_table(
        ["NAME", "Operation Summary", "FLOPs"], rows(),
        title="Table 1. Level 1 BLAS summary")


if __name__ == "__main__":
    print(render())
