"""Table 2 — platform and compiler information.

For the simulated platforms this dumps the machine-model parameters
alongside the modeled compiler flags, making the substitution explicit.
"""

from __future__ import annotations

from typing import List

from ..machine import get_machine
from ..refcomp import ALL_COMPILERS
from ..reporting import format_table


def rows() -> List[List[str]]:
    out: List[List[str]] = []
    for mname in ("p4e", "opteron"):
        mach = get_machine(mname)
        for comp in ALL_COMPILERS:
            if comp.name == "icc+prof":
                continue
            out.append([f"{mach.freq_mhz / 1000:.1f} GHz {mach.name}",
                        comp.name, comp.flags(mach)])
    return out


def machine_rows() -> List[List[str]]:
    out = []
    for mname in ("p4e", "opteron"):
        m = get_machine(mname)
        out.append([m.name, f"{m.freq_mhz} MHz",
                    f"L1 {m.l1.size // 1024}K/{m.l1.line}B",
                    f"L2 {m.l2.size // 1024}K",
                    f"mem {m.mem_latency}cy",
                    f"bus {m.bus_bpc:.1f}B/cy"])
    return out


def render() -> str:
    a = format_table(["PLATFORM", "COMP", "FLAGS"], rows(),
                     title="Table 2. Compiler and flag information by platform")
    b = format_table(["MACHINE", "CLOCK", "L1D", "L2", "MEM LAT", "BUS BW"],
                     machine_rows(),
                     title="Simulated machine models (the substitution "
                           "for the paper's hardware)")
    return a + "\n\n" + b


if __name__ == "__main__":
    print(render())
