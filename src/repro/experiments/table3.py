"""Table 3 — transformation parameters selected by the empirical search.

One row per kernel, one column group per (machine, context): SV/WNT
flags, per-array prefetch instruction:distance, and UR:AE — the same
presentation as the paper's Table 3 (whose "most important observation
... is how variable these parameters are").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..fko.params import TransformParams
from ..kernels import KERNEL_ORDER, get_kernel
from ..machine import Context, opteron, pentium4e
from ..reporting import format_table
from .store import ResultStore, global_store

CONFIGS: Tuple[Tuple[str, object, Context], ...] = (
    ("P4E/ooc", pentium4e, Context.OUT_OF_CACHE),
    ("Opteron/ooc", opteron, Context.OUT_OF_CACHE),
    ("P4E/inL2", pentium4e, Context.IN_L2),
)


def _param_cells(params: TransformParams, applied_sv: bool,
                 arrays: List[str]) -> List[str]:
    sv = "Y" if applied_sv else "N"
    wnt = "Y" if params.wnt else "N"
    pf_cells = []
    for arr in ("X", "Y"):
        if arr not in arrays:
            pf_cells.append("n/a")
            continue
        pf = params.pf(arr)
        pf_cells.append(str(pf))
    ae = params.ae if params.ae > 1 else 0
    return [f"{sv}:{wnt}"] + pf_cells + [f"{params.unroll}:{ae}"]


@dataclass
class Table3:
    headers: List[str]
    rows: List[List[str]]

    def render(self) -> str:
        return format_table(self.headers, self.rows,
                            title="Table 3. Transformation parameters by "
                                  "architecture and context "
                                  "(SV:WNT | PF X | PF Y | UR:AE)")


def table3(store: Optional[ResultStore] = None) -> Table3:
    store = store or global_store()
    headers = ["BLAS"]
    for cname, _, _ in CONFIGS:
        headers += [f"{cname} SV:WNT", "PF X", "PF Y", "UR:AE"]
    rows: List[List[str]] = []
    for k in KERNEL_ORDER:
        spec = get_kernel(k)
        row: List[str] = [k]
        for _, mk, ctx in CONFIGS:
            res = store.get(mk(), ctx, k, "ifko")
            params_desc = res.label
            # recover structured params from the tuned result
            tuned = res.search.best_params if res.search else None
            if tuned is None:
                row += ["?", "?", "?", "?"]
                continue
            vectorizable = "amax" not in k
            applied_sv = tuned.sv and vectorizable
            row += _param_cells(tuned, applied_sv,
                                list(spec.vector_args))
        rows.append(row)
    return Table3(headers=headers, rows=rows)


if __name__ == "__main__":
    print(table3().render())
