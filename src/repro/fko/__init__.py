"""FKO — the Floating point Kernel Optimizer (the compiler half of ifko).

"The heart of this project is an optimizing compiler called FKO, which
has been specialized for empirical optimization of floating point
kernels." (section 2.2)

Typical use::

    from repro.fko import FKO
    from repro.machine import pentium4e

    fko = FKO(pentium4e())
    analysis = fko.analyze(hil_source)       # feeds the search
    kernel = fko.compile(hil_source, params) # one point in the space
"""

from __future__ import annotations

from typing import Optional, Set, Union

from ..hil import compile_hil
from ..hil.lower import lower
from ..hil.parser import parse
from ..hil.semantic import check
from ..ir import Function
from ..machine.config import MachineConfig
from .analysis import KernelAnalysis, analyze
from .params import PrefetchParams, TransformParams, fko_defaults
from .pipeline import CompiledKernel, compile_kernel
from .clonefn import clone_function

__all__ = ["FKO", "KernelAnalysis", "analyze", "PrefetchParams",
           "TransformParams", "fko_defaults", "CompiledKernel",
           "compile_kernel", "clone_function"]


class FKO:
    """Front door: parses HIL (or takes IR), analyzes, and compiles."""

    def __init__(self, machine: MachineConfig):
        self.machine = machine

    # ------------------------------------------------------------------
    def front_end(self, source: Union[str, Function]):
        """HIL source -> (Function, noprefetch mark-up set)."""
        if isinstance(source, Function):
            return source, set()
        checked = check(parse(source))
        return lower(checked), set(checked.noprefetch)

    def analyze(self, source: Union[str, Function]) -> KernelAnalysis:
        fn, noprefetch = self.front_end(source)
        from .controlflow import cleanup_cfg
        work = clone_function(fn)
        cleanup_cfg(work)
        return analyze(work, self.machine, noprefetch)

    def compile(self, source: Union[str, Function],
                params: Optional[TransformParams] = None,
                debug_verify: bool = False) -> CompiledKernel:
        fn, noprefetch = self.front_end(source)
        return compile_kernel(fn, self.machine, params,
                              noprefetch=noprefetch,
                              debug_verify=debug_verify)

    def defaults(self, source: Union[str, Function]) -> TransformParams:
        """FKO's static default parameters for this kernel (section 2.3)."""
        a = self.analyze(source)
        veclen = a.veclen if a.vectorizable else 1
        return fko_defaults(self.machine.prefetchable_line, a.elem.size,
                            veclen, tuple(a.prefetch_arrays))
