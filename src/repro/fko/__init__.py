"""FKO — the Floating point Kernel Optimizer (the compiler half of ifko).

"The heart of this project is an optimizing compiler called FKO, which
has been specialized for empirical optimization of floating point
kernels." (section 2.2)

Typical use::

    from repro.fko import FKO
    from repro.machine import pentium4e

    fko = FKO(pentium4e())
    analysis = fko.analyze(hil_source)       # feeds the search
    kernel = fko.compile(hil_source, params) # one point in the space
"""

from __future__ import annotations

from typing import Optional, Set, Tuple, Union

from ..hil import compile_hil
from ..hil.lower import lower
from ..hil.parser import parse
from ..hil.semantic import check
from ..ir import Function
from ..machine.config import MachineConfig
from ..util import LRUCache
from .analysis import KernelAnalysis, analyze
from .params import PrefetchParams, TransformParams, fko_defaults
from .pipeline import CompiledKernel, compile_kernel
from .clonefn import clone_function

__all__ = ["FKO", "KernelAnalysis", "analyze", "PrefetchParams",
           "TransformParams", "fko_defaults", "CompiledKernel",
           "compile_kernel", "clone_function"]

#: parse -> check -> lower results keyed by source text (the front end
#: is machine-independent; the per-machine analysis memo lives on each
#: FKO instance).  Shared module-wide: the search recompiles the same
#: handful of kernel sources hundreds of times.
_FRONT_END_CACHE = LRUCache(maxsize=64)


def _front_end_cached(source: str) -> Tuple[Function, frozenset]:
    hit = _FRONT_END_CACHE.get(source)
    if hit is None:
        checked = check(parse(source))
        hit = (lower(checked), frozenset(checked.noprefetch))
        _FRONT_END_CACHE.put(source, hit)
    return hit


class FKO:
    """Front door: parses HIL (or takes IR), analyzes, and compiles.

    Front-end products and per-kernel analyses are cached: the lowered
    :class:`Function` for a source string is built once (module-wide)
    and :func:`compile_kernel` receives it to clone, while ``analyze``
    results are memoized per (source, machine) on the instance.  Both
    are safe because the pipeline never mutates its input function and
    an analysis references only clone-shared value objects.
    """

    def __init__(self, machine: MachineConfig):
        self.machine = machine
        self._analysis_cache = LRUCache(maxsize=64)

    # ------------------------------------------------------------------
    def front_end(self, source: Union[str, Function]):
        """HIL source -> (Function, noprefetch mark-up set).

        Returns a private clone of the cached lowered function, so
        callers may mutate it freely."""
        if isinstance(source, Function):
            return source, set()
        fn, noprefetch = _front_end_cached(source)
        return clone_function(fn), set(noprefetch)

    def analyze(self, source: Union[str, Function]) -> KernelAnalysis:
        from .controlflow import cleanup_cfg
        if isinstance(source, Function):
            work = clone_function(source)
            cleanup_cfg(work)
            return analyze(work, self.machine, set())
        result = self._analysis_cache.get(source)
        if result is None:
            fn, noprefetch = _front_end_cached(source)
            work = clone_function(fn)
            cleanup_cfg(work)
            result = analyze(work, self.machine, set(noprefetch))
            self._analysis_cache.put(source, result)
        return result

    def compile(self, source: Union[str, Function],
                params: Optional[TransformParams] = None,
                debug_verify: bool = False) -> CompiledKernel:
        if isinstance(source, Function):
            return compile_kernel(source, self.machine, params,
                                  noprefetch=set(),
                                  debug_verify=debug_verify)
        fn, noprefetch = _front_end_cached(source)
        return compile_kernel(fn, self.machine, params,
                              noprefetch=set(noprefetch),
                              debug_verify=debug_verify,
                              analysis=self.analyze(source))

    def defaults(self, source: Union[str, Function]) -> TransformParams:
        """FKO's static default parameters for this kernel (section 2.3)."""
        a = self.analyze(source)
        veclen = a.veclen if a.vectorizable else 1
        return fko_defaults(self.machine.prefetchable_line, a.elem.size,
                            veclen, tuple(a.prefetch_arrays))
