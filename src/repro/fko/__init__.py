"""FKO — the Floating point Kernel Optimizer (the compiler half of ifko).

"The heart of this project is an optimizing compiler called FKO, which
has been specialized for empirical optimization of floating point
kernels." (section 2.2)

Typical use::

    from repro.fko import FKO
    from repro.machine import pentium4e

    fko = FKO(pentium4e())
    analysis = fko.analyze(hil_source)       # feeds the search
    kernel = fko.compile(hil_source, params) # one point in the space
"""

from __future__ import annotations

from typing import Optional, Set, Tuple, Union

from ..hil import compile_hil
from ..hil.lower import lower
from ..hil.parser import parse
from ..hil.semantic import check
from ..hil.tiling import tiled_source
from ..ir import Function
from ..machine.config import MachineConfig
from ..obs.core import active as _obs_active
from ..util import LRUCache
from .analysis import KernelAnalysis, analyze
from .params import PrefetchParams, TransformParams, fko_defaults
from .pipeline import (CompiledKernel, compile_kernel, compile_prefix,
                       finish_kernel, prefix_key)
from .clonefn import clone_function

__all__ = ["FKO", "KernelAnalysis", "analyze", "PrefetchParams",
           "TransformParams", "fko_defaults", "CompiledKernel",
           "compile_kernel", "compile_prefix", "finish_kernel",
           "prefix_key", "clone_function"]

#: parse -> check -> lower results keyed by source text (the front end
#: is machine-independent; the per-machine analysis memo lives on each
#: FKO instance).  Shared module-wide: the search recompiles the same
#: handful of kernel sources hundreds of times.
_FRONT_END_CACHE = LRUCache(maxsize=64)


def _front_end_cached(source: str) -> Tuple[Function, frozenset]:
    hit = _FRONT_END_CACHE.get(source)
    if hit is None:
        checked = check(parse(source))
        hit = (lower(checked), frozenset(checked.noprefetch))
        _FRONT_END_CACHE.put(source, hit)
    return hit


class FKO:
    """Front door: parses HIL (or takes IR), analyzes, and compiles.

    Front-end products and per-kernel analyses are cached: the lowered
    :class:`Function` for a source string is built once (module-wide)
    and :func:`compile_kernel` receives it to clone, while ``analyze``
    results are memoized per (source, machine) on the instance.  Both
    are safe because the pipeline never mutates its input function and
    an analysis references only clone-shared value objects.
    """

    def __init__(self, machine: MachineConfig, prefix_cache: bool = True):
        self.machine = machine
        self._analysis_cache = LRUCache(maxsize=64)
        #: post-AE IR snapshots keyed by (source, effective early params);
        #: entries are (Function, applied) and are cloned on every fork,
        #: so cached IR is never reachable from a caller
        self._prefix_cache = LRUCache(maxsize=32)
        #: finished CompiledKernels keyed by the *complete* effective
        #: parameter tuple — the maximal-depth prefix: when every
        #: transform resolves identically, the whole pipeline is shared
        self._full_cache = LRUCache(maxsize=256)
        self.prefix_cache_enabled = prefix_cache
        # reuse counters (read by the search engine / benchmarks)
        self.prefix_hits = 0      # forked from a post-AE snapshot
        self.prefix_misses = 0    # ran the full pipeline
        self.full_hits = 0       # whole-pipeline hits (subset of reuse)

    # ------------------------------------------------------------------
    def front_end(self, source: Union[str, Function]):
        """HIL source -> (Function, noprefetch mark-up set).

        Returns a private clone of the cached lowered function, so
        callers may mutate it freely."""
        if isinstance(source, Function):
            return source, set()
        fn, noprefetch = _front_end_cached(source)
        return clone_function(fn), set(noprefetch)

    def analyze(self, source: Union[str, Function]) -> KernelAnalysis:
        from .controlflow import cleanup_cfg
        if isinstance(source, Function):
            work = clone_function(source)
            cleanup_cfg(work)
            return analyze(work, self.machine, set())
        result = self._analysis_cache.get(source)
        if result is None:
            fn, noprefetch = _front_end_cached(source)
            work = clone_function(fn)
            cleanup_cfg(work)
            result = analyze(work, self.machine, set(noprefetch))
            self._analysis_cache.put(source, result)
        return result

    def _full_key(self, source: str, params: TransformParams,
                  analysis: KernelAnalysis, debug_verify: bool):
        """Complete effective-parameter identity: the prefix key plus
        everything :func:`finish_kernel` reads from ``params``, all
        post-legality — two requests with the same full key run the
        exact same pass sequence on the same IR."""
        pf = tuple(sorted((a, p.hint.value, p.dist)
                          for a, p in params.prefetch.items()
                          if p.enabled and a in analysis.prefetch_arrays))
        wnt = bool(params.wnt and analysis.output_arrays)
        bf = bool(params.block_fetch and (analysis.output_arrays
                                          or analysis.input_arrays))
        return (source, prefix_key(params, analysis, debug_verify),
                pf, wnt, bf, params.copy_propagation, params.peephole,
                params.cf_cleanup, params.register_allocation)

    @staticmethod
    def _effective_source(source: str,
                          params: Optional[TransformParams]) -> str:
        """Apply the nest-level tiling pass: ``tile:<ivar>`` extension
        parameters rewrite the HIL source *before* the inner-loop
        pipeline sees it.  Identity (the same string object) when no
        tiles are requested or the source has no tileable nest, so
        every downstream cache key — front-end, prefix, full, share —
        is byte-stable for legacy parameters."""
        if params is None:
            return source
        tiles = params.tiles()
        return tiled_source(source, tiles) if tiles else source

    def compile(self, source: Union[str, Function],
                params: Optional[TransformParams] = None,
                debug_verify: bool = False) -> CompiledKernel:
        if isinstance(source, Function):
            return compile_kernel(source, self.machine, params,
                                  noprefetch=set(),
                                  debug_verify=debug_verify)
        source = self._effective_source(source, params)
        fn, noprefetch = _front_end_cached(source)
        analysis = self.analyze(source)
        # Memoized compilation is bypassed while an obs collector is
        # active: a cache hit would skip the per-pass spans a trace of
        # this eval is expected to carry, making observed traces depend
        # on eval order.  Observed compiles always run the full pipeline.
        if not self.prefix_cache_enabled or _obs_active() is not None:
            return compile_kernel(fn, self.machine, params,
                                  noprefetch=set(noprefetch),
                                  debug_verify=debug_verify,
                                  analysis=analysis)
        if params is None:
            params = self.defaults(source)

        fkey = self._full_key(source, params, analysis, debug_verify)
        hit = self._full_cache.get(fkey)
        if hit is not None:
            # whole-pipeline reuse: every transform resolves identically,
            # so the finished kernel is shared — cloned, so no caller
            # ever holds (or can mutate) cache-owned IR
            self.full_hits += 1
            self.prefix_hits += 1
            return CompiledKernel(fn=clone_function(hit.fn), params=params,
                                  analysis=hit.analysis,
                                  machine=self.machine,
                                  applied=dict(hit.applied),
                                  allocation=hit.allocation)

        pkey = (source, prefix_key(params, analysis, debug_verify))
        snap = self._prefix_cache.get(pkey)
        if snap is None:
            self.prefix_misses += 1
            work, analysis, params, applied = compile_prefix(
                fn, self.machine, params, set(noprefetch), debug_verify,
                analysis)
            self._prefix_cache.put(pkey,
                                   (clone_function(work), dict(applied)))
            compiled = finish_kernel(work, self.machine, params, analysis,
                                     applied, debug_verify)
        else:
            self.prefix_hits += 1
            snap_fn, snap_applied = snap
            compiled = finish_kernel(clone_function(snap_fn), self.machine,
                                     params, analysis, dict(snap_applied),
                                     debug_verify)
        # the cache owns a private clone; the caller gets the original
        self._full_cache.put(fkey, CompiledKernel(
            fn=clone_function(compiled.fn), params=compiled.params,
            analysis=compiled.analysis, machine=compiled.machine,
            applied=dict(compiled.applied), allocation=compiled.allocation))
        return compiled

    def share_key(self, source: Union[str, Function],
                  params: Optional[TransformParams] = None,
                  debug_verify: bool = False):
        """The complete effective-parameter identity of a compile —
        what :meth:`compile` keys its whole-pipeline cache on.  Two
        requests with equal share keys produce bit-identical kernels,
        so downstream consumers (the engine's shared-walk timing) may
        treat their derived results as interchangeable.  ``None`` for
        raw :class:`Function` sources and when caching is disabled —
        callers then never share."""
        if isinstance(source, Function) or not self.prefix_cache_enabled:
            return None
        source = self._effective_source(source, params)
        analysis = self.analyze(source)
        if params is None:
            params = self.defaults(source)
        return self._full_key(source, params, analysis, debug_verify)

    def cache_stats(self) -> dict:
        """Reuse counters for the batched-evaluation path."""
        return {"prefix_hits": self.prefix_hits,
                "prefix_misses": self.prefix_misses,
                "full_hits": self.full_hits}

    def defaults(self, source: Union[str, Function]) -> TransformParams:
        """FKO's static default parameters for this kernel (section 2.3)."""
        a = self.analyze(source)
        veclen = a.veclen if a.vectorizable else 1
        return fko_defaults(self.machine.prefetchable_line, a.elem.size,
                            veclen, tuple(a.prefetch_arrays))
