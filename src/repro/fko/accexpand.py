"""AE — accumulator expansion (section 2.2.3).

"In order to avoid unnecessary pipeline stalls, AE uses a specialized
version of scalar expansion to break dependencies in scalars that are
exclusively the targets of floating point adds within the loop."

After unrolling, an accumulator has N add sites per trip forming an
``N x latency`` recurrence chain.  AE rewrites site ``j`` to use
accumulator ``j mod k``, turning one chain of N adds into k chains of
N/k — the in-cache win the paper highlights (41% of sasum's in-L2
speedup on the P4E).  The extra accumulators start at zero and are
folded into the original in the drain block.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import TransformError
from ..ir import (Function, Instruction, Opcode, RegClass, VReg)
from ..ir.operands import is_reg
from ..obs.core import count as _obs_count
from .loopshape import get_or_create_drain


def expand_accumulators(fn: Function, accumulators: List[VReg],
                        k: int) -> int:
    """Expand each accumulator into ``k`` copies.  ``accumulators`` are
    the *pre-vectorization* scalar registers from the analysis; if the
    loop was vectorized their vector counterparts are found by name.
    Returns the number of accumulators actually expanded (0 = no-op)."""
    loop = fn.loop
    if loop is None:
        raise TransformError(f"{fn.name}: no tuned loop")
    if k <= 1 or not accumulators:
        return 0

    body_instrs: List[Instruction] = []
    for name in loop.body:
        body_instrs.extend(fn.block(name).instrs)

    expanded = 0
    for acc in accumulators:
        # locate the register actually accumulated in the (possibly
        # vectorized) body: same register, or its vector widening
        target = None
        sites: List[Instruction] = []
        for instr in body_instrs:
            if instr.op not in (Opcode.FADD, Opcode.VADD):
                continue
            d = instr.dst
            if not is_reg(d):
                continue
            if d == acc or (isinstance(d, VReg) and d.name == f"v{acc.name}"
                            and d.rclass is RegClass.VEC):
                if any(is_reg(s) and s == d for s in instr.srcs):
                    target = d
                    sites.append(instr)
        if target is None or len(sites) < 2:
            continue

        kk = min(k, len(sites))
        copies = [target]
        for j in range(1, kk):
            copies.append(VReg(f"{target.name}_ae{j}", target.rclass,
                               target.dtype))
        # rewrite add sites round-robin
        for j, instr in enumerate(sites):
            c = copies[j % kk]
            if c is target:
                continue
            instr.dst = c
            instr.srcs = tuple(c if (is_reg(s) and s == target) else s
                               for s in instr.srcs)

        # zero-init the new accumulators in the preheader
        pre = fn.block(loop.preheader)
        init: List[Instruction] = []
        for c in copies[1:]:
            if c.rclass is RegClass.VEC:
                init.append(Instruction(Opcode.VZERO, c, (),
                                        comment="AE accumulator"))
            else:
                from ..ir import Imm
                init.append(Instruction(Opcode.FMOV, c, (Imm(0.0),),
                                        comment="AE accumulator"))
        if pre.instrs and pre.instrs[-1].is_terminator:
            pre.instrs[-1:-1] = init
        else:
            pre.instrs.extend(init)

        # combine in the drain, *before* any vector->scalar reduction
        drain = get_or_create_drain(fn, loop)
        combine: List[Instruction] = []
        op = Opcode.VADD if target.rclass is RegClass.VEC else Opcode.FADD
        for c in copies[1:]:
            combine.append(Instruction(op, target, (target, c),
                                       comment="AE combine"))
        drain.instrs[0:0] = combine
        expanded += 1
    _obs_count("ae.expanded", expanded)
    return expanded
