"""FKO's analysis phase.

"Unlike a normal compiler, a compiler used in an iterative search needs
to be able to communicate key aspects of its analysis of the code being
optimized, as this strongly affects the optimization space to be
searched." (section 2.2.2)

:func:`analyze` reports, for the loop flagged for tuning:

* whether it can be SIMD vectorized (and why not, when it cannot);
* the maximum safe unrolling;
* the scalars that are valid targets for accumulator expansion;
* the arrays that are valid targets for prefetch (pointer-walked
  streams, minus any ``@NOPREFETCH`` mark-up);
* the arrays written (WNT candidates), and per-array sets/uses;
* architecture information (cache levels and line sizes) the search
  uses to seed distances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ir import DType, Function, Mem, Opcode, RegClass, VReg, veclen
from ..ir.dataflow import Liveness
from ..ir.operands import is_reg
from ..machine.config import MachineConfig

#: opcodes the SIMD vectorizer knows how to widen
_VECTORIZABLE_OPS = {
    Opcode.FLD, Opcode.FST, Opcode.FSTNT, Opcode.FADD, Opcode.FSUB,
    Opcode.FMUL, Opcode.FABS, Opcode.FNEG, Opcode.FMOV,
    # loop plumbing that stays scalar
    Opcode.ADD, Opcode.SUB, Opcode.MOV, Opcode.PREFETCH, Opcode.NOP,
}


@dataclass
class ArrayInfo:
    name: str
    elem: DType
    loaded: bool = False
    stored: bool = False
    inc_per_iter: int = 0     # elements per source iteration


@dataclass
class KernelAnalysis:
    """What FKO reports back to the search driver."""

    has_tuned_loop: bool
    vectorizable: bool = False
    veclen: int = 1
    not_vectorizable_reasons: List[str] = field(default_factory=list)
    max_unroll: int = 1
    accumulators: List[VReg] = field(default_factory=list)
    prefetch_arrays: List[str] = field(default_factory=list)
    output_arrays: List[str] = field(default_factory=list)
    input_arrays: List[str] = field(default_factory=list)
    arrays: Dict[str, ArrayInfo] = field(default_factory=dict)
    counter_used_in_body: bool = False
    multi_block_body: bool = False
    #: arrays whose pointers are provably 16-byte aligned at every entry
    #: to the tuned loop (the allocator contract + no misaligning writes
    #: + the loop is not re-entered from an outer loop)
    aligned_arrays: Set[str] = field(default_factory=set)
    elem: DType = DType.F64
    # architecture info passed through to the search
    cache_line: int = 64
    cache_levels: Tuple[Tuple[int, int], ...] = ()   # (size, line) per level

    def describe(self) -> str:
        lines = []
        if not self.has_tuned_loop:
            return "no loop flagged for tuning"
        lines.append(f"element type: {self.elem.value}")
        lines.append(f"SIMD vectorizable: {'yes' if self.vectorizable else 'no'}"
                     + ("" if self.vectorizable else
                        f" ({'; '.join(self.not_vectorizable_reasons)})"))
        lines.append(f"max safe unroll: {self.max_unroll}")
        lines.append("accumulator-expansion targets: "
                     + (", ".join(r.name for r in self.accumulators) or "none"))
        lines.append("prefetchable arrays: "
                     + (", ".join(self.prefetch_arrays) or "none"))
        lines.append("output arrays: "
                     + (", ".join(self.output_arrays) or "none"))
        return "\n".join(lines)


MAX_UNROLL = 128


def _reachable_from(fn: Function, start: str) -> Set[str]:
    seen: Set[str] = set()
    work = [start]
    while work:
        cur = work.pop()
        if cur in seen or not fn.has_block(cur):
            continue
        seen.add(cur)
        work.extend(fn.successors(fn.block(cur)))
    return seen


def analyze(fn: Function, machine: Optional[MachineConfig] = None,
            noprefetch: Optional[Set[str]] = None) -> KernelAnalysis:
    noprefetch = noprefetch or set()
    loop = fn.loop
    result = KernelAnalysis(has_tuned_loop=loop is not None)
    if machine is not None:
        result.cache_line = machine.l1.line
        result.cache_levels = ((machine.l1.size, machine.l1.line),
                               (machine.l2.size, machine.l2.line))
    if loop is None:
        return result

    result.elem = loop.elem
    result.veclen = veclen(loop.elem)
    body_blocks = [fn.block(name) for name in loop.body]
    result.multi_block_body = len(loop.body) > 1

    # ------------------------------------------------------------ arrays
    arrays: Dict[str, ArrayInfo] = {}
    for blk in body_blocks:
        for instr in blk.instrs:
            mem = instr.mem
            if mem is None or mem.array is None:
                continue
            info = arrays.setdefault(
                mem.array,
                ArrayInfo(mem.array,
                          mem.dtype if isinstance(mem.dtype, DType)
                          else mem.dtype.elem))
            if instr.is_store:
                info.stored = True
            elif instr.op is not Opcode.PREFETCH:
                info.loaded = True
    for name, info in arrays.items():
        info.inc_per_iter = loop.ptr_incs.get(name, 0)
    result.arrays = arrays
    result.output_arrays = sorted(a for a, i in arrays.items() if i.stored)
    result.input_arrays = sorted(a for a, i in arrays.items() if i.loaded)
    result.prefetch_arrays = sorted(
        a for a, i in arrays.items()
        if i.inc_per_iter != 0 and a not in noprefetch)

    # ------------------------------------------------------- counter use
    counter = loop.counter
    counter_used = False
    for blk in body_blocks:
        for instr in blk.instrs:
            if any(r == counter for r in instr.regs_read()):
                counter_used = True
    result.counter_used_in_body = counter_used

    # ------------------------------------------------------ accumulators
    # "scalars that are exclusively the targets of floating point adds
    # within the loop" (section 2.2.2)
    lv = Liveness(fn)
    fp_live_in = {r for r in lv.live_in.get(loop.body[0], set())
                  if r.rclass in (RegClass.FP, RegClass.VEC)}
    acc_candidates: Dict[VReg, bool] = {}
    for blk in body_blocks:
        for instr in blk.instrs:
            for r in instr.regs_written():
                if r not in fp_live_in or not isinstance(r, VReg):
                    continue
                is_acc_add = (instr.op in (Opcode.FADD, Opcode.VADD)
                              and any(is_reg(s) and s == r for s in instr.srcs))
                prev = acc_candidates.get(r, True)
                acc_candidates[r] = prev and is_acc_add
    result.accumulators = sorted(
        (r for r, ok in acc_candidates.items() if ok), key=lambda r: r.uid)

    # ------------------------------------------------------- vectorizable
    reasons: List[str] = []
    if result.multi_block_body:
        reasons.append("loop body has internal control flow")
    if counter_used:
        reasons.append("loop counter value used inside body")
    bad_incs = [a for a, i in arrays.items() if i.inc_per_iter not in (0, 1)]
    if bad_incs:
        reasons.append(f"non-unit stride arrays: {', '.join(sorted(bad_incs))}")
    # the vectorizer widens each access into the aligned stream at the
    # walked pointer itself; an access at a non-zero offset (a stencil's
    # X[1]) would become an unaligned vector load
    offset_arrays = sorted({
        instr.mem.array for blk in body_blocks for instr in blk.instrs
        if instr.mem is not None and instr.mem.array is not None
        and instr.op is not Opcode.PREFETCH and instr.mem.disp != 0})
    if offset_arrays:
        reasons.append("non-zero-offset accesses: "
                       + ", ".join(offset_arrays))

    # loop-carried FP scalars must be accumulators or loop invariants
    for blk in body_blocks:
        for instr in blk.instrs:
            if instr.op in _VECTORIZABLE_OPS:
                continue
            reasons.append(f"unvectorizable op {instr.op.value}")
            break
        else:
            continue
        break
    written_in_body: Set[VReg] = set()
    for blk in body_blocks:
        for instr in blk.instrs:
            for r in instr.regs_written():
                if isinstance(r, VReg):
                    written_in_body.add(r)
    for r in fp_live_in:
        if r in written_in_body and r not in result.accumulators:
            reasons.append(f"loop-carried scalar {r.name!r} is not a "
                           "pure add accumulator")
    result.not_vectorizable_reasons = sorted(set(reasons))
    result.vectorizable = not reasons

    # ----------------------------------------------------- alignment
    # a pointer is aligned at loop entry if (a) the loop is entered only
    # once (its preheader is not re-reachable from its exit — nested
    # tuned loops restart with arbitrary offsets), and (b) any pointer
    # writes outside the loop move by multiples of the vector width
    loop_blocks = set(loop.body) | {loop.latch}
    reentered = loop.preheader in _reachable_from(fn, loop.exit)
    for arr, reg in loop.pointers.items():
        if reentered:
            continue
        ok = True
        for blk in fn.blocks:
            if blk.name in loop_blocks:
                continue
            for instr in blk.instrs:
                if any(r == reg for r in instr.regs_written()):
                    from ..ir import Imm as _Imm
                    if instr.op is Opcode.ADD \
                            and isinstance(instr.srcs[1], _Imm) \
                            and instr.srcs[1].value % 16 == 0:
                        continue
                    ok = False
        if ok:
            result.aligned_arrays.add(arr)

    # -------------------------------------------------------- max unroll
    # unrolling a countable loop with a remainder loop is always safe;
    # cap it so the search space stays sane and the front-end budget is
    # the binding constraint in practice
    result.max_unroll = MAX_UNROLL
    return result
