"""Deep-cloning of IR functions and regions.

``clone_function`` lets the compiler keep the lowered HIL function
pristine while each ``compile(params)`` call mutates its own copy —
the iterative search compiles the same kernel hundreds of times.

``clone_region`` is the engine behind loop unrolling and remainder-loop
generation: it copies a set of blocks, renames labels with a suffix,
remaps internal branch targets, and renames the *private* registers
(those whose live range is contained within the region) while keeping
loop-carried registers (pointers, counters, accumulators) shared.
"""

from __future__ import annotations

import copy as _copy
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ir import (BasicBlock, Function, Instruction, Label, LoopDescriptor,
                  Mem, Opcode, Param, Reg, VReg)
from ..ir.dataflow import Liveness
from ..ir.operands import is_reg


def clone_function(fn: Function) -> Function:
    """Structural deep copy.  Registers are shared (they are immutable
    value objects); blocks and instructions are fresh."""
    new_blocks = [BasicBlock(b.name, [i.copy() for i in b.instrs])
                  for b in fn.blocks]
    new_loop: Optional[LoopDescriptor] = None
    if fn.loop is not None:
        lp = fn.loop
        new_loop = LoopDescriptor(
            header=lp.header, body=list(lp.body), latch=lp.latch,
            preheader=lp.preheader, exit=lp.exit, counter=lp.counter,
            start=lp.start, end=lp.end, step=lp.step,
            pointers=dict(lp.pointers), elem=lp.elem,
            ptr_incs=dict(lp.ptr_incs), unroll=lp.unroll,
            vectorized=lp.vectorized, veclen=lp.veclen,
            cleanup_body=list(lp.cleanup_body),
            block_fetch=lp.block_fetch)
    new = Function(fn.name, list(fn.params), new_blocks, ret=fn.ret,
                   loop=new_loop, stack_slots=dict(fn.stack_slots))
    return new


def _retarget(instr: Instruction, mapping: Dict[str, str]) -> None:
    if instr.is_branch and instr.srcs and isinstance(instr.srcs[0], Label):
        tgt = instr.srcs[0].name
        if tgt in mapping:
            instr.srcs = (Label(mapping[tgt]),) + instr.srcs[1:]


def private_registers(fn: Function, region: List[str]) -> Set[VReg]:
    """Virtual registers defined in the region whose values never
    flow across a region iteration boundary: not live into the region
    entry and not live out of the region's last block toward code
    outside the region.  These are the registers unrolling renames."""
    lv = Liveness(fn)
    entry = region[0]
    live_in_entry = lv.live_in[entry]
    region_set = set(region)

    defined: Set[VReg] = set()
    for name in region:
        for instr in fn.block(name).instrs:
            for r in instr.regs_written():
                if isinstance(r, VReg):
                    defined.add(r)

    private: Set[VReg] = set()
    for r in defined:
        if r in live_in_entry:
            continue  # loop-carried (accumulator / pointer / counter)
        # live out of the region into non-region blocks?
        escapes = False
        for name in region:
            blk = fn.block(name)
            for succ in fn.successors(blk):
                if succ not in region_set and r in lv.live_in.get(succ, ()):
                    escapes = True
                    break
            if escapes:
                break
        if not escapes:
            private.add(r)
    return private


def clone_region(fn: Function, region: List[str], suffix: str,
                 shared: Optional[Set[Reg]] = None,
                 rename_private: bool = True,
                 reg_map: Optional[Dict[Reg, Reg]] = None,
                 ) -> Tuple[List[BasicBlock], Dict[str, str]]:
    """Clone the blocks named in ``region``.

    Returns the new blocks (in the same order) and the name mapping.
    Branch targets *inside* the region are remapped; branches out of the
    region keep their targets.  If ``rename_private``, registers private
    to the region get fresh VRegs (per-copy renaming used by unrolling);
    explicit ``reg_map`` entries take precedence.
    """
    mapping = {name: f"{name}{suffix}" for name in region}
    rmap: Dict[Reg, Reg] = dict(reg_map or {})
    if rename_private:
        # sorted by uid: this loop *mints* fresh VRegs, so iterating the
        # set in hash order (which depends on absolute uid values, i.e.
        # on how many compiles ran before) would hand out the new uids
        # in a history-dependent order and change downstream uid-keyed
        # decisions (allocation tie-breaks, spill-slot order)
        for r in sorted(private_registers(fn, region),
                        key=lambda r: r.uid):
            if shared and r in shared:
                continue
            if r not in rmap:
                rmap[r] = VReg(r.name, r.rclass, r.dtype)

    new_blocks: List[BasicBlock] = []
    for name in region:
        src = fn.block(name)
        blk = BasicBlock(mapping[name])
        for instr in src.instrs:
            ni = instr.substitute(rmap) if rmap else instr.copy()
            _retarget(ni, mapping)
            blk.instrs.append(ni)
        new_blocks.append(blk)
    return new_blocks, mapping
