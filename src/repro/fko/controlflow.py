"""Control-flow repeatable transforms.

"Finally, we perform branch chaining, useless jump elimination, and
useless label elimination, which, when applied together, merges basic
blocks (critical after extensive loop unrolling)." (section 2.2.4)

All passes keep the function's :class:`LoopDescriptor` consistent —
block deletions and merges update the descriptor's block-name lists.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir import BasicBlock, Function, Instruction, Label, Opcode
from ..ir.instructions import BRANCH_OPS
from ..obs.core import count as _obs_count


def _descriptor_names(fn: Function) -> Set[str]:
    """Blocks the loop descriptor pins by name (never deleted/renamed)."""
    if fn.loop is None:
        return set()
    lp = fn.loop
    return {lp.header, lp.latch, lp.preheader, lp.exit}


def _drop_from_descriptor(fn: Function, name: str) -> None:
    if fn.loop is None:
        return
    lp = fn.loop
    if name in lp.body:
        lp.body.remove(name)
    if name in lp.cleanup_body:
        lp.cleanup_body.remove(name)


def remove_unreachable(fn: Function) -> bool:
    """Delete blocks not reachable from the entry."""
    reachable = fn.reachable()
    doomed = [b.name for b in fn.blocks if b.name not in reachable]
    pinned = _descriptor_names(fn)
    changed = False
    for name in doomed:
        if name in pinned:
            continue
        _drop_from_descriptor(fn, name)
        fn.remove_block(name)
        changed = True
    return changed


def _retarget_all(fn: Function, old: str, new: str) -> None:
    for blk in fn.blocks:
        for instr in blk.instrs:
            if instr.op in BRANCH_OPS and instr.srcs \
                    and instr.srcs[0].__class__ is Label \
                    and instr.srcs[0].name == old:
                instr.srcs = (Label(new),) + instr.srcs[1:]


def chain_branches(fn: Function) -> bool:
    """Branch chaining: a branch to a block that only jumps elsewhere is
    retargeted to the final destination."""
    # resolve trampoline chains (with cycle guard)
    resolve: Dict[str, str] = {}
    for blk in fn.blocks:
        if len(blk.instrs) == 1 and blk.instrs[0].op is Opcode.JMP:
            resolve[blk.name] = blk.instrs[0].target.name

    def final(name: str) -> str:
        seen = set()
        while name in resolve and name not in seen:
            seen.add(name)
            name = resolve[name]
        return name

    changed = False
    for blk in fn.blocks:
        for instr in blk.instrs:
            if instr.op in BRANCH_OPS and instr.srcs \
                    and instr.srcs[0].__class__ is Label:
                tgt = instr.srcs[0].name
                f = final(tgt)
                if f != tgt:
                    instr.srcs = (Label(f),) + instr.srcs[1:]
                    changed = True
    return changed


def remove_useless_jumps(fn: Function) -> bool:
    """Remove a trailing JMP whose target is the next block in layout."""
    changed = False
    for i, blk in enumerate(fn.blocks[:-1]):
        if blk.instrs and blk.instrs[-1].op is Opcode.JMP:
            if blk.instrs[-1].target.name == fn.blocks[i + 1].name:
                blk.instrs.pop()
                changed = True
    return changed


def remove_empty_blocks(fn: Function) -> bool:
    """Delete empty blocks: branches to them are redirected to their
    fallthrough successor; layout fallthrough is preserved by deletion."""
    pinned = _descriptor_names(fn)
    changed = False
    i = 0
    while i < len(fn.blocks):
        blk = fn.blocks[i]
        if blk.instrs or blk.name in pinned or i + 1 >= len(fn.blocks):
            i += 1
            continue
        succ = fn.blocks[i + 1].name
        _retarget_all(fn, blk.name, succ)
        _drop_from_descriptor(fn, blk.name)
        fn.remove_block(blk.name)
        changed = True
    return changed


def merge_blocks(fn: Function) -> bool:
    """Merge B into A when A falls through (or jumps) to B and B has no
    other predecessors and is not pinned by the loop descriptor."""
    pinned = _descriptor_names(fn)
    body: Set[str] = set()
    cln: Set[str] = set()
    if fn.loop is not None:
        body = set(fn.loop.body)
        cln = set(fn.loop.cleanup_body)
    changed = False

    # predecessor lists and branch-target counts, computed once per
    # sweep and refreshed only after a successful merge (each candidate
    # previously paid two full-function scans)
    def _edge_maps():
        succ = fn.successor_map()
        preds: Dict[str, List[str]] = {b.name: [] for b in fn.blocks}
        for name, ss in succ.items():
            for s in ss:
                preds[s].append(name)
        counts: Dict[str, int] = {}
        for blk in fn.blocks:
            for instr in blk.instrs:
                if instr.op in BRANCH_OPS and instr.srcs \
                        and instr.srcs[0].__class__ is Label:
                    tn = instr.srcs[0].name
                    counts[tn] = counts.get(tn, 0) + 1
        return preds, counts

    preds_map, branch_counts = _edge_maps()
    i = 0
    while i < len(fn.blocks) - 1:
        a = fn.blocks[i]
        b = fn.blocks[i + 1]
        if b.name in pinned:
            i += 1
            continue
        # only merge within one region: body-into-body, cleanup-into-
        # cleanup, or fully outside the loop — never across a boundary
        # (merging the body entry into the header would dissolve the loop)
        regions_a = (a.name in body, a.name in cln,
                     a.name in pinned)
        regions_b = (b.name in body, b.name in cln, False)
        if regions_a[:2] != regions_b[:2] or a.name in pinned:
            i += 1
            continue
        # A must reach B only by an unconditional edge: a trailing JMP
        # or a pure fallthrough.  A trailing *conditional* branch would
        # end up buried mid-block by the merge, breaking the straight-
        # line block invariant that liveness/DCE depend on.
        term = a.instrs[-1] if a.instrs else None
        jmp_to_b = (term is not None and term.op is Opcode.JMP
                    and term.target.name == b.name)
        pure_fallthrough = a.falls_through and (
            not a.instrs or not a.instrs[-1].is_branch)
        if not (jmp_to_b or pure_fallthrough):
            i += 1
            continue
        preds = preds_map[b.name]
        if preds != [a.name]:
            i += 1
            continue
        # B must not be the target of any *other* branch instruction —
        # e.g. the join of an if-diamond is jumped to by a mid-block
        # conditional and cannot be merged into its fallthrough pred
        n_branches_to_b = branch_counts.get(b.name, 0)
        allowed = 1 if (term is not None and term.op is Opcode.JMP
                        and term.target.name == b.name) else 0
        if n_branches_to_b > allowed:
            i += 1
            continue
        # safe to merge
        if term is not None and term.op is Opcode.JMP \
                and term.target.name == b.name:
            a.instrs.pop()
        a.instrs.extend(b.instrs)
        # descriptor: references to b by body lists move to a
        if fn.loop is not None:
            lp = fn.loop
            for lst in (lp.body, lp.cleanup_body):
                if b.name in lst:
                    lst.remove(b.name)
                    if a.name not in lst and a.name not in pinned:
                        pass  # a is already listed if it is body code
        fn.remove_block(b.name)
        changed = True
        preds_map, branch_counts = _edge_maps()
    return changed


def add_explicit_terminators(fn: Function, region: List[str]) -> None:
    """Give every region block an explicit JMP to its fallthrough
    successor, so the blocks can be re-laid-out (used before unrolling
    multi-block loop bodies)."""
    for name in region:
        idx = fn.block_index(name)
        blk = fn.blocks[idx]
        if blk.falls_through and idx + 1 < len(fn.blocks):
            blk.append(Instruction(Opcode.JMP, None,
                                   (Label(fn.blocks[idx + 1].name),),
                                   comment="explicit fallthrough"))


def cleanup_cfg(fn: Function, max_iters: int = 8) -> bool:
    """Run all control-flow cleanups to a fixed point."""
    any_change = False
    n_blocks_before = len(fn.blocks)
    for _ in range(max_iters):
        changed = False
        changed |= remove_unreachable(fn)
        changed |= chain_branches(fn)
        changed |= remove_useless_jumps(fn)
        changed |= remove_empty_blocks(fn)
        changed |= merge_blocks(fn)
        any_change |= changed
        if not changed:
            break
    removed = n_blocks_before - len(fn.blocks)
    if removed:
        _obs_count("cfg.blocks_removed", removed)
    return any_change
