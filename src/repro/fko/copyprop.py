"""Copy propagation and dead-code elimination (repeatable transforms).

"In register usage optimization, we support two types of register
allocation and several forms of copy propagation." (section 2.2.4)

* :func:`propagate_copies` — forward, within blocks: after
  ``mov d, s`` later reads of ``d`` use ``s`` until either is redefined.
* :func:`eliminate_dead_code` — liveness-based removal of instructions
  whose results are never used (side-effect-free only).

These two run in an optimization block with the peephole and control
flow cleanups, repeating while they keep transforming — the synergy the
paper describes (copy propagation exposes dead copies, DCE removes
them, block merging exposes more propagation, ...).
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir import Function, Instruction, Mem, Opcode, Reg
from ..ir.dataflow import Liveness
from ..ir.instructions import TERMINATOR_OPS
from ..ir.operands import AReg, VReg, is_reg
from ..obs.core import count as _obs_count

_COPY_OPS = (Opcode.MOV, Opcode.FMOV, Opcode.VMOV)

#: ops that must never be deleted even when their result looks dead
_SIDE_EFFECTS = {Opcode.ST, Opcode.FST, Opcode.FSTNT, Opcode.VST,
                 Opcode.VSTNT, Opcode.PREFETCH, Opcode.RET, Opcode.JMP,
                 Opcode.JCC, Opcode.CMP, Opcode.TEST, Opcode.FCMP}


def propagate_copies(fn: Function) -> bool:
    """Forward copy propagation within each block."""
    changed = False
    n_rewritten = 0
    for block in fn.blocks:
        available: Dict[Reg, Reg] = {}

        def kill(reg: Reg) -> None:
            available.pop(reg, None)
            for d in [d for d, s in available.items() if s == reg]:
                available.pop(d, None)

        for instr in block.instrs:
            if available:   # nothing to rewrite or kill until a copy
                # rewrite sources through available copies
                sub = {}
                for r in instr.regs_read():
                    s = available.get(r)
                    if s is not None and s != r:
                        sub[r] = s
                if sub:
                    # reads only: an instruction that reads and
                    # redefines a copied register must keep its dst
                    instr.substitute_reads_inplace(sub)
                    changed = True
                    n_rewritten += 1
                # update available set
                for d in instr.regs_written():
                    kill(d)
            if instr.op in _COPY_OPS and is_reg(instr.dst) \
                    and len(instr.srcs) == 1 and is_reg(instr.srcs[0]) \
                    and instr.dst.rclass is instr.srcs[0].rclass \
                    and instr.dst.dtype == instr.srcs[0].dtype:
                available[instr.dst] = instr.srcs[0]
    if n_rewritten:
        _obs_count("cp.rewritten", n_rewritten)
    return changed


def eliminate_dead_code(fn: Function) -> bool:
    """Remove side-effect-free instructions whose destination is dead.

    Each block is scanned *backward* with a running live set, so a
    removed instruction's own reads no longer keep its upstream
    producers alive — whole dead chains within a block fall in one pass.
    The result is the same fixed point the forward formulation reached
    over several :func:`run_copy_opt` iterations (cross-block chains
    still take one iteration per block hop), with fewer full liveness
    recomputations."""
    changed = False
    n_removed = 0
    lv = Liveness(fn)
    for block in fn.blocks:
        live = set(lv.live_out[block.name])
        kept_rev: List[Instruction] = []
        for instr in reversed(block.instrs):
            op = instr.op
            dst = instr.dst
            dst_cls = dst.__class__
            dst_is_reg = dst_cls is VReg or dst_cls is AReg
            if dst_is_reg and op not in _SIDE_EFFECTS \
                    and op not in TERMINATOR_OPS:
                # self-copies are dead regardless of liveness
                if op in _COPY_OPS and len(instr.srcs) == 1 \
                        and instr.srcs[0] == dst:
                    changed = True
                    n_removed += 1
                    continue
                if dst not in live:
                    changed = True  # dead value: drop it
                    n_removed += 1
                    continue
            kept_rev.append(instr)
            # inlined regs_written/regs_read walk (hot: per surviving
            # instruction, and list building dominated this scan)
            if dst_is_reg:
                live.discard(dst)
            elif dst_cls is Mem:
                live.add(dst.base)
                if dst.index is not None:
                    live.add(dst.index)
            for s in instr.srcs:
                cls = s.__class__
                if cls is VReg or cls is AReg:
                    live.add(s)
                elif cls is Mem:
                    live.add(s.base)
                    if s.index is not None:
                        live.add(s.index)
        kept_rev.reverse()
        block.instrs = kept_rev
    if n_removed:
        _obs_count("cp.dead_removed", n_removed)
    return changed


def run_copy_opt(fn: Function, max_iters: int = 6) -> bool:
    """Copy propagation + DCE to a fixed point.

    Both passes are deterministic functions of the IR, so a pass that
    reported no change stays a no-op until the *other* pass transforms
    the function — skipping its confirming re-run is exact, and saves
    the final liveness build DCE would otherwise spend proving a
    fixed point already reached."""
    any_change = False
    cp_stale = dce_stale = False
    for _ in range(max_iters):
        c1 = False if cp_stale else propagate_copies(fn)
        cp_stale = True
        if c1:
            dce_stale = False
        c2 = False if dce_stale else eliminate_dead_code(fn)
        dce_stale = True
        if c2:
            cp_stale = False
        any_change |= c1 or c2
        if not (c1 or c2):
            break
    return any_change
