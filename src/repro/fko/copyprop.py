"""Copy propagation and dead-code elimination (repeatable transforms).

"In register usage optimization, we support two types of register
allocation and several forms of copy propagation." (section 2.2.4)

* :func:`propagate_copies` — forward, within blocks: after
  ``mov d, s`` later reads of ``d`` use ``s`` until either is redefined.
* :func:`eliminate_dead_code` — liveness-based removal of instructions
  whose results are never used (side-effect-free only).

These two run in an optimization block with the peephole and control
flow cleanups, repeating while they keep transforming — the synergy the
paper describes (copy propagation exposes dead copies, DCE removes
them, block merging exposes more propagation, ...).
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir import Function, Instruction, Mem, Opcode, Reg
from ..ir.dataflow import Liveness
from ..ir.operands import is_reg
from ..obs.core import count as _obs_count

_COPY_OPS = (Opcode.MOV, Opcode.FMOV, Opcode.VMOV)

#: ops that must never be deleted even when their result looks dead
_SIDE_EFFECTS = {Opcode.ST, Opcode.FST, Opcode.FSTNT, Opcode.VST,
                 Opcode.VSTNT, Opcode.PREFETCH, Opcode.RET, Opcode.JMP,
                 Opcode.JCC, Opcode.CMP, Opcode.TEST, Opcode.FCMP}


def propagate_copies(fn: Function) -> bool:
    """Forward copy propagation within each block."""
    changed = False
    n_rewritten = 0
    for block in fn.blocks:
        available: Dict[Reg, Reg] = {}

        def kill(reg: Reg) -> None:
            available.pop(reg, None)
            for d in [d for d, s in available.items() if s == reg]:
                available.pop(d, None)

        for instr in block.instrs:
            # rewrite sources through available copies
            sub = {}
            for r in instr.regs_read():
                s = available.get(r)
                if s is not None and s != r:
                    sub[r] = s
            if sub:
                ni = instr.substitute(sub)
                instr.dst, instr.srcs = ni.dst, ni.srcs
                changed = True
                n_rewritten += 1
            # update available set
            for d in instr.regs_written():
                kill(d)
            if instr.op in _COPY_OPS and is_reg(instr.dst) \
                    and len(instr.srcs) == 1 and is_reg(instr.srcs[0]) \
                    and instr.dst.rclass is instr.srcs[0].rclass \
                    and instr.dst.dtype == instr.srcs[0].dtype:
                available[instr.dst] = instr.srcs[0]
    if n_rewritten:
        _obs_count("cp.rewritten", n_rewritten)
    return changed


def eliminate_dead_code(fn: Function) -> bool:
    """Remove side-effect-free instructions whose destination is dead."""
    changed = False
    n_removed = 0
    lv = Liveness(fn)
    for block in fn.blocks:
        live_after = lv.per_instruction(block)
        keep: List[Instruction] = []
        for instr, live in zip(block.instrs, live_after):
            if instr.op in _SIDE_EFFECTS or instr.is_terminator \
                    or instr.dst is None or not is_reg(instr.dst):
                keep.append(instr)
                continue
            # self-copies are dead regardless of liveness
            if instr.op in _COPY_OPS and len(instr.srcs) == 1 \
                    and instr.srcs[0] == instr.dst:
                changed = True
                n_removed += 1
                continue
            if instr.dst in live:
                keep.append(instr)
                continue
            changed = True  # dead value: drop it
            n_removed += 1
        block.instrs = keep
    if n_removed:
        _obs_count("cp.dead_removed", n_removed)
    return changed


def run_copy_opt(fn: Function, max_iters: int = 6) -> bool:
    """Copy propagation + DCE to a fixed point."""
    any_change = False
    for _ in range(max_iters):
        c1 = propagate_copies(fn)
        c2 = eliminate_dead_code(fn)
        any_change |= c1 or c2
        if not (c1 or c2):
            break
    return any_change
