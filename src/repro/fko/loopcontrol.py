"""LC — optimize loop control (section 2.2.3).

"Rearranges loop indexing (when possible) to avoid (on some
architectures) unnecessary loop branch comparisons ..."

Implemented as loop rotation: the per-trip test moves from the header
to the latch, so one trip costs ``add; cmp; jcc`` instead of
``cmp; jcc; ...; add; jmp`` — one fewer branch per iteration.  The old
header remains as a once-executed zero-trip guard, and the descriptor's
``header`` becomes the body entry (the latch's back edge target).
"""

from __future__ import annotations

from ..errors import TransformError
from ..ir import Cond, Function, Instruction, Label, Opcode
from ..obs.core import count as _obs_count


def optimize_loop_control(fn: Function) -> None:
    loop = fn.loop
    if loop is None:
        raise TransformError(f"{fn.name}: no tuned loop")

    header = fn.block(loop.header)
    latch = fn.block(loop.latch)

    # locate the header's compare + exit branch (the guard test)
    cmp_instr = None
    jcc_instr = None
    for instr in header.instrs:
        if instr.op is Opcode.CMP and cmp_instr is None:
            cmp_instr = instr
        if instr.op is Opcode.JCC and jcc_instr is None:
            jcc_instr = instr
    if cmp_instr is None or jcc_instr is None:
        raise TransformError(f"{fn.name}: header test not found for LC")

    # locate the latch's back edge
    if not latch.instrs or latch.instrs[-1].op is not Opcode.JMP:
        raise TransformError(f"{fn.name}: latch back edge not found for LC")
    back = latch.instrs[-1]
    if back.target.name != loop.header:
        raise TransformError(f"{fn.name}: latch does not jump to header")

    body_entry = loop.body[0]
    continue_cond = jcc_instr.cond.negate()

    # rewrite the latch: counter update ; cmp ; jcc-continue -> body entry,
    # falling through to the loop continuation (drain/cleanup/exit)
    latch.instrs.pop()  # remove "jmp header"
    latch.append(Instruction(Opcode.CMP, None, cmp_instr.srcs,
                             comment="rotated loop test"))
    latch.append(Instruction(Opcode.JCC, None, (Label(body_entry),),
                             cond=continue_cond, comment="loop back edge"))

    # the latch now falls through to whatever the loop used to exit to;
    # make that explicit so block layout stays flexible
    cont = jcc_instr.target.name
    idx = fn.block_index(loop.latch)
    if idx + 1 >= len(fn.blocks) or fn.blocks[idx + 1].name != cont:
        latch.append(Instruction(Opcode.JMP, None, (Label(cont),)))

    # the old header remains as the zero-trip guard; the rotated loop's
    # header (back edge target) is now the body entry
    loop.header = body_entry
    _obs_count("lc.rotated")
