"""Shared loop-shape machinery for the fundamental transforms.

SIMD vectorization and unrolling both change how many source elements
one loop trip consumes; both need (a) an adjusted *main-loop bound* so
the loop stops while at least one full trip of elements remains, (b) a
scalar *cleanup loop* for the remainder, and (c) — for reductions — a
*drain block* on the main loop's exit edge where vector/expanded
accumulators are folded back into the original scalar.

Block layout maintained by these helpers::

    preheader | header | body... | latch | [drain] | [cleanup loop] | exit

The main loop's exit branch (in the header, or in the latch after LC)
always targets the first block after the latch in this chain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..errors import TransformError
from ..ir import (BasicBlock, Cond, DType, Function, Imm, Instruction,
                  Label, LoopDescriptor, Opcode, RegClass, VReg)
from .clonefn import clone_region
from .controlflow import add_explicit_terminators


def _find_header_exit_branch(fn: Function,
                             loop: LoopDescriptor) -> Optional[Instruction]:
    """The header's exit JCC (canonical, test-at-top shape).  After LC
    rotation the header coincides with the body entry and has no exit
    branch; returns None in that case."""
    if loop.header in loop.body:
        return None  # rotated (LC) shape
    header = fn.block(loop.header)
    for instr in header.instrs:
        if instr.op is Opcode.JCC:
            return instr
    raise TransformError(f"{fn.name}: loop header has no exit branch")


def main_exit_target(fn: Function, loop: LoopDescriptor) -> str:
    br = _find_header_exit_branch(fn, loop)
    if br is not None:
        return br.target.name
    # rotated shape: the latch's fall-through / trailing jump is the exit
    latch = fn.block(loop.latch)
    if latch.instrs and latch.instrs[-1].op is Opcode.JMP:
        return latch.instrs[-1].target.name
    idx = fn.block_index(loop.latch)
    if idx + 1 < len(fn.blocks):
        return fn.blocks[idx + 1].name
    raise TransformError(f"{fn.name}: rotated loop has no exit continuation")


def retarget_main_exit(fn: Function, loop: LoopDescriptor, new: str) -> None:
    br = _find_header_exit_branch(fn, loop)
    if br is not None:
        br.srcs = (Label(new),)
        return
    latch = fn.block(loop.latch)
    if latch.instrs and latch.instrs[-1].op is Opcode.JMP:
        latch.instrs[-1].srcs = (Label(new),)
    else:
        latch.append(Instruction(Opcode.JMP, None, (Label(new),)))


def set_main_bound(fn: Function, loop: LoopDescriptor, epi: int) -> None:
    """Adjust the main loop to consume ``epi`` source elements per trip:
    compute ``end_main`` in the preheader, point the header compare at
    it, and scale the latch counter step."""
    if abs(loop.step) != 1:
        raise TransformError(
            f"{fn.name}: only unit-step loops can be widened (step={loop.step})")

    pre = fn.block(loop.preheader)
    header = fn.block(loop.header)
    latch = fn.block(loop.latch)

    # header compare: cmp counter, <bound>
    cmp_instr = None
    for instr in header.instrs:
        if instr.op is Opcode.CMP and instr.srcs \
                and instr.srcs[0] == loop.counter:
            cmp_instr = instr
            break
    if cmp_instr is None:
        raise TransformError(f"{fn.name}: header compare not found")

    if epi == 1:
        cmp_instr.srcs = (loop.counter, loop.end)
    else:
        # reuse/update an existing bound computation
        bound_instr = None
        for instr in pre.instrs:
            if instr.comment == "main bound":
                bound_instr = instr
                break
        delta = Imm(epi - 1)
        op = Opcode.SUB if loop.step > 0 else Opcode.ADD
        if bound_instr is None:
            end_main = VReg("end_main", RegClass.GP, DType.I64)
            pre.instrs.append(Instruction(op, end_main, (loop.end, delta),
                                          comment="main bound"))
        else:
            end_main = bound_instr.dst
            bound_instr.op = op
            bound_instr.srcs = (loop.end, delta)
        cmp_instr.srcs = (loop.counter, end_main)

    # latch: add counter, counter, step  ->  step * epi
    for instr in latch.instrs:
        if instr.op is Opcode.ADD and instr.dst == loop.counter:
            instr.srcs = (loop.counter, Imm(loop.step * epi))
            return
    raise TransformError(f"{fn.name}: latch counter update not found")


def get_or_create_drain(fn: Function, loop: LoopDescriptor) -> BasicBlock:
    """The block on the main loop's exit edge where accumulators drain.
    Created immediately after the latch so both the header's exit branch
    (pre-LC) and the latch fallthrough (post-LC) reach it."""
    drain_name = f"{loop.latch}_drain"
    if fn.has_block(drain_name):
        return fn.block(drain_name)
    cont = main_exit_target(fn, loop)
    drain = BasicBlock(drain_name)
    fn.add_block(drain, after=loop.latch)
    # the drain must flow to wherever the loop used to exit; if that
    # block is not next in layout, jump explicitly
    idx = fn.block_index(drain_name)
    if idx + 1 >= len(fn.blocks) or fn.blocks[idx + 1].name != cont:
        drain.append(Instruction(Opcode.JMP, None, (Label(cont),)))
    retarget_main_exit(fn, loop, drain_name)
    return drain


def ensure_cleanup_loop(fn: Function, loop: LoopDescriptor) -> None:
    """Create the scalar remainder loop (a clone of the *current* body —
    callers must invoke this before rewriting the body).  Idempotent."""
    if loop.cleanup_body:
        return

    cont = main_exit_target(fn, loop)  # where the loop exits today
    head_name = f"{loop.header}_cln"
    latch_name = f"{loop.latch}_cln"

    # clone the body region; branches to the main latch are retargeted
    # to the cleanup latch afterwards
    region = list(loop.body)
    add_explicit_terminators(fn, region)
    blocks, mapping = clone_region(fn, region, "_cln", rename_private=True)
    for blk in blocks:
        for instr in blk.instrs:
            if instr.is_branch and instr.target is not None:
                tname = instr.target.name
                if tname == loop.latch:
                    instr.srcs = (Label(latch_name),)
                elif tname == loop.header:
                    instr.srcs = (Label(head_name),)

    head = BasicBlock(head_name)
    head.append(Instruction(Opcode.CMP, None, (loop.counter, loop.end)))
    exit_cond = Cond.GE if loop.step > 0 else Cond.LE
    head.append(Instruction(Opcode.JCC, None, (Label(cont),), cond=exit_cond,
                            comment="cleanup exit test"))
    latch = BasicBlock(latch_name)
    latch.append(Instruction(Opcode.ADD, loop.counter,
                             (loop.counter, Imm(loop.step)),
                             comment="cleanup counter step"))
    latch.append(Instruction(Opcode.JMP, None, (Label(head_name),)))

    # layout: ... main latch | [drain] | cln head | cln body | cln latch
    anchor = loop.latch
    drain_name = f"{loop.latch}_drain"
    if fn.has_block(drain_name):
        anchor = drain_name
    fn.add_block(head, after=anchor)
    prev = head.name
    for blk in blocks:
        fn.add_block(blk, after=prev)
        prev = blk.name
    fn.add_block(latch, after=prev)

    # the main loop now exits into the cleanup head
    retarget_main_exit(fn, loop, head_name)
    # if a drain block already exists, its continuation must be updated
    if fn.has_block(drain_name):
        drain = fn.block(drain_name)
        if drain.instrs and drain.instrs[-1].op is Opcode.JMP:
            drain.instrs[-1].srcs = (Label(head_name),)
        retarget_main_exit(fn, loop, drain_name)

    loop.cleanup_body = [head_name] + [b.name for b in blocks] + [latch_name]
