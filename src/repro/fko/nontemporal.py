"""WNT — non-temporal writes (section 2.2.3).

"Our final fundamental transformation is non-temporal writes (WNT),
which employs non-temporal writes on the specified output array.  These
are writes that contain a hint to the caching system that they should
not be retained in the cache, though how this hint is used varies
strongly by architecture."

The architectural variance is modeled in
:mod:`repro.machine.config` (``wnt_*`` policies); this pass only flips
store opcodes for the selected arrays in the tuned loop body.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from ..errors import TransformError
from ..ir import Function, Opcode
from ..obs.core import count as _obs_count

_NT = {Opcode.FST: Opcode.FSTNT, Opcode.VST: Opcode.VSTNT}


def apply_nontemporal(fn: Function,
                      arrays: Optional[Iterable[str]] = None) -> int:
    """Convert stores to the given arrays (default: all arrays stored in
    the loop body) to non-temporal stores.  Returns #stores converted."""
    loop = fn.loop
    if loop is None:
        raise TransformError(f"{fn.name}: no tuned loop")
    wanted: Optional[Set[str]] = set(arrays) if arrays is not None else None

    converted = 0
    for name in loop.body:
        for instr in fn.block(name).instrs:
            if instr.op in _NT:
                mem = instr.mem
                if mem is None or mem.array is None:
                    continue  # spill stores are never non-temporal
                if wanted is not None and mem.array not in wanted:
                    continue
                instr.op = _NT[instr.op]
                converted += 1
    _obs_count("wnt.converted", converted)
    return converted
