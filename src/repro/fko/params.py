"""Transform parameters — the optimization space the search explores.

These are the empirically tuned knobs of section 2.2.3/2.3:

* ``sv``      — SIMD vectorization on/off (default on when legal);
* ``unroll``  — loop unrolling factor N_u (applied after SV, so the
  computational unrolling is N_u x veclen);
* ``lc``      — optimize loop control (always beneficial; kept as a knob
  for ablation studies);
* ``ae``      — accumulator expansion: number of accumulators (1 = off;
  the paper reports this as the ":AE" half of "UR:AE");
* ``prefetch``— per-array (instruction type, distance-in-bytes); a
  distance of 0 means no prefetch of that array;
* ``wnt``     — non-temporal writes on the output array(s).

``TransformParams.key()`` gives a hashable identity for caching.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..ir import PrefetchHint
from ..util import check_schema


@dataclass(frozen=True)
class PrefetchParams:
    """Prefetch setting for one array: instruction flavor + distance.

    ``dist`` is in bytes ahead of the current pointer (Table 3's "DST"
    column).  ``hint=None`` or ``dist=0`` disables prefetch ("none:0").
    """

    hint: Optional[PrefetchHint] = None
    dist: int = 0

    @property
    def enabled(self) -> bool:
        return self.hint is not None and self.dist > 0

    def __str__(self) -> str:
        if not self.enabled:
            return "none:0"
        return f"{self.hint.value}:{self.dist}"

    @staticmethod
    def none() -> "PrefetchParams":
        return PrefetchParams(None, 0)


@dataclass
class TransformParams:
    sv: bool = True
    unroll: int = 1
    lc: bool = True
    ae: int = 1
    prefetch: Dict[str, PrefetchParams] = field(default_factory=dict)
    wnt: bool = False
    # Block fetch (AMD's block-prefetch technique, the paper's [14]):
    # reads and writes move in large blocks to minimize bus turnarounds.
    # The paper lists it as planned FKO work; here it is implemented and
    # searchable when the space enables it.
    block_fetch: bool = False
    # repeatable-pass switches (for ablations; all on in normal use)
    copy_propagation: bool = True
    peephole: bool = True
    cf_cleanup: bool = True
    register_allocation: str = "global"   # 'global' | 'local' | 'off'
    # Namespaced extension point for transforms layered above the inner
    # pipeline (the Level-3 tiling pass stores ``tile:<ivar> -> size``
    # here).  An absent/zero entry means "off"; an empty ``ext`` keeps
    # ``key()``/``to_dict()`` byte-identical to the pre-extension
    # schema, so eval-cache digests and wire payloads of existing
    # kernels never move.
    ext: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.unroll < 1:
            raise ValueError(f"unroll must be >= 1, got {self.unroll}")
        if self.ae < 1:
            raise ValueError(f"ae must be >= 1, got {self.ae}")
        if self.register_allocation not in ("global", "local", "off"):
            raise ValueError(
                f"unknown register allocator {self.register_allocation!r}")
        # drop disabled entries so "no extension" has one spelling
        if self.ext:
            self.ext = {k: int(v) for k, v in self.ext.items() if int(v)}
        for k, v in self.ext.items():
            if v < 0:
                raise ValueError(f"extension {k!r} must be >= 0, got {v}")

    def pf(self, array: str) -> PrefetchParams:
        return self.prefetch.get(array, PrefetchParams.none())

    def tiles(self) -> Dict[str, int]:
        """Tile sizes by loop variable (the ``tile:`` extension slice)."""
        return {k.split(":", 1)[1]: v for k, v in self.ext.items()
                if k.startswith("tile:") and v > 0}

    def key(self) -> Tuple:
        """Hashable identity (used as a cache key by the search)."""
        pf = tuple(sorted((a, p.hint.value if p.hint else "", p.dist)
                          for a, p in self.prefetch.items()))
        base = (self.sv, self.unroll, self.lc, self.ae, pf, self.wnt,
                self.block_fetch, self.copy_propagation, self.peephole,
                self.cf_cleanup, self.register_allocation)
        if self.ext:   # appended only when present: legacy keys stable
            base += (tuple(sorted(self.ext.items())),)
        return base

    def copy(self, **changes) -> "TransformParams":
        """A modified copy (prefetch dict is copied, not shared)."""
        new = TransformParams(
            sv=self.sv, unroll=self.unroll, lc=self.lc, ae=self.ae,
            prefetch=dict(self.prefetch), wnt=self.wnt,
            block_fetch=self.block_fetch,
            copy_propagation=self.copy_propagation, peephole=self.peephole,
            cf_cleanup=self.cf_cleanup,
            register_allocation=self.register_allocation,
            ext=dict(self.ext))
        for k, v in changes.items():
            if not hasattr(new, k):
                raise AttributeError(f"unknown parameter {k!r}")
            setattr(new, k, v)
        if changes:
            new.__post_init__()   # re-normalize (e.g. a replaced ext)
        return new

    def with_ext(self, name: str, value: int) -> "TransformParams":
        """A copy with one extension entry set (0 removes it)."""
        new = self.copy()
        ext = dict(new.ext)
        if int(value):
            ext[name] = int(value)
        else:
            ext.pop(name, None)
        new.ext = ext
        return new

    def with_pf(self, array: str, hint: Optional[PrefetchHint],
                dist: int) -> "TransformParams":
        new = self.copy()
        new.prefetch[array] = PrefetchParams(hint, dist)
        return new

    def describe(self) -> str:
        """Table-3-style one-line description."""
        pf = " ".join(f"{a}={p}" for a, p in sorted(self.prefetch.items()))
        tiles = self.tiles()
        tile_s = ("TILE=" + ",".join(f"{iv}:{t}"
                                     for iv, t in sorted(tiles.items()))
                  if tiles else "")
        return (f"SV={'Y' if self.sv else 'N'} WNT={'Y' if self.wnt else 'N'} "
                f"UR={self.unroll} AE={self.ae if self.ae > 1 else 0}"
                + (" BF=Y" if self.block_fetch else "")
                + (f" {tile_s}" if tile_s else "")
                + (f" {pf}" if pf else ""))

    # -- JSON round-trip (evaluation cache, checkpoints, traces) --------
    def to_dict(self) -> Dict:
        out = {
            "schema": 1,
            "sv": self.sv, "unroll": self.unroll, "lc": self.lc,
            "ae": self.ae, "wnt": self.wnt, "block_fetch": self.block_fetch,
            "copy_propagation": self.copy_propagation,
            "peephole": self.peephole, "cf_cleanup": self.cf_cleanup,
            "register_allocation": self.register_allocation,
            "prefetch": {a: [p.hint.value if p.hint else None, p.dist]
                         for a, p in sorted(self.prefetch.items())},
        }
        if self.ext:   # emitted only when present: legacy payloads stable
            out["ext"] = {k: int(v) for k, v in sorted(self.ext.items())}
        return out

    @staticmethod
    def from_dict(data: Dict) -> "TransformParams":
        check_schema(data, "TransformParams")
        prefetch = {
            arr: PrefetchParams(PrefetchHint(hint) if hint else None,
                                int(dist))
            for arr, (hint, dist) in data.get("prefetch", {}).items()}
        return TransformParams(
            sv=bool(data.get("sv", True)),
            unroll=int(data.get("unroll", 1)),
            lc=bool(data.get("lc", True)),
            ae=int(data.get("ae", 1)),
            prefetch=prefetch,
            wnt=bool(data.get("wnt", False)),
            block_fetch=bool(data.get("block_fetch", False)),
            copy_propagation=bool(data.get("copy_propagation", True)),
            peephole=bool(data.get("peephole", True)),
            cf_cleanup=bool(data.get("cf_cleanup", True)),
            register_allocation=data.get("register_allocation", "global"),
            ext={k: int(v) for k, v in data.get("ext", {}).items()})


def fko_defaults(line_size: int, elem_size: int, veclen: int,
                 prefetch_arrays: Tuple[str, ...]) -> TransformParams:
    """FKO's default (un-searched) parameter values, per section 2.3:

    "SV=Yes, WNT=No, PF(type,dist)=(prefetchnta, 2*L), UR=L_e, AE=No"

    where L is the line size of the first prefetchable cache and L_e the
    number of elements of the type in such a line (a SIMD vector counts
    as one element when SV applies — the caller passes ``veclen``).
    """
    le = max(1, line_size // (elem_size * max(1, veclen)))
    params = TransformParams(sv=True, unroll=le, lc=True, ae=1, wnt=False)
    for arr in prefetch_arrays:
        params.prefetch[arr] = PrefetchParams(PrefetchHint.NTA, 2 * line_size)
    return params
