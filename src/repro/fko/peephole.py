"""Peephole optimizations exploiting x86's CISC-ness (section 2.2.4).

"We also perform several peephole optimizations that exploit the fact
that the x86 is not a true load/store architecture (relatively
important when the ISA has only eight registers, but the underlying
hardware may have more than a hundred)."

The main pattern folds a load into a following arithmetic op's second
source operand::

    fld  t, [X]          fmul d, a, [X]
    fmul d, a, t   ==>

which removes one instruction, frees register ``t``, and on both
simulated machines trades one load uop for a fused memory operand.
Legality: ``t`` has exactly one use, is dead afterwards, and neither
the address registers nor the memory contents change in between.

Also removes trivial no-ops (``add r, r, #0``; ``mov r, r``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir import Function, Imm, Instruction, Mem, Opcode, Reg
from ..ir.dataflow import Liveness
from ..ir.operands import AReg, VReg, is_reg
from ..obs.core import count as _obs_count

#: ops accepting a memory second source; FSUB/VSUB only fold src2
_FOLDABLE = {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FMAX,
             Opcode.VADD, Opcode.VSUB, Opcode.VMUL, Opcode.VMAX}

_LOADS = {Opcode.FLD: (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FMAX),
          Opcode.VLD: (Opcode.VADD, Opcode.VSUB, Opcode.VMUL, Opcode.VMAX)}


def fold_loads(fn: Function) -> bool:
    """Fold single-use loads into memory operands of FP arithmetic.

    Deadness of ``t`` after its use is decided from a per-block
    read/write event index built in one linear scan: ``t`` is dead
    after position ``j`` iff its next in-block event is a write, or it
    has no later event and is not live out — exactly what a backward
    per-instruction liveness walk computes, without materializing a
    live set per instruction or rescanning the block tail per load."""
    changed = False
    lv = Liveness(fn)
    for block in fn.blocks:
        if not any(ins.op in _LOADS for ins in block.instrs):
            continue
        # (position, is_write) events per register, in block order; the
        # operand walk of regs_read/regs_written is inlined — this index
        # is rebuilt per peephole run and was hot in the compile profile
        events: Dict[Reg, List[tuple]] = {}
        setdefault = events.setdefault
        for j, ins in enumerate(block.instrs):
            for s in ins.srcs:
                cls = s.__class__
                if cls is VReg or cls is AReg:
                    setdefault(s, []).append((j, False))
                elif cls is Mem:
                    setdefault(s.base, []).append((j, False))
                    if s.index is not None:
                        setdefault(s.index, []).append((j, False))
            d = ins.dst
            cls = d.__class__
            if cls is VReg or cls is AReg:
                setdefault(d, []).append((j, True))
            elif cls is Mem:
                setdefault(d.base, []).append((j, False))
                if d.index is not None:
                    setdefault(d.index, []).append((j, False))
        live_out = lv.live_out[block.name]

        def dead_after(r: Reg, j: int) -> bool:
            for pos, is_write in events.get(r, ()):
                if pos > j:
                    return is_write
            return r not in live_out

        n = len(block.instrs)
        dead: Set[int] = set()
        for i, instr in enumerate(block.instrs):
            if instr.op not in _LOADS or i in dead:
                continue
            t = instr.dst
            mem = instr.srcs[0]
            if not isinstance(mem, Mem):
                continue
            base, midx = mem.base, mem.index
            # find the first use of t; the window between the load and
            # that use must not disturb t, the address regs, or memory
            use_idx: Optional[int] = None
            blocked = False
            for j in range(i + 1, n):
                nxt = block.instrs[j]
                if t in nxt.regs_read():
                    use_idx = j
                    break
                written = nxt.regs_written()
                if t in written or base in written \
                        or (midx is not None and midx in written):
                    blocked = True
                    break
                if nxt.writes_mem:
                    blocked = True
                    break
            if blocked or use_idx is None:
                continue
            user = block.instrs[use_idx]
            if user.op not in _FOLDABLE or user.op not in _LOADS[instr.op]:
                continue
            # t must be src2 exactly (x86 folds the second operand) and
            # dead after the use
            if len(user.srcs) != 2 or user.srcs[1] != t or user.srcs[0] == t:
                continue
            if not dead_after(t, use_idx):
                continue
            if any(isinstance(s, Mem) for s in user.srcs):
                continue  # already has a memory operand
            user.srcs = (user.srcs[0], mem)
            user.comment = (user.comment + " [folded]").strip()
            dead.add(i)
            changed = True
        if dead:
            _obs_count("peep.folded_loads", len(dead))
            block.instrs = [ins for i, ins in enumerate(block.instrs)
                            if i not in dead]
    return changed


def remove_trivial(fn: Function) -> bool:
    """Drop arithmetic no-ops and self-moves."""
    changed = False
    n_removed = 0
    for block in fn.blocks:
        keep: List[Instruction] = []
        for instr in block.instrs:
            if instr.op in (Opcode.ADD, Opcode.SUB) and is_reg(instr.dst) \
                    and len(instr.srcs) == 2 \
                    and instr.srcs[0] == instr.dst \
                    and isinstance(instr.srcs[1], Imm) \
                    and instr.srcs[1].value == 0:
                changed = True
                n_removed += 1
                continue
            if instr.op in (Opcode.MOV, Opcode.FMOV, Opcode.VMOV) \
                    and len(instr.srcs) == 1 and instr.srcs[0] == instr.dst:
                changed = True
                n_removed += 1
                continue
            if instr.op is Opcode.NOP:
                changed = True
                n_removed += 1
                continue
            keep.append(instr)
        block.instrs = keep
    if n_removed:
        _obs_count("peep.trivial_removed", n_removed)
    return changed


def run_peephole(fn: Function) -> bool:
    c1 = fold_loads(fn)
    c2 = remove_trivial(fn)
    return c1 or c2
