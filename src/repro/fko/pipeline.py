"""FKO's compilation pipeline.

Fundamental transformations "are applied only one time and in a known
order" (section 2.2.3): SV, UR, LC, AE, PF, WNT.  Repeatable
transformations then run in optimization blocks "repeated while they
are still successfully transforming the code" (section 2.2.4).
Register allocation maps onto the 8+8 architectural registers last,
followed by a final control-flow cleanup.

:func:`compile_kernel` never mutates its input function — the iterative
search compiles the same kernel hundreds of times with different
parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Optional, Set, Union

from ..errors import TransformError
from ..ir import Function, verify
from ..machine.config import MachineConfig
from ..obs import metrics as _metrics
from ..obs.core import active as _obs_active
from .accexpand import expand_accumulators
from .analysis import KernelAnalysis, analyze
from .clonefn import clone_function
from .controlflow import cleanup_cfg
from .copyprop import run_copy_opt
from .loopcontrol import optimize_loop_control
from .nontemporal import apply_nontemporal
from .params import TransformParams, fko_defaults
from .peephole import run_peephole
from .prefetch import insert_prefetches
from .regalloc import AllocationResult, allocate_registers
from .unroll import unroll
from .vectorize import vectorize


@dataclass
class CompiledKernel:
    """The product of one FKO compilation."""

    fn: Function
    params: TransformParams
    analysis: KernelAnalysis
    machine: MachineConfig
    applied: Dict[str, object] = field(default_factory=dict)
    allocation: Optional[AllocationResult] = None

    @property
    def vectorized(self) -> bool:
        return bool(self.applied.get("sv"))


#: metrics-only pass timing samples 1 call in N: a single pass runs in
#: single-digit microseconds here, so timing every one would blow the
#: 3% eval-throughput budget; a deterministic 1-in-32 countdown keeps
#: the histogram shape while an untimed call pays one decrement + test
_SAMPLE_EVERY = 32
_sample_tick = _SAMPLE_EVERY


def _run_pass(col, work: Function, name: str, thunk):
    """Execute one pipeline pass, recording a span on the active
    collector.  ``applied`` is inferred from the thunk's return value:
    ``None`` means the pass ran unconditionally, a falsy count/flag
    means it found nothing to do.  With no collector this is a plain
    call — no timing, no IR snapshotting."""
    if col is None:
        if not _metrics._ENABLED:
            return thunk()
        # metrics only: sampled histogram observations, no IR
        # snapshots.  Fed exclusively here (never from shipped worker
        # outcomes), so each timed pass execution is counted exactly
        # once — in the process that ran it.
        global _sample_tick
        _sample_tick -= 1
        if _sample_tick > 0:
            return thunk()
        _sample_tick = _SAMPLE_EVERY
        t0 = perf_counter()
        result = thunk()
        _metrics.observe("repro_pass_wall_seconds",
                         perf_counter() - t0, **{"pass": name})
        return result
    with col.pass_span(name, work) as span:
        result = thunk()
        span.applied = True if result is None else bool(result)
    if _metrics._ENABLED:
        _metrics.observe("repro_pass_wall_seconds",
                         col.passes[-1]["wall"], **{"pass": name})
    return result


def prefix_key(params: TransformParams, analysis: KernelAnalysis,
               debug_verify: bool = False):
    """Hashable identity of everything :func:`compile_prefix` does.

    Keyed on the *effective* early-transform values (post-clamp,
    post-legality), so distinct requested params that resolve to the
    same prefix work share one cache entry.  Everything the prefix
    passes read from ``params`` is captured here; ``pf``/``wnt``/
    ``block_fetch`` and the repeatable/regalloc knobs are deliberately
    absent — they only affect :func:`finish_kernel`."""
    sv_eff = bool(params.sv and analysis.vectorizable)
    u_eff = min(max(1, params.unroll), analysis.max_unroll)
    ae_eff = (params.ae if params.ae > 1 and analysis.accumulators else 1)
    return (sv_eff, u_eff, bool(params.lc), ae_eff,
            analysis.has_tuned_loop, bool(debug_verify))


def compile_prefix(fn: Function, machine: MachineConfig,
                   params: Optional[TransformParams] = None,
                   noprefetch: Optional[Set[str]] = None,
                   debug_verify: bool = False,
                   analysis: Optional[KernelAnalysis] = None):
    """The pipeline's fixed-order front half: clone + initial cleanup +
    SV/UR/LC/AE.  Returns ``(work, analysis, params, applied)`` for
    :func:`finish_kernel` (or for snapshotting in a prefix cache)."""
    col = _obs_active()
    work = clone_function(fn)
    _run_pass(col, work, "cfg", lambda: cleanup_cfg(work))
    if analysis is None:
        analysis = analyze(work, machine, noprefetch)

    if params is None:
        veclen = analysis.veclen if analysis.vectorizable else 1
        params = fko_defaults(machine.prefetchable_line, analysis.elem.size,
                              veclen, tuple(analysis.prefetch_arrays))

    applied: Dict[str, object] = {}

    if analysis.has_tuned_loop:
        # --- fundamental transformations, fixed order ------------------
        if params.sv and analysis.vectorizable:
            _run_pass(col, work, "sv", lambda: vectorize(work, analysis))
            applied["sv"] = True
            if debug_verify:
                verify(work)

        u = min(max(1, params.unroll), analysis.max_unroll)
        if u > 1:
            _run_pass(col, work, "ur", lambda: unroll(work, u))
            applied["unroll"] = u
            if debug_verify:
                verify(work)

        if params.lc:
            _run_pass(col, work, "lc",
                      lambda: optimize_loop_control(work))
            applied["lc"] = True
            if debug_verify:
                verify(work)

        if params.ae > 1 and analysis.accumulators:
            n = _run_pass(col, work, "ae",
                          lambda: expand_accumulators(
                              work, analysis.accumulators, params.ae))
            if n:
                applied["ae"] = params.ae
            if debug_verify:
                verify(work)

    return work, analysis, params, applied


def finish_kernel(work: Function, machine: MachineConfig,
                  params: TransformParams, analysis: KernelAnalysis,
                  applied: Dict[str, object],
                  debug_verify: bool = False) -> CompiledKernel:
    """The pipeline's back half: PF/WNT/block-fetch, the repeatable
    optimization blocks, register allocation, final cleanup, verify.
    Mutates ``work`` — callers forking from a cached prefix snapshot
    must pass a private clone."""
    col = _obs_active()

    if analysis.has_tuned_loop:
        pf = {a: p for a, p in params.prefetch.items()
              if p.enabled and a in analysis.prefetch_arrays}
        if pf:
            n = _run_pass(col, work, "pf",
                          lambda: insert_prefetches(work, pf,
                                                    machine.l1.line))
            applied["prefetch"] = n
            if debug_verify:
                verify(work)

        if params.wnt and analysis.output_arrays:
            n = _run_pass(col, work, "wnt",
                          lambda: apply_nontemporal(
                              work, analysis.output_arrays))
            if n:
                applied["wnt"] = True
            if debug_verify:
                verify(work)

        if params.block_fetch and (analysis.output_arrays
                                   or analysis.input_arrays):
            # block-fetch scheduling: a bus-level reordering, recorded on
            # the loop and consumed by the timing model (the functional
            # semantics are unchanged)
            work.loop.block_fetch = True
            applied["block_fetch"] = True

    # --- repeatable transformations (optimization blocks) --------------
    # Staleness tracking: ``gen`` counts IR changes; a pass is skipped
    # when the IR has not changed since it last ran (the passes are
    # deterministic, so a re-run is provably a no-op).  copy-prop and
    # cfg converge to their own fixed points internally, so their own
    # change does not make them stale; peephole is single-shot, so its
    # own change does.  Disabled while observing to keep per-pass
    # telemetry faithful — a skipped confirming run is exact for the IR
    # but would drop its ``pass`` event from the trace.
    gen = 0
    last = {"cp": -1, "ph": -1, "cf": -1}
    skip_ok = col is None
    for _ in range(4):
        changed = False
        if params.copy_propagation and not (skip_ok and last["cp"] >= gen):
            if _run_pass(col, work, "copy-prop",
                         lambda: run_copy_opt(work)):
                changed = True
                gen += 1
            last["cp"] = gen
        if params.peephole and not (skip_ok and last["ph"] >= gen):
            last["ph"] = gen
            if _run_pass(col, work, "peephole",
                         lambda: run_peephole(work)):
                changed = True
                gen += 1
        if params.cf_cleanup and not (skip_ok and last["cf"] >= gen):
            if _run_pass(col, work, "cfg",
                         lambda: cleanup_cfg(work)):
                changed = True
                gen += 1
            last["cf"] = gen
        if not changed:
            break
    if debug_verify:
        verify(work)

    allocation = None
    if params.register_allocation != "off":
        allocation = _run_pass(col, work, "regalloc",
                               lambda: allocate_registers(
                                   work, machine,
                                   params.register_allocation))
        applied["spilled"] = allocation.n_spilled

    if params.cf_cleanup:
        _run_pass(col, work, "cfg", lambda: cleanup_cfg(work))
    verify(work)

    return CompiledKernel(fn=work, params=params, analysis=analysis,
                          machine=machine, applied=applied,
                          allocation=allocation)


def compile_kernel(fn: Function, machine: MachineConfig,
                   params: Optional[TransformParams] = None,
                   noprefetch: Optional[Set[str]] = None,
                   debug_verify: bool = False,
                   analysis: Optional[KernelAnalysis] = None) -> CompiledKernel:
    """Apply the FKO pipeline to a lowered kernel.

    ``params=None`` compiles with FKO's static defaults (the paper's
    plain-"FKO" configuration — no empirical search).  ``analysis`` may
    carry a precomputed analysis of this kernel (clones share the
    register value objects an analysis refers to, so an analysis of one
    clone is valid for any other); it is recomputed here when absent.

    The body is :func:`compile_prefix` + :func:`finish_kernel`; the
    split exists so :class:`repro.fko.FKO` can memoize prefix snapshots
    for candidates that differ only in late transforms (PF/WNT/...).
    """
    work, analysis, params, applied = compile_prefix(
        fn, machine, params, noprefetch, debug_verify, analysis)
    return finish_kernel(work, machine, params, analysis, applied,
                         debug_verify)
