"""FKO's compilation pipeline.

Fundamental transformations "are applied only one time and in a known
order" (section 2.2.3): SV, UR, LC, AE, PF, WNT.  Repeatable
transformations then run in optimization blocks "repeated while they
are still successfully transforming the code" (section 2.2.4).
Register allocation maps onto the 8+8 architectural registers last,
followed by a final control-flow cleanup.

:func:`compile_kernel` never mutates its input function — the iterative
search compiles the same kernel hundreds of times with different
parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Union

from ..errors import TransformError
from ..ir import Function, verify
from ..machine.config import MachineConfig
from ..obs.core import active as _obs_active
from .accexpand import expand_accumulators
from .analysis import KernelAnalysis, analyze
from .clonefn import clone_function
from .controlflow import cleanup_cfg
from .copyprop import run_copy_opt
from .loopcontrol import optimize_loop_control
from .nontemporal import apply_nontemporal
from .params import TransformParams, fko_defaults
from .peephole import run_peephole
from .prefetch import insert_prefetches
from .regalloc import AllocationResult, allocate_registers
from .unroll import unroll
from .vectorize import vectorize


@dataclass
class CompiledKernel:
    """The product of one FKO compilation."""

    fn: Function
    params: TransformParams
    analysis: KernelAnalysis
    machine: MachineConfig
    applied: Dict[str, object] = field(default_factory=dict)
    allocation: Optional[AllocationResult] = None

    @property
    def vectorized(self) -> bool:
        return bool(self.applied.get("sv"))


def _run_pass(col, work: Function, name: str, thunk):
    """Execute one pipeline pass, recording a span on the active
    collector.  ``applied`` is inferred from the thunk's return value:
    ``None`` means the pass ran unconditionally, a falsy count/flag
    means it found nothing to do.  With no collector this is a plain
    call — no timing, no IR snapshotting."""
    if col is None:
        return thunk()
    with col.pass_span(name, work) as span:
        result = thunk()
        span.applied = True if result is None else bool(result)
    return result


def compile_kernel(fn: Function, machine: MachineConfig,
                   params: Optional[TransformParams] = None,
                   noprefetch: Optional[Set[str]] = None,
                   debug_verify: bool = False,
                   analysis: Optional[KernelAnalysis] = None) -> CompiledKernel:
    """Apply the FKO pipeline to a lowered kernel.

    ``params=None`` compiles with FKO's static defaults (the paper's
    plain-"FKO" configuration — no empirical search).  ``analysis`` may
    carry a precomputed analysis of this kernel (clones share the
    register value objects an analysis refers to, so an analysis of one
    clone is valid for any other); it is recomputed here when absent.
    """
    col = _obs_active()
    work = clone_function(fn)
    _run_pass(col, work, "cfg", lambda: cleanup_cfg(work))
    if analysis is None:
        analysis = analyze(work, machine, noprefetch)

    if params is None:
        veclen = analysis.veclen if analysis.vectorizable else 1
        params = fko_defaults(machine.prefetchable_line, analysis.elem.size,
                              veclen, tuple(analysis.prefetch_arrays))

    applied: Dict[str, object] = {}

    if analysis.has_tuned_loop:
        # --- fundamental transformations, fixed order ------------------
        if params.sv and analysis.vectorizable:
            _run_pass(col, work, "sv", lambda: vectorize(work, analysis))
            applied["sv"] = True
            if debug_verify:
                verify(work)

        u = min(max(1, params.unroll), analysis.max_unroll)
        if u > 1:
            _run_pass(col, work, "ur", lambda: unroll(work, u))
            applied["unroll"] = u
            if debug_verify:
                verify(work)

        if params.lc:
            _run_pass(col, work, "lc",
                      lambda: optimize_loop_control(work))
            applied["lc"] = True
            if debug_verify:
                verify(work)

        if params.ae > 1 and analysis.accumulators:
            n = _run_pass(col, work, "ae",
                          lambda: expand_accumulators(
                              work, analysis.accumulators, params.ae))
            if n:
                applied["ae"] = params.ae
            if debug_verify:
                verify(work)

        pf = {a: p for a, p in params.prefetch.items()
              if p.enabled and a in analysis.prefetch_arrays}
        if pf:
            n = _run_pass(col, work, "pf",
                          lambda: insert_prefetches(work, pf,
                                                    machine.l1.line))
            applied["prefetch"] = n
            if debug_verify:
                verify(work)

        if params.wnt and analysis.output_arrays:
            n = _run_pass(col, work, "wnt",
                          lambda: apply_nontemporal(
                              work, analysis.output_arrays))
            if n:
                applied["wnt"] = True
            if debug_verify:
                verify(work)

        if params.block_fetch and (analysis.output_arrays
                                   or analysis.input_arrays):
            # block-fetch scheduling: a bus-level reordering, recorded on
            # the loop and consumed by the timing model (the functional
            # semantics are unchanged)
            work.loop.block_fetch = True
            applied["block_fetch"] = True

    # --- repeatable transformations (optimization blocks) --------------
    for _ in range(4):
        changed = False
        if params.copy_propagation:
            changed |= _run_pass(col, work, "copy-prop",
                                 lambda: run_copy_opt(work))
        if params.peephole:
            changed |= _run_pass(col, work, "peephole",
                                 lambda: run_peephole(work))
        if params.cf_cleanup:
            changed |= _run_pass(col, work, "cfg",
                                 lambda: cleanup_cfg(work))
        if not changed:
            break
    if debug_verify:
        verify(work)

    allocation = None
    if params.register_allocation != "off":
        allocation = _run_pass(col, work, "regalloc",
                               lambda: allocate_registers(
                                   work, machine,
                                   params.register_allocation))
        applied["spilled"] = allocation.n_spilled

    if params.cf_cleanup:
        _run_pass(col, work, "cfg", lambda: cleanup_cfg(work))
    verify(work)

    return CompiledKernel(fn=work, params=params, analysis=analysis,
                          machine=machine, applied=applied,
                          allocation=allocation)
