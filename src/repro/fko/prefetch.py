"""PF — software prefetch insertion (section 2.2.3).

"This transformation can prefetch any/all/none of the arrays that are
accessed within the loop, select the type of prefetch instruction to
employ, vary the distance from the current iteration to fetch ahead, as
well as provide various simple scheduling methodologies.  Prefetches
are scheduled within the unrolled loop ...  prefetching one array can
require multiple prefetch requests in the unrolled loop body, as each
x86 prefetch instruction fetches only one cache line of data."

Runs after SV/UR, so the number of prefetches per trip is
``ceil(bytes_consumed_per_trip / line_size)`` per array, spread evenly
through the body so requests interleave with computation.
"""

from __future__ import annotations

import math
from typing import Dict, List

from ..errors import TransformError
from ..ir import (Function, Instruction, Mem, Opcode, PrefetchHint, VReg)
from ..obs.core import count as _obs_count
from .params import PrefetchParams


def insert_prefetches(fn: Function, prefetch: Dict[str, PrefetchParams],
                      line_size: int) -> int:
    """Insert prefetch instructions for the configured arrays.  Returns
    the number of instructions inserted."""
    loop = fn.loop
    if loop is None:
        raise TransformError(f"{fn.name}: no tuned loop")

    body = fn.block(loop.body[0])
    elem_size = loop.elem.size
    epi = loop.elems_per_iter

    inserted = 0
    plan: List[Instruction] = []
    for array, pf in sorted(prefetch.items()):
        if not pf.enabled:
            continue
        ptr = loop.pointers.get(array)
        if ptr is None:
            raise TransformError(
                f"{fn.name}: prefetch of unknown array {array!r}")
        inc = abs(loop.ptr_incs.get(array, 1)) or 1
        bytes_per_trip = inc * epi * elem_size
        n_pf = max(1, math.ceil(bytes_per_trip / line_size))
        for j in range(n_pf):
            mem = Mem(ptr, loop.elem, disp=pf.dist + j * line_size,
                      array=array)
            plan.append(Instruction(Opcode.PREFETCH, None, (mem,),
                                    hint=pf.hint,
                                    comment=f"pf {array}+{pf.dist}"))
        inserted += n_pf

    if not plan:
        return 0

    # spread the prefetches through the body ("simple scheduling"):
    # insert after positions that divide the straight-line prefix of the
    # body evenly — never past a branch (blocks must stay straight-line
    # up to their control transfer)
    work_len = len(body.instrs)
    for i, instr in enumerate(body.instrs):
        if instr.is_branch or instr.is_terminator:
            work_len = i
            break
    step = max(1, work_len // (len(plan) + 1))
    pos = step
    for instr in plan:
        pos = min(pos, work_len)
        body.instrs.insert(pos, instr)
        work_len += 1
        pos += step + 1
    _obs_count("pf.inserted", inserted)
    return inserted
