"""Register allocation (repeatable transform, section 2.2.4).

"In register usage optimization, we support two types of register
allocation ..." — here:

* ``global`` — linear-scan over the whole function with loop-depth
  weighting (the production allocator);
* ``local``  — a greedy usage-count allocator that keeps only the
  hottest values in registers (the paper's simpler allocator; kept for
  ablation, it spills much more under unrolling).

Both map virtual registers onto the 7 allocatable GP registers and the
8 XMM registers (shared by scalar-FP and vector values).  When demand
exceeds supply, values spill to stack slots addressed off ``%esp``;
two scratch registers per pressured class are reserved to shuttle
spilled operands, exactly like a real x86 allocator.

The spill loads/stores this pass inserts are what make excessive unroll
factors *measurably* bad in the timing model — register pressure is a
first-class part of the optimization space, as on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import RegisterPressureError
from ..ir import (AReg, DType, Function, Instruction, Mem, Opcode, Reg,
                  RegClass, VReg)
from ..ir.dataflow import Liveness
from ..ir.operands import is_reg
from ..machine.config import MachineConfig
from ..machine.registers import GP_NAMES, SP, XMM_NAMES
from ..obs.core import active as _obs_active


@dataclass
class AllocationResult:
    mapping: Dict[VReg, AReg] = field(default_factory=dict)
    spilled: Dict[VReg, int] = field(default_factory=dict)   # vreg -> slot
    n_spill_loads: int = 0
    n_spill_stores: int = 0

    @property
    def n_spilled(self) -> int:
        return len(self.spilled)


def _pool_of(reg: VReg) -> str:
    return "gp" if reg.rclass is RegClass.GP else "xmm"


def _canonicalize_params(fn: Function) -> None:
    """Copy incoming parameters into fresh allocatable homes at entry so
    the parameter registers themselves (the ABI boundary) stay virtual
    and the copies compete for real registers like everything else."""
    entry = fn.entry
    sub: Dict[Reg, Reg] = {}
    copies: List[Instruction] = []
    for p in fn.params:
        if p.reg is None or not isinstance(p.reg, VReg):
            continue
        home = VReg(f"{p.name}_h", p.reg.rclass, p.reg.dtype)
        op = Opcode.MOV if p.reg.rclass is RegClass.GP else Opcode.FMOV
        copies.append(Instruction(op, home, (p.reg,),
                                  comment=f"home {p.name}"))
        sub[p.reg] = home
    if not sub:
        return
    for block in fn.blocks:
        for instr in block.instrs:
            instr.substitute_inplace(sub)
    entry.instrs[0:0] = copies


# ---------------------------------------------------------------------------
# interval construction

def _build_intervals(fn: Function):
    """Per-VReg (start, end, weight) over a linearized instruction order.
    Registers live across the tuned loop's back edge get intervals
    covering the whole loop span, and uses inside the loop weigh 10x."""
    pos = 0
    block_span: Dict[str, Tuple[int, int]] = {}
    for block in fn.blocks:
        start = pos
        pos += len(block.instrs)
        block_span[block.name] = (start, max(start, pos - 1))

    loop_blocks: Set[str] = set()
    if fn.loop is not None:
        loop_blocks = set(fn.loop.body) | {fn.loop.header, fn.loop.latch}

    # one [start, end, weight] record per vreg; insertion order is
    # first-touch order, which _greedy_local's stable weight sort uses
    # to break ties — keep it when touching registers in a new order
    ivs: Dict[VReg, List] = {}

    def touch(r: VReg, p: int, w: float) -> None:
        iv = ivs.get(r)
        if iv is None:
            ivs[r] = [p, p, w]
            return
        if p < iv[0]:
            iv[0] = p
        elif p > iv[1]:
            iv[1] = p
        iv[2] += w

    lv = Liveness(fn)
    for block in fn.blocks:
        in_loop = block.name in loop_blocks
        w = 10.0 if in_loop else 1.0
        span = block_span[block.name]
        # sorted by uid: live sets hash on absolute uid values, which
        # depend on how many compiles this process ran before — letting
        # set order leak into interval order would make allocation
        # tie-breaks (and so the emitted code) history-dependent
        for r in sorted((r for r in lv.live_in[block.name]
                         if isinstance(r, VReg)), key=lambda r: r.uid):
            touch(r, span[0], 0.0)
        for r in sorted((r for r in lv.live_out[block.name]
                         if isinstance(r, VReg)), key=lambda r: r.uid):
            touch(r, span[1], 0.0)
        p = span[0]
        for instr in block.instrs:
            for r in instr.regs_read():
                if r.__class__ is VReg:
                    touch(r, p, w)
            for r in instr.regs_written():
                if r.__class__ is VReg:
                    touch(r, p, w)
            p += 1

    # Note: intervals are sound without a whole-loop extension because
    # every block's live-in/live-out registers are touched at the block
    # span boundaries — a back-edge carrier is live into the header and
    # out of the latch, so its interval already covers the loop.
    return [(r, iv[0], iv[1], iv[2]) for r, iv in ivs.items()]


def _arch_regs(pool: str, n: int, skip: int = 0) -> List[str]:
    names = GP_NAMES if pool == "gp" else XMM_NAMES
    return list(names[skip:n])


# ---------------------------------------------------------------------------
# allocators

def _linear_scan(intervals, pool_sizes: Dict[str, int]):
    """Classic linear scan; returns (assignment: vreg->regname, spilled)."""
    by_start = sorted(intervals, key=lambda iv: (iv[1], iv[0].uid))
    active: Dict[str, List] = {"gp": [], "xmm": []}
    free: Dict[str, List[str]] = {
        "gp": _arch_regs("gp", pool_sizes["gp"]),
        "xmm": _arch_regs("xmm", pool_sizes["xmm"]),
    }
    assignment: Dict[VReg, str] = {}
    spilled: Set[VReg] = set()
    weights = {iv[0]: iv[3] for iv in intervals}

    for r, start, end, w in by_start:
        pool = _pool_of(r)
        # expire old intervals
        still = []
        for (er, eend) in active[pool]:
            if eend < start:
                free[pool].append(assignment[er])
            else:
                still.append((er, eend))
        active[pool] = still

        if free[pool]:
            assignment[r] = free[pool].pop(0)
            active[pool].append((r, end))
            continue
        # spill the lowest-weight candidate among active + current
        candidates = active[pool] + [(r, end)]
        victim, vend = min(candidates, key=lambda it: (weights.get(it[0], 0),
                                                       -it[1]))
        if victim is r:
            spilled.add(r)
        else:
            spilled.add(victim)
            assignment[r] = assignment.pop(victim)
            active[pool] = [(er, ee) for er, ee in active[pool]
                            if er is not victim]
            active[pool].append((r, end))
    return assignment, spilled


def _greedy_local(intervals, pool_sizes: Dict[str, int]):
    """The simpler allocator: hottest values win registers outright."""
    assignment: Dict[VReg, str] = {}
    spilled: Set[VReg] = set()
    for pool in ("gp", "xmm"):
        regs = _arch_regs(pool, pool_sizes[pool])
        ranked = sorted((iv for iv in intervals if _pool_of(iv[0]) == pool),
                        key=lambda iv: -iv[3])
        for i, (r, s, e, w) in enumerate(ranked):
            if i < len(regs):
                assignment[r] = regs[i]
            else:
                spilled.add(r)
    return assignment, spilled


# ---------------------------------------------------------------------------
# rewrite

def _spill_rewrite(fn: Function, spilled_slots: Dict[VReg, int],
                   scratch: Dict[str, List[AReg]],
                   result: AllocationResult) -> None:
    for block in fn.blocks:
        new_instrs: List[Instruction] = []
        for instr in block.instrs:
            reads = [r for r in dict.fromkeys(instr.regs_read())
                     if r in spilled_slots]
            writes = [r for r in dict.fromkeys(instr.regs_written())
                      if r in spilled_slots]
            if not reads and not writes:
                new_instrs.append(instr)
                continue
            sub: Dict[Reg, Reg] = {}
            used: Dict[str, int] = {"gp": 0, "xmm": 0}
            for r in reads:
                pool = _pool_of(r)
                if used[pool] >= len(scratch[pool]):
                    raise RegisterPressureError(
                        f"{fn.name}: more spilled operands than scratch "
                        f"registers in {instr!r}")
                s = scratch[pool][used[pool]]
                s = AReg(s.name, r.rclass, r.dtype, s.index)
                used[pool] += 1
                sub[r] = s
                slot = spilled_slots[r]
                mem = Mem(SP, r.dtype, disp=slot * 16)
                lop = {RegClass.GP: Opcode.LD, RegClass.FP: Opcode.FLD,
                       RegClass.VEC: Opcode.VLD}[r.rclass]
                new_instrs.append(Instruction(lop, s, (mem,),
                                              comment=f"reload {r.name}"))
                result.n_spill_loads += 1
            stores: List[Instruction] = []
            for r in writes:
                pool = _pool_of(r)
                if r in sub:
                    s = sub[r]
                else:
                    idx = used[pool] if used[pool] < len(scratch[pool]) else 0
                    s = scratch[pool][idx]
                    s = AReg(s.name, r.rclass, r.dtype, s.index)
                    sub[r] = s
                slot = spilled_slots[r]
                mem = Mem(SP, r.dtype, disp=slot * 16)
                sop = {RegClass.GP: Opcode.ST, RegClass.FP: Opcode.FST,
                       RegClass.VEC: Opcode.VST}[r.rclass]
                stores.append(Instruction(sop, None, (mem, sub[r]),
                                          comment=f"spill {r.name}"))
                result.n_spill_stores += 1
            instr.substitute_inplace(sub)
            new_instrs.append(instr)
            new_instrs.extend(stores)
        block.instrs = new_instrs


def allocate_registers(fn: Function, machine: MachineConfig,
                       strategy: str = "global") -> AllocationResult:
    """Allocate all virtual registers; mutates ``fn`` in place."""
    _canonicalize_params(fn)
    result = AllocationResult()

    param_regs = {p.reg for p in fn.params if p.reg is not None}
    pools = {"gp": machine.n_gp_regs, "xmm": machine.n_xmm_regs}

    # fn is not mutated between the first allocation and the pool-shrink
    # rerun, so intervals (and the liveness behind them) are shared
    intervals = [iv for iv in _build_intervals(fn)
                 if iv[0] not in param_regs]

    def run(pool_sizes):
        if strategy == "global":
            return _linear_scan(intervals, pool_sizes)
        return _greedy_local(intervals, pool_sizes)

    assignment, spilled = run(pools)
    scratch: Dict[str, List[AReg]] = {"gp": [], "xmm": []}
    if spilled:
        # reserve two scratch registers per pressured class and redo
        shrunk = dict(pools)
        for pool in ("gp", "xmm"):
            if any(_pool_of(r) == pool for r in spilled):
                shrunk[pool] = max(1, pools[pool] - 2)
        assignment, spilled = run(shrunk)
        names = {"gp": GP_NAMES, "xmm": XMM_NAMES}
        for pool in ("gp", "xmm"):
            if shrunk[pool] < pools[pool]:
                for i in range(shrunk[pool], pools[pool]):
                    nm = names[pool][i]
                    scratch[pool].append(
                        AReg(nm, RegClass.GP if pool == "gp" else RegClass.FP,
                             DType.I64 if pool == "gp" else DType.F64, i))

    # build the final mapping
    name_index = {n: i for i, n in enumerate(GP_NAMES)}
    name_index.update({n: i for i, n in enumerate(XMM_NAMES)})
    sub: Dict[Reg, Reg] = {}
    for r, regname in assignment.items():
        a = AReg(regname, r.rclass, r.dtype, name_index[regname])
        sub[r] = a
        result.mapping[r] = a
    for block in fn.blocks:
        for instr in block.instrs:
            instr.substitute_inplace(sub)

    if spilled:
        slots: Dict[VReg, int] = {}
        for r in sorted(spilled, key=lambda r: r.uid):
            slots[r] = fn.new_stack_slot(r.dtype)
        result.spilled = slots
        _spill_rewrite(fn, slots, scratch, result)
    col = _obs_active()
    if col is not None:
        col.count("ra.allocated", len(result.mapping))
        col.count("ra.spilled", result.n_spilled)
        col.count("ra.spill_loads", result.n_spill_loads)
        col.count("ra.spill_stores", result.n_spill_stores)
    return result
