"""UR — loop unrolling (section 2.2.3).

"Duplicates the loop body (avoiding repetitive index and pointer
updates) N_u times.  Since it is performed after SIMD vectorization,
when vectorization is also applied the computational unrolling is
actually N_u x veclen."

Two strategies:

* **single-block bodies** (every vectorizable kernel): body copies are
  concatenated in one block, per-copy temporaries renamed to break
  false dependences, per-copy array references folded into address
  displacements, and the pointer updates coalesced into one bump per
  array per trip — the "avoiding repetitive pointer updates" the paper
  describes;
* **multi-block bodies** (iamax): whole-body copies are chained, each
  copy's reads of the loop counter adjusted by its iteration offset.
  Pointer updates stay per-copy; the win is amortized loop control,
  which is exactly why the paper's Table 3 picks UR 8-32 for iamax.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..errors import TransformError
from ..ir import (DType, Function, Imm, Instruction, Label, LoopDescriptor,
                  Mem, Opcode, RegClass, VReg)
from ..ir.operands import is_reg
from ..obs.core import count as _obs_count
from .clonefn import clone_region, private_registers
from .controlflow import add_explicit_terminators
from .loopshape import ensure_cleanup_loop, set_main_bound


def unroll(fn: Function, factor: int) -> None:
    loop = fn.loop
    if loop is None:
        raise TransformError(f"{fn.name}: no tuned loop")
    if factor < 1:
        raise TransformError(f"invalid unroll factor {factor}")
    if loop.unroll != 1:
        raise TransformError(f"{fn.name}: already unrolled")
    if factor == 1:
        return

    ensure_cleanup_loop(fn, loop)
    if loop.is_single_block:
        _unroll_single(fn, loop, factor)
    else:
        _unroll_multi(fn, loop, factor)
    loop.unroll = factor
    set_main_bound(fn, loop, loop.veclen * factor)
    _obs_count("ur.replicated_trips", factor - 1)


def _is_ptr_update(instr: Instruction) -> bool:
    return (instr.op in (Opcode.ADD, Opcode.SUB)
            and is_reg(instr.dst)
            and instr.dst.dtype is DType.PTR
            and isinstance(instr.srcs[1], Imm)
            and any(is_reg(s) and s == instr.dst for s in instr.srcs))


def _unroll_single(fn: Function, loop: LoopDescriptor, u: int) -> None:
    body = fn.block(loop.body[0])

    terminator = None
    instrs = list(body.instrs)
    if instrs and instrs[-1].is_terminator:
        terminator = instrs.pop()

    work = [i for i in instrs if not _is_ptr_update(i)]
    updates = [i for i in instrs if _is_ptr_update(i)]
    # bytes each pointer advances per (pre-unroll) trip
    inc_bytes: Dict[object, int] = {}
    for upd in updates:
        delta = upd.srcs[1].value * (1 if upd.op is Opcode.ADD else -1)
        inc_bytes[upd.dst] = inc_bytes.get(upd.dst, 0) + delta

    # sorted: the per-copy rmap below mints fresh VRegs, and the minting
    # order must not depend on set hash order (absolute uids vary with
    # the process's compile history)
    privates = sorted(private_registers(fn, [body.name]),
                      key=lambda r: r.uid)

    def shift_mem(x, k: int):
        if isinstance(x, Mem) and x.base in inc_bytes:
            return Mem(x.base, x.dtype, x.index, x.scale,
                       x.disp + k * inc_bytes[x.base], x.array)
        return x

    new_instrs: List[Instruction] = []
    for k in range(u):
        rmap = ({r: VReg(r.name, r.rclass, r.dtype) for r in privates}
                if k > 0 else {})
        for instr in work:
            ni = instr.substitute(rmap) if rmap else instr.copy()
            if k > 0:
                ni.dst = shift_mem(ni.dst, k) if ni.dst is not None else None
                ni.srcs = tuple(shift_mem(s, k) for s in ni.srcs)
            new_instrs.append(ni)
    for upd in updates:
        nu = upd.copy()
        nu.srcs = (upd.srcs[0], Imm(upd.srcs[1].value * u))
        nu.comment = (upd.comment + " x%d" % u).strip()
        new_instrs.append(nu)
    if terminator is not None:
        new_instrs.append(terminator)
    body.instrs = new_instrs


def _unroll_multi(fn: Function, loop: LoopDescriptor, u: int) -> None:
    region = list(loop.body)
    add_explicit_terminators(fn, region)
    # sorted for the same reason as in _unroll_single: fresh-VReg
    # minting order must be history-independent
    privates = sorted(private_registers(fn, region), key=lambda r: r.uid)
    counter = loop.counter

    counter_read = any(
        any(r == counter for r in instr.regs_read())
        for name in region for instr in fn.block(name).instrs)

    entries: List[str] = [region[0]]
    all_copies: List[List[str]] = [region]
    prev_last = region[-1]
    for k in range(1, u):
        rmap: Dict[VReg, VReg] = {
            r: VReg(r.name, r.rclass, r.dtype) for r in privates}
        ck = None
        if counter_read:
            ck = VReg(f"{counter.name}_u{k}", RegClass.GP, DType.I64)
            rmap[counter] = ck
        blocks, mapping = clone_region(fn, region, f"_u{k}",
                                       rename_private=False, reg_map=rmap)
        if ck is not None:
            blocks[0].instrs.insert(0, Instruction(
                Opcode.ADD, ck, (counter, Imm(k * loop.step)),
                comment=f"counter for unroll copy {k}"))
        prev = prev_last
        for blk in blocks:
            fn.add_block(blk, after=prev)
            prev = blk.name
        prev_last = prev
        entries.append(blocks[0].name)
        all_copies.append([b.name for b in blocks])

    # chain the copies: branches to the latch go to the next copy instead
    for k, names in enumerate(all_copies):
        if k + 1 >= u:
            break  # the last copy keeps branching to the real latch
        nxt = entries[k + 1]
        for name in names:
            for instr in fn.block(name).instrs:
                if instr.is_branch and instr.target is not None \
                        and instr.target.name == loop.latch:
                    instr.srcs = (Label(nxt),)

    loop.body = [name for names in all_copies for name in names]
