"""SV — SIMD vectorization (section 2.2.3).

"Transforms the loop nest (when legal) from scalar instructions to
vector instructions.  This typically results in the same number of
instructions in the loop, but its effect on loop control and
computation done per iteration is similar to unrolling by the vector
length (4 for single precision, 2 for double)."

Legality is established by :mod:`repro.fko.analysis`; this module only
performs the rewrite:

* every scalar FP register in the body is widened to a vector register;
* loop-invariant scalars (e.g. ``alpha``) are broadcast in the preheader;
* accumulators start from zero vectors and are horizontally reduced
  into the original scalar in a drain block on the exit edge;
* array references widen to vector loads/stores and pointer increments
  scale by the vector length;
* a scalar cleanup loop handles the remainder elements.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..errors import TransformError
from ..ir import (DType, Function, Imm, Instruction, Mem, Opcode, RegClass,
                  SCALAR_TO_VECTOR, VReg, VecType, sse)
from ..ir.dataflow import Liveness
from ..ir.operands import is_reg
from ..obs.core import active as _obs_active
from .analysis import KernelAnalysis
from .loopshape import ensure_cleanup_loop, get_or_create_drain, set_main_bound


def vectorize(fn: Function, analysis: KernelAnalysis) -> None:
    loop = fn.loop
    if loop is None:
        raise TransformError(f"{fn.name}: no tuned loop")
    if not analysis.vectorizable:
        raise TransformError(
            f"{fn.name}: not vectorizable: "
            + "; ".join(analysis.not_vectorizable_reasons))
    if loop.vectorized:
        raise TransformError(f"{fn.name}: already vectorized")

    vt = sse(loop.elem)
    vl = vt.lanes

    # the remainder loop must clone the body *before* it is widened
    ensure_cleanup_loop(fn, loop)

    body = fn.block(loop.body[0])
    lv = Liveness(fn)
    live_in = lv.live_in[body.name]

    accumulators = set(analysis.accumulators)
    written: Set[VReg] = set()
    read: Set[VReg] = set()
    for instr in body.instrs:
        for r in instr.regs_written():
            if isinstance(r, VReg) and r.rclass is RegClass.FP:
                written.add(r)
        for r in instr.regs_read():
            if isinstance(r, VReg) and r.rclass is RegClass.FP:
                read.add(r)

    vmap: Dict[VReg, VReg] = {}
    invariants: List[VReg] = []
    for r in sorted(written | read, key=lambda r: r.uid):
        if r in accumulators:
            vmap[r] = VReg(f"v{r.name}", RegClass.VEC, vt)
        elif r in written:
            vmap[r] = VReg(f"v{r.name}", RegClass.VEC, vt)     # private
        elif r in live_in:
            vmap[r] = VReg(f"v{r.name}", RegClass.VEC, vt)     # invariant
            invariants.append(r)
        else:
            raise TransformError(
                f"{fn.name}: FP register {r!r} read but never defined")

    # --- rewrite the body
    new_instrs: List[Instruction] = []
    for instr in body.instrs:
        op = instr.op
        if op in (Opcode.ADD, Opcode.SUB) and is_reg(instr.dst) \
                and instr.dst.dtype is DType.PTR \
                and isinstance(instr.srcs[1], Imm):
            ni = instr.copy()
            ni.srcs = (instr.srcs[0], Imm(instr.srcs[1].value * vl))
            new_instrs.append(ni)
            continue
        if op in SCALAR_TO_VECTOR:
            ni = instr.substitute(vmap)
            ni.op = SCALAR_TO_VECTOR[op]
            # unproven alignment -> movups/unaligned store forms
            m = instr.mem
            if m is not None and m.array is not None \
                    and m.array not in analysis.aligned_arrays:
                if ni.op is Opcode.VLD:
                    ni.op = Opcode.VLDU
                elif ni.op in (Opcode.VST, Opcode.VSTNT):
                    ni.op = Opcode.VSTU
            # widen memory references
            def widen(x):
                if isinstance(x, Mem):
                    return Mem(x.base, vt, x.index, x.scale, x.disp, x.array)
                return x
            ni.dst = widen(ni.dst) if ni.dst is not None else None
            ni.srcs = tuple(widen(s) for s in ni.srcs)
            # FMOV with a float immediate: only 0.0 can be widened cheaply
            if ni.op is Opcode.VMOV and isinstance(ni.srcs[0], Imm):
                if float(ni.srcs[0].value) != 0.0:
                    raise TransformError(
                        f"{fn.name}: cannot vectorize non-zero FP "
                        f"immediate {ni.srcs[0]!r}")
                ni.op = Opcode.VZERO
                ni.srcs = ()
            new_instrs.append(ni)
            continue
        if op in (Opcode.MOV, Opcode.NOP, Opcode.PREFETCH, Opcode.JMP):
            new_instrs.append(instr.copy())
            continue
        raise TransformError(f"{fn.name}: unvectorizable op {op.value}")
    body.instrs = new_instrs

    # --- preheader setup: broadcasts and zeroed vector accumulators
    pre = fn.block(loop.preheader)
    setup: List[Instruction] = []
    for r in invariants:
        setup.append(Instruction(Opcode.VBCAST, vmap[r], (r,),
                                 comment=f"broadcast {r.name}"))
    for acc in analysis.accumulators:
        setup.append(Instruction(Opcode.VZERO, vmap[acc], (),
                                 comment=f"vector accumulator {acc.name}"))
    # insert before the preheader's terminator (if any)
    if pre.instrs and pre.instrs[-1].is_terminator:
        pre.instrs[-1:-1] = setup
    else:
        pre.instrs.extend(setup)

    # --- drain: horizontal-add vector accumulators into the scalars
    if analysis.accumulators:
        drain = get_or_create_drain(fn, loop)
        drain_code: List[Instruction] = []
        for acc in analysis.accumulators:
            tmp = VReg(f"h{acc.name}", RegClass.FP, loop.elem)
            drain_code.append(Instruction(Opcode.VHADD, tmp, (vmap[acc],),
                                          comment=f"reduce v{acc.name}"))
            drain_code.append(Instruction(Opcode.FADD, acc, (acc, tmp)))
        drain.instrs[0:0] = drain_code

    set_main_bound(fn, loop, vl)
    loop.vectorized = True
    loop.veclen = vl
    col = _obs_active()
    if col is not None:
        widened = set(SCALAR_TO_VECTOR.values())
        col.count("sv.widened",
                  sum(1 for i in body.instrs if i.op in widened))
        col.count("sv.broadcasts", len(invariants))
