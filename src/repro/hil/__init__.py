"""HIL — the high-level intermediate language accepted by FKO.

"Our input language is kept close to ANSI C in form ... However ... its
usage rules are closer to Fortran 77, which has a more performance-
centric design." (section 2.2.1)

Pipeline: :func:`~repro.hil.parser.parse` ->
:func:`~repro.hil.semantic.check` -> :func:`~repro.hil.lower.lower`,
or the one-shot :func:`~repro.hil.lower.compile_hil`.

Example (the paper's Figure 6(a) dot loop, with declarations)::

    ROUTINE ddot(N: int, X: ptr double, Y: ptr double) RETURNS double;
    double dot = 0.0;
    double x;
    double y;
    @TUNE
    LOOP i = 0, N
    LOOP_BODY
        x = X[0];
        y = Y[0];
        dot += x * y;
        X += 1;
        Y += 1;
    LOOP_END
    RETURN dot;
"""

from .lexer import Token, tokenize
from .parser import parse
from .semantic import CheckedRoutine, Symbol, check
from .lower import compile_hil, lower
from . import ast

__all__ = ["Token", "tokenize", "parse", "CheckedRoutine", "Symbol",
           "check", "compile_hil", "lower", "ast"]
