"""Abstract syntax tree for HIL routines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# --- expressions -----------------------------------------------------------

@dataclass(frozen=True)
class Num:
    """Integer or float literal."""
    value: Union[int, float]


@dataclass(frozen=True)
class Var:
    """Reference to a scalar variable or parameter."""
    name: str


@dataclass(frozen=True)
class ArrayRef:
    """Pointer-walking array element reference ``X[k]``, ``k`` a constant.

    HIL restricts array indexing to constant offsets from a pointer that
    is advanced explicitly (``X += 1``) — the Fortran-77-flavoured rule
    that lets the back end reason about streams without front-end
    dependence analysis.
    """
    name: str
    offset: int


@dataclass(frozen=True)
class Unary:
    """Unary op: 'abs' or 'neg'."""
    op: str
    operand: "Expr"


@dataclass(frozen=True)
class Bin:
    """Binary arithmetic: '+', '-', '*'."""
    op: str
    left: "Expr"
    right: "Expr"


Expr = Union[Num, Var, ArrayRef, Unary, Bin]


@dataclass(frozen=True)
class Cmp:
    """Comparison used in IF conditions: '<', '<=', '>', '>=', '==', '!='."""
    op: str
    left: Expr
    right: Expr


# --- statements ------------------------------------------------------------

@dataclass
class VarDecl:
    """``double dot = 0.0;`` — scalar declaration with optional init."""
    name: str
    dtype: str                      # 'int' | 'float' | 'double'
    init: Optional[Expr] = None
    line: int = 0


@dataclass
class Assign:
    """``lhs op expr;`` with op in {'=', '+=', '-=', '*='}.

    ``lhs`` is a Var (scalar) or ArrayRef (store through pointer).
    A bare pointer increment ``X += 1;`` is an Assign with Var lhs naming
    a pointer parameter.
    """
    lhs: Union[Var, ArrayRef]
    op: str
    expr: Expr
    line: int = 0


@dataclass
class IfGoto:
    cond: Cmp
    label: str
    line: int = 0


@dataclass
class IfBlock:
    """Scoped conditional: ``IF (c) THEN ... [ELSE ...] IF_END``.

    The paper notes its HIL "does not yet support scoped ifs" — this is
    the extension that lifts that restriction, so kernels like iamax can
    be written without labels and GOTOs.
    """
    cond: Cmp
    then_body: List["Stmt"] = field(default_factory=list)
    else_body: List["Stmt"] = field(default_factory=list)
    line: int = 0


@dataclass
class Goto:
    label: str
    line: int = 0


@dataclass
class LabelStmt:
    name: str
    line: int = 0


@dataclass
class Return:
    value: Optional[Expr] = None
    line: int = 0


@dataclass
class Loop:
    """``LOOP ivar = start, end [, step] ... LOOP_BODY ... LOOP_END``.

    ``tuned`` is set by a preceding ``@TUNE`` mark-up directive and
    selects this loop for the iterative search.
    """
    ivar: str
    start: Expr
    end: Expr
    step: int
    body: List["Stmt"] = field(default_factory=list)
    tuned: bool = False
    line: int = 0


Stmt = Union[VarDecl, Assign, IfGoto, IfBlock, Goto, LabelStmt,
             Return, Loop]


# --- routine ---------------------------------------------------------------

@dataclass
class ParamDecl:
    """``name: type`` — type is 'int', 'float', 'double', 'ptr float',
    or 'ptr double'."""
    name: str
    dtype: str
    elem: Optional[str] = None      # for ptr params


@dataclass
class Markup:
    """An ``@DIRECTIVE(args)`` line.  Recognised directives:

    * ``@TUNE`` — flag the next LOOP for the iterative search;
    * ``@NOPREFETCH(X)`` — exclude array X from prefetch candidates
      (the paper's "arrays known to be already in cache" override);
    * ``@ALIASOK(X, Y)`` — permit X and Y to alias (aliasing of output
      arrays is otherwise disallowed, section 2.2.1).
    """
    directive: str
    args: Tuple[str, ...] = ()
    line: int = 0


@dataclass
class Routine:
    name: str
    params: List[ParamDecl]
    returns: Optional[str]          # 'int' | 'float' | 'double' | None
    body: List[Stmt] = field(default_factory=list)
    markup: List[Markup] = field(default_factory=list)
