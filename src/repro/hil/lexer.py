"""Lexer for HIL, the high-level intermediate language FKO accepts.

HIL "is kept close to ANSI C in form ... [but] its usage rules are
closer to Fortran 77" (paper section 2.2.1).  The token set covers the
constructs the paper's Figure 6 uses — ``LOOP i = 0, N`` /
``LOOP_BODY`` / ``LOOP_END`` loops, pointer-walking array references
``X[0]``, compound assignment, ``IF (c) GOTO l`` with labels, ``ABS``,
``RETURN`` — plus routine headers and ``@`` mark-up directives.

Comments run from ``#`` or ``//`` to end of line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from ..errors import HILSyntaxError

KEYWORDS = {
    "ROUTINE", "RETURNS", "LOOP", "LOOP_BODY", "LOOP_END",
    "IF", "THEN", "ELSE", "IF_END", "GOTO", "RETURN", "ABS",
    "int", "float", "double", "ptr",
}

# longest-match-first symbol list
SYMBOLS = [
    "+=", "-=", "*=", "<=", ">=", "==", "!=",
    "(", ")", "[", "]", ":", ";", ",", "=", "<", ">", "+", "-", "*", "@",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r]+)
  | (?P<comment>(\#|//)[^\n]*)
  | (?P<newline>\n)
  | (?P<float>(\d+\.\d*|\.\d+)([eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<sym>""" + "|".join(re.escape(s) for s in SYMBOLS) + r""")
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str          # 'kw', 'ident', 'int', 'float', 'sym', 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.col}"


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    line, line_start = 1, 0
    pos = 0
    n = len(source)
    while pos < n:
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            col = pos - line_start + 1
            raise HILSyntaxError(f"unexpected character {source[pos]!r}",
                                 line, col)
        pos = m.end()
        kind = m.lastgroup
        text = m.group()
        col = m.start() - line_start + 1
        if kind == "newline":
            line += 1
            line_start = m.end()
            continue
        if kind in ("ws", "comment"):
            continue
        if kind == "ident":
            tok_kind = "kw" if text in KEYWORDS else "ident"
        elif kind == "sym":
            tok_kind = "sym"
        elif kind == "int":
            tok_kind = "int"
        elif kind == "float":
            tok_kind = "float"
        else:  # pragma: no cover - regex groups are exhaustive
            raise AssertionError(kind)
        tokens.append(Token(tok_kind, text, line, col))
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens
