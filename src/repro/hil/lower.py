"""Lowering: checked HIL routines -> low-level IR functions.

Produces non-SSA three-address code: every HIL scalar owns a "home"
virtual register that assignments write.  Loops lower to the canonical
shape the FKO transforms expect::

    <pre>     mov i, start                 (falls through)
    <header>  cmp i, end ; jcc <done-cond> exit
    <body..>  ... statements ...           (may be several blocks)
    <latch>   add i, step ; jmp header
    <exit>    ...

The tuned loop's :class:`~repro.ir.function.LoopDescriptor` is computed
from the CFG as the natural loop of the ``latch -> header`` back edge, so
bodies with internal control flow — including the paper's iamax, whose
NEWMAX block lives *after* the RETURN and jumps back in — are captured
correctly.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Union

from ..errors import HILSemanticError
from ..ir import (BasicBlock, Cond, DType, Function, Imm, Instruction,
                  IRBuilder, LoopDescriptor, Mem, Opcode, Param, Reg,
                  RegClass, VReg)
from . import ast
from .semantic import CheckedRoutine, Symbol, check
from .parser import parse

_CMP_COND = {"<": Cond.LT, "<=": Cond.LE, ">": Cond.GT, ">=": Cond.GE,
             "==": Cond.EQ, "!=": Cond.NE}


class _Lowerer:
    def __init__(self, checked: CheckedRoutine):
        self.checked = checked
        self.routine = checked.routine
        self.symbols = checked.symbols
        self.fp = checked.fp_dtype or DType.F64
        self.homes: Dict[str, VReg] = {}
        self.fn: Optional[Function] = None
        self.b: Optional[IRBuilder] = None
        self._uniq = itertools.count()
        self._loop_records: List[dict] = []

    # ------------------------------------------------------------------
    def run(self) -> Function:
        params: List[Param] = []
        for p in self.routine.params:
            sym = self.symbols[p.name]
            if sym.is_pointer:
                reg = VReg(p.name, RegClass.GP, DType.PTR)
                params.append(Param(p.name, DType.PTR, elem=sym.elem, reg=reg))
            elif sym.dtype.is_float:
                reg = VReg(p.name, RegClass.FP, sym.dtype)
                params.append(Param(p.name, sym.dtype, reg=reg))
            else:
                reg = VReg(p.name, RegClass.GP, sym.dtype)
                params.append(Param(p.name, sym.dtype, reg=reg))
            self.homes[p.name] = reg

        ret: Optional[Param] = None
        if self.routine.returns is not None:
            rdt = {"int": DType.I64, "float": DType.F32,
                   "double": DType.F64}[self.routine.returns]
            ret = Param("<ret>", rdt)

        self.fn = Function(self.routine.name, params, ret=ret)
        self.b = IRBuilder(self.fn)
        self.b.new_block("entry")
        self._lower_stmts(self.routine.body)
        # routines with no trailing RETURN get one (void kernels)
        last = self.fn.blocks[-1]
        if last.terminator is None:
            self.b.set_block(last.name)
            self.b.ret()
        self._finish_loops()
        return self.fn

    # ------------------------------------------------------------------
    # helpers
    def _home(self, name: str) -> VReg:
        if name not in self.homes:
            sym = self.symbols[name]
            if sym.dtype.is_float:
                self.homes[name] = VReg(name, RegClass.FP, sym.dtype)
            else:
                self.homes[name] = VReg(name, RegClass.GP, DType.I64)
        return self.homes[name]

    def _tmp_fp(self) -> VReg:
        return VReg("t", RegClass.FP, self.fp)

    def _tmp_gp(self) -> VReg:
        return VReg("t", RegClass.GP, DType.I64)

    def _mem(self, name: str, offset: int) -> Mem:
        sym = self.symbols[name]
        return Mem(self.homes[name], sym.elem, disp=offset * sym.elem.size,
                   array=name)

    def _label_block(self, label: str) -> str:
        return f"L_{label}"

    def _expr_is_float(self, e: ast.Expr) -> bool:
        if isinstance(e, ast.Num):
            return isinstance(e.value, float)
        if isinstance(e, ast.Var):
            return self.symbols[e.name].dtype.is_float
        if isinstance(e, ast.ArrayRef):
            return True
        if isinstance(e, ast.Unary):
            return self._expr_is_float(e.operand)
        if isinstance(e, ast.Bin):
            return self._expr_is_float(e.left) or self._expr_is_float(e.right)
        raise AssertionError(e)

    # ------------------------------------------------------------------
    # expressions
    def _eval(self, e: ast.Expr):
        """Evaluate an expression; returns a register or Imm operand."""
        if isinstance(e, ast.Num):
            return Imm(e.value)
        if isinstance(e, ast.Var):
            return self._home(e.name)
        if isinstance(e, ast.ArrayRef):
            dst = self._tmp_fp()
            self.b.load(dst, self._mem(e.name, e.offset))
            return dst
        if isinstance(e, ast.Unary):
            src = self._as_reg(self._eval(e.operand),
                               float_ctx=self._expr_is_float(e.operand))
            if src.rclass is RegClass.FP:
                dst = self._tmp_fp()
                op = Opcode.FABS if e.op == "abs" else Opcode.FNEG
            else:
                dst = self._tmp_gp()
                op = Opcode.NEG
            self.b.unop(op, dst, src)
            return dst
        if isinstance(e, ast.Bin):
            is_f = self._expr_is_float(e)
            left = self._eval(e.left)
            right = self._eval(e.right)
            if is_f:
                left = self._as_reg(left, float_ctx=True)
                right = self._as_reg(right, float_ctx=True)
                dst = self._tmp_fp()
                op = {"+": Opcode.FADD, "-": Opcode.FSUB,
                      "*": Opcode.FMUL}[e.op]
            else:
                dst = self._tmp_gp()
                op = {"+": Opcode.ADD, "-": Opcode.SUB,
                      "*": Opcode.IMUL}[e.op]
                left = self._as_reg(left, float_ctx=False)
            self.b.binop(op, dst, left, right)
            return dst
        raise AssertionError(e)

    def _as_reg(self, op, float_ctx: bool) -> Reg:
        """Materialize an Imm into a register when a register is needed."""
        if isinstance(op, Imm):
            if float_ctx:
                dst = self._tmp_fp()
                self.b.mov(dst, Imm(float(op.value)))
            else:
                dst = self._tmp_gp()
                self.b.mov(dst, op)
            return dst
        return op

    def _eval_into(self, dst: VReg, e: ast.Expr) -> None:
        """Evaluate ``e`` directly into the home register ``dst``."""
        if isinstance(e, ast.Num):
            v = float(e.value) if dst.rclass is RegClass.FP else int(e.value)
            self.b.mov(dst, Imm(v))
            return
        if isinstance(e, ast.Var):
            src = self._home(e.name)
            if src is not dst:
                self.b.mov(dst, src)
            return
        if isinstance(e, ast.ArrayRef):
            self.b.load(dst, self._mem(e.name, e.offset))
            return
        if isinstance(e, ast.Unary):
            src = self._as_reg(self._eval(e.operand),
                               float_ctx=self._expr_is_float(e.operand))
            if dst.rclass is RegClass.FP:
                op = Opcode.FABS if e.op == "abs" else Opcode.FNEG
            else:
                op = Opcode.NEG
            self.b.unop(op, dst, src)
            return
        if isinstance(e, ast.Bin):
            is_f = dst.rclass is RegClass.FP
            left = self._as_reg(self._eval(e.left), float_ctx=is_f)
            right = self._eval(e.right)
            if is_f:
                right = self._as_reg(right, float_ctx=True)
                op = {"+": Opcode.FADD, "-": Opcode.FSUB,
                      "*": Opcode.FMUL}[e.op]
            else:
                op = {"+": Opcode.ADD, "-": Opcode.SUB,
                      "*": Opcode.IMUL}[e.op]
            self.b.binop(op, dst, left, right)
            return
        raise AssertionError(e)

    # ------------------------------------------------------------------
    # statements
    def _lower_stmts(self, stmts: List[ast.Stmt]) -> None:
        for s in stmts:
            if isinstance(s, ast.VarDecl):
                self._lower_decl(s)
            elif isinstance(s, ast.Assign):
                self._lower_assign(s)
            elif isinstance(s, ast.Loop):
                self._lower_loop(s)
            elif isinstance(s, ast.IfGoto):
                self._lower_ifgoto(s)
            elif isinstance(s, ast.IfBlock):
                self._lower_ifblock(s)
            elif isinstance(s, ast.Goto):
                self.b.jmp(self._label_block(s.label))
                self.b.new_block(f"after{next(self._uniq)}")
            elif isinstance(s, ast.LabelStmt):
                name = self._label_block(s.name)
                # fall through into the labelled block
                self.b.new_block(name)
            elif isinstance(s, ast.Return):
                value = None
                if s.value is not None:
                    fctx = self._expr_is_float(s.value)
                    value = self._eval(s.value)
                    if isinstance(value, Imm):
                        value = self._as_reg(value, float_ctx=fctx)
                self.b.ret(value)
                self.b.new_block(f"after{next(self._uniq)}")
            else:  # pragma: no cover
                raise HILSemanticError(f"cannot lower {s!r}")

    def _lower_decl(self, s: ast.VarDecl) -> None:
        home = self._home(s.name)
        if s.init is not None:
            self._eval_into(home, s.init)
        else:
            zero = 0.0 if home.rclass is RegClass.FP else 0
            self.b.mov(home, Imm(zero), comment=f"init {s.name}")

    def _lower_assign(self, s: ast.Assign) -> None:
        if isinstance(s.lhs, ast.ArrayRef):
            mem = self._mem(s.lhs.name, s.lhs.offset)
            if s.op == "=":
                val = self._as_reg(self._eval(s.expr), float_ctx=True)
            else:
                cur = self._tmp_fp()
                self.b.load(cur, mem)
                rhs = self._as_reg(self._eval(s.expr), float_ctx=True)
                val = self._tmp_fp()
                op = {"+=": Opcode.FADD, "-=": Opcode.FSUB,
                      "*=": Opcode.FMUL}[s.op]
                self.b.binop(op, val, cur, rhs)
            self.b.store(mem, val)
            return

        name = s.lhs.name
        sym = self.symbols[name]
        if sym.is_pointer:
            # pointer advance: X += k — constant or runtime element count
            home = self._home(name)
            is_const = (isinstance(s.expr, ast.Num)
                        and isinstance(s.expr.value, int)) or \
                (isinstance(s.expr, ast.Unary) and s.expr.op == "neg"
                 and isinstance(s.expr.operand, ast.Num))
            if is_const:
                elems = self._const_int(s.expr, s.line)
                delta = elems * sym.elem.size
                if s.op == "-=":
                    delta = -delta
                self.b.add(home, home, Imm(delta), comment=f"{name} advance")
                return
            # runtime count (e.g. "X -= N" resetting a stream between
            # outer-loop iterations): scale to bytes, then add/sub
            count = self._as_reg(self._eval(s.expr), float_ctx=False)
            nbytes = self._tmp_gp()
            self.b.binop(Opcode.IMUL, nbytes, count, Imm(sym.elem.size),
                         comment=f"{name} advance bytes")
            op = Opcode.ADD if s.op == "+=" else Opcode.SUB
            self.b.binop(op, home, home, nbytes,
                         comment=f"{name} advance (runtime)")
            return

        home = self._home(name)
        if s.op == "=":
            self._eval_into(home, s.expr)
        else:
            rhs = self._eval(s.expr)
            if home.rclass is RegClass.FP:
                rhs = self._as_reg(rhs, float_ctx=True)
                op = {"+=": Opcode.FADD, "-=": Opcode.FSUB,
                      "*=": Opcode.FMUL}[s.op]
            else:
                op = {"+=": Opcode.ADD, "-=": Opcode.SUB,
                      "*=": Opcode.IMUL}[s.op]
            self.b.binop(op, home, home, rhs)

    def _const_int(self, e: ast.Expr, line: int) -> int:
        if isinstance(e, ast.Num) and isinstance(e.value, int):
            return e.value
        if (isinstance(e, ast.Unary) and e.op == "neg"
                and isinstance(e.operand, ast.Num)):
            return -e.operand.value
        raise HILSemanticError(
            f"pointer increments must be integer constants (line {line})")

    def _lower_ifblock(self, s: ast.IfBlock) -> None:
        uid = next(self._uniq)
        then_name = f"if{uid}_then"
        else_name = f"if{uid}_else"
        join_name = f"if{uid}_join"
        self._emit_cmp(s.cond)
        if s.else_body:
            self.b.jcc(_CMP_COND[s.cond.op].negate(), else_name)
            self.b.new_block(then_name)
            self._lower_stmts(s.then_body)
            self.b.jmp(join_name)
            self.b.new_block(else_name)
            self._lower_stmts(s.else_body)
            self.b.new_block(join_name)
        else:
            self.b.jcc(_CMP_COND[s.cond.op].negate(), join_name)
            self.b.new_block(then_name)
            self._lower_stmts(s.then_body)
            self.b.new_block(join_name)

    def _emit_cmp(self, cond: ast.Cmp) -> None:
        is_f = self._expr_is_float(cond.left) or self._expr_is_float(cond.right)
        left = self._as_reg(self._eval(cond.left), float_ctx=is_f)
        right = self._eval(cond.right)
        if is_f:
            right = self._as_reg(right, float_ctx=True)
            self.b.fcmp(left, right)
        else:
            self.b.cmp(left, right)

    def _lower_ifgoto(self, s: ast.IfGoto) -> None:
        self._emit_cmp(s.cond)
        self.b.jcc(_CMP_COND[s.cond.op], self._label_block(s.label))
        self.b.new_block(f"after{next(self._uniq)}")

    # ------------------------------------------------------------------
    def _lower_loop(self, s: ast.Loop) -> None:
        uid = next(self._uniq)
        pre, header = f"loop{uid}_pre", f"loop{uid}_head"
        body0, latch = f"loop{uid}_body", f"loop{uid}_latch"
        exit_ = f"loop{uid}_exit"

        ivar = self._home(s.ivar)
        self.b.new_block(pre)
        start_op = self._eval(s.start)
        self.b.mov(ivar, start_op, comment="loop counter init")
        end_op = self._eval(s.end)
        if isinstance(end_op, Imm):
            end_reg = self._tmp_gp()
            self.b.mov(end_reg, end_op)
            end_op = end_reg

        self.b.new_block(header)
        self.b.cmp(ivar, end_op)
        exit_cond = Cond.GE if s.step > 0 else Cond.LE
        self.b.jcc(exit_cond, exit_, comment="loop exit test")

        self.b.new_block(body0)
        self._lower_stmts(s.body)

        # whatever block we are in now falls through to the latch
        self.b.new_block(latch)
        self.b.add(ivar, ivar, Imm(s.step), comment="loop counter step")
        self.b.jmp(header)
        self.b.new_block(exit_)

        self._loop_records.append(dict(
            loop=s, pre=pre, header=header, body0=body0, latch=latch,
            exit=exit_, counter=ivar, start=start_op, end=end_op))

    # ------------------------------------------------------------------
    def _finish_loops(self) -> None:
        """Compute the tuned loop's natural-loop membership and attach
        the LoopDescriptor to the function."""
        record = None
        for rec in self._loop_records:
            if rec["loop"].tuned:
                record = rec
                break
        if record is None and len(self._loop_records) == 1:
            # an unmarked single loop is still discoverable; analysis
            # will report "no tuned loop" unless mark-up names one.
            record = None
        if record is None:
            return

        fn = self.fn
        header, latch = record["header"], record["latch"]
        # natural loop of the back edge latch -> header
        members = {header, latch}
        work = [latch]
        while work:
            cur = work.pop()
            for p in fn.predecessors(cur):
                if p not in members:
                    members.add(p)
                    work.append(p)
                if cur == header:
                    break
        members.discard(header)
        # keep layout order; exclude header and latch from body
        body = [b.name for b in fn.blocks
                if b.name in members and b.name != latch]

        elem = self.checked.fp_dtype or DType.F64
        pointers: Dict[str, VReg] = {}
        ptr_incs: Dict[str, int] = {}
        for name in body + [latch]:
            for instr in fn.block(name).instrs:
                if (instr.op is Opcode.ADD and isinstance(instr.dst, VReg)
                        and instr.dst.dtype is DType.PTR
                        and isinstance(instr.srcs[1], Imm)):
                    arr = instr.dst.name
                    pointers[arr] = instr.dst
                    sym = self.symbols.get(arr)
                    esz = sym.elem.size if sym and sym.elem else elem.size
                    ptr_incs[arr] = ptr_incs.get(arr, 0) + instr.srcs[1].value // esz
        # arrays referenced but never advanced (e.g. fully in-register)
        for name in body:
            for instr in fn.block(name).instrs:
                mem = instr.mem
                if mem is not None and mem.array is not None:
                    sym = self.symbols.get(mem.array)
                    if sym is not None and sym.is_pointer:
                        pointers.setdefault(mem.array, self.homes[mem.array])
                        ptr_incs.setdefault(mem.array, 0)

        fn.loop = LoopDescriptor(
            header=header, body=body, latch=latch,
            preheader=record["pre"], exit=record["exit"],
            counter=record["counter"], start=record["start"],
            end=record["end"], step=record["loop"].step,
            pointers=pointers, elem=elem, ptr_incs=ptr_incs)


def lower(checked: CheckedRoutine) -> Function:
    """Lower a checked routine to IR."""
    return _Lowerer(checked).run()


def compile_hil(source: str) -> Function:
    """Front-end convenience: parse + check + lower HIL source."""
    return lower(check(parse(source)))
