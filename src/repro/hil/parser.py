"""Recursive-descent parser for HIL.

Grammar (EBNF, ignoring whitespace/comments)::

    routine  : "ROUTINE" IDENT "(" [param {"," param}] ")"
               ["RETURNS" type] ";" {stmt} EOF
    param    : IDENT ":" ptype
    ptype    : "int" | "float" | "double" | "ptr" ("float" | "double")
    stmt     : markup | decl | loop | ifgoto | goto | label | return | assign
    markup   : "@" IDENT ["(" IDENT {"," IDENT} ")"]
    decl     : type IDENT ["=" expr] ";"
    loop     : "LOOP" IDENT "=" expr "," expr ["," signed_int]
               "LOOP_BODY" {stmt} "LOOP_END"
    ifgoto   : "IF" "(" expr relop expr ")" "GOTO" IDENT ";"
    goto     : "GOTO" IDENT ";"
    label    : IDENT ":"
    return   : "RETURN" [expr] ";"
    assign   : lvalue ("=" | "+=" | "-=" | "*=") expr ";"
    lvalue   : IDENT ["[" signed_int "]"]
    expr     : term {("+" | "-") term}
    term     : factor {"*" factor}
    factor   : "-" factor | "ABS" factor | atom
    atom     : NUM | IDENT ["[" signed_int "]"] | "(" expr ")"
    relop    : "<" | "<=" | ">" | ">=" | "==" | "!="
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import HILSyntaxError
from . import ast
from .lexer import Token, tokenize

_ASSIGN_OPS = {"=", "+=", "-=", "*="}
_RELOPS = {"<", "<=", ">", ">=", "==", "!="}
_TYPES = {"int", "float", "double"}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        # mark-up encountered inside loop bodies (e.g. @TUNE on a nested
        # loop) is hoisted into the routine's markup list
        self.pending_markup: List[ast.Markup] = []

    # ------------------------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, ahead: int = 1) -> Token:
        idx = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.cur
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise HILSyntaxError(f"expected {want!r}, found {tok.text!r}",
                                 tok.line, tok.col)
        return self.advance()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self.cur
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    # ------------------------------------------------------------------
    def parse_routine(self) -> ast.Routine:
        self.expect("kw", "ROUTINE")
        name = self.expect("ident").text
        self.expect("sym", "(")
        params: List[ast.ParamDecl] = []
        if not self.accept("sym", ")"):
            while True:
                params.append(self.parse_param())
                if self.accept("sym", ")"):
                    break
                self.expect("sym", ",")
        returns = None
        if self.accept("kw", "RETURNS"):
            tok = self.cur
            if tok.kind != "kw" or tok.text not in _TYPES:
                raise HILSyntaxError("expected return type", tok.line, tok.col)
            returns = self.advance().text
        self.expect("sym", ";")
        body: List[ast.Stmt] = []
        markup: List[ast.Markup] = []
        pending_tune = False
        while self.cur.kind != "eof":
            if self.cur.kind == "sym" and self.cur.text == "@":
                mu = self.parse_markup()
                markup.append(mu)
                if mu.directive == "TUNE":
                    pending_tune = True
                continue
            stmt = self.parse_stmt()
            if isinstance(stmt, ast.Loop) and pending_tune:
                stmt.tuned = True
                pending_tune = False
            body.append(stmt)
        markup.extend(self.pending_markup)
        return ast.Routine(name, params, returns, body, markup)

    def parse_param(self) -> ast.ParamDecl:
        name = self.expect("ident").text
        self.expect("sym", ":")
        tok = self.cur
        if tok.kind != "kw":
            raise HILSyntaxError("expected parameter type", tok.line, tok.col)
        if tok.text == "ptr":
            self.advance()
            elem = self.cur
            if elem.kind != "kw" or elem.text not in ("float", "double"):
                raise HILSyntaxError("ptr must point to float or double",
                                     elem.line, elem.col)
            self.advance()
            return ast.ParamDecl(name, "ptr", elem.text)
        if tok.text in _TYPES:
            self.advance()
            return ast.ParamDecl(name, tok.text)
        raise HILSyntaxError(f"bad parameter type {tok.text!r}",
                             tok.line, tok.col)

    def parse_markup(self) -> ast.Markup:
        at = self.expect("sym", "@")
        directive = self.expect("ident").text
        args: List[str] = []
        if self.accept("sym", "("):
            while True:
                args.append(self.expect("ident").text)
                if self.accept("sym", ")"):
                    break
                self.expect("sym", ",")
        return ast.Markup(directive.upper(), tuple(args), at.line)

    # ------------------------------------------------------------------
    def parse_stmt(self) -> ast.Stmt:
        tok = self.cur
        if tok.kind == "kw":
            if tok.text in _TYPES:
                return self.parse_decl()
            if tok.text == "LOOP":
                return self.parse_loop()
            if tok.text == "IF":
                return self.parse_ifgoto()
            if tok.text == "GOTO":
                self.advance()
                label = self.expect("ident").text
                self.expect("sym", ";")
                return ast.Goto(label, tok.line)
            if tok.text == "RETURN":
                self.advance()
                value = None
                if not (self.cur.kind == "sym" and self.cur.text == ";"):
                    value = self.parse_expr()
                self.expect("sym", ";")
                return ast.Return(value, tok.line)
            raise HILSyntaxError(f"unexpected keyword {tok.text!r}",
                                 tok.line, tok.col)
        if tok.kind == "ident":
            # label or assignment
            if self.peek().kind == "sym" and self.peek().text == ":":
                self.advance()
                self.advance()
                return ast.LabelStmt(tok.text, tok.line)
            return self.parse_assign()
        raise HILSyntaxError(f"unexpected token {tok.text!r}",
                             tok.line, tok.col)

    def parse_decl(self) -> ast.VarDecl:
        tok = self.advance()  # type keyword
        name = self.expect("ident").text
        init = None
        if self.accept("sym", "="):
            init = self.parse_expr()
        self.expect("sym", ";")
        return ast.VarDecl(name, tok.text, init, tok.line)

    def parse_loop(self) -> ast.Loop:
        tok = self.expect("kw", "LOOP")
        ivar = self.expect("ident").text
        self.expect("sym", "=")
        start = self.parse_expr()
        self.expect("sym", ",")
        end = self.parse_expr()
        step = 1
        if self.accept("sym", ","):
            neg = self.accept("sym", "-") is not None
            step_tok = self.expect("int")
            step = -int(step_tok.text) if neg else int(step_tok.text)
            if step == 0:
                raise HILSyntaxError("loop step must be nonzero",
                                     step_tok.line, step_tok.col)
        self.expect("kw", "LOOP_BODY")
        body: List[ast.Stmt] = []
        pending_tune = False
        while not (self.cur.kind == "kw" and self.cur.text == "LOOP_END"):
            if self.cur.kind == "eof":
                raise HILSyntaxError("LOOP without LOOP_END",
                                     tok.line, tok.col)
            if self.cur.kind == "sym" and self.cur.text == "@":
                mu = self.parse_markup()
                self.pending_markup.append(mu)
                if mu.directive == "TUNE":
                    pending_tune = True
                continue
            stmt = self.parse_stmt()
            if isinstance(stmt, ast.Loop) and pending_tune:
                stmt.tuned = True
                pending_tune = False
            body.append(stmt)
        self.expect("kw", "LOOP_END")
        return ast.Loop(ivar, start, end, step, body, line=tok.line)

    def parse_ifgoto(self):
        tok = self.expect("kw", "IF")
        self.expect("sym", "(")
        left = self.parse_expr()
        op_tok = self.cur
        if op_tok.kind != "sym" or op_tok.text not in _RELOPS:
            raise HILSyntaxError("expected comparison operator",
                                 op_tok.line, op_tok.col)
        self.advance()
        right = self.parse_expr()
        self.expect("sym", ")")
        cond = ast.Cmp(op_tok.text, left, right)
        if self.accept("kw", "THEN"):
            return self._parse_if_block(cond, tok)
        self.expect("kw", "GOTO")
        label = self.expect("ident").text
        self.expect("sym", ";")
        return ast.IfGoto(cond, label, tok.line)

    def _parse_if_block(self, cond, tok) -> ast.IfBlock:
        then_body: List[ast.Stmt] = []
        else_body: List[ast.Stmt] = []
        current = then_body
        while True:
            if self.cur.kind == "eof":
                raise HILSyntaxError("IF without IF_END", tok.line, tok.col)
            if self.cur.kind == "kw" and self.cur.text == "IF_END":
                self.advance()
                break
            if self.cur.kind == "kw" and self.cur.text == "ELSE":
                if current is else_body:
                    raise HILSyntaxError("duplicate ELSE",
                                         self.cur.line, self.cur.col)
                self.advance()
                current = else_body
                continue
            current.append(self.parse_stmt())
        return ast.IfBlock(cond, then_body, else_body, tok.line)

    def parse_assign(self) -> ast.Assign:
        tok = self.cur
        lhs = self.parse_lvalue()
        op_tok = self.cur
        if op_tok.kind != "sym" or op_tok.text not in _ASSIGN_OPS:
            raise HILSyntaxError("expected assignment operator",
                                 op_tok.line, op_tok.col)
        self.advance()
        expr = self.parse_expr()
        self.expect("sym", ";")
        return ast.Assign(lhs, op_tok.text, expr, tok.line)

    def parse_lvalue(self):
        name = self.expect("ident").text
        if self.accept("sym", "["):
            offset = self._signed_int()
            self.expect("sym", "]")
            return ast.ArrayRef(name, offset)
        return ast.Var(name)

    def _signed_int(self) -> int:
        neg = self.accept("sym", "-") is not None
        tok = self.expect("int")
        return -int(tok.text) if neg else int(tok.text)

    # ------------------------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        left = self.parse_term()
        while self.cur.kind == "sym" and self.cur.text in ("+", "-"):
            op = self.advance().text
            right = self.parse_term()
            left = ast.Bin(op, left, right)
        return left

    def parse_term(self) -> ast.Expr:
        left = self.parse_factor()
        while self.cur.kind == "sym" and self.cur.text == "*":
            self.advance()
            right = self.parse_factor()
            left = ast.Bin("*", left, right)
        return left

    def parse_factor(self) -> ast.Expr:
        if self.accept("sym", "-"):
            return ast.Unary("neg", self.parse_factor())
        if self.accept("kw", "ABS"):
            return ast.Unary("abs", self.parse_factor())
        return self.parse_atom()

    def parse_atom(self) -> ast.Expr:
        tok = self.cur
        if tok.kind == "int":
            self.advance()
            return ast.Num(int(tok.text))
        if tok.kind == "float":
            self.advance()
            return ast.Num(float(tok.text))
        if tok.kind == "ident":
            self.advance()
            if self.accept("sym", "["):
                offset = self._signed_int()
                self.expect("sym", "]")
                return ast.ArrayRef(tok.text, offset)
            return ast.Var(tok.text)
        if self.accept("sym", "("):
            expr = self.parse_expr()
            self.expect("sym", ")")
            return expr
        raise HILSyntaxError(f"unexpected token {tok.text!r} in expression",
                             tok.line, tok.col)


def parse(source: str) -> ast.Routine:
    """Parse HIL source text into a :class:`~repro.hil.ast.Routine`."""
    return Parser(tokenize(source)).parse_routine()
