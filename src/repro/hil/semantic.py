"""Semantic analysis for HIL routines.

Checks types and names, resolves mark-up, and enforces HIL's
Fortran-77-flavoured usage rules (section 2.2.1):

* scalars must be declared (or be parameters) before use;
* pointer parameters may only be dereferenced at constant offsets and
  advanced by integer element counts;
* all floating point data in one routine shares a single precision;
* array output aliasing is disallowed unless ``@ALIASOK`` mark-up says
  otherwise (recorded for the analysis phase — two distinct pointer
  parameters are *assumed* not to alias);
* at most one loop carries ``@TUNE`` mark-up, and it must be a
  top-level (non-nested) loop;
* every GOTO targets a defined label, labels are unique.

The result, :class:`CheckedRoutine`, is what the lowering pass consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import HILSemanticError
from ..ir.types import DType
from . import ast

_DTYPE = {"int": DType.I64, "float": DType.F32, "double": DType.F64}


@dataclass
class Symbol:
    name: str
    kind: str                  # 'param' | 'var' | 'ivar'
    dtype: DType               # I64 for ints/ivars, F32/F64 for floats,
    elem: Optional[DType] = None  # element type for pointer params
    is_pointer: bool = False


@dataclass
class CheckedRoutine:
    routine: ast.Routine
    symbols: Dict[str, Symbol]
    fp_dtype: Optional[DType]          # the routine's float precision
    tuned_loop: Optional[ast.Loop]
    labels: Set[str]
    noprefetch: Set[str] = field(default_factory=set)
    aliasok: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def pointer_params(self) -> List[str]:
        return [s.name for s in self.symbols.values() if s.is_pointer]


class _Checker:
    def __init__(self, routine: ast.Routine):
        self.routine = routine
        self.symbols: Dict[str, Symbol] = {}
        self.fp_dtype: Optional[DType] = None
        self.labels: Set[str] = set()
        self.gotos: List[str] = []
        self.tuned: Optional[ast.Loop] = None
        self.noprefetch: Set[str] = set()
        self.aliasok: List[Tuple[str, str]] = []

    def error(self, msg: str, line: int = 0) -> None:
        loc = f" (line {line})" if line else ""
        raise HILSemanticError(f"{self.routine.name}: {msg}{loc}")

    # ------------------------------------------------------------------
    def run(self) -> CheckedRoutine:
        self._check_params()
        self._check_markup()
        self._collect_labels(self.routine.body)
        self._check_stmts(self.routine.body, in_loop=False)
        for g in self.gotos:
            if g not in self.labels:
                self.error(f"GOTO to undefined label {g!r}")
        self._check_return_type()
        return CheckedRoutine(
            routine=self.routine, symbols=self.symbols,
            fp_dtype=self.fp_dtype, tuned_loop=self.tuned,
            labels=self.labels, noprefetch=self.noprefetch,
            aliasok=self.aliasok)

    def _check_params(self) -> None:
        for p in self.routine.params:
            if p.name in self.symbols:
                self.error(f"duplicate parameter {p.name!r}")
            if p.dtype == "ptr":
                elem = _DTYPE[p.elem]
                self._note_fp(elem, 0)
                self.symbols[p.name] = Symbol(p.name, "param", DType.PTR,
                                              elem=elem, is_pointer=True)
            else:
                dt = _DTYPE[p.dtype]
                if dt.is_float:
                    self._note_fp(dt, 0)
                self.symbols[p.name] = Symbol(p.name, "param", dt)

    def _check_markup(self) -> None:
        known = {"TUNE", "NOPREFETCH", "ALIASOK"}
        for mu in self.routine.markup:
            if mu.directive not in known:
                self.error(f"unknown mark-up @{mu.directive}", mu.line)
            if mu.directive == "NOPREFETCH":
                for arg in mu.args:
                    sym = self.symbols.get(arg)
                    if sym is None or not sym.is_pointer:
                        self.error(f"@NOPREFETCH({arg}): not a pointer param",
                                   mu.line)
                    self.noprefetch.add(arg)
            elif mu.directive == "ALIASOK":
                if len(mu.args) != 2:
                    self.error("@ALIASOK needs exactly two arrays", mu.line)
                for arg in mu.args:
                    sym = self.symbols.get(arg)
                    if sym is None or not sym.is_pointer:
                        self.error(f"@ALIASOK({arg}): not a pointer param",
                                   mu.line)
                self.aliasok.append((mu.args[0], mu.args[1]))

    def _note_fp(self, dt: DType, line: int) -> None:
        if self.fp_dtype is None:
            self.fp_dtype = dt
        elif self.fp_dtype is not dt:
            self.error("mixed float precisions in one routine "
                       f"({self.fp_dtype.value} vs {dt.value})", line)

    # ------------------------------------------------------------------
    def _collect_labels(self, stmts: List[ast.Stmt]) -> None:
        for s in stmts:
            if isinstance(s, ast.LabelStmt):
                if s.name in self.labels:
                    self.error(f"duplicate label {s.name!r}", s.line)
                self.labels.add(s.name)
            elif isinstance(s, ast.Loop):
                self._collect_labels(s.body)
            elif isinstance(s, ast.IfBlock):
                self._collect_labels(s.then_body)
                self._collect_labels(s.else_body)

    # ------------------------------------------------------------------
    def _check_stmts(self, stmts: List[ast.Stmt], in_loop: bool) -> None:
        for s in stmts:
            if isinstance(s, ast.VarDecl):
                self._check_decl(s)
            elif isinstance(s, ast.Assign):
                self._check_assign(s)
            elif isinstance(s, ast.Loop):
                self._check_loop(s, in_loop)
            elif isinstance(s, ast.IfGoto):
                self._check_cmp(s.cond, s.line)
                self.gotos.append(s.label)
            elif isinstance(s, ast.IfBlock):
                self._check_cmp(s.cond, s.line)
                self._check_stmts(s.then_body, in_loop)
                self._check_stmts(s.else_body, in_loop)
            elif isinstance(s, ast.Goto):
                self.gotos.append(s.label)
            elif isinstance(s, ast.LabelStmt):
                pass
            elif isinstance(s, ast.Return):
                if s.value is not None:
                    self._type_of(s.value, s.line)
            else:  # pragma: no cover
                self.error(f"unknown statement {s!r}")

    def _check_decl(self, s: ast.VarDecl) -> None:
        if s.name in self.symbols:
            self.error(f"redeclaration of {s.name!r}", s.line)
        dt = _DTYPE[s.dtype]
        if dt.is_float:
            self._note_fp(dt, s.line)
        self.symbols[s.name] = Symbol(s.name, "var", dt)
        if s.init is not None:
            it = self._type_of(s.init, s.line)
            self._require_assignable(dt, it, s.line)

    def _check_loop(self, s: ast.Loop, in_loop: bool) -> None:
        if s.tuned:
            if self.tuned is not None:
                self.error("more than one @TUNE loop", s.line)
            if any(isinstance(b, ast.Loop) for b in s.body):
                self.error("the @TUNE loop must be the innermost loop",
                           s.line)
            self.tuned = s
        for e in (s.start, s.end):
            t = self._type_of(e, s.line)
            if not t.is_int:
                self.error("loop bounds must be integers", s.line)
        if s.ivar in self.symbols and self.symbols[s.ivar].kind != "ivar":
            self.error(f"loop variable {s.ivar!r} shadows a declaration",
                       s.line)
        self.symbols.setdefault(s.ivar, Symbol(s.ivar, "ivar", DType.I64))
        self._check_stmts(s.body, in_loop=True)

    def _check_assign(self, s: ast.Assign) -> None:
        if isinstance(s.lhs, ast.ArrayRef):
            sym = self.symbols.get(s.lhs.name)
            if sym is None or not sym.is_pointer:
                self.error(f"{s.lhs.name!r} is not an array parameter", s.line)
            rt = self._type_of(s.expr, s.line)
            self._require_assignable(sym.elem, rt, s.line)
            if s.op != "=":
                # Y[0] += e  is allowed; it is a load-modify-store
                pass
            return
        name = s.lhs.name
        sym = self.symbols.get(name)
        if sym is None:
            self.error(f"assignment to undeclared {name!r}", s.line)
        if sym.is_pointer:
            # pointer advance: X += k (k integer expression)
            if s.op not in ("+=", "-="):
                self.error(f"pointers only support += / -= ({name!r})", s.line)
            t = self._type_of(s.expr, s.line)
            if not t.is_int:
                self.error("pointer increment must be an integer", s.line)
            return
        if sym.kind == "ivar":
            self.error(f"loop variable {name!r} may not be assigned", s.line)
        rt = self._type_of(s.expr, s.line)
        self._require_assignable(sym.dtype, rt, s.line)

    def _check_cmp(self, c: ast.Cmp, line: int) -> None:
        lt = self._type_of(c.left, line)
        rt = self._type_of(c.right, line)
        if lt.is_float != rt.is_float:
            # integer literals compare fine against floats
            if not (isinstance(c.right, ast.Num) or isinstance(c.left, ast.Num)):
                self.error("comparison mixes float and int", line)

    # ------------------------------------------------------------------
    def _type_of(self, e: ast.Expr, line: int) -> DType:
        if isinstance(e, ast.Num):
            if isinstance(e.value, int):
                return DType.I64
            self._note_fp(self.fp_dtype or DType.F64, line)
            return self.fp_dtype or DType.F64
        if isinstance(e, ast.Var):
            sym = self.symbols.get(e.name)
            if sym is None:
                self.error(f"use of undeclared {e.name!r}", line)
            if sym.is_pointer:
                self.error(f"pointer {e.name!r} used as a value", line)
            return sym.dtype
        if isinstance(e, ast.ArrayRef):
            sym = self.symbols.get(e.name)
            if sym is None or not sym.is_pointer:
                self.error(f"{e.name!r} is not an array parameter", line)
            return sym.elem
        if isinstance(e, ast.Unary):
            t = self._type_of(e.operand, line)
            if e.op == "abs" and not t.is_float:
                self.error("ABS requires a float operand", line)
            return t
        if isinstance(e, ast.Bin):
            lt = self._type_of(e.left, line)
            rt = self._type_of(e.right, line)
            if lt.is_float or rt.is_float:
                # int literals promote; true int variables do not
                for side, t in ((e.left, lt), (e.right, rt)):
                    if t.is_int and not isinstance(side, ast.Num):
                        self.error("arithmetic mixes float and int variable",
                                   line)
                return lt if lt.is_float else rt
            return DType.I64
        self.error(f"unknown expression {e!r}", line)
        raise AssertionError  # unreachable

    def _require_assignable(self, dst: DType, src: DType, line: int) -> None:
        if dst.is_float and src.is_int:
            return  # integer literal into float is fine (0 -> 0.0)
        if dst.is_float != src.is_float:
            self.error("type mismatch in assignment", line)

    def _check_return_type(self) -> None:
        pass  # return type flexibility: RETURN checked per-statement


def check(routine: ast.Routine) -> CheckedRoutine:
    """Run semantic analysis; raises HILSemanticError on violations."""
    return _Checker(routine).run()
