"""Cache-blocking (tiling) of HIL loop nests — the Level-3 transform.

The inner-loop pipeline (SV/UR/AE/PF/...) tunes the single ``@TUNE``
loop; a Level-3 kernel like GEMM wraps that loop in a perfect nest, and
its performance is decided one level up — by how much reuse the nest
keeps resident in cache.  This pass rewrites the *source*: it splits
selected nest loops ``LOOP v = 0, N`` into a tile loop
``LOOP vT = 0, N, T`` plus an intra-tile loop ``LOOP v = 0, vlen``
(``vlen`` clamped for the ragged last tile), hoists all tile loops
outside all intra loops, and regenerates the inter-loop pointer fixups
from a per-index stride model so every array is addressed exactly as in
the original program.

Operating at the HIL level keeps the layering honest: the tiled source
goes through the unchanged parser / semantic checker / lowering /
``@TUNE`` pipeline, so every existing transform, the interpreter and
the differential fuzzer apply to tiled kernels for free.

The same nest analysis (:func:`find_nest`) feeds the timing model: a
:class:`NestInfo` carries per-(array, index) stride polynomials in the
extent ``N``, from which the blocked-reuse model derives footprints and
per-cache-level traffic without walking ``N^3`` iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from . import ast
from .parser import parse
from ..errors import ReproError


class TilingError(ReproError):
    """The requested tiling cannot be applied to this source."""


#: a polynomial in the extent variable N: {power: coeff}
Poly = Dict[int, int]


def _poly_add(a: Poly, b: Poly) -> Poly:
    out = dict(a)
    for p, c in b.items():
        out[p] = out.get(p, 0) + c
        if out[p] == 0:
            del out[p]
    return out


def _poly_scale(a: Poly, k: int) -> Poly:
    return {p: c * k for p, c in a.items() if c * k != 0}


def _poly_shift(a: Poly) -> Poly:
    """Multiply by N (shift every power up by one)."""
    return {p + 1: c for p, c in a.items()}


def _poly_eval(a: Poly, n: int) -> int:
    return sum(c * n ** p for p, c in a.items())


# ---------------------------------------------------------------------------
# nest discovery


@dataclass
class NestLevel:
    """One loop of the nest, outermost first."""

    ivar: str
    loop: ast.Loop
    pre: List[ast.Stmt] = field(default_factory=list)    # before child loop
    post: List[ast.Stmt] = field(default_factory=list)   # after child loop
    #: net pointer movement per iteration of this loop, by array, as a
    #: polynomial in N (the "true stride" of this index)
    stride: Dict[str, Poly] = field(default_factory=dict)


@dataclass
class NestInfo:
    """A tileable perfect-ish nest: step-1 upcount loops from zero to a
    shared extent variable, innermost loop ``@TUNE``-marked."""

    routine: ast.Routine
    extent: str                       # the shared extent variable ("N")
    levels: List[NestLevel]           # outermost first; [-1] is tuned
    pointers: Dict[str, int]          # array -> element size in bytes
    loaded: Tuple[str, ...]           # arrays read anywhere in the nest
    stored: Tuple[str, ...]           # arrays written anywhere in the nest

    @property
    def ivars(self) -> Tuple[str, ...]:
        return tuple(level.ivar for level in self.levels)

    def stride(self, array: str, ivar: str) -> Poly:
        for level in self.levels:
            if level.ivar == ivar:
                return level.stride.get(array, {})
        raise KeyError(ivar)

    def strides_at(self, n: int) -> Dict[str, Dict[str, int]]:
        """{array: {ivar: elements}} with the extent bound to ``n``."""
        return {arr: {lv.ivar: _poly_eval(lv.stride.get(arr, {}), n)
                      for lv in self.levels}
                for arr in self.pointers}


_ELEM_SIZE = {"float": 4, "double": 8}


def _expr_vars(e) -> List[str]:
    if isinstance(e, ast.Var):
        return [e.name]
    if isinstance(e, ast.Unary):
        return _expr_vars(e.operand)
    if isinstance(e, (ast.Bin, ast.Cmp)):
        return _expr_vars(e.left) + _expr_vars(e.right)
    return []


def _stmt_vars(s) -> List[str]:
    """Every Var name read or written by a non-loop statement."""
    if isinstance(s, ast.VarDecl):
        return [s.name] + (_expr_vars(s.init) if s.init is not None else [])
    if isinstance(s, ast.Assign):
        out = _expr_vars(s.expr)
        if isinstance(s.lhs, ast.Var):
            out.append(s.lhs.name)
        return out
    if isinstance(s, ast.Return):
        return _expr_vars(s.value) if s.value is not None else []
    return []


def _advance_poly(e, extent: str) -> Optional[Poly]:
    """Parse an integer advance expression over {literals, N} into a
    polynomial in N; None if it contains anything else."""
    if isinstance(e, ast.Num):
        return {0: int(e.value)} if isinstance(e.value, int) else None
    if isinstance(e, ast.Var):
        return {1: 1} if e.name == extent else None
    if isinstance(e, ast.Unary) and e.op == "neg":
        inner = _advance_poly(e.operand, extent)
        return None if inner is None else _poly_scale(inner, -1)
    if isinstance(e, ast.Bin):
        left = _advance_poly(e.left, extent)
        right = _advance_poly(e.right, extent)
        if left is None or right is None:
            return None
        if e.op == "+":
            return _poly_add(left, right)
        if e.op == "-":
            return _poly_add(left, _poly_scale(right, -1))
        if e.op == "*":
            out: Poly = {}
            for pa, ca in left.items():
                for pb, cb in right.items():
                    out[pa + pb] = out.get(pa + pb, 0) + ca * cb
            return {p: c for p, c in out.items() if c}
    return None


def find_nest(source: str) -> Optional[NestInfo]:
    """Discover the tileable loop nest of ``source``, or None.

    Requirements (conservative by design — a kernel that fails any gate
    simply has no tile dimensions in its search space):

    * one top-level loop chain of depth >= 2 ending at the ``@TUNE``
      loop, every level ``LOOP v = 0, N`` with step 1 over one shared
      extent variable;
    * no control flow (IF/GOTO/labels) anywhere in the nest;
    * no statement in the nest reads or writes any loop counter;
    * at non-innermost levels, pointer advances appear only *after* the
      child loop, scalar statements only *before* it (so discarding and
      regenerating the advances preserves every address);
    * every pointer advance is an integer expression over {literals, N};
      innermost-body advances are literal constants.
    """
    try:
        routine = parse(source)
    except ReproError:
        return None

    pointers = {p.name: _ELEM_SIZE.get(p.elem or "", 8)
                for p in routine.params if (p.elem or
                                            str(p.dtype).startswith("ptr"))}
    int_params = {p.name for p in routine.params if p.dtype == "int"}

    top_loops = [s for s in routine.body if isinstance(s, ast.Loop)]
    if len(top_loops) != 1:
        return None
    loop = top_loops[0]

    # walk the chain down to the tuned loop
    chain: List[ast.Loop] = []
    extent: Optional[str] = None
    while True:
        if loop.step != 1 or not isinstance(loop.start, ast.Num) \
                or loop.start.value != 0 or not isinstance(loop.end, ast.Var):
            return None
        if extent is None:
            if loop.end.name not in int_params:
                return None
            extent = loop.end.name
        elif loop.end.name != extent:
            return None
        chain.append(loop)
        inner = [s for s in loop.body if isinstance(s, ast.Loop)]
        if not inner:
            break
        if len(inner) > 1 or loop.tuned:
            return None
        loop = inner[0]
    if len(chain) < 2 or not chain[-1].tuned:
        return None

    ivars = [lp.ivar for lp in chain]
    if len(set(ivars)) != len(ivars) or extent in ivars:
        return None

    levels: List[NestLevel] = []
    for depth, lp in enumerate(chain):
        level = NestLevel(ivar=lp.ivar, loop=lp)
        innermost = depth == len(chain) - 1
        seen_child = innermost
        for s in lp.body:
            if isinstance(s, ast.Loop):
                seen_child = True
                continue
            if not isinstance(s, (ast.VarDecl, ast.Assign)):
                return None      # IF/GOTO/label/RETURN in the nest
            if any(v in ivars for v in _stmt_vars(s)):
                return None      # counter used in the nest body
            is_advance = (isinstance(s, ast.Assign)
                          and isinstance(s.lhs, ast.Var)
                          and s.lhs.name in pointers)
            if innermost:
                continue         # innermost body is kept verbatim
            if is_advance:
                if not seen_child:
                    return None  # advance before the child loop
                level.post.append(s)
            else:
                if seen_child:
                    return None  # scalar work after the child loop
                level.pre.append(s)
        levels.append(level)

    # per-index stride polynomials, innermost out:
    #   stride(inner) = sum of literal advances in the tuned body
    #   stride(level) = N * stride(child) + post advances of the level
    child_stride: Dict[str, Poly] = {}
    inner_level = levels[-1]
    for s in chain[-1].body:
        if isinstance(s, ast.Assign) and isinstance(s.lhs, ast.Var) \
                and s.lhs.name in pointers and s.op in ("+=", "-="):
            if not (isinstance(s.expr, ast.Num)
                    and isinstance(s.expr.value, int)):
                return None
            delta = {0: s.expr.value if s.op == "+=" else -s.expr.value}
            child_stride[s.lhs.name] = _poly_add(
                child_stride.get(s.lhs.name, {}), delta)
    inner_level.stride = dict(child_stride)

    for level in reversed(levels[:-1]):
        stride = {arr: _poly_shift(p) for arr, p in child_stride.items()}
        for s in level.post:
            if s.op not in ("+=", "-="):
                return None
            poly = _advance_poly(s.expr, extent)
            if poly is None:
                return None
            if s.op == "-=":
                poly = _poly_scale(poly, -1)
            stride[s.lhs.name] = _poly_add(stride.get(s.lhs.name, {}), poly)
        level.stride = stride
        child_stride = stride

    loaded: List[str] = []
    stored: List[str] = []

    def scan(stmts):
        for s in stmts:
            if isinstance(s, ast.Loop):
                scan(s.body)
            elif isinstance(s, ast.Assign):
                if isinstance(s.lhs, ast.ArrayRef):
                    stored.append(s.lhs.name)
                for name in _array_reads(s.expr):
                    loaded.append(name)
            elif isinstance(s, ast.VarDecl) and s.init is not None:
                for name in _array_reads(s.init):
                    loaded.append(name)

    scan([chain[0]])
    return NestInfo(routine=routine, extent=extent, levels=levels,
                    pointers=pointers,
                    loaded=tuple(sorted(set(loaded))),
                    stored=tuple(sorted(set(stored))))


def _array_reads(e) -> List[str]:
    if isinstance(e, ast.ArrayRef):
        return [e.name]
    if isinstance(e, ast.Unary):
        return _array_reads(e.operand)
    if isinstance(e, (ast.Bin, ast.Cmp)):
        return _array_reads(e.left) + _array_reads(e.right)
    return []


# ---------------------------------------------------------------------------
# fixup algebra: terms over {N^p} x {one intra-tile length symbol}


@dataclass(frozen=True)
class _Term:
    coeff: int
    npow: int = 0
    lensym: Optional[str] = None


def _term_stmts(array: str, terms: List[_Term], extent: str) -> List[str]:
    """One HIL statement per term, deterministic order."""
    out = []
    for t in sorted(terms, key=lambda t: (t.npow, t.lensym or "", t.coeff)):
        if t.coeff == 0:
            continue
        factors = []
        if abs(t.coeff) != 1 or (t.npow == 0 and t.lensym is None):
            factors.append(str(abs(t.coeff)))
        factors.extend([extent] * t.npow)
        if t.lensym is not None:
            factors.append(t.lensym)
        op = "+=" if t.coeff > 0 else "-="
        out.append(f"{array} {op} {' * '.join(factors)};")
    return out


def _poly_terms(poly: Poly, scale: int = 1,
                lensym: Optional[str] = None) -> List[_Term]:
    return [_Term(coeff=c * scale, npow=p, lensym=lensym)
            for p, c in sorted(poly.items()) if c * scale != 0]


# ---------------------------------------------------------------------------
# unparser (the AST subset the nest gate admits, plus what we generate)


def _expr_str(e) -> str:
    if isinstance(e, ast.Num):
        return repr(e.value)
    if isinstance(e, ast.Var):
        return e.name
    if isinstance(e, ast.ArrayRef):
        return f"{e.name}[{e.offset}]"
    if isinstance(e, ast.Unary):
        if e.op == "abs":
            return f"ABS {_expr_str(e.operand)}"
        return f"-{_expr_str(e.operand)}"
    if isinstance(e, ast.Bin):
        return f"({_expr_str(e.left)} {e.op} {_expr_str(e.right)})"
    raise TilingError(f"cannot unparse expression {e!r}")


def _stmt_lines(s, indent: str) -> List[str]:
    if isinstance(s, ast.VarDecl):
        init = f" = {_expr_str(s.init)}" if s.init is not None else ""
        return [f"{indent}{s.dtype} {s.name}{init};"]
    if isinstance(s, ast.Assign):
        lhs = (s.lhs.name if isinstance(s.lhs, ast.Var)
               else f"{s.lhs.name}[{s.lhs.offset}]")
        return [f"{indent}{lhs} {s.op} {_expr_str(s.expr)};"]
    if isinstance(s, ast.Return):
        val = f" {_expr_str(s.value)}" if s.value is not None else ""
        return [f"{indent}RETURN{val};"]
    if isinstance(s, ast.IfBlock):
        lines = [f"{indent}IF ({_expr_str(s.cond.left)} {s.cond.op} "
                 f"{_expr_str(s.cond.right)})", f"{indent}THEN"]
        for t in s.then_body:
            lines.extend(_stmt_lines(t, indent + "    "))
        if s.else_body:
            lines.append(f"{indent}ELSE")
            for t in s.else_body:
                lines.extend(_stmt_lines(t, indent + "    "))
        lines.append(f"{indent}IF_END")
        return lines
    if isinstance(s, ast.Loop):
        step = f", {s.step}" if s.step != 1 else ""
        lines = []
        if s.tuned:
            lines.append(f"{indent}@TUNE")
        lines.append(f"{indent}LOOP {s.ivar} = {_expr_str(s.start)}, "
                     f"{_expr_str(s.end)}{step}")
        lines.append(f"{indent}LOOP_BODY")
        for t in s.body:
            lines.extend(_stmt_lines(t, indent + "    "))
        lines.append(f"{indent}LOOP_END")
        return lines
    raise TilingError(f"cannot unparse statement {s!r}")


def _param_str(p: ast.ParamDecl) -> str:
    if p.elem:
        return f"{p.name}: ptr {p.elem}"
    return f"{p.name}: {p.dtype}"


def unparse(routine: ast.Routine) -> str:
    header = (f"ROUTINE {routine.name}("
              + ", ".join(_param_str(p) for p in routine.params) + ")")
    if routine.returns:
        header += f" RETURNS {routine.returns}"
    lines = [header + ";"]
    for mu in routine.markup:
        if mu.directive != "TUNE":
            args = f"({', '.join(mu.args)})" if mu.args else ""
            lines.append(f"@{mu.directive}{args}")
    for s in routine.body:
        lines.extend(_stmt_lines(s, ""))
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# the tiling transform


def _declared_names(routine: ast.Routine) -> set:
    names = {p.name for p in routine.params}

    def walk(stmts):
        for s in stmts:
            if isinstance(s, ast.VarDecl):
                names.add(s.name)
            elif isinstance(s, ast.Loop):
                names.add(s.ivar)
                walk(s.body)
            elif isinstance(s, ast.IfBlock):
                walk(s.then_body)
                walk(s.else_body)

    walk(routine.body)
    return names


def apply_tiling(source: str, tiles: Dict[str, int]) -> str:
    """Rewrite ``source`` with the nest loops named in ``tiles`` blocked
    at the given sizes.  Unknown ivars and zero/negative sizes are
    ignored; with no effective tile (or no tileable nest) the source is
    returned unchanged, so untiled parameter points compile through the
    byte-identical legacy path.
    """
    tiles = {v: int(t) for v, t in (tiles or {}).items() if int(t) > 0}
    if not tiles:
        return source
    nest = find_nest(source)
    if nest is None:
        return source
    tiles = {v: t for v, t in tiles.items() if v in nest.ivars}
    if not tiles:
        return source

    routine = nest.routine
    extent = nest.extent
    names = _declared_names(routine)
    tiled = [lv.ivar for lv in nest.levels if lv.ivar in tiles]
    tvar: Dict[str, str] = {}
    lvar: Dict[str, str] = {}
    for v in tiled:
        tvar[v], lvar[v] = f"{v}T", f"{v}len"
        if tvar[v] in names or lvar[v] in names:
            raise TilingError(f"cannot tile {v!r}: generated name "
                              f"{tvar[v]}/{lvar[v]} collides")

    def ext_sym(v: str) -> Tuple[Optional[str], int]:
        """Intra extent of index v as (length symbol | None, N power)."""
        return (lvar[v], 0) if v in tiles else (None, 1)

    # fixups per level, computed from the stride polynomials:
    #   intra v (child = intra/tuned loop of w):
    #       F = P_v - ext_w * P_w
    #   tile vT (child = intra chain head or next tile loop):
    #       child nets len_v'... see below; F = len_v * P_v - N * P_head
    # where P_head is the stride of the outermost *intra* loop's index
    # for a tile loop whose child is the intra chain, or N * P_w for a
    # tile child (a complete tile loop of w sweeps the full extent).
    order = [lv.ivar for lv in nest.levels]

    def stride(arr: str, v: str) -> Poly:
        return nest.stride(arr, v)

    arrays = sorted(nest.pointers)

    def fixup_stmts(terms_by_array: Dict[str, List[_Term]]) -> List[ast.Stmt]:
        stmts: List[ast.Stmt] = []
        for arr in arrays:
            for line in _term_stmts(arr, terms_by_array.get(arr, []),
                                    extent):
                stmts.append(_parse_fixup(line))
        return stmts

    def _parse_fixup(line: str) -> ast.Assign:
        # "A += k * N * ilen;" -> Assign; parse by hand (tiny grammar)
        name, op, rest = line.split(" ", 2)
        rest = rest.rstrip(";")
        factors = [f.strip() for f in rest.split("*")]
        expr: ast.Expr
        expr = (ast.Num(int(factors[0])) if factors[0].isdigit()
                else ast.Var(factors[0]))
        for f in factors[1:]:
            nxt = ast.Num(int(f)) if f.isdigit() else ast.Var(f)
            expr = ast.Bin("*", expr, nxt)
        return ast.Assign(ast.Var(name), op, expr)

    # net movement of a COMPLETE loop run, used for the child term:
    #   tuned/intra loop of w: ext_w * P_w
    #   tile loop of w:        N * P_w
    def full_net_terms(arr: str, v: str, is_tile: bool,
                       scale: int) -> List[_Term]:
        p = stride(arr, v)
        if is_tile:
            return _poly_terms(_poly_shift(p), scale)
        sym, npow = ext_sym(v)
        if sym is None:
            return _poly_terms(_poly_shift(p), scale)
        return _poly_terms(p, scale, lensym=sym)

    # per-iteration desired net:
    #   intra v: P_v          tile vT: len_v * P_v
    def iter_net_terms(arr: str, v: str, is_tile: bool,
                       scale: int) -> List[_Term]:
        p = stride(arr, v)
        if is_tile:
            return _poly_terms(p, scale, lensym=lvar[v])
        return _poly_terms(p, scale)

    # build the new nest inside-out
    inner_loop = nest.levels[-1].loop
    sym, npow = ext_sym(inner_loop.ivar)
    new_inner = ast.Loop(
        ivar=inner_loop.ivar, start=ast.Num(0),
        end=ast.Var(sym) if sym is not None else ast.Var(extent),
        step=1, body=list(inner_loop.body), tuned=True)

    body: List[ast.Stmt] = [new_inner]
    child = ("intra", inner_loop.ivar)

    # intra loops of the non-innermost levels, innermost-out, keeping
    # the original pre statements and regenerating the post fixups
    for level in reversed(nest.levels[:-1]):
        v = level.ivar
        cvar = child[1]
        terms: Dict[str, List[_Term]] = {}
        for arr in arrays:
            t = iter_net_terms(arr, v, False, 1)
            t += full_net_terms(arr, cvar, False, -1)
            terms[arr] = t
        stmts: List[ast.Stmt] = list(level.pre) + body + fixup_stmts(terms)
        sym, _ = ext_sym(v)
        loop = ast.Loop(ivar=v, start=ast.Num(0),
                        end=ast.Var(sym) if sym is not None
                        else ast.Var(extent),
                        step=1, body=stmts)
        body = [loop]
        child = ("intra", v)

    # tile loops, innermost-out over the tiled ivars in original order;
    # the innermost tile loop's child is the whole intra chain (headed
    # by the outermost intra index), outer tile loops chain on tiles
    head = order[0]
    for pos, v in enumerate(reversed(tiled)):
        is_innermost_tile = pos == 0
        terms = {}
        for arr in arrays:
            t = iter_net_terms(arr, v, True, 1)
            if is_innermost_tile:
                t += full_net_terms(arr, head, False, -1)
            else:
                prev_tile = tiled[len(tiled) - pos]
                t += full_net_terms(arr, prev_tile, True, -1)
            terms[arr] = t
        clamp = [
            _parse_fixup(f"{lvar[v]} = {extent};"),
            ast.Assign(ast.Var(lvar[v]), "-=", ast.Var(tvar[v])),
            ast.IfBlock(cond=ast.Cmp(">", ast.Var(lvar[v]),
                                     ast.Num(tiles[v])),
                        then_body=[ast.Assign(ast.Var(lvar[v]), "=",
                                              ast.Num(tiles[v]))]),
        ]
        loop = ast.Loop(ivar=tvar[v], start=ast.Num(0),
                        end=ast.Var(extent), step=tiles[v],
                        body=clamp + body + fixup_stmts(terms))
        body = [loop]

    # splice: declarations for the length variables, then the new nest
    # replacing the original top-level loop
    decls: List[ast.Stmt] = [ast.VarDecl(name=lvar[v], dtype="int",
                                         init=ast.Num(0)) for v in tiled]
    new_body: List[ast.Stmt] = []
    spliced = False
    for s in routine.body:
        if isinstance(s, ast.Loop) and not spliced:
            new_body.extend(decls)
            new_body.extend(body)
            spliced = True
        else:
            new_body.append(s)
    new_routine = ast.Routine(name=routine.name, params=routine.params,
                              returns=routine.returns, body=new_body,
                              markup=routine.markup)
    return unparse(new_routine)


# ---------------------------------------------------------------------------
# memoized fronts (FKO calls these per compile)
#
# Observability: tiling runs on *source text*, before any IR exists, so
# it is invisible to the pipeline's pass spans.  When a collector is
# installed these fronts bypass their memo tables (both functions are
# deterministic string -> value maps, so a recompute is bit-identical
# to the cached answer — proven in tests) and record ``tile-discover``
# / ``tile-apply`` pass spans with ``tile.*`` detail counters instead.
# With only the metrics registry enabled, memoization stays on and cold
# computations feed the ``repro_tile_wall_seconds`` histogram.

_NEST_CACHE: Dict[str, Optional[NestInfo]] = {}
_TILED_CACHE: Dict[Tuple[str, Tuple[Tuple[str, int], ...]], str] = {}


def nest_info(source: str) -> Optional[NestInfo]:
    """Memoized :func:`find_nest` (recomputed under observation so each
    observed compile carries its own ``tile-discover`` span)."""
    from ..obs import metrics as _metrics
    from ..obs.core import active as _obs_active

    col = _obs_active()
    if col is not None:
        with col.pass_span("tile-discover") as span:
            info = find_nest(source)
            span.applied = info is not None
            if info is not None:
                col.count("tile.nest_loops", len(info.levels))
                col.count("tile.nest_arrays", len(info.pointers))
        _NEST_CACHE[source] = info
        return info
    if source not in _NEST_CACHE:
        if _metrics._ENABLED:
            t0 = perf_counter()
            _NEST_CACHE[source] = find_nest(source)
            _metrics.observe("repro_tile_wall_seconds",
                             perf_counter() - t0, stage="discover")
        else:
            _NEST_CACHE[source] = find_nest(source)
    return _NEST_CACHE[source]


def tiled_source(source: str, tiles: Dict[str, int]) -> str:
    """Memoized :func:`apply_tiling`; identity when ``tiles`` is empty.
    Under observation the rewrite is recomputed inside a ``tile-apply``
    span (with the nest rediscovered first, so the span pair brackets
    the whole source-level transform)."""
    from ..obs import metrics as _metrics
    from ..obs.core import active as _obs_active

    tiles = {v: int(t) for v, t in (tiles or {}).items() if int(t) > 0}
    if not tiles:
        return source
    key = (source, tuple(sorted(tiles.items())))
    col = _obs_active()
    if col is not None:
        nest_info(source)
        with col.pass_span("tile-apply") as span:
            out = apply_tiling(source, tiles)
            col.count("tile.loops_tiled", len(tiles))
            col.count("tile.lines_delta",
                      out.count("\n") - source.count("\n"))
            span.applied = True
        _TILED_CACHE[key] = out
        return out
    hit = _TILED_CACHE.get(key)
    if hit is None:
        if _metrics._ENABLED:
            t0 = perf_counter()
            hit = _TILED_CACHE[key] = apply_tiling(source, tiles)
            _metrics.observe("repro_tile_wall_seconds",
                             perf_counter() - t0, stage="apply")
        else:
            hit = _TILED_CACHE[key] = apply_tiling(source, tiles)
    return hit


__all__ = ["NestInfo", "NestLevel", "TilingError", "apply_tiling",
           "find_nest", "nest_info", "tiled_source", "unparse"]
