"""Low-level IR: typed virtual-register code over x86-flavored opcodes.

This is the representation FKO transforms operate on and that the
simulated machines execute/time.  See the submodules:

* :mod:`repro.ir.types`        — scalar/vector types
* :mod:`repro.ir.operands`     — registers, immediates, memory refs, labels
* :mod:`repro.ir.instructions` — opcode set + Instruction
* :mod:`repro.ir.block` / :mod:`repro.ir.function` — blocks, CFG, loop info
* :mod:`repro.ir.builder`      — emission helper
* :mod:`repro.ir.dataflow`     — liveness
* :mod:`repro.ir.printer`      — assembly-style dumps
* :mod:`repro.ir.verifier`     — invariant checker
"""

from .types import DType, VecType, sse, veclen, VEC_BYTES
from .operands import (AReg, Imm, Label, Mem, Operand, Reg, RegClass, VReg,
                       is_reg)
from .instructions import (Cond, Instruction, OP_INFO, Opcode, OpInfo,
                           PrefetchHint, SCALAR_TO_VECTOR, load_op_for,
                           store_op_for)
from .block import BasicBlock
from .function import Function, LoopDescriptor, Param
from .builder import IRBuilder
from .dataflow import Liveness, max_register_pressure
from .printer import (canonical_function_text, format_function,
                      print_function)
from .att import emit_att
from .verifier import verify

__all__ = [
    "DType", "VecType", "sse", "veclen", "VEC_BYTES",
    "AReg", "Imm", "Label", "Mem", "Operand", "Reg", "RegClass", "VReg",
    "is_reg",
    "Cond", "Instruction", "OP_INFO", "Opcode", "OpInfo", "PrefetchHint",
    "SCALAR_TO_VECTOR", "load_op_for", "store_op_for",
    "BasicBlock", "Function", "LoopDescriptor", "Param",
    "IRBuilder", "Liveness", "max_register_pressure",
    "canonical_function_text", "format_function", "print_function",
    "verify", "emit_att",
]
