"""AT&T-syntax x86 assembly emission.

FKO's product is "optimized assembly" (Figure 1).  The default printer
(:mod:`repro.ir.printer`) dumps the IR in a pseudo-assembly; this module
renders allocated functions as GNU-assembler-style AT&T x86 instead —
`addsd (%ecx), %xmm0`, `prefetchnta 512(%ecx)`, `jge .L_exit` — which is
what a 2005 hand-tuner would diff against.

Emission requires a register-allocated function (architectural registers
only); virtual registers raise :class:`~repro.errors.IRError`.  The
output is faithful to the simulated ISA: pseudo-ops with no single x86
instruction (VHADD, VBCAST, ...) expand into the conventional SSE
sequences.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..errors import IRError
from .function import Function
from .instructions import Cond, Instruction, Opcode, PrefetchHint
from .operands import AReg, Imm, Label, Mem, Reg, VReg
from .types import DType, VecType


def _is_single(dtype) -> bool:
    if isinstance(dtype, VecType):
        return dtype.elem is DType.F32
    return dtype is DType.F32


def _suffix(dtype) -> str:
    """s{s,d} for scalars, p{s,d} for packed."""
    if isinstance(dtype, VecType):
        return "ps" if dtype.elem is DType.F32 else "pd"
    return "ss" if dtype is DType.F32 else "sd"


#: parameter registers of the function being emitted: rendered as
#: ``ARG_<name>`` incoming-argument operands (cdecl stack slots in a
#: real build; symbolic here)
_PARAM_REGS: dict = {}


def _reg(op: Reg) -> str:
    if isinstance(op, VReg):
        if op in _PARAM_REGS:
            return f"ARG_{_PARAM_REGS[op]}"
        raise IRError(
            f"cannot emit AT&T assembly for virtual register {op!r}; "
            "run register allocation first")
    return f"%{op.name}"


def _operand(op) -> str:
    if isinstance(op, _lit):
        return str(op)
    if isinstance(op, Imm):
        return f"${int(op.value) if float(op.value).is_integer() else op.value}"
    if isinstance(op, Mem):
        base = _reg(op.base)
        if op.index is not None:
            return f"{op.disp or ''}({base},{_reg(op.index)},{op.scale})"
        return f"{op.disp or ''}({base})"
    if isinstance(op, Label):
        return f".L_{op.name}"
    return _reg(op)


class _lit(str):
    """An operand that is already rendered (scratch register names)."""


_JCC = {Cond.EQ: "je", Cond.NE: "jne", Cond.LT: "jl", Cond.LE: "jle",
        Cond.GT: "jg", Cond.GE: "jge"}

_PREFETCH = {PrefetchHint.NTA: "prefetchnta", PrefetchHint.T0: "prefetcht0",
             PrefetchHint.T1: "prefetcht1", PrefetchHint.W: "prefetchw"}

def _pick_scratch(*avoid_ops) -> str:
    """A scratch xmm register distinct from the expansion's operands."""
    used = {_operand(o) for o in avoid_ops if o is not None}
    for cand in ("%xmm7", "%xmm6", "%xmm5", "%xmm4"):
        if cand not in used:
            return cand
    return "%xmm7"  # pragma: no cover


def emit_instruction(instr: Instruction) -> List[str]:
    """One IR instruction -> one or more AT&T lines (no indentation)."""
    op = instr.op
    d = instr.dst
    s = instr.srcs

    def two(mn: str, src, dst) -> str:
        return f"{mn} {_operand(src)}, {_operand(dst)}"

    if op is Opcode.MOV:
        return [two("movl", s[0], d)]
    if op is Opcode.FMOV:
        if isinstance(s[0], Imm):
            if float(s[0].value) == 0.0:
                return [f"xorps {_operand(d)}, {_operand(d)}"]
            # constants come from a literal pool in real assembly
            return [f"movsd .LC_{abs(hash(s[0].value)) % 10000:04d}, "
                    f"{_operand(d)}\t# {s[0].value}"]
        return [two("movaps", s[0], d)]
    if op is Opcode.VMOV:
        return [two("movaps", s[0], d)]
    if op is Opcode.LD:
        return [two("movl", s[0], d)]
    if op is Opcode.ST:
        return [two("movl", s[1], s[0])]
    if op is Opcode.FLD:
        return [two("mov" + _suffix(d.dtype), s[0], d)]
    if op is Opcode.FST:
        return [two("mov" + _suffix(s[1].dtype), s[1], s[0])]
    if op is Opcode.FSTNT:
        return [two("movnti", s[1], s[0])]
    if op is Opcode.VLD:
        return [two("movaps", s[0], d)]
    if op is Opcode.VLDU:
        return [two("movups", s[0], d)]
    if op is Opcode.VST:
        return [two("movaps", s[1], s[0])]
    if op is Opcode.VSTU:
        return [two("movups", s[1], s[0])]
    if op is Opcode.VSTNT:
        return [two("movnt" + _suffix(s[1].dtype), s[1], s[0])]
    if op is Opcode.VBCAST:
        sfx = _suffix(d.dtype)
        lines = [two("movaps", s[0], d)]
        if sfx == "ps":
            lines.append(f"shufps $0, {_operand(d)}, {_operand(d)}")
        else:
            lines.append(f"unpcklpd {_operand(d)}, {_operand(d)}")
        return lines
    if op is Opcode.VZERO:
        return [f"xorps {_operand(d)}, {_operand(d)}"]

    if op in (Opcode.ADD, Opcode.SUB, Opcode.IMUL):
        mn = {Opcode.ADD: "addl", Opcode.SUB: "subl",
              Opcode.IMUL: "imull"}[op]
        # x86 two-operand form: dst must be srcs[0]
        lines = []
        if s[0] != d:
            lines.append(two("movl", s[0], d))
        lines.append(two(mn, s[1], d))
        return lines
    if op is Opcode.NEG:
        lines = []
        if s[0] != d:
            lines.append(two("movl", s[0], d))
        lines.append(f"negl {_operand(d)}")
        return lines

    if op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
              Opcode.FMAX, Opcode.VADD, Opcode.VSUB, Opcode.VMUL,
              Opcode.VMAX):
        base_mn = {Opcode.FADD: "add", Opcode.FSUB: "sub",
                   Opcode.FMUL: "mul", Opcode.FDIV: "div",
                   Opcode.FMAX: "max", Opcode.VADD: "add",
                   Opcode.VSUB: "sub", Opcode.VMUL: "mul",
                   Opcode.VMAX: "max"}[op]
        mn = base_mn + _suffix(d.dtype)
        lines = []
        if s[0] != d:
            lines.append(two("movaps", s[0], d))
        lines.append(two(mn, s[1], d))
        return lines
    if op in (Opcode.FABS, Opcode.VABS):
        mask = ".LC_ABSMASK" + ("S" if _is_single(d.dtype) else "D")
        lines = []
        if s[0] != d:
            lines.append(two("movaps", s[0], d))
        lines.append(f"andps {mask}, {_operand(d)}")
        return lines
    if op is Opcode.FNEG:
        mask = ".LC_SIGNMASK" + ("S" if _is_single(d.dtype) else "D")
        lines = []
        if s[0] != d:
            lines.append(two("movaps", s[0], d))
        lines.append(f"xorps {mask}, {_operand(d)}")
        return lines
    if op is Opcode.VCMPGT:
        lines = []
        if s[0] != d:
            lines.append(two("movaps", s[0], d))
        lines.append(f"cmpnle{_suffix(d.dtype)} {_operand(s[1])}, "
                     f"{_operand(d)}")
        return lines
    if op in (Opcode.VAND, Opcode.VANDN, Opcode.VOR):
        mn = {Opcode.VAND: "andps", Opcode.VANDN: "andnps",
              Opcode.VOR: "orps"}[op]
        lines = []
        if s[0] != d:
            lines.append(two("movaps", s[0], d))
        lines.append(two(mn, s[1], d))
        return lines
    if op is Opcode.VHADD:
        sfx = _suffix(s[0].dtype)
        sc = _pick_scratch(s[0], d)
        lines = [f"movaps {_operand(s[0])}, {sc}"]
        if sfx == "ps":
            lines += [f"movhlps {_operand(s[0])}, {sc}",
                      f"addps {_operand(s[0])}, {sc}",
                      f"movaps {sc}, {_operand(d)}",
                      f"shufps $1, {_operand(d)}, {_operand(d)}",
                      f"addss {sc}, {_operand(d)}"]
        else:
            lines += [f"unpckhpd {_operand(s[0])}, {sc}",
                      f"movaps {_operand(s[0])}, {_operand(d)}",
                      f"addsd {sc}, {_operand(d)}"]
        return lines
    if op is Opcode.VHMAX:
        sfx = _suffix(s[0].dtype)
        sc = _pick_scratch(s[0], d)
        return [f"movaps {_operand(s[0])}, {sc}",
                f"unpckhpd {_operand(s[0])}, {sc}",
                f"movaps {_operand(s[0])}, {_operand(d)}",
                f"max{'ss' if sfx == 'ps' else 'sd'} {sc}, "
                f"{_operand(d)}"]
    if op is Opcode.VMASK:
        sfx = _suffix(s[0].dtype)
        return [f"movmsk{sfx} {_operand(s[0])}, {_operand(d)}"]

    if op is Opcode.CMP:
        return [f"cmpl {_operand(s[1])}, {_operand(s[0])}"]
    if op is Opcode.TEST:
        return [f"testl {_operand(s[1])}, {_operand(s[0])}"]
    if op is Opcode.FCMP:
        mn = "ucomiss" if _is_single(s[0].dtype) else "ucomisd"
        return [f"{mn} {_operand(s[1])}, {_operand(s[0])}"]

    if op is Opcode.JMP:
        return [f"jmp {_operand(s[0])}"]
    if op is Opcode.JCC:
        return [f"{_JCC[instr.cond]} {_operand(s[0])}"]
    if op is Opcode.RET:
        lines = []
        if s:
            # integer returns in %eax, float returns stay in %xmm0
            src = s[0]
            if isinstance(src, AReg) and src.name not in ("eax", "xmm0"):
                mn = "movl" if src.rclass.value == "gp" else "movaps"
                dst = "%eax" if src.rclass.value == "gp" else "%xmm0"
                lines.append(f"{mn} {_operand(src)}, {dst}")
        lines.append("ret")
        return lines
    if op is Opcode.PREFETCH:
        return [f"{_PREFETCH[instr.hint]} {_operand(s[0])}"]
    if op is Opcode.NOP:
        return ["nop"]
    raise IRError(f"cannot emit {op!r}")  # pragma: no cover


def emit_att(fn: Function, comment_ir: bool = False) -> str:
    """Render an allocated function as AT&T assembly text."""
    _PARAM_REGS.clear()
    for param in fn.params:
        if param.reg is not None and isinstance(param.reg, VReg):
            _PARAM_REGS[param.reg] = param.name
    lines: List[str] = [
        f"# {fn.name} — generated by repro/FKO",
        "\t.text",
        f"\t.globl {fn.name}",
        f"{fn.name}:",
    ]
    for block in fn.blocks:
        lines.append(f".L_{block.name}:")
        for instr in block.instrs:
            asm = emit_instruction(instr)
            for j, line in enumerate(asm):
                suffix = ""
                if j == 0 and (instr.comment or comment_ir):
                    parts = []
                    if comment_ir:
                        parts.append(repr(instr))
                    if instr.comment:
                        parts.append(instr.comment)
                    suffix = "\t# " + " ; ".join(parts)
                lines.append(f"\t{line}{suffix}")
    return "\n".join(lines) + "\n"
