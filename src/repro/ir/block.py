"""Basic blocks.

A block is a named straight-line instruction sequence.  Control may only
enter at the top and leave at the bottom (through an explicit terminator
or by falling through to the next block in the function's block order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from .instructions import BRANCH_OPS, TERMINATOR_OPS, Instruction, Opcode
from .operands import Label


@dataclass
class BasicBlock:
    name: str
    instrs: List[Instruction] = field(default_factory=list)

    def append(self, instr: Instruction) -> Instruction:
        self.instrs.append(instr)
        return instr

    @property
    def terminator(self) -> Optional[Instruction]:
        """The final instruction if it is an unconditional terminator."""
        instrs = self.instrs
        if instrs and instrs[-1].op in TERMINATOR_OPS:
            return instrs[-1]
        return None

    @property
    def falls_through(self) -> bool:
        """True when control can reach the next block in layout order."""
        return self.terminator is None

    def branch_targets(self) -> List[str]:
        """Names of blocks this block branches to (conditionally or not).
        Hot path for CFG derivation: branches live only in a block's
        tail — a terminator must be last and nothing computational may
        follow a conditional branch (verifier-enforced; the transforms
        never leave a branch buried mid-block either) — so the scan
        walks backward and stops at the first non-branch."""
        instrs = self.instrs
        out = []
        for i in range(len(instrs) - 1, -1, -1):
            instr = instrs[i]
            if instr.op in BRANCH_OPS:
                if instr.srcs and instr.srcs[0].__class__ is Label:
                    out.append(instr.srcs[0].name)
            elif instr.op is not Opcode.RET:
                break
        out.reverse()
        return out

    @property
    def is_empty(self) -> bool:
        return not self.instrs or all(i.op is Opcode.NOP for i in self.instrs)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)

    def __repr__(self) -> str:
        return f"<block {self.name}: {len(self.instrs)} instrs>"
