"""Basic blocks.

A block is a named straight-line instruction sequence.  Control may only
enter at the top and leave at the bottom (through an explicit terminator
or by falling through to the next block in the function's block order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from .instructions import Instruction, Opcode


@dataclass
class BasicBlock:
    name: str
    instrs: List[Instruction] = field(default_factory=list)

    def append(self, instr: Instruction) -> Instruction:
        self.instrs.append(instr)
        return instr

    @property
    def terminator(self) -> Optional[Instruction]:
        """The final instruction if it is an unconditional terminator."""
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None

    @property
    def falls_through(self) -> bool:
        """True when control can reach the next block in layout order."""
        return self.terminator is None

    def branch_targets(self) -> Iterator[str]:
        """Names of blocks this block branches to (conditionally or not)."""
        for instr in self.instrs:
            if instr.is_branch and instr.target is not None:
                yield instr.target.name

    @property
    def is_empty(self) -> bool:
        return not self.instrs or all(i.op is Opcode.NOP for i in self.instrs)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)

    def __repr__(self) -> str:
        return f"<block {self.name}: {len(self.instrs)} instrs>"
