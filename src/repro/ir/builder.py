"""IRBuilder: a small convenience layer for emitting instructions.

Used by the HIL lowering pass and by the hand-tuned ATLAS kernel
generators (which play the role of the paper's hand-written assembly
kernels and therefore build IR directly).
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple, Union

from .block import BasicBlock
from .function import Function
from .instructions import Cond, Instruction, Opcode, PrefetchHint
from .operands import Imm, Label, Mem, Operand, Reg, RegClass, VReg
from .types import DType, VecType


class IRBuilder:
    def __init__(self, fn: Function):
        self.fn = fn
        self.block: Optional[BasicBlock] = None
        self._name_counter = itertools.count()

    # ------------------------------------------------------------------
    def new_block(self, name: Optional[str] = None,
                  after: Optional[str] = None) -> BasicBlock:
        if name is None:
            name = f"bb{next(self._name_counter)}"
        block = BasicBlock(name)
        self.fn.add_block(block, after=after)
        self.block = block
        return block

    def set_block(self, name: str) -> BasicBlock:
        self.block = self.fn.block(name)
        return self.block

    def emit(self, instr: Instruction) -> Instruction:
        if self.block is None:
            raise RuntimeError("no current block; call new_block() first")
        return self.block.append(instr)

    # ------------------------------------------------------------------
    # register factories
    def gp(self, name: str = "t", dtype: DType = DType.I64) -> VReg:
        return VReg(name, RegClass.GP, dtype)

    def fp(self, name: str = "f", dtype: DType = DType.F64) -> VReg:
        return VReg(name, RegClass.FP, dtype)

    def vec(self, name: str, vtype: VecType) -> VReg:
        return VReg(name, RegClass.VEC, vtype)

    # ------------------------------------------------------------------
    # emission helpers (one per opcode family)
    def mov(self, dst: Reg, src: Operand, comment: str = "") -> Instruction:
        op = {RegClass.GP: Opcode.MOV, RegClass.FP: Opcode.FMOV,
              RegClass.VEC: Opcode.VMOV}[dst.rclass]
        return self.emit(Instruction(op, dst, (src,), comment=comment))

    def load(self, dst: Reg, mem: Mem, comment: str = "") -> Instruction:
        op = {RegClass.GP: Opcode.LD, RegClass.FP: Opcode.FLD,
              RegClass.VEC: Opcode.VLD}[dst.rclass]
        return self.emit(Instruction(op, dst, (mem,), comment=comment))

    def store(self, mem: Mem, value: Reg, nontemporal: bool = False,
              comment: str = "") -> Instruction:
        if value.rclass is RegClass.GP:
            op = Opcode.ST
        elif value.rclass is RegClass.FP:
            op = Opcode.FSTNT if nontemporal else Opcode.FST
        else:
            op = Opcode.VSTNT if nontemporal else Opcode.VST
        return self.emit(Instruction(op, None, (mem, value), comment=comment))

    def binop(self, op: Opcode, dst: Reg, a: Operand, b: Operand,
              comment: str = "") -> Instruction:
        return self.emit(Instruction(op, dst, (a, b), comment=comment))

    def unop(self, op: Opcode, dst: Reg, a: Operand,
             comment: str = "") -> Instruction:
        return self.emit(Instruction(op, dst, (a,), comment=comment))

    def add(self, dst: Reg, a: Operand, b: Operand, **kw) -> Instruction:
        return self.binop(Opcode.ADD, dst, a, b, **kw)

    def sub(self, dst: Reg, a: Operand, b: Operand, **kw) -> Instruction:
        return self.binop(Opcode.SUB, dst, a, b, **kw)

    def cmp(self, a: Operand, b: Operand, comment: str = "") -> Instruction:
        return self.emit(Instruction(Opcode.CMP, None, (a, b), comment=comment))

    def fcmp(self, a: Operand, b: Operand, comment: str = "") -> Instruction:
        return self.emit(Instruction(Opcode.FCMP, None, (a, b), comment=comment))

    def jcc(self, cond: Cond, target: str, comment: str = "") -> Instruction:
        return self.emit(Instruction(Opcode.JCC, None, (Label(target),),
                                     cond=cond, comment=comment))

    def jmp(self, target: str, comment: str = "") -> Instruction:
        return self.emit(Instruction(Opcode.JMP, None, (Label(target),),
                                     comment=comment))

    def ret(self, value: Optional[Operand] = None, comment: str = "") -> Instruction:
        srcs = (value,) if value is not None else ()
        return self.emit(Instruction(Opcode.RET, None, srcs, comment=comment))

    def prefetch(self, mem: Mem, hint: PrefetchHint,
                 comment: str = "") -> Instruction:
        return self.emit(Instruction(Opcode.PREFETCH, None, (mem,), hint=hint,
                                     comment=comment))

    def vzero(self, dst: Reg, comment: str = "") -> Instruction:
        return self.emit(Instruction(Opcode.VZERO, dst, (), comment=comment))

    def vbcast(self, dst: Reg, src: Reg, comment: str = "") -> Instruction:
        return self.emit(Instruction(Opcode.VBCAST, dst, (src,), comment=comment))
