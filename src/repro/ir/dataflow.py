"""Dataflow analyses over the derived CFG.

Currently: classic backward liveness, used by the register allocator,
copy propagation (dead-copy removal), the verifier, and the transform
legality checks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from .block import BasicBlock
from .function import Function
from .instructions import Instruction
from .operands import Reg


def block_uses_defs(block: BasicBlock) -> Tuple[Set[Reg], Set[Reg]]:
    """(use, def) sets of a block: ``use`` = registers read before any
    write in the block; ``def`` = registers written."""
    uses: Set[Reg] = set()
    defs: Set[Reg] = set()
    for instr in block.instrs:
        for r in instr.regs_read():
            if r not in defs:
                uses.add(r)
        for r in instr.regs_written():
            defs.add(r)
    return uses, defs


class Liveness:
    """Per-block live-in / live-out sets, computed to a fixed point."""

    def __init__(self, fn: Function):
        self.fn = fn
        self.live_in: Dict[str, Set[Reg]] = {}
        self.live_out: Dict[str, Set[Reg]] = {}
        self._compute()

    def _compute(self) -> None:
        fn = self.fn
        use: Dict[str, Set[Reg]] = {}
        defs: Dict[str, Set[Reg]] = {}
        for b in fn.blocks:
            use[b.name], defs[b.name] = block_uses_defs(b)
            self.live_in[b.name] = set()
            self.live_out[b.name] = set()
        changed = True
        while changed:
            changed = False
            for b in reversed(fn.blocks):
                out: Set[Reg] = set()
                for s in fn.successors(b):
                    out |= self.live_in[s]
                inn = use[b.name] | (out - defs[b.name])
                if out != self.live_out[b.name] or inn != self.live_in[b.name]:
                    self.live_out[b.name] = out
                    self.live_in[b.name] = inn
                    changed = True

    def per_instruction(self, block: BasicBlock) -> List[Set[Reg]]:
        """live_after[i]: registers live immediately *after* instruction i."""
        live = set(self.live_out[block.name])
        result: List[Set[Reg]] = [set() for _ in block.instrs]
        for i in range(len(block.instrs) - 1, -1, -1):
            result[i] = set(live)
            instr = block.instrs[i]
            for r in instr.regs_written():
                live.discard(r)
            for r in instr.regs_read():
                live.add(r)
        return result

    def live_at_entry(self, block: BasicBlock) -> Set[Reg]:
        return self.live_in[block.name]


def max_register_pressure(fn: Function, rclasses) -> int:
    """Maximum number of simultaneously-live registers of the given
    class(es) anywhere in the function.  Used by tests and by unroll
    legality reasoning (beyond-8 pressure means spills on x86)."""
    if not isinstance(rclasses, (set, frozenset, list, tuple)):
        rclasses = (rclasses,)
    rclasses = set(rclasses)
    lv = Liveness(fn)
    peak = 0
    for b in fn.blocks:
        live_after = lv.per_instruction(b)
        entry = {r for r in lv.live_at_entry(b) if r.rclass in rclasses}
        peak = max(peak, len(entry))
        for live in live_after:
            n = sum(1 for r in live if r.rclass in rclasses)
            peak = max(peak, n)
    return peak
