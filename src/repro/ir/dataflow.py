"""Dataflow analyses over the derived CFG.

Currently: classic backward liveness, used by the register allocator,
copy propagation (dead-copy removal), the verifier, and the transform
legality checks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from .block import BasicBlock
from .function import Function
from .instructions import Instruction
from .operands import AReg, Mem, Reg, VReg


def block_uses_defs(block: BasicBlock) -> Tuple[Set[Reg], Set[Reg]]:
    """(use, def) sets of a block: ``use`` = registers read before any
    write in the block; ``def`` = registers written.

    The operand walk of ``regs_read``/``regs_written`` is inlined here:
    liveness rebuilds these sets for every block on every analysis, and
    the per-instruction list allocations were the hottest line in the
    compile profile."""
    uses: Set[Reg] = set()
    defs: Set[Reg] = set()
    uses_add = uses.add
    for instr in block.instrs:
        for s in instr.srcs:
            cls = s.__class__
            if cls is VReg or cls is AReg:
                if s not in defs:
                    uses_add(s)
            elif cls is Mem:
                b = s.base
                if b not in defs:
                    uses_add(b)
                ix = s.index
                if ix is not None and ix not in defs:
                    uses_add(ix)
        dst = instr.dst
        cls = dst.__class__
        if cls is VReg or cls is AReg:
            defs.add(dst)
        elif cls is Mem:
            # a memory destination's address registers are reads
            b = dst.base
            if b not in defs:
                uses_add(b)
            ix = dst.index
            if ix is not None and ix not in defs:
                uses_add(ix)
    return uses, defs


class Liveness:
    """Per-block live-in / live-out sets, computed to a fixed point."""

    def __init__(self, fn: Function):
        self.fn = fn
        self.live_in: Dict[str, Set[Reg]] = {}
        self.live_out: Dict[str, Set[Reg]] = {}
        self._compute()

    def _compute(self) -> None:
        fn = self.fn
        live_in = self.live_in
        live_out = self.live_out
        succ = fn.successor_map()   # snapshot: one pass, not O(blocks^2)
        # per-block rows in reverse layout order: no per-sweep dict
        # lookups for use/defs/successors inside the fixed-point loop
        rows = []
        for b in reversed(fn.blocks):
            u, d = block_uses_defs(b)
            live_in[b.name] = set()
            live_out[b.name] = set()
            rows.append((b.name, u, d, succ[b.name]))
        changed = True
        while changed:
            changed = False
            for name, use, defs, ss in rows:
                if len(ss) == 1:    # the common case: no set union
                    out = set(live_in[ss[0]])
                else:
                    out = set()
                    for s in ss:
                        out |= live_in[s]
                inn = use | (out - defs)
                if out != live_out[name] or inn != live_in[name]:
                    live_out[name] = out
                    live_in[name] = inn
                    changed = True

    def per_instruction(self, block: BasicBlock) -> List[Set[Reg]]:
        """live_after[i]: registers live immediately *after* instruction i."""
        live = set(self.live_out[block.name])
        instrs = block.instrs
        result: List[Set[Reg]] = [None] * len(instrs)  # type: ignore
        for i in range(len(instrs) - 1, -1, -1):
            result[i] = live.copy()
            instr = instrs[i]
            for r in instr.regs_written():
                live.discard(r)
            live.update(instr.regs_read())
        return result

    def live_at_entry(self, block: BasicBlock) -> Set[Reg]:
        return self.live_in[block.name]


def max_register_pressure(fn: Function, rclasses) -> int:
    """Maximum number of simultaneously-live registers of the given
    class(es) anywhere in the function.  Used by tests and by unroll
    legality reasoning (beyond-8 pressure means spills on x86)."""
    if not isinstance(rclasses, (set, frozenset, list, tuple)):
        rclasses = (rclasses,)
    rclasses = set(rclasses)
    lv = Liveness(fn)
    peak = 0
    for b in fn.blocks:
        live_after = lv.per_instruction(b)
        entry = {r for r in lv.live_at_entry(b) if r.rclass in rclasses}
        peak = max(peak, len(entry))
        for live in live_after:
            n = sum(1 for r in live if r.rclass in rclasses)
            peak = max(peak, n)
    return peak
