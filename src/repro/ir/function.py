"""Functions, CFG queries, and the tuned-loop descriptor.

A :class:`Function` is an ordered list of basic blocks plus a symbol
table of parameters.  Control-flow edges are *derived*: a block's
successors are its explicit branch targets plus, when it can fall
through, the next block in layout order.  Keeping edges derived (rather
than stored) means transforms can splice blocks freely without edge
bookkeeping; the control-flow cleanup passes re-canonicalize layout.

The :class:`LoopDescriptor` records the single loop flagged for tuning
by HIL mark-up (section 2.1: "we require that a loop be flagged as
important before it is empirically tuned").  All fundamental transforms
operate on this loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

from ..errors import IRError
from .block import BasicBlock
from .instructions import Instruction
from .operands import Imm, Operand, Reg, VReg
from .types import DType


@dataclass
class Param:
    """A function parameter: a name, a type, and for pointer parameters
    the element type of the array pointed to."""

    name: str
    dtype: DType
    elem: Optional[DType] = None  # element type when dtype is PTR
    reg: Optional[Reg] = None     # register holding the incoming value


@dataclass
class LoopDescriptor:
    """Shape of the loop selected for iterative tuning.

    * ``header``  — block evaluating the loop condition (test-at-top) or
      the single body entry (test-at-bottom after LC).
    * ``body``    — names of all blocks executed per iteration, in layout
      order; ``body[0]`` is the entry.
    * ``latch``   — block containing the back edge (counter update + test).
    * ``preheader`` / ``exit`` — unique entry and exit blocks.
    * ``counter`` — the induction variable register.
    * ``start`` / ``end`` / ``step`` — bounds as IR operands; direction is
      the sign of ``step``.
    * ``pointers``— array name -> pointer register advanced in the loop.
    * ``elem``    — element type of the arrays the loop walks.
    * ``ptr_incs``— array name -> elements advanced per source iteration.
    * ``unroll``  / ``vectorized`` — bookkeeping updated by transforms:
      how many *source* iterations one trip of the loop now covers.
    """

    header: str
    body: List[str]
    latch: str
    preheader: str
    exit: str
    counter: VReg
    start: Operand
    end: Operand
    step: int
    pointers: Dict[str, VReg] = field(default_factory=dict)
    elem: DType = DType.F64
    ptr_incs: Dict[str, int] = field(default_factory=dict)
    unroll: int = 1
    vectorized: bool = False
    veclen: int = 1
    # blocks of the scalar remainder ("cleanup") loop emitted by the
    # vectorizer/unroller; the timing model costs them separately
    cleanup_body: List[str] = field(default_factory=list)
    # block-fetch scheduling: memory traffic moves in large read/write
    # blocks (consumed by the timing model as a deeper write batch)
    block_fetch: bool = False

    @property
    def elems_per_iter(self) -> int:
        """Source-level elements consumed per trip of the transformed loop."""
        return self.unroll * self.veclen

    def body_blocks(self, fn: "Function") -> List[BasicBlock]:
        return [fn.block(name) for name in self.body]

    @property
    def is_single_block(self) -> bool:
        """True when the loop body is one straight-line block (the case
        SIMD vectorization and unrolling require)."""
        return len(self.body) == 1


@dataclass
class Function:
    name: str
    params: List[Param]
    blocks: List[BasicBlock] = field(default_factory=list)
    ret: Optional[Param] = None
    loop: Optional[LoopDescriptor] = None
    # scratch stack slots allocated (spills); maps slot index -> dtype
    stack_slots: Dict[int, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # block bookkeeping
    def block(self, name: str) -> BasicBlock:
        for b in self.blocks:
            if b.name == name:
                return b
        raise IRError(f"no block named {name!r} in {self.name}")

    def block_index(self, name: str) -> int:
        for i, b in enumerate(self.blocks):
            if b.name == name:
                return i
        raise IRError(f"no block named {name!r} in {self.name}")

    def has_block(self, name: str) -> bool:
        return any(b.name == name for b in self.blocks)

    def add_block(self, block: BasicBlock, after: Optional[str] = None) -> BasicBlock:
        if self.has_block(block.name):
            raise IRError(f"duplicate block name {block.name!r}")
        if after is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.block_index(after) + 1, block)
        return block

    def remove_block(self, name: str) -> None:
        self.blocks.pop(self.block_index(name))

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    # ------------------------------------------------------------------
    # derived CFG
    def successors(self, block: BasicBlock) -> List[str]:
        succs = list(dict.fromkeys(block.branch_targets()))
        if block.falls_through:
            idx = self.block_index(block.name)
            if idx + 1 < len(self.blocks):
                nxt = self.blocks[idx + 1].name
                if nxt not in succs:
                    succs.append(nxt)
        return succs

    def successor_map(self) -> Dict[str, List[str]]:
        """``{block name: successor names}`` for every block, computed in
        one pass over the layout.  Edges are derived, so the map is a
        snapshot — recompute after splicing blocks.  Analyses that query
        successors repeatedly (liveness, CFG cleanup) use this instead of
        per-block :meth:`successors` calls, which pay a linear
        ``block_index`` scan each."""
        blocks = self.blocks
        out: Dict[str, List[str]] = {}
        for i, b in enumerate(blocks):
            succs = list(dict.fromkeys(b.branch_targets()))
            if b.falls_through and i + 1 < len(blocks):
                nxt = blocks[i + 1].name
                if nxt not in succs:
                    succs.append(nxt)
            out[b.name] = succs
        return out

    def predecessors(self, name: str) -> List[str]:
        succ = self.successor_map()
        return [b for b, ss in succ.items() if name in ss]

    def reachable(self) -> set[str]:
        """Names of blocks reachable from the entry."""
        succ = self.successor_map()
        seen: set[str] = set()
        work = [self.entry.name]
        while work:
            cur = work.pop()
            if cur in seen:
                continue
            seen.add(cur)
            work.extend(s for s in succ[cur] if s not in seen)
        return seen

    # ------------------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        for b in self.blocks:
            yield from b.instrs

    def n_instructions(self) -> int:
        return sum(len(b) for b in self.blocks)

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise IRError(f"no parameter {name!r} in {self.name}")

    def new_stack_slot(self, dtype) -> int:
        idx = len(self.stack_slots)
        self.stack_slots[idx] = dtype
        return idx

    def __repr__(self) -> str:
        return (f"<function {self.name}({', '.join(p.name for p in self.params)}): "
                f"{len(self.blocks)} blocks, {self.n_instructions()} instrs>")
