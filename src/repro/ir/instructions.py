"""IR instructions: the opcode set and the Instruction container.

The opcode set is an idealized SSE-era x86: scalar and packed SSE float
ops, integer/pointer arithmetic, loads/stores (temporal and non-temporal),
software prefetch with hint, and compare+conditional-branch control flow.

Two x86-isms are modeled explicitly because the paper leans on them:

* **CISC memory operands** — arithmetic ops may take a :class:`~.operands.Mem`
  as their second source (``addsd (%eax), %xmm0``).  The peephole pass
  creates these by folding a preceding load; they reduce register pressure
  and uop count (section 2.2.4: "peephole optimizations that exploit the
  fact that the x86 is not a true load/store architecture").
* **Non-temporal stores** (``VSTNT``/``FSTNT``) and **prefetch hints**
  (``nta``/``t0``/``t1``/``w``) — first-class opcodes so the WNT and PF
  transforms are visible to the timing model.

Condition codes live in an implicit flags register written by ``CMP`` /
``FCMP`` / ``TEST`` and read by ``JCC``; the verifier enforces that every
``JCC`` is dominated in-block by a flag-setting instruction with nothing
clobbering flags in between.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Optional, Tuple, Union

from .operands import AReg, Imm, Label, Mem, Operand, Reg, VReg, is_reg


class Opcode(enum.Enum):
    # data movement
    MOV = "mov"        # gp <- gp/imm
    FMOV = "fmov"      # fp <- fp/imm
    VMOV = "vmov"      # vec <- vec
    LD = "ld"          # gp <- mem (spill reloads, integer data)
    ST = "st"          # mem <- gp
    FLD = "fld"        # fp <- mem
    FST = "fst"        # mem <- fp
    FSTNT = "fstnt"    # mem <- fp, non-temporal hint
    VLD = "vld"        # vec <- mem (16B aligned, movaps)
    VLDU = "vldu"      # vec <- mem (unaligned, movups)
    VST = "vst"        # mem <- vec (16B aligned)
    VSTU = "vstu"      # mem <- vec (unaligned)
    VSTNT = "vstnt"    # mem <- vec, non-temporal (movntps/movntpd)
    VBCAST = "vbcast"  # vec <- broadcast fp scalar
    VZERO = "vzero"    # vec <- all zero lanes

    # integer / pointer arithmetic
    ADD = "add"
    SUB = "sub"
    IMUL = "imul"
    NEG = "neg"

    # scalar float arithmetic
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FABS = "fabs"
    FNEG = "fneg"
    FMAX = "fmax"

    # packed float arithmetic
    VADD = "vadd"
    VSUB = "vsub"
    VMUL = "vmul"
    VABS = "vabs"
    VMAX = "vmax"
    VCMPGT = "vcmpgt"  # per-lane all-ones mask where a > b
    VAND = "vand"
    VANDN = "vandn"
    VOR = "vor"

    # horizontal reductions (pseudo-ops; expanded cost in the timing model)
    VHADD = "vhadd"    # fp <- sum of lanes
    VHMAX = "vhmax"    # fp <- max of lanes
    VMASK = "vmask"    # gp <- per-lane nonzero bitmask (movmskps/pd)

    # compares (set flags)
    CMP = "cmp"        # gp vs gp/imm
    TEST = "test"      # gp & gp
    FCMP = "fcmp"      # fp vs fp (ucomiss/sd)

    # control flow
    JMP = "jmp"
    JCC = "jcc"
    RET = "ret"

    # memory hints
    PREFETCH = "prefetch"

    NOP = "nop"

    # identity hash: opcodes key OP_INFO and many pass-local sets, and
    # enum's default name-string hash was a measurable compile cost
    __hash__ = object.__hash__

    def __repr__(self) -> str:
        return self.value


class Cond(enum.Enum):
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"

    def negate(self) -> "Cond":
        return _NEG[self]

    def __repr__(self) -> str:
        return self.value


_NEG = {
    Cond.EQ: Cond.NE, Cond.NE: Cond.EQ,
    Cond.LT: Cond.GE, Cond.GE: Cond.LT,
    Cond.GT: Cond.LE, Cond.LE: Cond.GT,
}


class PrefetchHint(enum.Enum):
    """Software prefetch instruction flavors (section 3.3, Table 3).

    * ``NTA`` — prefetchnta: to the level nearest the CPU, non-temporal.
    * ``T0`` / ``T1`` — temporal prefetch to cache level X+1.
    * ``W``  — 3DNow! prefetch-for-write (AMD only).
    """

    NTA = "nta"
    T0 = "t0"
    T1 = "t1"
    W = "w"

    def __repr__(self) -> str:
        return self.value


@dataclass(frozen=True)
class OpInfo:
    """Static properties of an opcode (dynamic cost lives in MachineConfig)."""

    timing_class: str
    sets_flags: bool = False
    #: overwrites the flags register without leaving a condition a JCC
    #: could meaningfully test (x86 integer ALU ops write EFLAGS as a
    #: side effect); a compare's flags do not survive past one of these
    clobbers_flags: bool = False
    is_branch: bool = False
    is_terminator: bool = False
    commutative: bool = False
    has_dst: bool = True
    n_srcs: int = -1  # -1 == variable
    #: derived memory-class flags, filled in once below from the timing
    #: class so Instruction.is_load/is_store are single dict+attr hops
    is_load: bool = False
    is_store: bool = False
    is_nontemporal: bool = False


OP_INFO: dict[Opcode, OpInfo] = {
    Opcode.MOV:    OpInfo("mov", n_srcs=1),
    Opcode.FMOV:   OpInfo("mov", n_srcs=1),
    Opcode.VMOV:   OpInfo("mov", n_srcs=1),
    Opcode.LD:     OpInfo("ld", n_srcs=1),
    Opcode.ST:     OpInfo("st", has_dst=False, n_srcs=2),
    Opcode.FLD:    OpInfo("ld", n_srcs=1),
    Opcode.FST:    OpInfo("st", has_dst=False, n_srcs=2),
    Opcode.FSTNT:  OpInfo("stnt", has_dst=False, n_srcs=2),
    Opcode.VLD:    OpInfo("vld", n_srcs=1),
    Opcode.VLDU:   OpInfo("vldu", n_srcs=1),
    Opcode.VST:    OpInfo("vst", has_dst=False, n_srcs=2),
    Opcode.VSTU:   OpInfo("vstu", has_dst=False, n_srcs=2),
    Opcode.VSTNT:  OpInfo("vstnt", has_dst=False, n_srcs=2),
    Opcode.VBCAST: OpInfo("bcast", n_srcs=1),
    Opcode.VZERO:  OpInfo("mov", n_srcs=0),
    Opcode.ADD:    OpInfo("iadd", commutative=True, n_srcs=2,
                          clobbers_flags=True),
    Opcode.SUB:    OpInfo("iadd", n_srcs=2, clobbers_flags=True),
    Opcode.IMUL:   OpInfo("imul", commutative=True, n_srcs=2,
                          clobbers_flags=True),
    Opcode.NEG:    OpInfo("iadd", n_srcs=1, clobbers_flags=True),
    Opcode.FADD:   OpInfo("fadd", commutative=True, n_srcs=2),
    Opcode.FSUB:   OpInfo("fadd", n_srcs=2),
    Opcode.FMUL:   OpInfo("fmul", commutative=True, n_srcs=2),
    Opcode.FDIV:   OpInfo("fdiv", n_srcs=2),
    Opcode.FABS:   OpInfo("fabs", n_srcs=1),
    Opcode.FNEG:   OpInfo("fabs", n_srcs=1),
    Opcode.FMAX:   OpInfo("fmax", commutative=True, n_srcs=2),
    Opcode.VADD:   OpInfo("vadd", commutative=True, n_srcs=2),
    Opcode.VSUB:   OpInfo("vadd", n_srcs=2),
    Opcode.VMUL:   OpInfo("vmul", commutative=True, n_srcs=2),
    Opcode.VABS:   OpInfo("vabs", n_srcs=1),
    Opcode.VMAX:   OpInfo("vmax", commutative=True, n_srcs=2),
    Opcode.VCMPGT: OpInfo("vcmp", n_srcs=2),
    Opcode.VAND:   OpInfo("vlogic", commutative=True, n_srcs=2),
    Opcode.VANDN:  OpInfo("vlogic", n_srcs=2),
    Opcode.VOR:    OpInfo("vlogic", commutative=True, n_srcs=2),
    Opcode.VHADD:  OpInfo("hadd", n_srcs=1),
    Opcode.VHMAX:  OpInfo("hadd", n_srcs=1),
    Opcode.VMASK:  OpInfo("vlogic", n_srcs=1),
    Opcode.CMP:    OpInfo("cmp", sets_flags=True, has_dst=False, n_srcs=2),
    Opcode.TEST:   OpInfo("cmp", sets_flags=True, has_dst=False, n_srcs=2),
    Opcode.FCMP:   OpInfo("fcmp", sets_flags=True, has_dst=False, n_srcs=2),
    Opcode.JMP:    OpInfo("jmp", is_branch=True, is_terminator=True,
                          has_dst=False, n_srcs=1),
    Opcode.JCC:    OpInfo("br", is_branch=True, has_dst=False, n_srcs=1),
    Opcode.RET:    OpInfo("ret", is_terminator=True, has_dst=False),
    Opcode.PREFETCH: OpInfo("pref", has_dst=False, n_srcs=1),
    Opcode.NOP:    OpInfo("mov", has_dst=False, n_srcs=0),
}

for _op in (Opcode.LD, Opcode.FLD, Opcode.VLD, Opcode.VLDU):
    OP_INFO[_op] = replace(OP_INFO[_op], is_load=True)
for _op in (Opcode.ST, Opcode.FST, Opcode.FSTNT, Opcode.VST, Opcode.VSTU,
            Opcode.VSTNT):
    OP_INFO[_op] = replace(OP_INFO[_op], is_store=True)
for _op in (Opcode.FSTNT, Opcode.VSTNT):
    OP_INFO[_op] = replace(OP_INFO[_op], is_nontemporal=True)

#: opcode sets for the hottest predicates — CFG derivation and liveness
#: test these per instruction, where a set membership check beats the
#: property + OP_INFO lookup chain
BRANCH_OPS = frozenset(op for op, inf in OP_INFO.items() if inf.is_branch)
TERMINATOR_OPS = frozenset(op for op, inf in OP_INFO.items()
                           if inf.is_terminator)


@dataclass
class Instruction:
    """One IR instruction.

    ``dst`` may be a register or (for stores) ``None`` with the memory
    reference carried in ``srcs[0]``; by convention stores are
    ``ST(mem, value)`` i.e. ``srcs == (mem, value)``.

    Instructions are mutable on purpose: the FKO transforms rewrite
    operands in place.
    """

    op: Opcode
    dst: Optional[Operand] = None
    srcs: Tuple[Operand, ...] = ()
    cond: Optional[Cond] = None            # JCC only
    hint: Optional[PrefetchHint] = None    # PREFETCH only
    comment: str = ""

    # ------------------------------------------------------------------
    @property
    def info(self) -> OpInfo:
        return OP_INFO[self.op]

    @property
    def timing_class(self) -> str:
        return self.info.timing_class

    @property
    def is_store(self) -> bool:
        return OP_INFO[self.op].is_store

    @property
    def is_load(self) -> bool:
        return OP_INFO[self.op].is_load

    @property
    def is_nontemporal(self) -> bool:
        return OP_INFO[self.op].is_nontemporal

    @property
    def reads_mem(self) -> bool:
        if self.is_load or self.op is Opcode.PREFETCH:
            return True
        # CISC memory operand folded into an arithmetic op
        return any(isinstance(s, Mem) for s in self.srcs) and not self.is_store

    @property
    def writes_mem(self) -> bool:
        return self.is_store

    @property
    def mem(self) -> Optional[Mem]:
        """The memory reference of this instruction, if any."""
        if self.is_store:
            m = self.srcs[0]
            return m if isinstance(m, Mem) else None
        for s in self.srcs:
            if isinstance(s, Mem):
                return s
        return None

    @property
    def is_branch(self) -> bool:
        return self.info.is_branch

    @property
    def is_terminator(self) -> bool:
        return self.info.is_terminator

    @property
    def target(self) -> Optional[Label]:
        """Branch target label, if this is a branch."""
        if self.is_branch and self.srcs and isinstance(self.srcs[0], Label):
            return self.srcs[0]
        return None

    # ------------------------------------------------------------------
    def regs_read(self) -> Iterable[Reg]:
        """All registers read, including memory-operand base/index regs.
        Returns a fresh list (hot path: built with type-identity checks,
        no generator machinery)."""
        out = []
        for s in self.srcs:
            cls = s.__class__
            if cls is VReg or cls is AReg:
                out.append(s)
            elif cls is Mem:
                out.append(s.base)
                if s.index is not None:
                    out.append(s.index)
        # a Mem destination's address registers are *reads*
        dst = self.dst
        if dst.__class__ is Mem:
            out.append(dst.base)
            if dst.index is not None:
                out.append(dst.index)
        return out

    def regs_written(self) -> Iterable[Reg]:
        dst = self.dst
        if dst is not None and (dst.__class__ is VReg
                                or dst.__class__ is AReg):
            return (dst,)
        return ()

    def _sub_operand(self, op: Operand, mapping: dict) -> Operand:
        cls = op.__class__
        if (cls is VReg or cls is AReg) and op in mapping:
            return mapping[op]
        if cls is Mem:
            base = mapping.get(op.base, op.base)
            index = (mapping.get(op.index, op.index)
                     if op.index is not None else None)
            if base is not op.base or index is not op.index:
                return Mem(base, op.dtype, index, op.scale, op.disp, op.array)
        return op

    def substitute(self, mapping: dict) -> "Instruction":
        """Return a copy with registers replaced per ``mapping``.

        Registers absent from ``mapping`` are kept.  Memory operands have
        their base/index registers rewritten too.
        """
        new_dst = (self._sub_operand(self.dst, mapping)
                   if self.dst is not None else None)
        new_srcs = tuple(self._sub_operand(s, mapping) for s in self.srcs)
        return Instruction(self.op, new_dst, new_srcs, self.cond,
                           self.hint, self.comment)

    def substitute_inplace(self, mapping: dict) -> None:
        """Rewrite this instruction's operands per ``mapping`` in place —
        the allocation-free form of ``substitute`` for passes that would
        immediately copy the result's fields back anyway."""
        if self.dst is not None:
            self.dst = self._sub_operand(self.dst, mapping)
        self.srcs = tuple(self._sub_operand(s, mapping) for s in self.srcs)

    def substitute_reads_inplace(self, mapping: dict) -> None:
        """Rewrite only the *read* operands per ``mapping``: every source
        (including memory base/index registers) and a ``Mem``
        destination's address registers — but never a register
        destination, whose occupancy is a write, not a use.  This is the
        correct form for value-forwarding passes (copy propagation): an
        instruction that reads and redefines the same register must keep
        writing the original register."""
        if self.dst is not None and self.dst.__class__ is Mem:
            self.dst = self._sub_operand(self.dst, mapping)
        self.srcs = tuple(self._sub_operand(s, mapping) for s in self.srcs)

    def copy(self) -> "Instruction":
        return Instruction(self.op, self.dst, self.srcs, self.cond,
                           self.hint, self.comment)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        parts = [self.op.value]
        if self.cond is not None:
            parts[0] += f".{self.cond.value}"
        if self.hint is not None:
            parts[0] += f".{self.hint.value}"
        ops = []
        if self.dst is not None:
            ops.append(repr(self.dst))
        ops.extend(repr(s) for s in self.srcs)
        text = f"{parts[0]} {', '.join(ops)}".rstrip()
        if self.comment:
            text += f"  ; {self.comment}"
        return text


# ---------------------------------------------------------------------------
# convenience constructors — keep transform code terse and uniform

def store_op_for(value: Reg, nontemporal: bool = False) -> Opcode:
    """The store opcode matching a value register's class."""
    from .operands import RegClass
    if value.rclass is RegClass.GP:
        return Opcode.ST
    if value.rclass is RegClass.FP:
        return Opcode.FSTNT if nontemporal else Opcode.FST
    return Opcode.VSTNT if nontemporal else Opcode.VST


def load_op_for(dst: Reg) -> Opcode:
    from .operands import RegClass
    if dst.rclass is RegClass.GP:
        return Opcode.LD
    if dst.rclass is RegClass.FP:
        return Opcode.FLD
    return Opcode.VLD


#: scalar float opcode -> packed equivalent (used by the vectorizer)
SCALAR_TO_VECTOR: dict[Opcode, Opcode] = {
    Opcode.FADD: Opcode.VADD,
    Opcode.FSUB: Opcode.VSUB,
    Opcode.FMUL: Opcode.VMUL,
    Opcode.FABS: Opcode.VABS,
    Opcode.FMAX: Opcode.VMAX,
    Opcode.FMOV: Opcode.VMOV,
    Opcode.FLD: Opcode.VLD,
    Opcode.FST: Opcode.VST,
    Opcode.FSTNT: Opcode.VSTNT,
}
