"""IR operands: virtual/architectural registers, immediates, memory refs.

Registers belong to one of three *register classes* which map onto the
x86 register files of the simulated machines:

* ``GP``  — general purpose integer/pointer registers (8 architectural,
  of which the allocator may use 7: ``%esp`` is reserved for the stack).
* ``FP``  — scalar floating point values held in SSE registers.
* ``VEC`` — packed SSE vectors.

``FP`` and ``VEC`` share the same architectural register file (xmm0-7);
the distinction is kept at the class level because scalar and vector
values have different semantics, but the register allocator allocates
them out of one pool, exactly as on real x86.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

from .types import DType, VecType


class RegClass(enum.Enum):
    GP = "gp"    # integer / pointer
    FP = "fp"    # scalar float (lives in xmm)
    VEC = "vec"  # packed float (lives in xmm)

    # identity hash (enum eq is identity; avoids name-string hashing in
    # hot register-keyed dicts)
    __hash__ = object.__hash__

    def __repr__(self) -> str:
        return self.value


_vreg_counter = itertools.count()


@dataclass(frozen=True, eq=False)
class VReg:
    """A virtual register.

    ``name`` is for humans (derived from the HIL variable when one
    exists); ``uid`` makes every virtual register unique even when names
    collide (transforms clone registers freely).

    Equality and hashing go through ``uid`` alone: the uid already makes
    the field tuple unique, so this is the same relation the generated
    dataclass methods define — minus the per-comparison tuple build and
    enum hashing that dominated liveness/regalloc profiles.
    """

    name: str
    rclass: RegClass
    dtype: Union[DType, VecType]
    uid: int = field(default_factory=lambda: next(_vreg_counter))

    def __repr__(self) -> str:
        return f"%{self.name}.{self.uid}"

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if other.__class__ is VReg:
            return self.uid == other.uid
        return NotImplemented

    def __hash__(self) -> int:
        return self.uid

    @property
    def is_virtual(self) -> bool:
        return True


@dataclass(frozen=True, eq=False)
class AReg:
    """An architectural register (post register-allocation).

    ``index`` is the hardware register number: 0-7 for GP (eax..edi) and
    0-7 for xmm.  The printer renders conventional names.

    Unlike :class:`VReg`, ARegs are minted freely during rewrites, so
    equality compares fields — but hardware index first, which almost
    always decides it.
    """

    name: str
    rclass: RegClass
    dtype: Union[DType, VecType]
    index: int

    def __repr__(self) -> str:
        return f"${self.name}"

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if other.__class__ is AReg:
            return (self.index == other.index
                    and self.rclass is other.rclass
                    and self.dtype == other.dtype
                    and self.name == other.name)
        return NotImplemented

    def __hash__(self) -> int:
        return self.index ^ 0x51ed270

    @property
    def is_virtual(self) -> bool:
        return False


Reg = Union[VReg, AReg]


@dataclass(frozen=True)
class Imm:
    """An integer or float immediate."""

    value: Union[int, float]

    def __repr__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class Mem:
    """An x86-style memory reference: ``disp(base, index, scale)``.

    ``base`` and ``index`` are GP registers; ``scale`` in {1,2,4,8}.
    ``dtype`` is the type of the datum being accessed (scalar or vector),
    which fixes the access width.

    The optional ``array`` tag records which HIL array this access
    belongs to.  It is metadata only — it never affects semantics — but
    the timing model and the prefetch transform use it to attribute
    traffic to streams.
    """

    base: Reg
    dtype: Union[DType, VecType]
    index: Optional[Reg] = None
    scale: int = 1
    disp: int = 0
    array: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid scale {self.scale}")

    @property
    def size(self) -> int:
        return self.dtype.size

    def with_disp(self, disp: int) -> "Mem":
        """A copy of this reference with a different displacement."""
        return Mem(self.base, self.dtype, self.index, self.scale, disp, self.array)

    def with_base(self, base: Reg) -> "Mem":
        """A copy of this reference with a different base register."""
        return Mem(base, self.dtype, self.index, self.scale, self.disp, self.array)

    def __repr__(self) -> str:
        inner = f"{self.base!r}"
        if self.index is not None:
            inner += f"+{self.index!r}*{self.scale}"
        tag = f" <{self.array}>" if self.array else ""
        return f"[{inner}+{self.disp}]{tag}"


@dataclass(frozen=True)
class Label:
    """A branch target (refers to a basic block by name)."""

    name: str

    def __repr__(self) -> str:
        return f"@{self.name}"


Operand = Union[VReg, AReg, Imm, Mem, Label]


def is_reg(op: object) -> bool:
    return isinstance(op, (VReg, AReg))


def reg_dtype(op: Reg) -> Union[DType, VecType]:
    return op.dtype
