"""Textual dump of IR functions — FKO's "optimized assembly" output.

The format is assembly-flavored pseudo-code: one instruction per line,
blocks introduced by ``label:`` lines, with the tuned-loop region
annotated.  It is meant for humans and for golden tests; the functional
interpreter consumes the IR objects directly.
"""

from __future__ import annotations

from typing import List

from .function import Function
from .block import BasicBlock


def format_block(block: BasicBlock, indent: str = "    ") -> List[str]:
    lines = [f"{block.name}:"]
    lines.extend(f"{indent}{instr!r}" for instr in block.instrs)
    return lines


def format_function(fn: Function) -> str:
    header = [f"# function {fn.name}"]
    params = ", ".join(
        f"{p.name}:{p.dtype.value}" + (f"->{p.elem.value}" if p.elem else "")
        for p in fn.params)
    header.append(f"# params: {params}")
    if fn.ret is not None:
        header.append(f"# returns: {fn.ret.name}:{fn.ret.dtype.value}")
    if fn.loop is not None:
        lp = fn.loop
        header.append(
            f"# tuned loop: header={lp.header} body={lp.body} latch={lp.latch}"
            f" unroll={lp.unroll} veclen={lp.veclen}")
    if fn.stack_slots:
        header.append(f"# stack slots: {len(fn.stack_slots)}")
    lines = list(header)
    for block in fn.blocks:
        marker = ""
        if fn.loop is not None and block.name in fn.loop.body:
            marker = "  # <loop body>"
        block_lines = format_block(block)
        block_lines[0] += marker
        lines.extend(block_lines)
    return "\n".join(lines) + "\n"


def print_function(fn: Function) -> None:
    print(format_function(fn))
