"""Textual dump of IR functions — FKO's "optimized assembly" output.

The format is assembly-flavored pseudo-code: one instruction per line,
blocks introduced by ``label:`` lines, with the tuned-loop region
annotated.  It is meant for humans and for golden tests; the functional
interpreter consumes the IR objects directly.
"""

from __future__ import annotations

import re
from typing import List

from .function import Function
from .block import BasicBlock


def format_block(block: BasicBlock, indent: str = "    ") -> List[str]:
    lines = [f"{block.name}:"]
    lines.extend(f"{indent}{instr!r}" for instr in block.instrs)
    return lines


def format_function(fn: Function) -> str:
    header = [f"# function {fn.name}"]
    params = ", ".join(
        f"{p.name}:{p.dtype.value}" + (f"->{p.elem.value}" if p.elem else "")
        for p in fn.params)
    header.append(f"# params: {params}")
    if fn.ret is not None:
        header.append(f"# returns: {fn.ret.name}:{fn.ret.dtype.value}")
    if fn.loop is not None:
        lp = fn.loop
        header.append(
            f"# tuned loop: header={lp.header} body={lp.body} latch={lp.latch}"
            f" unroll={lp.unroll} veclen={lp.veclen}")
    if fn.stack_slots:
        header.append(f"# stack slots: {len(fn.stack_slots)}")
    lines = list(header)
    for block in fn.blocks:
        marker = ""
        if fn.loop is not None and block.name in fn.loop.body:
            marker = "  # <loop body>"
        block_lines = format_block(block)
        block_lines[0] += marker
        lines.extend(block_lines)
    return "\n".join(lines) + "\n"


#: a printed virtual register: ``%name.uid`` (greedy name, so dotted
#: names still leave the trailing ``.digits`` as the uid)
_VREG_TOKEN = re.compile(r"%([\w.]+)\.(\d+)")


def canonical_function_text(fn: Function) -> str:
    """``format_function`` with virtual-register uids renumbered densely
    by order of first appearance.

    Raw uids come from a process-global counter, so the plain dump of a
    function that still contains VRegs (e.g. compiled with register
    allocation off) depends on how many compiles the process ran before.
    Renumbering makes the text a pure function of the IR's structure —
    two processes compiling the same point produce byte-identical text,
    which is what content digests need.
    """
    mapping: dict = {}

    def rename(m: "re.Match[str]") -> str:
        idx = mapping.setdefault(m.group(2), len(mapping))
        return f"%{m.group(1)}.{idx}"

    return _VREG_TOKEN.sub(rename, format_function(fn))


def print_function(fn: Function) -> None:
    print(format_function(fn))
