"""Scalar and vector types used by the IR.

The type system is deliberately tiny — it covers exactly what floating
point kernel optimization needs (the paper's FKO is specialized the same
way): 32/64-bit IEEE floats, a pointer-sized integer, and short SIMD
vectors of floats.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DType(enum.Enum):
    """Scalar element types."""

    F32 = "f32"
    F64 = "f64"
    I64 = "i64"  # pointer-sized integer; also used for loop counters
    PTR = "ptr"  # pointer to F32/F64 data (width == I64)

    # identity hash: members are singletons (enum eq is identity), and
    # dtypes key hot dicts — Enum's name-string hash showed up in
    # compile profiles
    __hash__ = object.__hash__

    @property
    def size(self) -> int:
        """Size in bytes of one element of this type."""
        return _SIZES[self]

    @property
    def is_float(self) -> bool:
        return self in (DType.F32, DType.F64)

    @property
    def is_int(self) -> bool:
        return self in (DType.I64, DType.PTR)

    def __repr__(self) -> str:  # compact reprs keep IR dumps readable
        return self.value


_SIZES = {DType.F32: 4, DType.F64: 8, DType.I64: 8, DType.PTR: 8}


@dataclass(frozen=True)
class VecType:
    """A short SIMD vector: ``lanes`` elements of float type ``elem``.

    On the simulated x86 targets the vector width is fixed at 16 bytes
    (SSE), i.e. 4 x f32 or 2 x f64, which is what :func:`sse` builds.
    """

    elem: DType
    lanes: int

    def __post_init__(self) -> None:
        if not self.elem.is_float:
            raise ValueError(f"vector element must be float, got {self.elem}")
        if self.lanes < 2:
            raise ValueError(f"vector must have >= 2 lanes, got {self.lanes}")

    @property
    def size(self) -> int:
        """Total size in bytes."""
        return self.elem.size * self.lanes

    def __repr__(self) -> str:
        return f"{self.elem.value}x{self.lanes}"


VEC_BYTES = 16  # SSE vector register width on both simulated machines


def sse(elem: DType) -> VecType:
    """The natural SSE vector type for a float element type.

    This is the paper's "vector length 4 for single precision, 2 for
    double" (section 2.2.3, SV).
    """
    return VecType(elem, VEC_BYTES // elem.size)


def veclen(elem: DType) -> int:
    """Number of ``elem`` lanes in one SSE vector."""
    return VEC_BYTES // elem.size
