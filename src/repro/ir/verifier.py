"""IR verifier.

Run after lowering and after every transform (in tests; the pipeline
runs it in debug mode) to catch malformed IR early.  Checks:

* block names are unique; branch targets resolve to existing blocks;
* terminators appear only as the last instruction of a block;
* operand arity/kind matches the opcode table;
* register classes are consistent with opcode expectations
  (e.g. VADD writes a VEC register, memory base/index are GP);
* every conditional branch is preceded in its block by a flag-setting
  instruction with no intervening flag clobber;
* no virtual register is read on some path before any definition
  (conservative: checked only for registers never defined at all, plus a
  stronger reaching-defs check on straight-line loop bodies).
"""

from __future__ import annotations

from typing import Set

from ..errors import IRVerifyError
from .block import BasicBlock
from .function import Function
from .instructions import Instruction, OP_INFO, Opcode
from .operands import AReg, Imm, Label, Mem, RegClass, VReg, is_reg


_VEC_DST = {Opcode.VMOV, Opcode.VLD, Opcode.VLDU, Opcode.VADD, Opcode.VSUB, Opcode.VMUL,
            Opcode.VABS, Opcode.VMAX, Opcode.VCMPGT, Opcode.VAND,
            Opcode.VANDN, Opcode.VOR, Opcode.VBCAST, Opcode.VZERO}
_FP_DST = {Opcode.FMOV, Opcode.FLD, Opcode.FADD, Opcode.FSUB, Opcode.FMUL,
           Opcode.FDIV, Opcode.FABS, Opcode.FNEG, Opcode.FMAX,
           Opcode.VHADD, Opcode.VHMAX}
_GP_DST = {Opcode.MOV, Opcode.LD, Opcode.ADD, Opcode.SUB, Opcode.IMUL,
           Opcode.NEG, Opcode.VMASK}


def _fail(fn: Function, block: BasicBlock, instr, msg: str) -> None:
    raise IRVerifyError(f"{fn.name}/{block.name}: {msg} (in: {instr!r})")


def verify(fn: Function) -> None:
    names = [b.name for b in fn.blocks]
    if len(names) != len(set(names)):
        dupes = {n for n in names if names.count(n) > 1}
        raise IRVerifyError(f"{fn.name}: duplicate block names {sorted(dupes)}")
    if not fn.blocks:
        raise IRVerifyError(f"{fn.name}: function has no blocks")

    name_set = set(names)
    defined: Set = set(p.reg for p in fn.params if p.reg is not None)
    read: Set = set()

    for block in fn.blocks:
        flags_valid = False
        for i, instr in enumerate(block.instrs):
            info = OP_INFO.get(instr.op)
            if info is None:
                _fail(fn, block, instr, f"unknown opcode {instr.op}")
            # arity
            if info.n_srcs >= 0 and len(instr.srcs) != info.n_srcs:
                _fail(fn, block, instr,
                      f"{instr.op.value} expects {info.n_srcs} srcs, "
                      f"got {len(instr.srcs)}")
            if info.has_dst and instr.dst is None:
                _fail(fn, block, instr, f"{instr.op.value} requires a dst")
            if not info.has_dst and instr.dst is not None:
                _fail(fn, block, instr, f"{instr.op.value} must not have a dst")
            # terminators only at block end
            if info.is_terminator and i != len(block.instrs) - 1:
                _fail(fn, block, instr, "terminator not at end of block")
            # nothing computational may follow a conditional branch:
            # liveness and DCE treat blocks as straight-line code
            if instr.op is Opcode.JCC and i != len(block.instrs) - 1:
                nxt = block.instrs[i + 1]
                if not OP_INFO[nxt.op].is_branch and nxt.op is not Opcode.RET:
                    _fail(fn, block, instr,
                          "computational instruction after conditional "
                          "branch in the same block")
            # branch targets resolve
            if info.is_branch:
                tgt = instr.target
                if tgt is None:
                    _fail(fn, block, instr, "branch without label target")
                if tgt.name not in name_set:
                    _fail(fn, block, instr, f"branch to unknown block {tgt.name!r}")
            # register-class consistency
            if is_reg(instr.dst) if instr.dst is not None else False:
                want = None
                if instr.op in _VEC_DST:
                    want = RegClass.VEC
                elif instr.op in _FP_DST:
                    want = RegClass.FP
                elif instr.op in _GP_DST:
                    want = RegClass.GP
                if want is not None and instr.dst.rclass is not want:
                    _fail(fn, block, instr,
                          f"dst class {instr.dst.rclass.value}, "
                          f"expected {want.value}")
            # memory operand address regs must be GP
            for op in instr.srcs:
                if op.__class__ is Mem:
                    if op.base.rclass is not RegClass.GP:
                        _fail(fn, block, instr, "memory base must be GP")
                    if op.index is not None and op.index.rclass is not RegClass.GP:
                        _fail(fn, block, instr, "memory index must be GP")
            if instr.dst is not None and instr.dst.__class__ is Mem:
                if instr.dst.base.rclass is not RegClass.GP:
                    _fail(fn, block, instr, "memory base must be GP")
                if instr.dst.index is not None \
                        and instr.dst.index.rclass is not RegClass.GP:
                    _fail(fn, block, instr, "memory index must be GP")
            # JCC needs valid flags
            if instr.op is Opcode.JCC:
                if instr.cond is None:
                    _fail(fn, block, instr, "jcc without condition")
                if not flags_valid:
                    _fail(fn, block, instr,
                          "conditional branch with no preceding compare "
                          "in this block (or flags clobbered in between)")
            if info.sets_flags:
                flags_valid = True
            elif info.clobbers_flags:
                flags_valid = False
            # stores: srcs = (mem, value)
            if info.is_store:
                if not isinstance(instr.srcs[0], Mem):
                    _fail(fn, block, instr, "store src[0] must be a Mem")
                if not is_reg(instr.srcs[1]):
                    _fail(fn, block, instr, "store src[1] must be a register")
            # loads: src = mem
            if info.is_load and not isinstance(instr.srcs[0], Mem):
                _fail(fn, block, instr, "load src must be a Mem")
            if instr.op is Opcode.PREFETCH:
                if instr.hint is None:
                    _fail(fn, block, instr, "prefetch without hint")
                if not isinstance(instr.srcs[0], Mem):
                    _fail(fn, block, instr, "prefetch src must be a Mem")
            for r in instr.regs_written():
                defined.add(r)
            for r in instr.regs_read():
                if r.__class__ is VReg:
                    read.add(r)

    # never-defined virtual registers that are read somewhere
    ghosts = {r for r in read if r not in defined}
    if ghosts:
        some = sorted(ghosts, key=lambda r: r.uid)[:4]
        raise IRVerifyError(
            f"{fn.name}: virtual registers read but never defined: {some}")

    # loop descriptor consistency
    if fn.loop is not None:
        lp = fn.loop
        for nm in [lp.header, lp.latch, lp.preheader, lp.exit, *lp.body]:
            if nm not in name_set:
                raise IRVerifyError(
                    f"{fn.name}: loop descriptor references unknown block {nm!r}")
        latch_block = fn.block(lp.latch)
        if lp.header not in fn.successors(latch_block):
            raise IRVerifyError(
                f"{fn.name}: loop latch {lp.latch!r} has no back edge to "
                f"header {lp.header!r}")
