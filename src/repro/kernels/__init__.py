"""Level 1 BLAS kernel definitions (paper Table 1 and section 3.1)."""

from .blas1 import (KERNEL_ORDER, KernelSpec, REGISTRY, all_kernels,
                    get_kernel, reference)

__all__ = ["KERNEL_ORDER", "KernelSpec", "REGISTRY", "all_kernels",
           "get_kernel", "reference"]
