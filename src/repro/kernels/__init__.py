"""Kernel definitions: Level 1 BLAS (paper Table 1 / section 3.1) plus
the Level-3 family (blocked GEMM, stencil, reduction).

``KERNEL_ORDER`` stays exactly the paper's fourteen Table 1 kernels;
the Level-3 kernels register into the same ``REGISTRY`` and are listed
separately in ``BLAS3_ORDER`` (``ALL_KERNEL_ORDER`` concatenates both
— the fuzzer's round-robin grid walks it).
"""

from .blas1 import (KERNEL_ORDER, KernelSpec, REGISTRY, all_kernels,
                    get_kernel, reference)
from .blas3 import BLAS3_ORDER, BLAS3_REGISTRY

REGISTRY.update(BLAS3_REGISTRY)

#: every registry kernel in presentation order (Table 1, then Level 3)
ALL_KERNEL_ORDER = list(KERNEL_ORDER) + list(BLAS3_ORDER)

__all__ = ["ALL_KERNEL_ORDER", "BLAS3_ORDER", "KERNEL_ORDER",
           "KernelSpec", "REGISTRY", "all_kernels", "get_kernel",
           "reference"]
