"""The surveyed Level 1 BLAS kernels (paper Table 1).

Each kernel carries:

* its HIL source (the "direct translations of these routines from ANSI
  C to our HIL" of section 3.2.1, including the paper's special iamax
  formulation from Figure 6(b));
* a NumPy reference implementation for the tester;
* the FLOP convention from Table 1 (copy/swap "do no floating point
  computation", so the paper assigns N FLOPs to make MFLOPS comparable);
* which arguments are vectors and scalars, and which vectors are
  outputs;
* the *loop form* of the corresponding ANSI C reference code.  ATLAS's
  C sources are written ``for(i=N; i; i--)`` — a form icc refuses to
  vectorize (section 3.2: "icc will not vectorize either form,
  regardless of what is in the loop"); the paper's authors rewrote them
  as ``for(i=0; i < N; i++)``.  The modeled icc keys on this flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class KernelSpec:
    """One BLAS routine at one precision."""

    name: str                 # e.g. 'ddot'
    base: str                 # e.g. 'dot'
    precision: str            # 's' | 'd'
    hil: str
    vector_args: Tuple[str, ...]
    output_args: Tuple[str, ...]      # vectors written
    #: output vectors whose elements are each fed by a reduction (e.g. a
    #: gemv-style dot per element) — the tester allows these an
    #: association-tolerant bound scaled by the real reduction length,
    #: where plain element-wise outputs must match bitwise
    reduction_outputs: Tuple[str, ...] = ()
    scalar_args: Tuple[str, ...] = ()
    returns: Optional[str] = None     # 'float' | 'int' | None
    flops_per_elem: int = 1           # Table 1 FLOPs column / N
    loop_form: str = "canonical"      # 'canonical' | 'downcount'
    #: arguments that are N x N matrices (flattened row-major, n*n
    #: elements) rather than length-N vectors — the Level-3 kernels
    matrix_args: Tuple[str, ...] = ()
    #: FLOPs scale as flops_per_elem * n**flops_order (3 for GEMM)
    flops_order: int = 1
    #: tester size override; None = the tester's DEFAULT_SIZES (cubic
    #: kernels need small sizes to keep interpreter runs bounded)
    test_sizes: Optional[Tuple[int, ...]] = None
    #: time this kernel with the analytic blocked-nest model (the
    #: per-line walk of the tuned loop cannot cover an N^3 nest)
    nest_timing: bool = False

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.float32 if self.precision == "s" else np.float64)

    @property
    def ctype(self) -> str:
        return "float" if self.precision == "s" else "double"

    def flops(self, n: int) -> int:
        return self.flops_per_elem * n ** self.flops_order

    def arg_elems(self, name: str, n: int) -> int:
        """Element count of one array argument at problem size ``n``."""
        return n * n if name in self.matrix_args else n

    @property
    def array_args(self) -> Tuple[str, ...]:
        return self.vector_args + self.matrix_args


# ---------------------------------------------------------------------------
# HIL templates; {T} is the precision type

_SWAP = """
ROUTINE {P}swap(N: int, X: ptr {T}, Y: ptr {T});
{T} tmp;
{T} ty;
@TUNE
LOOP i = 0, N
LOOP_BODY
    tmp = X[0];
    ty = Y[0];
    Y[0] = tmp;
    X[0] = ty;
    X += 1;
    Y += 1;
LOOP_END
"""

_SCAL = """
ROUTINE {P}scal(N: int, alpha: {T}, X: ptr {T});
{T} x;
@TUNE
LOOP i = 0, N
LOOP_BODY
    x = X[0];
    x = x * alpha;
    X[0] = x;
    X += 1;
LOOP_END
"""

_COPY = """
ROUTINE {P}copy(N: int, X: ptr {T}, Y: ptr {T});
{T} x;
@TUNE
LOOP i = 0, N
LOOP_BODY
    x = X[0];
    Y[0] = x;
    X += 1;
    Y += 1;
LOOP_END
"""

_AXPY = """
ROUTINE {P}axpy(N: int, alpha: {T}, X: ptr {T}, Y: ptr {T});
{T} x;
{T} y;
@TUNE
LOOP i = 0, N
LOOP_BODY
    x = X[0];
    y = Y[0];
    y = y + alpha * x;
    Y[0] = y;
    X += 1;
    Y += 1;
LOOP_END
"""

_DOT = """
ROUTINE {P}dot(N: int, X: ptr {T}, Y: ptr {T}) RETURNS {T};
{T} dot = 0.0;
{T} x;
{T} y;
@TUNE
LOOP i = 0, N
LOOP_BODY
    x = X[0];
    y = Y[0];
    dot += x * y;
    X += 1;
    Y += 1;
LOOP_END
RETURN dot;
"""

_ASUM = """
ROUTINE {P}asum(N: int, X: ptr {T}) RETURNS {T};
{T} sum = 0.0;
{T} x;
@TUNE
LOOP i = 0, N
LOOP_BODY
    x = X[0];
    x = ABS x;
    sum += x;
    X += 1;
LOOP_END
RETURN sum;
"""

# Figure 6(b): "absent code positioning transformations, the most
# efficient way to implement the operation"
_IAMAX = """
ROUTINE i{P}amax(N: int, X: ptr {T}) RETURNS int;
{T} amax;
{T} x;
int imax = 0;
amax = X[0];
amax = ABS amax;
@TUNE
LOOP i = N, 0, -1
LOOP_BODY
    x = X[0];
    x = ABS x;
    IF (x > amax) GOTO NEWMAX;
ENDOFLOOP:
    X += 1;
LOOP_END
RETURN imax;
NEWMAX:
    amax = x;
    imax = N - i;
    GOTO ENDOFLOOP;
"""


def _mk(base: str, template: str, precision: str, **kw) -> KernelSpec:
    t = "float" if precision == "s" else "double"
    name = kw.pop("name", precision + base)
    return KernelSpec(
        name=name, base=base, precision=precision,
        hil=template.format(T=t, P=precision), **kw)


def _build_registry() -> Dict[str, KernelSpec]:
    specs: List[KernelSpec] = []
    for p in ("s", "d"):
        specs.append(_mk("swap", _SWAP, p, vector_args=("X", "Y"),
                         output_args=("X", "Y"), flops_per_elem=1,
                         loop_form="downcount"))
        specs.append(_mk("scal", _SCAL, p, vector_args=("X",),
                         output_args=("X",), scalar_args=("alpha",),
                         flops_per_elem=1, loop_form="downcount"))
        specs.append(_mk("copy", _COPY, p, vector_args=("X", "Y"),
                         output_args=("Y",), flops_per_elem=1,
                         loop_form="downcount"))
        specs.append(_mk("axpy", _AXPY, p, vector_args=("X", "Y"),
                         output_args=("Y",), scalar_args=("alpha",),
                         flops_per_elem=2, loop_form="downcount"))
        specs.append(_mk("dot", _DOT, p, vector_args=("X", "Y"),
                         output_args=(), returns="float", flops_per_elem=2,
                         loop_form="downcount"))
        specs.append(_mk("asum", _ASUM, p, vector_args=("X",),
                         output_args=(), returns="float", flops_per_elem=2,
                         loop_form="downcount"))
        specs.append(_mk("amax", _IAMAX, p, name=f"i{p}amax",
                         vector_args=("X",), output_args=(),
                         returns="int", flops_per_elem=2,
                         loop_form="downcount"))
    return {s.name: s for s in specs}


REGISTRY: Dict[str, KernelSpec] = _build_registry()

#: paper ordering: the most commonly used Level 1 BLAS (Table 1 / figures)
KERNEL_ORDER = ["sswap", "dswap", "sscal", "dscal", "scopy", "dcopy",
                "saxpy", "daxpy", "sdot", "ddot", "sasum", "dasum",
                "isamax", "idamax"]


def get_kernel(name: str) -> KernelSpec:
    return REGISTRY[name]


def all_kernels() -> List[KernelSpec]:
    return [REGISTRY[n] for n in KERNEL_ORDER]


# ---------------------------------------------------------------------------
# NumPy references (the tester's oracle)

def reference(spec: KernelSpec, arrays: Dict[str, np.ndarray],
              scalars: Dict[str, float]):
    """Run the reference semantics; mutates ``arrays`` like the kernel.

    Returns the scalar result for dot/asum/iamax, else None.
    """
    dt = spec.dtype
    if spec.base == "swap":
        x, y = arrays["X"], arrays["Y"]
        tmp = x.copy()
        x[:] = y
        y[:] = tmp
        return None
    if spec.base == "scal":
        arrays["X"][:] = (arrays["X"] * dt.type(scalars["alpha"])).astype(dt)
        return None
    if spec.base == "copy":
        arrays["Y"][:] = arrays["X"]
        return None
    if spec.base == "axpy":
        arrays["Y"][:] = (arrays["Y"]
                          + dt.type(scalars["alpha"]) * arrays["X"]).astype(dt)
        return None
    if spec.base == "dot":
        # sequential-rounding reference happens in the tester with a
        # tolerance; the fast path is fine as an oracle
        return float(np.dot(arrays["X"].astype(np.float64),
                            arrays["Y"].astype(np.float64)))
    if spec.base == "asum":
        return float(np.sum(np.abs(arrays["X"].astype(np.float64))))
    if spec.base == "amax":
        if len(arrays["X"]) == 0:
            return 0
        return int(np.argmax(np.abs(arrays["X"])))
    extra = EXTRA_REFERENCES.get(spec.base)
    if extra is not None:
        return extra(spec, arrays, scalars)
    raise KeyError(spec.base)


#: extension point for kernel families defined outside this module
#: (kernels/blas3.py registers gemm/stencil3/sumsq here), keyed by
#: ``KernelSpec.base`` — keeps ``reference`` the single oracle entry
#: point the tester and the differential fuzzer import
EXTRA_REFERENCES: Dict[str, Callable] = {}
