"""Level 2 BLAS kernels — the beyond-the-paper extension.

The paper closes: "our initial timings show ifko already capable of
improving even Level 3 BLAS performance" — the framework is meant to
generalize past single loops.  This module exercises that direction
with two Level 2 kernels built from nested HIL loops, where the
``@TUNE`` mark-up selects the *innermost* loop:

* **gemv** — ``y = A x`` (row-major): a dot-product inner loop per row;
* **ger**  — ``A += alpha * x * y^T``: an axpy-like inner loop per row.

These stress machinery the Level 1 kernels never touch: nested loop
lowering, runtime pointer advances (``X -= N`` resets the vector stream
between rows), and the alignment analysis (a row of ``A`` is generally
*not* 16-byte aligned, so the vectorizer must emit unaligned vector
memory operations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

_GEMV = """
ROUTINE {P}gemv(M: int, N: int, A: ptr {T}, X: ptr {T}, Y: ptr {T});
{T} acc;
{T} a;
{T} x;
LOOP r = 0, M
LOOP_BODY
    acc = 0.0;
    @TUNE
    LOOP i = 0, N
    LOOP_BODY
        a = A[0];
        x = X[0];
        acc += a * x;
        A += 1;
        X += 1;
    LOOP_END
    Y[0] = acc;
    Y += 1;
    X -= N;
LOOP_END
"""

_GER = """
ROUTINE {P}ger(M: int, N: int, alpha: {T}, X: ptr {T}, Y: ptr {T}, A: ptr {T});
{T} ax;
{T} a;
{T} y;
LOOP r = 0, M
LOOP_BODY
    ax = X[0];
    ax = ax * alpha;
    @TUNE
    LOOP i = 0, N
    LOOP_BODY
        a = A[0];
        y = Y[0];
        a = a + ax * y;
        A[0] = a;
        A += 1;
        Y += 1;
    LOOP_END
    X += 1;
    Y -= N;
LOOP_END
"""


@dataclass(frozen=True)
class Blas2Spec:
    """A Level 2 kernel: HIL source + shapes + FLOP convention."""

    name: str
    base: str          # 'gemv' | 'ger'
    precision: str
    hil: str

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.float32 if self.precision == "s" else np.float64)

    def flops(self, m: int, n: int) -> int:
        return 2 * m * n


def _mk(base: str, template: str, precision: str) -> Blas2Spec:
    t = "float" if precision == "s" else "double"
    return Blas2Spec(name=precision + base, base=base, precision=precision,
                     hil=template.format(T=t, P=precision))


BLAS2_REGISTRY: Dict[str, Blas2Spec] = {
    s.name: s for s in [
        _mk("gemv", _GEMV, "s"), _mk("gemv", _GEMV, "d"),
        _mk("ger", _GER, "s"), _mk("ger", _GER, "d"),
    ]
}


def get_blas2(name: str) -> Blas2Spec:
    return BLAS2_REGISTRY[name]


# ---------------------------------------------------------------------------
# references and runners

def gemv_reference(A: np.ndarray, X: np.ndarray) -> np.ndarray:
    """Row-major y = A @ x; A is (M*N,) flattened row-major."""
    m = len(A) // len(X)
    return (A.reshape(m, len(X)).astype(np.float64)
            @ X.astype(np.float64))


def ger_reference(A: np.ndarray, X: np.ndarray, Y: np.ndarray,
                  alpha: float) -> np.ndarray:
    """A + alpha * outer(x, y), flattened row-major, in A's dtype."""
    dt = A.dtype
    m, n = len(X), len(Y)
    out = A.reshape(m, n) + dt.type(alpha) * np.outer(X, Y).astype(dt)
    return out.astype(dt).ravel()


def run_blas2(fn, spec: Blas2Spec, m: int, n: int,
              rng: Optional[np.random.Generator] = None,
              alpha: float = 1.25):
    """Execute a compiled Level 2 kernel in the interpreter; returns
    (outputs dict, reference dict) for comparison."""
    from ..machine.interp import run_function
    rng = rng or np.random.default_rng(0)
    dt = spec.dtype
    if spec.base == "gemv":
        A = rng.standard_normal(max(m * n, 1)).astype(dt)
        X = rng.standard_normal(max(n, 1)).astype(dt)
        Y = np.zeros(max(m, 1), dtype=dt)
        run_function(fn, {"A": A.copy(), "X": X.copy(), "Y": Y},
                     {"M": m, "N": n})
        ref = gemv_reference(A[:m * n], X[:n]) if m and n \
            else np.zeros(m, dtype=dt)
        return {"Y": Y[:m]}, {"Y": ref}
    if spec.base == "ger":
        A = rng.standard_normal(max(m * n, 1)).astype(dt)
        X = rng.standard_normal(max(m, 1)).astype(dt)
        Y = rng.standard_normal(max(n, 1)).astype(dt)
        got = A.copy()
        run_function(fn, {"A": got, "X": X.copy(), "Y": Y.copy()},
                     {"M": m, "N": n, "alpha": alpha})
        ref = ger_reference(A[:m * n], X[:m], Y[:n], alpha) if m and n \
            else A[:m * n]
        return {"A": got[:m * n]}, {"A": ref}
    raise KeyError(spec.base)
