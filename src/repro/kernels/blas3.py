"""The Level-3 workload: blocked GEMM plus a small stencil/reduction
family.

The paper closes by claiming ifko is "already capable of improving even
Level 3 BLAS performance"; this module supplies the kernels that
exercise that claim.  ``gemm`` is written as a square row-major loop
nest (``C += A B`` in the axpy-style j-inner formulation) whose
innermost loop carries the ``@TUNE`` mark-up — the inner-loop pipeline
tunes the microkernel while the Level-3 tiling pass
(:mod:`repro.hil.tiling`) blocks the surrounding nest, searched through
the ``tile:<ivar>`` extension dimensions.

``stencil3`` (a 3-point sum) and ``sumsq`` (sum of squares) round out
the family with an elementwise neighbour-access kernel and one more
reduction: cheap single-loop shapes that widen the fuzzer's coverage of
multi-offset reads and squared accumulation.

All three register in the main :data:`~repro.kernels.blas1.REGISTRY`
(via :mod:`repro.kernels`), so the engine, the service, the tester and
the fuzzer drive them exactly like the Level-1 kernels.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .blas1 import EXTRA_REFERENCES, KernelSpec, _mk

# C += A * B, row-major square N x N.  The j-inner (axpy) formulation
# keeps the innermost loop a unit-stride stream over B and C with A
# invariant — vectorizable by the existing SV pass — and the k loop
# accumulates into C elements (a reduction per element, hence
# ``reduction_outputs=('C',)``).  The nest is the shape
# ``hil.tiling.find_nest`` accepts, so the search space grows
# ``tile:i / tile:k / tile:j`` dimensions on machines with caches.
_GEMM = """
ROUTINE {P}gemm(N: int, A: ptr {T}, B: ptr {T}, C: ptr {T});
{T} a;
{T} b;
{T} c;
LOOP i = 0, N
LOOP_BODY
    LOOP k = 0, N
    LOOP_BODY
        a = A[0];
        @TUNE
        LOOP j = 0, N
        LOOP_BODY
            b = B[0];
            c = C[0];
            c = c + a * b;
            C[0] = c;
            B += 1;
            C += 1;
        LOOP_END
        A += 1;
        C -= N;
    LOOP_END
    C += N;
    B -= N * N;
LOOP_END
"""

# Y[i] = X[i] + X[i+1] + X[i+2] for i < N-2 — multi-offset reads from
# one advancing pointer, bitwise-reproducible elementwise output.
_STENCIL3 = """
ROUTINE {P}stencil3(N: int, X: ptr {T}, Y: ptr {T});
{T} x0;
{T} x1;
{T} x2;
{T} s;
int m = N - 2;
@TUNE
LOOP i = 0, m
LOOP_BODY
    x0 = X[0];
    x1 = X[1];
    x2 = X[2];
    s = x0 + x1;
    s = s + x2;
    Y[0] = s;
    X += 1;
    Y += 1;
LOOP_END
"""

# sum of squares — one more reduction shape (squared accumuland) for
# the AE/SV reassociation paths.
_SUMSQ = """
ROUTINE {P}sumsq(N: int, X: ptr {T}) RETURNS {T};
{T} ss = 0.0;
{T} x;
@TUNE
LOOP i = 0, N
LOOP_BODY
    x = X[0];
    x = x * x;
    ss += x;
    X += 1;
LOOP_END
RETURN ss;
"""

#: interpreter-friendly sizes for the cubic kernels (a 13^3 nest is
#: ~4.4k interpreted multiply-adds; DEFAULT_SIZES' 257 would be ~34M)
GEMM_TEST_SIZES = (0, 1, 2, 3, 5, 8, 13)


def _build() -> List[KernelSpec]:
    specs: List[KernelSpec] = []
    for p in ("s", "d"):
        specs.append(_mk("gemm", _GEMM, p,
                         vector_args=(), matrix_args=("A", "B", "C"),
                         output_args=("C",), reduction_outputs=("C",),
                         flops_per_elem=2, flops_order=3,
                         test_sizes=GEMM_TEST_SIZES, nest_timing=True,
                         loop_form="downcount"))
        specs.append(_mk("stencil3", _STENCIL3, p,
                         vector_args=("X", "Y"), output_args=("Y",),
                         flops_per_elem=2, loop_form="downcount"))
        specs.append(_mk("sumsq", _SUMSQ, p, vector_args=("X",),
                         output_args=(), returns="float",
                         flops_per_elem=2, loop_form="downcount"))
    return specs


BLAS3_REGISTRY: Dict[str, KernelSpec] = {s.name: s for s in _build()}

#: presentation/fuzz order of the Level-3 family, appended after the
#: paper's KERNEL_ORDER (which stays exactly the Table 1 fourteen)
BLAS3_ORDER = ["sgemm", "dgemm", "sstencil3", "dstencil3",
               "ssumsq", "dsumsq"]


# ---------------------------------------------------------------------------
# NumPy references (registered into blas1.reference's dispatch)


def _ref_gemm(spec: KernelSpec, arrays, scalars):
    c = arrays["C"]
    n = int(round(len(c) ** 0.5)) if len(c) else 0
    if n * n != len(c):        # padded degenerate allocation (N=0)
        return None
    if n:
        a = arrays["A"][:n * n].reshape(n, n).astype(np.float64)
        b = arrays["B"][:n * n].reshape(n, n).astype(np.float64)
        acc = c.reshape(n, n).astype(np.float64) + a @ b
        c[:] = acc.astype(spec.dtype).ravel()
    return None


def _ref_stencil3(spec: KernelSpec, arrays, scalars):
    x, y = arrays["X"], arrays["Y"]
    m = len(x) - 2
    if m > 0:
        # round exactly like the kernel: (x0 + x1) + x2 per element
        y[:m] = ((x[:m] + x[1:m + 1]) + x[2:m + 2]).astype(spec.dtype)
    return None


def _ref_sumsq(spec: KernelSpec, arrays, scalars):
    x = arrays["X"].astype(np.float64)
    return float(np.sum(x * x))


EXTRA_REFERENCES["gemm"] = _ref_gemm
EXTRA_REFERENCES["stencil3"] = _ref_stencil3
EXTRA_REFERENCES["sumsq"] = _ref_sumsq

__all__ = ["BLAS3_ORDER", "BLAS3_REGISTRY", "GEMM_TEST_SIZES"]
