"""Simulated x86 machines — the substitution for the paper's testbeds.

* :mod:`repro.machine.config`    — P4E / Opteron parameter sets
* :mod:`repro.machine.registers` — architectural register files
* :mod:`repro.machine.loopinfo`  — kernel summaries for the timing model
* :mod:`repro.machine.timing`    — cycle-approximate loop timing
* :mod:`repro.machine.memory` / :mod:`repro.machine.interp` — functional
  execution for correctness testing
"""

from .config import CacheConfig, ExecClass, MachineConfig, get_machine, \
    opteron, pentium4e
from .registers import GP_NAMES, SP, XMM_NAMES, gp_regs, xmm_regs
from .loopinfo import LoopSummary, StreamInfo, summarize
from .timing import (Context, LoopTimer, TimingResult, TimingStats,
                     cpu_cycles_per_trip, time_kernel)
from .memory import MemoryImage
from .interp import Interpreter, RunResult, run_function

__all__ = [
    "CacheConfig", "ExecClass", "MachineConfig", "get_machine", "opteron",
    "pentium4e",
    "GP_NAMES", "SP", "XMM_NAMES", "gp_regs", "xmm_regs",
    "LoopSummary", "StreamInfo", "summarize",
    "Context", "LoopTimer", "TimingResult", "TimingStats",
    "cpu_cycles_per_trip", "time_kernel",
    "MemoryImage", "Interpreter", "RunResult", "run_function",
]
