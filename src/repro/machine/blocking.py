"""Analytic timing for blocked loop nests (the Level-3 workload).

The per-line walk in :mod:`repro.machine.timing` times the tuned
*innermost* loop by stepping every cache line it streams — exact for a
Level-1 kernel's single O(N) pass, but hopeless for a GEMM nest that
touches O(N^3) elements.  This module supplies the nest-level
complement: a capacity-miss traffic model over the loop nest (from
:func:`repro.hil.tiling.nest_info`'s stride polynomials) composed with
the existing steady-state CPU bound of the compiled inner loop, closed
as a roofline.

**Traffic model.**  Every array access in an accepted nest is affine in
the loop counters, ``elem = sum_v sigma_v * i_v``, with the per-ivar
strides ``sigma_v`` known from the nest analysis.  Walking the levels
innermost to outermost, a cache of capacity ``C`` sees, per array:

* a level whose stride is non-zero brings new data every trip —
  traffic and footprint both multiply by the trip count;
* a level whose stride is zero repeats the child subnest over the same
  data — traffic is unchanged when the child's working set fits in
  ``util * C`` (the data survives between reuses) and multiplies by
  the trip count when it does not (capacity misses).

Tile loops enter the level list with trip count ``ceil(N/T)`` and an
effective stride of ``T * sigma_v``; their intra loops run ``T`` trips
at stride ``sigma_v``.  The product over both recovers the untiled
coverage, and the footprint products are exactly the blocked working
sets (``3 T^2`` elements for square-tiled GEMM) that decide residency.

Evaluated at L2 capacity the traffic is what crosses the memory bus;
at L1 capacity, what the L1<->L2 fill path carries.  Cycle count is a
roofline: ``max(CPU, bus, L1 fill)`` plus per-level loop overheads and
the prologue.  Like the rest of the machine model the absolute numbers
are model numbers — what matters is relative fidelity: the model
reproduces the regimes that make cache blocking pay (untiled GEMM is
bus-bound at ``8 N^3 / bus_bpc`` cycles; a well-tiled one keeps the
B-block L2-resident and drops bus traffic by ``1/T``).
"""

from __future__ import annotations

from math import ceil
from typing import Dict, List, Optional, Tuple

from ..hil.tiling import NestInfo
from .config import MachineConfig
from .loopinfo import LoopSummary
from .timing import (Context, TimingResult, TimingStats, _summary_cpi,
                     prologue_cycles)

#: fraction of a cache's capacity a blocked working set may occupy and
#: still be treated as resident (conflict misses, the other arrays'
#: stream-through lines and the stack eat the rest)
CACHE_UTIL = 0.75

#: cycles charged per entry into a loop (trip-count setup, the final
#: mispredicted back edge)
_LOOP_ENTRY = 4.0
#: cycles charged per iteration of a non-innermost level (the clamp,
#: pointer-fixup arithmetic and the backedge itself)
_LEVEL_ITER = 2.0


def nest_levels(nest: NestInfo, tiles: Dict[str, int],
                n: int) -> List[Tuple[str, int, int]]:
    """The executed loop levels, outermost first, as
    ``(ivar, trips, stride_multiplier)``: tile loops (trips
    ``ceil(n/T)``, multiplier ``T``) for every tiled ivar in nest
    order, then every intra loop (trips ``T`` or ``n``, multiplier 1).
    Tile sizes outside ``(0, n)`` are ignored — a full-extent tile is
    the untiled loop."""
    eff = {v: t for v, t in tiles.items()
           if v in nest.ivars and 0 < t < n}
    levels: List[Tuple[str, int, int]] = []
    for v in nest.ivars:
        if v in eff:
            levels.append((v, ceil(n / eff[v]), eff[v]))
    for v in nest.ivars:
        levels.append((v, eff.get(v, n), 1))
    return levels


def nest_traffic(nest: NestInfo, tiles: Dict[str, int], n: int,
                 capacity: int, util: float = CACHE_UTIL
                 ) -> Dict[str, float]:
    """Per-array *elements* fetched into a cache of ``capacity`` bytes
    over one full nest execution (capacity misses only; a cold first
    touch of each distinct element is included by construction)."""
    strides = nest.strides_at(n)
    levels = nest_levels(nest, tiles, n)
    arrays = sorted(nest.pointers)
    traffic = {a: 1.0 for a in arrays}
    foot = {a: 1.0 for a in arrays}
    for v, trips, mult in reversed(levels):
        child_ws = sum(foot[a] * nest.pointers[a] for a in arrays)
        resident = child_ws <= util * capacity
        for a in arrays:
            if strides[a].get(v, 0) * mult != 0:
                traffic[a] *= trips
                foot[a] *= trips
            elif not resident:
                traffic[a] *= trips
    return traffic


def _total_bytes(nest: NestInfo, traffic: Dict[str, float],
                 writeback: float) -> Tuple[float, float]:
    """(read bytes, written-back bytes) for a per-array traffic map."""
    reads = sum(t * nest.pointers[a] for a, t in traffic.items())
    writes = sum(traffic[a] * nest.pointers[a] * writeback
                 for a in nest.stored)
    return reads, writes


def nest_cycles(summary: LoopSummary, nest: NestInfo,
                tiles: Dict[str, int], mach: MachineConfig,
                context: Context, n: int) -> TimingResult:
    """Cycles for one invocation of the full nest at problem size
    ``n``: the compiled inner loop's steady-state CPU bound scaled by
    the executed trip structure, rooflined against the capacity-miss
    traffic at L2 (memory bus) and L1 (fill path)."""
    stats = TimingStats()
    if not summary.has_loop or n <= 0:
        return TimingResult(prologue_cycles(summary, mach), mach.name,
                            context, n, stats)

    levels = nest_levels(nest, tiles, n)
    inner_extent = levels[-1][1]

    # ---------------------------------------------------------- CPU side
    epi = summary.elems_per_trip
    cpi = _summary_cpi(summary, summary.body, "body", mach)
    trips = inner_extent // epi
    remainder = inner_extent - trips * epi
    if remainder > 0:
        if summary.cleanup:
            ccpi = _summary_cpi(summary, summary.cleanup, "cleanup", mach)
        else:
            ccpi = cpi / max(1, epi)
        rem_cycles = remainder * max(1.0, ccpi)
    else:
        rem_cycles = 0.0

    # invocation counts: the inner loop body runs once per iteration of
    # the enclosing levels; each enclosing level's own iterations pay
    # the clamp/fixup arithmetic
    invocations = 1
    overhead = 0.0
    iters = 1
    for v, lvl_trips, _ in levels[:-1]:
        iters *= lvl_trips
        overhead += iters * _LEVEL_ITER
        invocations = iters
    cpu = (invocations * (cpi * trips + rem_cycles + _LOOP_ENTRY)
           + overhead)
    stats.cpu_cycles = invocations * cpi * trips

    # ------------------------------------------------------- memory side
    line = mach.l1.line
    elem = max(nest.pointers.values(), default=8)
    total_foot = sum(
        (n ** sum(1 for v in nest.ivars if s.get(v, 0))) * nest.pointers[a]
        for a, s in nest.strides_at(n).items())

    l1_traffic = nest_traffic(nest, tiles, n, mach.l1.size)
    l1_read, l1_write = _total_bytes(nest, l1_traffic, 0.5)
    l1_fill = (l1_read + l1_write) / mach.l2.fill_bpc

    if context is Context.OUT_OF_CACHE or total_foot > mach.l2.size:
        l2_traffic = nest_traffic(nest, tiles, n, mach.l2.size)
        rd, wr = _total_bytes(nest, l2_traffic, mach.writeback_factor)
        bus = (rd + wr) / mach.bus_bpc
        stats.demand_misses = int((rd + wr) / line)
    else:
        # operands resident in L2: no main-memory traffic
        bus = 0.0
        stats.demand_misses = int((l1_read + l1_write) / line)
    stats.lines_processed = max(1, int(total_foot / max(elem, 1)
                                       * elem / line))
    stats.bus_busy_cycles = bus

    mem = max(bus, l1_fill)
    cycles = prologue_cycles(summary, mach) + max(cpu, mem)
    if mem > cpu:
        stats.stall_cycles = mem - cpu
    return TimingResult(cycles, mach.name, context, n, stats)
