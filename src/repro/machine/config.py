"""Simulated machine configurations.

This module is the substitution for the paper's physical testbeds (a
2.8 GHz Pentium 4E and a 1.6 GHz Opteron — its Table 2).  Each
:class:`MachineConfig` bundles the microarchitectural parameters the
timing model consumes.  The parameter values are drawn from public
documentation of the two microarchitectures (NetBurst/Prescott and K8)
at the granularity the model needs; they are *representative*, not
vendor-exact — see DESIGN.md section 3 for why relative behaviour is
what matters here.

The mechanisms the paper's evaluation turns on are all visible here:

* long FP latencies and a deep bus penalty on the P4E (more bus-bound);
* the Opteron's on-die memory controller (short memory latency, small
  bus turnaround) leaving more headroom for prefetch tuning;
* non-temporal-store policies that differ exactly the way section 3.3
  describes (P4E: helps whenever the operand is not retained; Opteron:
  hurts unless the array is write-only);
* 8 architectural GP and 8 XMM registers (spill pressure at high unroll);
* a front-end uop budget that makes very large unrolled bodies decode-
  bound (the trace cache on P4E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..ir.instructions import PrefetchHint


@dataclass(frozen=True)
class CacheConfig:
    """One cache level."""

    size: int            # bytes
    line: int            # bytes
    assoc: int
    latency: int         # load-to-use cycles on a hit in this level
    fill_bpc: float      # bytes/cycle this level can deliver to the core


@dataclass(frozen=True)
class ExecClass:
    """Cost of one timing class: latency, reciprocal throughput on its
    execution unit, uop count, and the unit it executes on."""

    lat: int
    rthru: float
    uops: int
    unit: str


@dataclass(frozen=True)
class MachineConfig:
    name: str
    freq_mhz: int
    issue_width: int            # uops sustained per cycle from the front end
    decode_budget: int          # body uops before the front end throttles
    decode_width: float         # sustained uops/cycle beyond the budget
    classes: Dict[str, ExecClass]
    n_gp_regs: int              # allocatable GP registers (esp reserved)
    n_xmm_regs: int             # shared scalar-FP / vector register file
    l1: CacheConfig = CacheConfig(16 * 1024, 64, 8, 4, 8.0)
    l2: CacheConfig = CacheConfig(1024 * 1024, 64, 8, 18, 4.0)
    mem_latency: int = 300      # cycles, full miss to memory
    bus_bpc: float = 2.3        # bytes/cycle of memory bus bandwidth
    bus_turnaround: int = 20    # cycles lost when the bus flips read<->write
    write_batch_lines: int = 4  # write-buffer batching: turnaround cost is
                                # amortized over this many buffered lines
    writeback_factor: float = 1.0   # dirty-writeback inefficiency multiplier
    # non-temporal store policy
    wnt_saves_writeback: bool = True
    wnt_write_combine_factor: float = 1.0  # bus cost multiplier for WNT lines
    wnt_read_write_penalty: int = 0        # cycles/line if the WNT stream is
                                           # also read (Opteron WC-flush pain)
    # software prefetch
    prefetch_hints: Tuple[PrefetchHint, ...] = (
        PrefetchHint.NTA, PrefetchHint.T0, PrefetchHint.T1)
    prefetch_capacity: Dict[PrefetchHint, int] = field(default_factory=dict)
    #   ^ per-stream useful lookahead in bytes before prefetched lines are
    #     evicted ahead of use (destination-structure capacity)
    prefetch_drop_when_busy: bool = True
    prefetch_l2_only: Tuple[PrefetchHint, ...] = ()
    #   ^ hints that install only into L2 (demand still pays the L2 hop)
    # hardware stream prefetcher
    hw_prefetch_ahead: int = 1      # lines fetched ahead once a stream locks
    hw_prefetch_trigger: int = 2    # sequential misses needed to lock
    hw_prefetch_page: int = 4096    # HW prefetch never crosses page bounds
                                    # (software prefetch does — its edge)
    prefetchable_line: int = 64     # line size of the first prefetchable
                                    # cache (FKO's default distance = 2x this)
    branch_mispredict: int = 20
    store_buffer_slack: int = 400   # cycles of bus backlog stores tolerate

    @property
    def freq_hz(self) -> float:
        return self.freq_mhz * 1e6

    def exec_class(self, timing_class: str) -> ExecClass:
        return self.classes[timing_class]

    def uops_of(self, timing_class: str, mem_operand: bool = False) -> int:
        base = self.classes[timing_class].uops
        return base + (1 if mem_operand else 0)


def _classes(scalar_fp_lat: Dict[str, int], **overrides) -> Dict[str, ExecClass]:
    """Helper assembling the default class table, then applying overrides."""
    table = {
        # class: (lat, rthru, uops, unit)
        "mov":   ExecClass(1, 0.33, 1, "any"),
        "ld":    ExecClass(scalar_fp_lat["ld"], 1.0, 1, "load"),
        "vld":   ExecClass(scalar_fp_lat["ld"], 1.0, 1, "load"),
        "vldu":  ExecClass(scalar_fp_lat["ld"] + 2, 2.0, 2, "load"),
        "st":    ExecClass(1, 1.0, 1, "store"),
        "vst":   ExecClass(1, 1.0, 1, "store"),
        "vstu":  ExecClass(1, 2.0, 2, "store"),
        "stnt":  ExecClass(1, 1.0, 1, "store"),
        "vstnt": ExecClass(1, 1.0, 1, "store"),
        "iadd":  ExecClass(1, 0.5, 1, "int"),
        "imul":  ExecClass(scalar_fp_lat.get("imul", 5), 1.0, 1, "int"),
        "cmp":   ExecClass(1, 0.5, 1, "int"),
        "fadd":  ExecClass(scalar_fp_lat["fadd"], 1.0, 1, "fadd"),
        "fmul":  ExecClass(scalar_fp_lat["fmul"], 1.0, 1, "fmul"),
        "fdiv":  ExecClass(scalar_fp_lat.get("fdiv", 30), 30.0, 1, "fmul"),
        "fabs":  ExecClass(2, 1.0, 1, "fadd"),
        "fcmp":  ExecClass(3, 1.0, 1, "fadd"),
        "fmax":  ExecClass(scalar_fp_lat.get("fmax", 4), 1.0, 1, "fadd"),
        "vadd":  ExecClass(scalar_fp_lat["fadd"], 2.0, 1, "fadd"),
        "vmul":  ExecClass(scalar_fp_lat["fmul"], 2.0, 1, "fmul"),
        "vabs":  ExecClass(2, 1.0, 1, "fadd"),
        "vmax":  ExecClass(scalar_fp_lat.get("fmax", 4), 2.0, 1, "fadd"),
        "vcmp":  ExecClass(3, 2.0, 1, "fadd"),
        "vlogic": ExecClass(2, 1.0, 1, "fadd"),
        "hadd":  ExecClass(6, 2.0, 2, "fadd"),
        "bcast": ExecClass(4, 2.0, 2, "fadd"),
        "br":    ExecClass(1, 1.0, 1, "branch"),
        "jmp":   ExecClass(1, 1.0, 1, "branch"),
        "ret":   ExecClass(1, 1.0, 1, "branch"),
        "pref":  ExecClass(1, 1.0, 1, "load"),
    }
    table.update(overrides)
    return table


def pentium4e() -> MachineConfig:
    """2.8 GHz Pentium 4E (Prescott, NetBurst).

    Long FP pipelines (addsd 5 / mulsd 7), 16 KB L1D, 1 MB L2, 800 MHz
    FSB (~6.4 GB/s => ~2.3 B/cycle at 2.8 GHz), ~140 ns memory latency
    (~390 cycles), trace-cache front end.  Full-width 128-bit SSE
    datapath: one uop per packed op at half throughput.
    """
    lat = {"fadd": 5, "fmul": 7, "ld": 4, "imul": 10, "fdiv": 38, "fmax": 4}
    return MachineConfig(
        name="P4E",
        freq_mhz=2800,
        issue_width=3,
        decode_budget=180,
        decode_width=1.5,
        classes=_classes(
            lat,
            # P4's scalar FP throughput is one op per 2 cycles; packed ops
            # are also 1/2cy, so SIMD doubles (f64) / quadruples (f32)
            # per-element FP throughput.
            fadd=ExecClass(5, 2.0, 1, "fadd"),
            fmul=ExecClass(7, 2.0, 1, "fmul"),
            vadd=ExecClass(5, 2.0, 1, "fadd"),
            vmul=ExecClass(7, 2.0, 1, "fmul"),
            fabs=ExecClass(2, 1.0, 1, "fadd"),
            vabs=ExecClass(2, 1.0, 1, "fadd"),
            fmax=ExecClass(4, 2.0, 1, "fadd"),
            vmax=ExecClass(4, 2.0, 1, "fadd"),
            # packed compare/logic run on the fast MMX/ALU path
            vcmp=ExecClass(3, 1.0, 1, "fadd"),
        ),
        n_gp_regs=7,
        n_xmm_regs=8,
        l1=CacheConfig(16 * 1024, 64, 8, 4, 8.0),
        l2=CacheConfig(1024 * 1024, 64, 8, 18, 12.0),
        mem_latency=390,
        bus_bpc=2.3,
        bus_turnaround=28,
        write_batch_lines=4,
        writeback_factor=1.30,   # FSB writebacks interfere with demand reads
        wnt_saves_writeback=True,
        wnt_write_combine_factor=1.0,
        wnt_read_write_penalty=0,
        prefetch_hints=(PrefetchHint.NTA, PrefetchHint.T0, PrefetchHint.T1),
        prefetch_capacity={
            PrefetchHint.NTA: 8192,   # installs into one way of L2
            PrefetchHint.T0: 4096,    # limited by the 16 KB L1
            PrefetchHint.T1: 8192,
        },
        prefetch_l2_only=(PrefetchHint.NTA, PrefetchHint.T1),
        hw_prefetch_ahead=4,
        hw_prefetch_trigger=2,
        prefetchable_line=128,   # sectored L2 lines
        branch_mispredict=30,
    )


def opteron() -> MachineConfig:
    """1.6 GHz Opteron (K8).

    Shorter FP latencies (4/4), 64 KB L1D, on-die memory controller
    (~80 ns => ~130 cycles, small read/write turnaround), dual-channel
    DDR (~5.3 GB/s => ~3.3 B/cycle at 1.6 GHz).  The 64-bit FP datapath
    splits 128-bit SSE ops into two uops.
    """
    lat = {"fadd": 4, "fmul": 4, "ld": 3, "imul": 4, "fdiv": 20, "fmax": 3}
    return MachineConfig(
        name="Opteron",
        freq_mhz=1600,
        issue_width=3,
        decode_budget=256,   # no trace cache; steady 3/cycle decode
        decode_width=2.2,
        classes=_classes(
            lat,
            # K8: packed SSE ops crack into 2 uops on the 64-bit datapath
            vadd=ExecClass(4, 2.0, 2, "fadd"),
            vmul=ExecClass(4, 2.0, 2, "fmul"),
            vabs=ExecClass(2, 2.0, 2, "fadd"),
            vmax=ExecClass(3, 2.0, 2, "fadd"),
            vcmp=ExecClass(3, 2.0, 2, "fadd"),
            vlogic=ExecClass(2, 2.0, 2, "fadd"),
            vld=ExecClass(3, 1.0, 2, "load"),
            vst=ExecClass(1, 2.0, 2, "store"),
            vstnt=ExecClass(1, 2.0, 2, "store"),
            # two AGU/load pipes for 64-bit loads
            ld=ExecClass(3, 0.5, 1, "load"),
        ),
        n_gp_regs=7,
        n_xmm_regs=8,
        l1=CacheConfig(64 * 1024, 64, 2, 3, 16.0),
        l2=CacheConfig(1024 * 1024, 64, 16, 12, 8.0),
        mem_latency=130,
        bus_bpc=3.3,
        bus_turnaround=6,        # on-die memory controller
        write_batch_lines=8,
        writeback_factor=1.0,
        wnt_saves_writeback=True,
        wnt_write_combine_factor=1.0,
        wnt_read_write_penalty=200,  # WC-buffer flushes when the stream
                                     # is also being read (section 3.3:
                                     # icc+prof "many times slower")
        prefetch_hints=(PrefetchHint.NTA, PrefetchHint.T0,
                        PrefetchHint.T1, PrefetchHint.W),
        prefetch_capacity={
            PrefetchHint.NTA: 6144,
            PrefetchHint.T0: 8192,   # big L1 tolerates deep lookahead
            PrefetchHint.T1: 8192,
            PrefetchHint.W: 6144,
        },
        prefetch_l2_only=(PrefetchHint.T1,),
        hw_prefetch_ahead=1,
        hw_prefetch_trigger=2,
        branch_mispredict=11,
    )


_MACHINES = {"p4e": pentium4e, "opteron": opteron}


def get_machine(name: str) -> MachineConfig:
    """Look up a machine config by name ('p4e' or 'opteron')."""
    key = name.lower().replace("-", "").replace("_", "")
    if key in ("p4e", "pentium4e", "pentium4"):
        return pentium4e()
    if key in ("opteron", "opt", "k8"):
        return opteron()
    raise KeyError(f"unknown machine {name!r}; known: p4e, opteron")
