"""Functional interpreter: executes IR functions against a MemoryImage.

This is the "tester" half of the machine substrate: every compiled
kernel — at any point in the transform pipeline, before or after
register allocation — can be *run* and its outputs compared against the
NumPy reference.  IEEE semantics are respected per precision (f32
operations round to f32 at every step).

The interpreter is intentionally simple and safe rather than fast; the
timing model (:mod:`repro.machine.timing`) is what the search uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..errors import SimulationFault
from ..ir import (Cond, DType, Function, Imm, Instruction, Label, Mem,
                  Opcode, Reg, RegClass, VecType)
from ..ir.operands import is_reg
from .memory import MemoryImage
from .registers import SP

_NP = {DType.F32: np.float32, DType.F64: np.float64}


@dataclass
class RunResult:
    ret: Optional[Union[int, float]]
    instructions_executed: int
    regs: Dict[Reg, object] = field(default_factory=dict)


class Interpreter:
    def __init__(self, fn: Function, memory: MemoryImage,
                 max_instructions: int = 20_000_000):
        self.fn = fn
        self.mem = memory
        self.max_instructions = max_instructions
        self.regs: Dict[Reg, object] = {}
        self.flags: Optional[Tuple[float, float]] = None
        self.stack_base = memory.allocate_raw(
            max(64, 16 * (len(fn.stack_slots) + 4)), name="<stack>")
        self.regs[SP] = self.stack_base

    # ------------------------------------------------------------------
    def _read(self, op, lanes_hint: int = 1):
        if isinstance(op, Imm):
            return op.value
        if is_reg(op):
            if op not in self.regs:
                raise SimulationFault(f"read of undefined register {op!r}")
            return self.regs[op]
        if isinstance(op, Mem):
            addr = self._addr(op)
            if isinstance(op.dtype, VecType):
                return self.mem.load(addr, op.dtype.elem, op.dtype.lanes)
            return self.mem.load(addr, op.dtype)
        raise SimulationFault(f"cannot read operand {op!r}")

    def _addr(self, mem: Mem) -> int:
        base = self._read(mem.base)
        addr = int(base) + mem.disp
        if mem.index is not None:
            addr += int(self._read(mem.index)) * mem.scale
        return addr

    def _write(self, reg: Reg, value) -> None:
        self.regs[reg] = value

    def _fp(self, reg_or_val, dtype) -> object:
        """Round a value to the precision of the destination."""
        if isinstance(dtype, VecType):
            return np.asarray(reg_or_val, dtype=_NP[dtype.elem])
        if dtype in _NP:
            return _NP[dtype](reg_or_val)
        return reg_or_val

    # ------------------------------------------------------------------
    def run(self, args: Dict[str, object]) -> RunResult:
        fn = self.fn
        for p in fn.params:
            if p.reg is None:
                continue
            if p.name not in args:
                raise SimulationFault(f"missing argument {p.name!r}")
            val = args[p.name]
            if p.dtype.is_float:
                val = _NP[p.dtype](val)
            else:
                val = int(val)
            self.regs[p.reg] = val

        block_idx = {b.name: i for i, b in enumerate(fn.blocks)}
        bi, ii = 0, 0
        executed = 0
        while True:
            if bi >= len(fn.blocks):
                raise SimulationFault("fell off the end of the function")
            block = fn.blocks[bi]
            if ii >= len(block.instrs):
                bi += 1
                ii = 0
                continue
            instr = block.instrs[ii]
            executed += 1
            if executed > self.max_instructions:
                raise SimulationFault(
                    f"instruction budget exceeded ({self.max_instructions})")

            nxt = self._step(instr)
            if nxt is _RETURN:
                ret = None
                if instr.srcs:
                    ret = self._read(instr.srcs[0])
                    if isinstance(ret, np.floating):
                        ret = float(ret)
                    elif isinstance(ret, (np.integer, int)):
                        ret = int(ret)
                return RunResult(ret, executed, self.regs)
            if isinstance(nxt, str):
                bi = block_idx[nxt]
                ii = 0
            else:
                ii += 1

    # ------------------------------------------------------------------
    def _step(self, instr: Instruction):
        op = instr.op
        R = self._read

        if op in (Opcode.MOV, Opcode.FMOV, Opcode.VMOV):
            val = R(instr.srcs[0])
            self._write(instr.dst, self._fp(val, instr.dst.dtype))
        elif op in (Opcode.LD, Opcode.FLD, Opcode.VLD):
            self._write(instr.dst, R(instr.srcs[0]))
        elif op is Opcode.VLDU:
            mem = instr.srcs[0]
            vt = mem.dtype
            self._write(instr.dst,
                        self.mem.load_unaligned(self._addr(mem), vt.elem,
                                                vt.lanes))
        elif op in (Opcode.ST, Opcode.FST, Opcode.FSTNT):
            mem, val = instr.srcs
            self.mem.store(self._addr(mem), R(val),
                           mem.dtype if not isinstance(mem.dtype, VecType)
                           else mem.dtype.elem)
        elif op in (Opcode.VST, Opcode.VSTNT):
            mem, val = instr.srcs
            vt = mem.dtype
            if not isinstance(vt, VecType):
                raise SimulationFault(f"vector store to scalar ref {mem!r}")
            self.mem.store(self._addr(mem), R(val), vt.elem, vt.lanes)
        elif op is Opcode.VSTU:
            mem, val = instr.srcs
            vt = mem.dtype
            self.mem.store_unaligned(self._addr(mem), R(val), vt.elem,
                                     vt.lanes)
        elif op is Opcode.VBCAST:
            vt = instr.dst.dtype
            val = R(instr.srcs[0])
            self._write(instr.dst,
                        np.full(vt.lanes, val, dtype=_NP[vt.elem]))
        elif op is Opcode.VZERO:
            vt = instr.dst.dtype
            self._write(instr.dst, np.zeros(vt.lanes, dtype=_NP[vt.elem]))

        elif op is Opcode.ADD:
            self._write(instr.dst, int(R(instr.srcs[0])) + int(R(instr.srcs[1])))
        elif op is Opcode.SUB:
            self._write(instr.dst, int(R(instr.srcs[0])) - int(R(instr.srcs[1])))
        elif op is Opcode.IMUL:
            self._write(instr.dst, int(R(instr.srcs[0])) * int(R(instr.srcs[1])))
        elif op is Opcode.NEG:
            self._write(instr.dst, -int(R(instr.srcs[0])))

        elif op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
                    Opcode.FMAX):
            a, b = R(instr.srcs[0]), R(instr.srcs[1])
            dt = instr.dst.dtype
            fn = {Opcode.FADD: lambda x, y: x + y,
                  Opcode.FSUB: lambda x, y: x - y,
                  Opcode.FMUL: lambda x, y: x * y,
                  Opcode.FDIV: lambda x, y: x / y,
                  Opcode.FMAX: max}[op]
            self._write(instr.dst, self._fp(fn(self._fp(a, dt),
                                               self._fp(b, dt)), dt))
        elif op is Opcode.FABS:
            self._write(instr.dst,
                        self._fp(abs(R(instr.srcs[0])), instr.dst.dtype))
        elif op is Opcode.FNEG:
            self._write(instr.dst,
                        self._fp(-R(instr.srcs[0]), instr.dst.dtype))

        elif op in (Opcode.VADD, Opcode.VSUB, Opcode.VMUL, Opcode.VMAX,
                    Opcode.VABS, Opcode.VCMPGT, Opcode.VAND, Opcode.VANDN,
                    Opcode.VOR):
            vt = instr.dst.dtype
            a = np.asarray(R(instr.srcs[0]), dtype=_NP[vt.elem])
            if op is Opcode.VABS:
                res = np.abs(a)
            else:
                b = np.asarray(R(instr.srcs[1]), dtype=_NP[vt.elem])
                if op is Opcode.VADD:
                    res = a + b
                elif op is Opcode.VSUB:
                    res = a - b
                elif op is Opcode.VMUL:
                    res = a * b
                elif op is Opcode.VMAX:
                    res = np.maximum(a, b)
                elif op is Opcode.VCMPGT:
                    res = (a > b).astype(_NP[vt.elem])
                elif op is Opcode.VAND:
                    # idealized blend semantics: keep lanes where mask != 0
                    res = np.where(b != 0, a, _NP[vt.elem](0))
                elif op is Opcode.VANDN:
                    res = np.where(a == 0, b, _NP[vt.elem](0))
                else:  # VOR
                    res = np.where(a != 0, a, b)
            self._write(instr.dst, res.astype(_NP[vt.elem]))

        elif op is Opcode.VHADD:
            src = np.asarray(R(instr.srcs[0]))
            dt = instr.dst.dtype
            total = _NP[dt](0)
            for lane in src:  # sequential adds, rounding at each step
                total = _NP[dt](total + _NP[dt](lane))
            self._write(instr.dst, total)
        elif op is Opcode.VHMAX:
            src = np.asarray(R(instr.srcs[0]))
            self._write(instr.dst, self._fp(src.max(), instr.dst.dtype))
        elif op is Opcode.VMASK:
            src = np.asarray(R(instr.srcs[0]))
            mask = 0
            for i, lane in enumerate(src):
                if lane != 0:
                    mask |= 1 << i
            self._write(instr.dst, mask)

        elif op in (Opcode.CMP, Opcode.FCMP):
            a, b = R(instr.srcs[0]), R(instr.srcs[1])
            self.flags = (float(a), float(b))
        elif op is Opcode.TEST:
            a, b = int(R(instr.srcs[0])), int(R(instr.srcs[1]))
            self.flags = (float(a & b), 0.0)

        elif op is Opcode.JMP:
            return instr.target.name
        elif op is Opcode.JCC:
            if self.flags is None:
                raise SimulationFault("JCC with no flags set")
            a, b = self.flags
            taken = {Cond.EQ: a == b, Cond.NE: a != b, Cond.LT: a < b,
                     Cond.LE: a <= b, Cond.GT: a > b, Cond.GE: a >= b}[instr.cond]
            if taken:
                return instr.target.name
        elif op is Opcode.RET:
            return _RETURN
        elif op in (Opcode.PREFETCH, Opcode.NOP):
            pass  # no architectural effect
        else:  # pragma: no cover
            raise SimulationFault(f"unimplemented opcode {op!r}")
        return None


class _ReturnType:
    pass


_RETURN = _ReturnType()


def run_function(fn: Function, arrays: Dict[str, np.ndarray],
                 scalars: Optional[Dict[str, object]] = None,
                 max_instructions: int = 20_000_000) -> RunResult:
    """Execute ``fn``: numpy arrays bind to pointer params (mutated in
    place), ``scalars`` bind to value params.  Returns the RET value."""
    mem = MemoryImage()
    args: Dict[str, object] = dict(scalars or {})
    for p in fn.params:
        if p.dtype is DType.PTR:
            if p.name not in arrays:
                raise SimulationFault(f"missing array argument {p.name!r}")
            args[p.name] = mem.allocate(arrays[p.name], p.name)
    interp = Interpreter(fn, mem, max_instructions)
    return interp.run(args)
