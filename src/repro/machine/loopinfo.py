"""Extract a timing-model summary from a compiled kernel.

The timing model does not interpret instructions one by one over 80 000
elements (the functional interpreter does that, on small N, for the
*tester*).  Instead it consumes a :class:`LoopSummary`: the steady-state
loop body instruction mix (with per-block execution weights for bodies
with internal control flow), the per-trip stream behaviour of every
array, and the prefetch schedule.  This mirrors how one reasons about
streaming kernels on real hardware — per-iteration issue/port/dependence
bounds plus per-line memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import MachineError
from ..ir import Function, Instruction, Mem, Opcode, PrefetchHint, VReg
from ..ir.operands import is_reg


@dataclass
class StreamInfo:
    """Per-array stream behaviour within one loop trip."""

    array: str
    elem_size: int
    elems_per_trip: int
    reads: bool = False
    writes: bool = False
    nontemporal: bool = False
    prefetch_hint: Optional[PrefetchHint] = None
    prefetch_dist: int = 0        # bytes ahead of the current pointer
    n_prefetches: int = 0         # prefetch instructions per trip

    @property
    def bytes_per_trip(self) -> int:
        return self.elem_size * self.elems_per_trip


@dataclass
class LoopSummary:
    fn: Function
    elems_per_trip: int                       # source elements per trip
    body: List[Tuple[Instruction, float]]     # (instr, execution weight)
    streams: Dict[str, StreamInfo]
    prologue_uop_estimate: int
    cleanup: List[Tuple[Instruction, float]] = field(default_factory=list)
    rare_weight: float = 0.01
    # block-fetch style hand optimizations batch the bus traffic more
    # deeply than the machine's default write buffers (AMD's "block
    # prefetch" technique, section 3.3 / [14])
    write_batch_override: Optional[int] = None
    # per-machine memo for the resolved cycles-per-trip bounds (owned by
    # repro.machine.timing; a summary's body never changes once built)
    _cpi_cache: Dict[Tuple[str, str], float] = field(
        default_factory=dict, repr=False, compare=False)

    @property
    def has_loop(self) -> bool:
        return self.elems_per_trip > 0


def _block_weights(fn: Function, body_names: List[str], latch: str,
                   rare_weight: float) -> Dict[str, float]:
    """Weight 1.0 for blocks on *every* path body-entry -> latch, a small
    weight for conditionally-executed blocks (e.g. iamax's NEWMAX, which
    fires O(log N) times on random data)."""
    if not body_names:
        return {}
    entry = body_names[0]
    members = set(body_names) | {latch}

    # enumerate blocks reachable on all paths via intersection of paths
    # (bodies are small DAGs once the back edge is removed)
    always: Optional[set] = None
    stack: List[Tuple[str, frozenset]] = [(entry, frozenset([entry]))]
    guard = 0
    while stack:
        guard += 1
        if guard > 4096:  # pathological CFG: treat everything as "always"
            always = set(body_names)
            break
        cur, path = stack.pop()
        if cur == latch:
            always = set(path) if always is None else (always & set(path))
            continue
        for s in fn.successors(fn.block(cur)):
            if s in members and s not in path:
                stack.append((s, path | {s}))
    if always is None:
        always = set(body_names)

    weights = {}
    for name in body_names:
        weights[name] = 1.0 if name in always else rare_weight
    return weights


def summarize(fn: Function, rare_weight: float = 0.01) -> LoopSummary:
    """Build the timing summary for a compiled kernel function.

    The summary is memoized on the function object: compiled functions
    are never structurally mutated afterwards, and every consumer of a
    candidate (timer, store, diagnostics) wants the same summary."""
    memo = getattr(fn, "_summary_memo", None)
    if memo is not None and memo[0] == rare_weight:
        return memo[1]
    summary = _summarize(fn, rare_weight)
    try:
        fn._summary_memo = (rare_weight, summary)
    except AttributeError:
        pass
    return summary


def _summarize(fn: Function, rare_weight: float) -> LoopSummary:
    loop = fn.loop
    if loop is None:
        return LoopSummary(fn, 0, [], {},
                           prologue_uop_estimate=fn.n_instructions())

    weights = _block_weights(fn, loop.body, loop.latch, rare_weight)
    body: List[Tuple[Instruction, float]] = []
    # header + latch execute once per trip
    for name in [loop.header] if fn.has_block(loop.header) else []:
        blk = fn.block(name)
        if name not in loop.body:
            for instr in blk.instrs:
                body.append((instr, 1.0))
    for name in loop.body:
        w = weights.get(name, 1.0)
        for instr in fn.block(name).instrs:
            body.append((instr, w))
    for instr in fn.block(loop.latch).instrs:
        body.append((instr, 1.0))

    # streams
    epi = loop.elems_per_iter * abs(loop.step)
    streams: Dict[str, StreamInfo] = {}

    def stream(arr: str, esize: int) -> StreamInfo:
        if arr not in streams:
            inc = loop.ptr_incs.get(arr, 1)
            streams[arr] = StreamInfo(arr, esize, max(1, abs(inc)) * epi)
        return streams[arr]

    def scalar_size(dtype) -> int:
        # a vector access moves several scalar elements; streams count
        # *source* elements so elems_per_trip stays in scalar units
        return dtype.elem.size if hasattr(dtype, "elem") else dtype.size

    for instr, w in body:
        mem = instr.mem
        if mem is None or mem.array is None or w < 0.5:
            continue
        if instr.op is Opcode.PREFETCH:
            s = stream(mem.array, scalar_size(mem.dtype))
            s.n_prefetches += 1
            s.prefetch_hint = instr.hint
            if s.prefetch_dist == 0 or mem.disp < s.prefetch_dist:
                s.prefetch_dist = mem.disp
            continue
        s = stream(mem.array, scalar_size(mem.dtype))
        if instr.is_store:
            s.writes = True
            if instr.is_nontemporal:
                s.nontemporal = True
        else:
            s.reads = True

    # prologue: everything before the loop preheader, roughly
    pro = 0
    loop_blocks = set(loop.body) | {loop.header, loop.latch}
    for blk in fn.blocks:
        if blk.name not in loop_blocks:
            pro += len(blk.instrs)

    # cleanup loop (remainder iterations), tagged by the transforms
    cleanup: List[Tuple[Instruction, float]] = []
    for name in getattr(loop, "cleanup_body", []) or []:
        if fn.has_block(name):
            for instr in fn.block(name).instrs:
                cleanup.append((instr, 1.0))

    summary = LoopSummary(fn, epi, body, streams,
                          prologue_uop_estimate=pro, cleanup=cleanup,
                          rare_weight=rare_weight)
    if getattr(loop, "block_fetch", False):
        summary.write_batch_override = 16
    return summary
