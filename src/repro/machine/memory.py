"""Byte-addressed memory image for the functional interpreter.

Arrays are allocated 64-byte aligned (cache-line / SSE alignment — the
timers in the paper's methodology use aligned operands, and our
vectorizer assumes 16-byte alignment).  Loads/stores are bounds-checked:
the interpreter faults on out-of-range or misaligned vector accesses,
which is how transform bugs surface in tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import SimulationFault
from ..ir.types import DType

_NP_DTYPE = {DType.F32: np.float32, DType.F64: np.float64,
             DType.I64: np.int64, DType.PTR: np.int64}

_ALIGN = 64


class MemoryImage:
    """A sparse collection of allocations addressed by integer addresses."""

    def __init__(self) -> None:
        self._next = 0x1000
        # (base, size, ndarray, name)
        self._allocs: List[Tuple[int, int, np.ndarray, str]] = []

    # ------------------------------------------------------------------
    def allocate(self, array: np.ndarray, name: str = "") -> int:
        """Register a numpy array; returns its base address.  The array
        is used *in place*: stores through the image mutate it."""
        if array.ndim != 1:
            raise SimulationFault(f"only 1-D arrays supported ({name})")
        if not array.flags["C_CONTIGUOUS"]:
            raise SimulationFault(f"array {name!r} must be contiguous")
        base = (self._next + _ALIGN - 1) // _ALIGN * _ALIGN
        size = array.nbytes
        self._allocs.append((base, size, array, name))
        self._next = base + size + _ALIGN  # red zone between allocations
        return base

    def allocate_raw(self, nbytes: int, name: str = "") -> int:
        """Allocate zeroed raw space (used for the spill stack)."""
        arr = np.zeros(nbytes, dtype=np.uint8)
        return self.allocate(arr, name)

    # ------------------------------------------------------------------
    def _find(self, addr: int, nbytes: int) -> Tuple[np.ndarray, int]:
        for base, size, arr, name in self._allocs:
            if base <= addr and addr + nbytes <= base + size:
                return arr, addr - base
        raise SimulationFault(
            f"access of {nbytes} bytes at {addr:#x} is out of bounds")

    def load(self, addr: int, dtype: DType, lanes: int = 1):
        """Load a scalar (lanes == 1) or vector value."""
        npdt = _NP_DTYPE[dtype]
        esize = dtype.size
        if lanes > 1 and addr % 16 != 0:
            raise SimulationFault(
                f"unaligned vector load at {addr:#x}")
        arr, off = self._find(addr, esize * lanes)
        view = arr.view(np.uint8)[off:off + esize * lanes]
        values = np.frombuffer(view.tobytes(), dtype=npdt)
        if lanes == 1:
            v = values[0]
            return int(v) if dtype.is_int else npdt(v)
        return values.copy()

    def store(self, addr: int, value, dtype: DType, lanes: int = 1) -> None:
        npdt = _NP_DTYPE[dtype]
        esize = dtype.size
        if lanes > 1 and addr % 16 != 0:
            raise SimulationFault(
                f"unaligned vector store at {addr:#x}")
        arr, off = self._find(addr, esize * lanes)
        if lanes == 1:
            data = np.array([value], dtype=npdt)
        else:
            data = np.asarray(value, dtype=npdt)
            if data.shape != (lanes,):
                raise SimulationFault(
                    f"vector store of shape {data.shape}, expected ({lanes},)")
        arr.view(np.uint8)[off:off + esize * lanes] = \
            np.frombuffer(data.tobytes(), dtype=np.uint8)

    def load_unaligned(self, addr: int, dtype: DType, lanes: int):
        """Vector load without the 16-byte alignment requirement
        (movups semantics)."""
        npdt = _NP_DTYPE[dtype]
        esize = dtype.size
        arr, off = self._find(addr, esize * lanes)
        view = arr.view(np.uint8)[off:off + esize * lanes]
        return np.frombuffer(view.tobytes(), dtype=npdt).copy()

    def store_unaligned(self, addr: int, value, dtype: DType,
                        lanes: int) -> None:
        npdt = _NP_DTYPE[dtype]
        esize = dtype.size
        arr, off = self._find(addr, esize * lanes)
        data = np.asarray(value, dtype=npdt)
        if data.shape != (lanes,):
            raise SimulationFault(
                f"vector store of shape {data.shape}, expected ({lanes},)")
        arr.view(np.uint8)[off:off + esize * lanes] = \
            np.frombuffer(data.tobytes(), dtype=np.uint8)

    # ------------------------------------------------------------------
    def describe(self, addr: int) -> str:
        for base, size, arr, name in self._allocs:
            if base <= addr < base + size:
                return f"{name or '<anon>'}+{addr - base}"
        return f"{addr:#x} (unmapped)"
