"""Architectural register files of the simulated x86 targets.

Both machines expose the classic IA-32 + SSE files: 8 general purpose
registers (of which ``%esp`` is reserved for the stack, leaving 7 for
the allocator) and 8 XMM registers shared by scalar-FP and packed
values.  The paper's peephole discussion leans on exactly this scarcity
("relatively important when the ISA has only eight registers, but the
underlying hardware may have more than a hundred").
"""

from __future__ import annotations

from typing import List, Union

from ..ir import AReg, DType, RegClass, VecType

GP_NAMES = ["eax", "ecx", "edx", "ebx", "esi", "edi", "ebp"]
XMM_NAMES = [f"xmm{i}" for i in range(8)]

#: the stack pointer — never allocated, used for spill slots
SP = AReg("esp", RegClass.GP, DType.PTR, index=7)


def gp_regs(n: int = 7) -> List[AReg]:
    """The first ``n`` allocatable general-purpose registers."""
    return [AReg(name, RegClass.GP, DType.I64, index=i)
            for i, name in enumerate(GP_NAMES[:n])]


def xmm_regs(n: int = 8, dtype: Union[DType, VecType] = DType.F64,
             rclass: RegClass = RegClass.FP) -> List[AReg]:
    """``n`` XMM registers typed for the requested use."""
    return [AReg(name, rclass, dtype, index=i)
            for i, name in enumerate(XMM_NAMES[:n])]
