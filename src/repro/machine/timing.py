"""Cycle-approximate timing model for streaming loop kernels.

Two coupled components:

1. **Steady-state CPU bound** (:func:`cpu_cycles_per_trip`): the loop
   body's cycles per trip is the max of
   - the front-end issue bound (uops / issue width, throttled when the
     body exceeds the machine's decode budget — the P4E trace cache
     effect that caps useful unrolling),
   - per-execution-unit throughput bounds (loads, stores, FP add, FP
     mul, integer, branch),
   - the loop-carried dependence bound: floating point accumulators
     form ``adds_per_trip x latency`` recurrence chains, divided across
     the accumulators that accumulator expansion (AE) created.

2. **Line-granular memory simulation** (:class:`LoopTimer`): walks the
   arrays' cache lines through a model of L1/L2, a finite-bandwidth
   memory bus with read/write turnaround penalties, a hardware stream
   prefetcher, and software prefetch that is **dropped when the bus is
   busy** (section 2.2.3: "many architectures discard prefetches when
   they are issued while the bus is busy").  Non-temporal stores follow
   the per-machine policies of :mod:`repro.machine.config`.

The per-line walk is phrased in a *relative* time frame: each line is a
pure step function of the relative machine state (ready-window offsets,
bus backlog, hardware-prefetch streak, page phase) that returns the
cycle delta the line cost.  Because the loop streams over homogeneous
lines, that state reaches an exactly periodic orbit after a short
warmup; the timer detects the period by hashing the relative state,
simulates one period, and **replays** its recorded deltas for the rest
of the array — performing bit-identical float additions, so the fast
path equals the full walk exactly (``fast=False`` forces the full
walk; see DESIGN.md).

The result is ``cycles`` for one kernel invocation; the timer layer
converts to seconds/MFLOPS.  Absolute numbers are model numbers — the
reproduction targets *relative* behaviour (see DESIGN.md section 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ir import Instruction, Mem, Opcode, PrefetchHint
from ..ir.operands import is_reg
from .config import MachineConfig, get_machine
from .loopinfo import LoopSummary, StreamInfo

#: stop looking for a steady state after this many distinct state
#: signatures (bounds probe memory; the walk then continues plain)
_PROBE_CAP = 2048
#: arrays shorter than this are walked in full — nothing to extrapolate
_FAST_MIN_LINES = 16


def _replay_sum(init: float, deltas: List[float], full: int) -> float:
    """``init + d0 + d1 + ...`` over ``full`` repetitions of ``deltas``,
    summed strictly left to right — the identical float additions, in
    the identical order, a per-line replay loop would perform — but
    vectorized through ``np.cumsum`` (whose accumulation is sequential,
    unlike ``np.add.reduce``'s pairwise tree).  Bit-identity between the
    fast path and the full walk rests on this."""
    arr = np.empty(len(deltas) * full + 1)
    arr[0] = init
    arr[1:] = np.tile(deltas, full)
    return float(np.cumsum(arr)[-1])


class Context(enum.Enum):
    """Operand residency context (the paper times both)."""

    OUT_OF_CACHE = "out-of-cache"   # N = 80000, cold caches
    IN_L2 = "in-L2-cache"           # N = 1024, operands resident in L2

    def __str__(self) -> str:
        return self.value


@dataclass
class TimingStats:
    cpu_cycles: float = 0.0
    stall_cycles: float = 0.0
    bus_busy_cycles: float = 0.0
    prefetch_issued: int = 0
    prefetch_dropped: int = 0
    prefetch_wasted: int = 0
    demand_misses: int = 0
    hw_prefetches: int = 0
    lines_processed: int = 0
    #: lines whose deltas were replayed from the detected steady-state
    #: period instead of stepped (0 = full walk)
    lines_extrapolated: int = 0
    #: length (in lines) of the detected steady-state period
    steady_period: int = 0


@dataclass
class TimingResult:
    cycles: float
    machine: str
    context: Context
    n: int
    stats: TimingStats = field(default_factory=TimingStats)

    def seconds(self, freq_hz: float) -> float:
        return self.cycles / freq_hz

    def mflops(self, flops: float, freq_hz: float) -> float:
        secs = self.seconds(freq_hz)
        return flops / secs / 1e6 if secs > 0 else 0.0

    def attribution(self, mach: Optional[MachineConfig] = None) -> Dict:
        """Where the cycles went — the per-evaluation decomposition the
        simulator already computes internally, surfaced as plain data
        (the reproduction's Figure-7 analogue, at eval grain).

        * ``compute`` — the steady-state CPU bound (``cpi x trips``);
        * ``memory_stall`` — cycles the walk stalled waiting on lines;
        * ``prefetch_waste`` — bus cycles burned fetching lines that
          were evicted before use (``wasted lines x line transfer``;
          their downstream re-fetch stalls are part of
          ``memory_stall``, so the two overlap by design);
        * ``other`` — prologue, scalar-cleanup remainder and write
          drain, i.e. ``total - compute - memory_stall`` clamped at 0.

        Derived purely from already-recorded :class:`TimingStats` —
        calling this can never perturb a measurement."""
        if mach is None:
            mach = get_machine(self.machine)
        s = self.stats
        line = mach.l1.line
        if self.context is Context.OUT_OF_CACHE:
            read_dur = line / mach.bus_bpc
        else:
            read_dur = line / mach.l2.fill_bpc
        other = self.cycles - s.cpu_cycles - s.stall_cycles
        return {"total": self.cycles,
                "compute": s.cpu_cycles,
                "memory_stall": s.stall_cycles,
                "prefetch_waste": s.prefetch_wasted * read_dur,
                "other": other if other > 0.0 else 0.0,
                "bus_busy": s.bus_busy_cycles,
                "prefetch_issued": s.prefetch_issued,
                "prefetch_dropped": s.prefetch_dropped,
                "prefetch_wasted": s.prefetch_wasted,
                "demand_misses": s.demand_misses,
                "hw_prefetches": s.hw_prefetches,
                "lines": s.lines_processed,
                "lines_extrapolated": s.lines_extrapolated,
                "steady_period": s.steady_period}


# ---------------------------------------------------------------------------
# CPU-side steady state

_FP_CHAIN_OPS = (Opcode.FADD, Opcode.FSUB, Opcode.VADD, Opcode.VSUB,
                 Opcode.FMAX, Opcode.VMAX)
_PTR_CHAIN_OPS = (Opcode.ADD, Opcode.SUB)


def _resolve_body(body: List[Tuple[Instruction, float]],
                  mach: MachineConfig) -> List[Tuple]:
    """Pre-resolve each instruction's timing/exec class dispatch into a
    plain tuple so the cycles-per-trip reduction below is lookup-free."""
    resolved = []
    for instr, w in body:
        ec = mach.exec_class(instr.timing_class)
        mem_operand = (not instr.is_load and not instr.is_store
                       and instr.op is not Opcode.PREFETCH
                       and any(isinstance(s, Mem) for s in instr.srcs))
        n_uops = ec.uops + (1 if mem_operand else 0)
        # accumulator chains: dst register also appears in srcs
        chained = instr.dst is not None and any(
            is_reg(s) and s == instr.dst for s in instr.srcs)
        fp_dst = instr.dst if (chained and instr.op in _FP_CHAIN_OPS) else None
        ptr_dst = instr.dst if (chained and instr.op in _PTR_CHAIN_OPS) else None
        resolved.append((w, n_uops, ec.unit, ec.rthru, ec.lat,
                         mem_operand, fp_dst, ptr_dst))
    return resolved


def _cpi_from_resolved(resolved: List[Tuple], mach: MachineConfig) -> float:
    uops = 0.0
    unit_cycles: Dict[str, float] = {}
    chain_cycles: Dict[object, float] = {}
    ptr_chain: Dict[object, float] = {}
    ld_rthru = mach.exec_class("ld").rthru

    for w, n_uops, unit, rthru, lat, mem_operand, fp_dst, ptr_dst in resolved:
        uops += w * n_uops
        if unit != "any":
            unit_cycles[unit] = unit_cycles.get(unit, 0.0) + w * rthru
        if mem_operand:
            # the folded load occupies the load unit too
            unit_cycles["load"] = unit_cycles.get("load", 0.0) + w * ld_rthru
        if fp_dst is not None:
            chain_cycles[fp_dst] = chain_cycles.get(fp_dst, 0.0) + w * lat
        if ptr_dst is not None:
            ptr_chain[ptr_dst] = ptr_chain.get(ptr_dst, 0.0) + w * lat

    width = mach.issue_width if uops <= mach.decode_budget else mach.decode_width
    issue_bound = uops / width
    unit_bound = max(unit_cycles.values(), default=0.0)
    dep_bound = max(list(chain_cycles.values()) + list(ptr_chain.values()),
                    default=0.0)
    return max(1.0, issue_bound, unit_bound, dep_bound)


def cpu_cycles_per_trip(body: List[Tuple[Instruction, float]],
                        mach: MachineConfig) -> float:
    """Cycles one loop trip needs, ignoring cache misses (L1-hit world)."""
    return _cpi_from_resolved(_resolve_body(body, mach), mach)


def _summary_cpi(summary: LoopSummary, body: List[Tuple[Instruction, float]],
                 tag: str, mach: MachineConfig) -> float:
    """Per-(summary, machine) memo over :func:`cpu_cycles_per_trip` — one
    candidate's summary is timed repeatedly (repeat sampling, fast/slow
    comparisons), but its body never changes."""
    cache = summary._cpi_cache
    key = (mach.name, tag)
    cpi = cache.get(key)
    if cpi is None:
        cpi = _cpi_from_resolved(_resolve_body(body, mach), mach)
        cache[key] = cpi
    return cpi


def prologue_cycles(summary: LoopSummary, mach: MachineConfig) -> float:
    """Rough once-per-call cost of code outside the tuned loop."""
    return 10.0 + summary.prologue_uop_estimate / mach.issue_width * 2.0


# ---------------------------------------------------------------------------
# memory-side simulation

class _Bus:
    """Finite-bandwidth memory bus.

    Reads stream back-to-back.  Writes are assumed to drain from the
    write/WC buffers opportunistically, so they do not force the read
    stream to re-arbitrate: instead each buffered write line carries an
    amortized share of two bus turnarounds per ``write_batch`` lines.
    A smaller batch (P4E FSB) makes interleaved read/write streams pay
    more — the effect AMD's block-fetch technique exploits (and that the
    hand-tuned dcopy* baseline models with a larger effective batch).

    The simulators below inline this accounting in a relative time
    frame; the class remains the reference formulation (and is used by
    tests/diagnostics).
    """

    __slots__ = ("free_at", "bpc", "turnaround", "write_batch",
                 "busy_total")

    def __init__(self, bpc: float, turnaround: int, write_batch: int = 4):
        self.free_at = 0.0
        self.bpc = bpc
        self.turnaround = turnaround
        self.write_batch = max(1, write_batch)
        self.busy_total = 0.0

    def transfer(self, now: float, nbytes: float, direction: str,
                 batch: Optional[int] = None) -> Tuple[float, float]:
        """Schedule a transfer; returns (start, end).  ``end`` is when the
        full line has arrived (for reads, data-available time)."""
        start = max(now, self.free_at)
        dur = nbytes / self.bpc
        if direction == "write":
            dur += 2.0 * self.turnaround / (batch or self.write_batch)
        end = start + dur
        self.free_at = end
        self.busy_total += dur
        return start, end

    def is_busy(self, now: float) -> bool:
        return self.free_at > now


class _Stream:
    """Per-stream mutable state for the line walk, pre-resolved from the
    machine config so the step function does no attribute dispatch."""

    __slots__ = ("ready", "dist_lines", "l2_only", "cap_ok", "pf_on",
                 "hw_streak", "reads", "writes", "nontemporal")

    def __init__(self, info: StreamInfo, line: int, mach: MachineConfig):
        self.ready: Dict[int, float] = {}
        hint = info.prefetch_hint
        self.pf_on = hint is not None and info.prefetch_dist > 0
        self.dist_lines = max(1, info.prefetch_dist // line)
        self.l2_only = (hint in mach.prefetch_l2_only) if hint else False
        cap = mach.prefetch_capacity.get(hint, 1 << 30) if hint else 0
        self.cap_ok = info.prefetch_dist <= cap
        self.hw_streak = 0
        self.reads = info.reads
        self.writes = info.writes
        self.nontemporal = info.nontemporal


def _shift_ready(states: List[_Stream], by: int) -> None:
    """Advance every pending line index by ``by`` (an exact integer
    shift: values — relative arrival times — are untouched)."""
    for st in states:
        if st.ready:
            st.ready = {k + by: v for k, v in st.ready.items()}


class LoopTimer:
    """Times one kernel invocation of N elements on a machine/context.

    ``fast=True`` (the default) enables steady-state extrapolation:
    once the relative per-line state repeats exactly, the detected
    period's cycle deltas are replayed instead of re-simulated.  The
    replay performs the *same float additions in the same order* as the
    full walk, so the result is bit-identical; ``fast=False`` forces
    the full walk (used by the equivalence suite and the benchmark's
    divergence gate).
    """

    def __init__(self, mach: MachineConfig, context: Context,
                 fast: bool = True):
        self.mach = mach
        self.context = context
        self.fast = fast

    # ------------------------------------------------------------------
    def time(self, summary: LoopSummary, n: int) -> TimingResult:
        mach = self.mach
        stats = TimingStats()
        if not summary.has_loop or n <= 0:
            cycles = prologue_cycles(summary, mach)
            return TimingResult(cycles, mach.name, self.context, n, stats)

        epi = summary.elems_per_trip
        trips = n // epi
        remainder = n - trips * epi
        cpi = _summary_cpi(summary, summary.body, "body", mach)
        stats.cpu_cycles = cpi * trips

        cycles = prologue_cycles(summary, mach)
        if trips > 0:
            if self.context is Context.OUT_OF_CACHE:
                cycles += self._simulate_ooc(summary, trips, cpi, stats)
            else:
                cycles += self._simulate_inl2(summary, trips, cpi, stats)

        # remainder elements run through the scalar cleanup loop
        if remainder > 0:
            if summary.cleanup:
                ccpi = _summary_cpi(summary, summary.cleanup, "cleanup", mach)
            else:
                ccpi = cpi / max(1, epi)
            cycles += remainder * max(1.0, ccpi)

        return TimingResult(cycles, mach.name, self.context, n, stats)

    # ------------------------------------------------------------------
    def _simulate_ooc(self, summary: LoopSummary, trips: int, cpi: float,
                      stats: TimingStats) -> float:
        """Out-of-cache: line-granular walk against the memory bus."""
        mach = self.mach
        line = mach.l1.line
        epi = summary.elems_per_trip
        streams = [s for s in summary.streams.values()
                   if s.reads or s.writes]
        if not streams:
            return cpi * trips

        total_elems = trips * epi
        elem_size = max(s.elem_size for s in streams)
        elems_per_line = max(1, line // elem_size)
        n_lines = (total_elems + elems_per_line - 1) // elems_per_line
        cpu_per_line = cpi * elems_per_line / epi

        # pre-resolved constants: the step below must be a pure function
        # of the relative state, so everything invariant is hoisted
        bpc = mach.bus_bpc
        write_batch = max(
            1, summary.write_batch_override or mach.write_batch_lines)
        turnaround = mach.bus_turnaround
        read_dur = line / bpc
        wb_dur = (line * mach.writeback_factor) / bpc \
            + 2.0 * turnaround / write_batch
        wnt_dur = (line * mach.wnt_write_combine_factor) / bpc \
            + 2.0 * turnaround / write_batch
        mem_lat = mach.mem_latency
        l2_hop = mach.l2.latency * 0.5
        hw_slack = mach.mem_latency * 0.4
        # software prefetches are dropped when the memory request queue
        # is pathologically saturated.  On a 100%-utilized bus the backlog
        # saw-tooths up to ~2-3x the memory latency in steady state, so
        # the threshold sits well above that: the bandwidth floor — not
        # the drop rule — is what limits prefetch on bus-bound kernels.
        pf_slack = mach.mem_latency * 6.0
        drop_busy = mach.prefetch_drop_when_busy
        lpp = max(1, mach.hw_prefetch_page // line)
        hw_ahead = mach.hw_prefetch_ahead
        hw_trigger = mach.hw_prefetch_trigger
        sb_slack = mach.store_buffer_slack
        wnt_rw_pen = mach.wnt_read_write_penalty

        states = [_Stream(s, line, mach) for s in streams]
        pf_states = [st for st in states if st.pf_on]
        rd_states = [st for st in states if st.reads]
        wr_states = [st for st in states if st.writes]

        def step(k: int, free: float):
            """Walk one cache line.  ``free`` is the bus free time
            relative to line start; everything time-like is relative, so
            the returned deltas depend only on (relative state, page
            phase) — the property the extrapolation relies on."""
            t = cpu_per_line
            stall = 0.0
            busy = 0.0
            pf_iss = pf_drop = pf_waste = demand = hw = 0

            # --- software prefetch issue (one new line per stream/step)
            for st in pf_states:
                tgt = k + st.dist_lines
                ready = st.ready
                if tgt >= n_lines or tgt in ready:
                    continue
                if drop_busy and free > t + pf_slack:
                    pf_drop += 1
                    continue
                start = free if free > t else t
                end = start + read_dur
                free = end
                busy += read_dur
                lat = t + mem_lat
                pf_iss += 1
                if st.cap_ok:
                    ready[tgt] = end if end > lat else lat
                else:
                    # fetched but evicted before use: pure waste
                    pf_waste += 1
                # the prefetch's own miss stream trains the hardware
                # prefetcher, which runs ahead of it within the page
                stop = tgt + hw_ahead + 1
                page_end = tgt - tgt % lpp + lpp
                if stop > page_end:
                    stop = page_end
                for t2 in range(tgt + 1, stop):
                    if t2 < n_lines and t2 not in ready \
                            and free - t < hw_slack:
                        start = free if free > t else t
                        e2 = start + read_dur
                        free = e2
                        busy += read_dur
                        lat = t + mem_lat
                        ready[t2] = e2 if e2 > lat else lat
                        hw += 1

            # --- demand reads
            for st in rd_states:
                ready = st.ready
                r = ready.pop(k, None)
                if r is not None:
                    if r > t:
                        stall += r - t
                        t = r
                    if st.l2_only:
                        t += l2_hop  # line parked in L2; pay the hop
                else:
                    # the streak only ever gates on >= trigger, so cap
                    # it there: bounded state is what lets the walk
                    # reach an exactly repeating signature
                    if st.hw_streak < hw_trigger:
                        st.hw_streak += 1
                    start = free if free > t else t
                    end = start + read_dur
                    free = end
                    busy += read_dur
                    lat = t + mem_lat
                    arrive = end if end > lat else lat
                    demand += 1
                    stall += arrive - t
                    t = arrive
                # hardware stream prefetcher: once a stream locks, it keeps
                # a running window of `hw_prefetch_ahead` lines in flight,
                # topped up as lines are consumed
                if st.hw_streak >= hw_trigger:
                    stop = k + hw_ahead + 1
                    page_end = k - k % lpp + lpp
                    if stop > page_end:
                        stop = page_end  # HW prefetch stops at the page
                    for t2 in range(k + 1, stop):
                        if t2 < n_lines and t2 not in ready:
                            # low-priority: tolerate a modest backlog but
                            # back off when the bus is saturated
                            if free - t < hw_slack:
                                start = free if free > t else t
                                e2 = start + read_dur
                                free = e2
                                busy += read_dur
                                lat = t + mem_lat
                                ready[t2] = e2 if e2 > lat else lat
                                hw += 1

            # --- stores
            for st in wr_states:
                if st.nontemporal:
                    start = free if free > t else t
                    free = start + wnt_dur
                    busy += wnt_dur
                    if st.reads and wnt_rw_pen:
                        t += wnt_rw_pen
                        stall += wnt_rw_pen
                else:
                    if not st.reads and st.ready.pop(k, None) is None:
                        # read-for-ownership fetch (store-buffer hidden,
                        # but it consumes the bus)
                        start = free if free > t else t
                        free = start + read_dur
                        busy += read_dur
                        demand += 1
                    # dirty writeback when the line retires
                    start = free if free > t else t
                    free = start + wb_dur
                    busy += wb_dur
                # stores stall only when the bus backlog exceeds the
                # store buffer's tolerance
                backlog = free - t
                if backlog > sb_slack:
                    s = backlog - sb_slack
                    stall += s
                    t += s

            # retire the line: drop spent window entries (only future
            # lines are ever probed) and rebase pending arrivals to the
            # next line's start so the state stays relative
            for st in states:
                ready = st.ready
                ready.pop(k, None)
                if ready:
                    for kk in ready:
                        ready[kk] -= t
            return t, free - t, stall, busy, pf_iss, pf_drop, pf_waste, \
                demand, hw

        def signature(k: int, free: float):
            parts: List = [k % lpp, free]
            for st in states:
                parts.append(st.hw_streak)
                ready = st.ready
                parts.append(tuple(sorted(
                    (kk - k, v) for kk, v in ready.items())) if ready else ())
            return tuple(parts)

        now = 0.0
        free = 0.0
        stall_total = 0.0
        busy_total = 0.0
        c_iss = c_drop = c_waste = c_dem = c_hw = 0

        # boundary margin: beyond steady_end a step may see the end of
        # the array (tgt >= n_lines), so only states observed before it
        # are eligible for period detection/extrapolation
        max_dist = max((st.dist_lines for st in pf_states), default=0)
        steady_end = n_lines - (max_dist + hw_ahead + 1)
        probing = self.fast and n_lines >= _FAST_MIN_LINES and steady_end > 1
        seen: Dict[Tuple, int] = {}

        probe_log: List[Tuple] = []   # per-line step results while probing

        k = 0
        while k < n_lines:
            # Probe only page-phase-0 lines: the signature embeds
            # ``k % lpp``, so equal signatures imply a period that is a
            # multiple of lpp — sampling one phase finds the same
            # periodicity at a fraction of the signature cost.  On a
            # match, the last ``period`` probe steps ARE one steady
            # period (step is a pure function of the relative state, and
            # the state at ``prev`` equals the state here), so their
            # logged deltas replay directly — no re-walk needed.  The
            # replay performs the same float additions, in the same
            # order, the full walk would, so totals stay bit-identical.
            if probing and k < steady_end and not k % lpp:
                sig = signature(k, free)
                prev = seen.get(sig)
                if prev is None:
                    if len(seen) < _PROBE_CAP:
                        seen[sig] = k
                    else:
                        probing = False
                        probe_log = []
                else:
                    period = k - prev
                    probing = False
                    full = (steady_end - k) // period
                    if full > 0:
                        rows = probe_log[prev:k]
                        rep = full * period
                        now = _replay_sum(now, [r[0] for r in rows], full)
                        stall_total = _replay_sum(
                            stall_total, [r[1] for r in rows], full)
                        busy_total = _replay_sum(
                            busy_total, [r[2] for r in rows], full)
                        c_iss += sum(r[3] for r in rows) * full
                        c_drop += sum(r[4] for r in rows) * full
                        c_waste += sum(r[5] for r in rows) * full
                        c_dem += sum(r[6] for r in rows) * full
                        c_hw += sum(r[7] for r in rows) * full
                        _shift_ready(states, rep)
                        k += rep
                        stats.lines_extrapolated = rep
                        stats.steady_period = period
                    probe_log = []
                    continue
            d, free, s, b, a1, a2, a3, a4, a5 = step(k, free)
            now += d
            stall_total += s
            busy_total += b
            c_iss += a1; c_drop += a2; c_waste += a3
            c_dem += a4; c_hw += a5
            if probing:
                probe_log.append((d, s, b, a1, a2, a3, a4, a5))
            k += 1

        stats.stall_cycles += stall_total
        stats.prefetch_issued += c_iss
        stats.prefetch_dropped += c_drop
        stats.prefetch_wasted += c_waste
        stats.demand_misses += c_dem
        stats.hw_prefetches += c_hw
        stats.lines_processed = n_lines
        stats.bus_busy_cycles = busy_total
        # drain outstanding writes
        free_abs = now + free
        return max(now, free_abs * 0.98)

    # ------------------------------------------------------------------
    def _simulate_inl2(self, summary: LoopSummary, trips: int, cpi: float,
                       stats: TimingStats) -> float:
        """In-L2 context: operands resident in L2; the 'memory' is the
        L1<->L2 path, unless non-temporal stores force main-memory
        traffic (which is why WNT is a bad idea in cache)."""
        mach = self.mach
        line = mach.l1.line
        epi = summary.elems_per_trip
        streams = [s for s in summary.streams.values()
                   if s.reads or s.writes]
        if not streams:
            return cpi * trips

        total_elems = trips * epi
        elem_size = max(s.elem_size for s in streams)
        elems_per_line = max(1, line // elem_size)
        n_lines = (total_elems + elems_per_line - 1) // elems_per_line
        cpu_per_line = cpi * elems_per_line / epi

        # L1<->L2 fill path and the (write-batch 4) memory bus that
        # non-temporal stores are forced onto
        l2_read_dur = line / mach.l2.fill_bpc
        l2_write_dur = (line * 0.5) / mach.l2.fill_bpc
        mem_wnt_dur = (line * mach.wnt_write_combine_factor) / mach.bus_bpc \
            + 2.0 * mach.bus_turnaround / 4
        # out-of-order execution overlaps roughly half of an L2 hit's
        # latency with the independent work of the same line's elements
        l2_lat = float(mach.l2.latency) * 0.5
        sb_slack = mach.store_buffer_slack
        wnt_rw_pen = mach.wnt_read_write_penalty

        states = [_Stream(s, line, mach) for s in streams]

        def step(k: int, l2_free: float, mem_free: float):
            t = cpu_per_line
            stall = 0.0
            l2_busy = 0.0
            mem_busy = 0.0
            pf_iss = demand = 0
            for st in states:
                # software prefetch moves the line L2 -> L1 early
                if st.pf_on:
                    tgt = k + st.dist_lines
                    if tgt < n_lines and tgt not in st.ready \
                            and not l2_free > t:
                        start = l2_free if l2_free > t else t
                        end = start + l2_read_dur
                        l2_free = end
                        l2_busy += l2_read_dur
                        pf_iss += 1
                        if not st.l2_only:
                            lat = t + l2_lat
                            st.ready[tgt] = end if end > lat else lat
                if st.reads:
                    r = st.ready.pop(k, None)
                    if r is not None and r <= t:
                        pass  # L1 hit, already costed in cpi
                    elif r is not None:
                        stall += r - t
                        t = r
                    else:
                        start = l2_free if l2_free > t else t
                        end = start + l2_read_dur
                        l2_free = end
                        l2_busy += l2_read_dur
                        lat = t + l2_lat
                        arrive = end if end > lat else lat
                        stall += arrive - t
                        t = arrive
                        demand += 1
                if st.writes:
                    if st.nontemporal:
                        # forced to memory: slow bus + WC behaviour
                        start = mem_free if mem_free > t else t
                        mem_free = start + mem_wnt_dur
                        mem_busy += mem_wnt_dur
                        if st.reads and wnt_rw_pen:
                            t += wnt_rw_pen
                            stall += wnt_rw_pen
                        backlog = mem_free - t
                        if backlog > sb_slack:
                            s = backlog - sb_slack
                            t += s
                            stall += s
                    else:
                        start = l2_free if l2_free > t else t
                        l2_free = start + l2_write_dur
                        l2_busy += l2_write_dur
            for st in states:
                ready = st.ready
                ready.pop(k, None)
                if ready:
                    for kk in ready:
                        ready[kk] -= t
            return t, l2_free - t, mem_free - t, stall, l2_busy, mem_busy, \
                pf_iss, demand

        def signature(k: int, l2_free: float, mem_free: float):
            parts: List = [l2_free, mem_free]
            for st in states:
                ready = st.ready
                parts.append(tuple(sorted(
                    (kk - k, v) for kk, v in ready.items())) if ready else ())
            return tuple(parts)

        now = 0.0
        l2_free = 0.0
        mem_free = 0.0
        stall_total = 0.0
        busy_total = 0.0
        c_iss = c_dem = 0

        max_dist = max((st.dist_lines for st in states if st.pf_on),
                       default=0)
        steady_end = n_lines - (max_dist + 1)
        probing = self.fast and n_lines >= _FAST_MIN_LINES and steady_end > 1
        seen: Dict[Tuple, int] = {}

        k = 0
        while k < n_lines:
            if probing and k < steady_end:
                sig = signature(k, l2_free, mem_free)
                prev = seen.get(sig)
                if prev is None:
                    if len(seen) < _PROBE_CAP:
                        seen[sig] = k
                    else:
                        probing = False
                else:
                    period = k - prev
                    probing = False
                    if k + period <= steady_end:
                        deltas: List[float] = []
                        stalls: List[float] = []
                        busys: List[float] = []
                        p_iss = p_dem = 0
                        for _ in range(period):
                            d, l2_free, mem_free, s, lb, mb, a1, a2 = \
                                step(k, l2_free, mem_free)
                            now += d
                            stall_total += s
                            busy_total += lb + mb
                            deltas.append(d)
                            stalls.append(s)
                            busys.append(lb + mb)
                            p_iss += a1
                            p_dem += a2
                            k += 1
                        c_iss += p_iss
                        c_dem += p_dem
                        if signature(k, l2_free, mem_free) == sig:
                            full = (steady_end - k) // period
                            if full > 0:
                                rep = full * period
                                now = _replay_sum(now, deltas, full)
                                stall_total = _replay_sum(
                                    stall_total, stalls, full)
                                busy_total = _replay_sum(
                                    busy_total, busys, full)
                                c_iss += p_iss * full
                                c_dem += p_dem * full
                                _shift_ready(states, rep)
                                k += rep
                                stats.lines_extrapolated = rep
                                stats.steady_period = period
                    continue
            d, l2_free, mem_free, s, lb, mb, a1, a2 = \
                step(k, l2_free, mem_free)
            now += d
            stall_total += s
            busy_total += lb + mb
            c_iss += a1
            c_dem += a2
            k += 1

        stats.stall_cycles += stall_total
        stats.prefetch_issued += c_iss
        stats.demand_misses += c_dem
        stats.lines_processed = n_lines
        stats.bus_busy_cycles = busy_total
        mem_abs = now + mem_free
        l2_abs = now + l2_free
        return max(now, mem_abs * 0.98, l2_abs * 0.9)


def time_kernel(summary: LoopSummary, mach: MachineConfig,
                context: Context, n: int, fast: bool = True) -> TimingResult:
    """Convenience wrapper: one invocation of the timing model."""
    return LoopTimer(mach, context, fast=fast).time(summary, n)
