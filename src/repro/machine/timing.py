"""Cycle-approximate timing model for streaming loop kernels.

Two coupled components:

1. **Steady-state CPU bound** (:func:`cpu_cycles_per_trip`): the loop
   body's cycles per trip is the max of
   - the front-end issue bound (uops / issue width, throttled when the
     body exceeds the machine's decode budget — the P4E trace cache
     effect that caps useful unrolling),
   - per-execution-unit throughput bounds (loads, stores, FP add, FP
     mul, integer, branch),
   - the loop-carried dependence bound: floating point accumulators
     form ``adds_per_trip x latency`` recurrence chains, divided across
     the accumulators that accumulator expansion (AE) created.

2. **Line-granular memory simulation** (:class:`LoopTimer`): walks the
   arrays' cache lines through a model of L1/L2, a finite-bandwidth
   memory bus with read/write turnaround penalties, a hardware stream
   prefetcher, and software prefetch that is **dropped when the bus is
   busy** (section 2.2.3: "many architectures discard prefetches when
   they are issued while the bus is busy").  Non-temporal stores follow
   the per-machine policies of :mod:`repro.machine.config`.

The result is ``cycles`` for one kernel invocation; the timer layer
converts to seconds/MFLOPS.  Absolute numbers are model numbers — the
reproduction targets *relative* behaviour (see DESIGN.md section 3).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir import Instruction, Mem, Opcode, PrefetchHint
from ..ir.operands import is_reg
from .config import MachineConfig
from .loopinfo import LoopSummary, StreamInfo


class Context(enum.Enum):
    """Operand residency context (the paper times both)."""

    OUT_OF_CACHE = "out-of-cache"   # N = 80000, cold caches
    IN_L2 = "in-L2-cache"           # N = 1024, operands resident in L2

    def __str__(self) -> str:
        return self.value


@dataclass
class TimingStats:
    cpu_cycles: float = 0.0
    stall_cycles: float = 0.0
    bus_busy_cycles: float = 0.0
    prefetch_issued: int = 0
    prefetch_dropped: int = 0
    prefetch_wasted: int = 0
    demand_misses: int = 0
    hw_prefetches: int = 0
    lines_processed: int = 0


@dataclass
class TimingResult:
    cycles: float
    machine: str
    context: Context
    n: int
    stats: TimingStats = field(default_factory=TimingStats)

    def seconds(self, freq_hz: float) -> float:
        return self.cycles / freq_hz

    def mflops(self, flops: float, freq_hz: float) -> float:
        secs = self.seconds(freq_hz)
        return flops / secs / 1e6 if secs > 0 else 0.0


# ---------------------------------------------------------------------------
# CPU-side steady state

def cpu_cycles_per_trip(body: List[Tuple[Instruction, float]],
                        mach: MachineConfig) -> float:
    """Cycles one loop trip needs, ignoring cache misses (L1-hit world)."""
    uops = 0.0
    unit_cycles: Dict[str, float] = {}
    # accumulator chains: dst register also appears in srcs for an FP add
    chain_cycles: Dict[object, float] = {}
    ptr_chain: Dict[object, float] = {}

    for instr, w in body:
        cls = instr.timing_class
        ec = mach.exec_class(cls)
        mem_operand = (not instr.is_load and not instr.is_store
                       and instr.op is not Opcode.PREFETCH
                       and any(isinstance(s, Mem) for s in instr.srcs))
        n_uops = ec.uops + (1 if mem_operand else 0)
        uops += w * n_uops
        if ec.unit != "any":
            unit_cycles[ec.unit] = unit_cycles.get(ec.unit, 0.0) + w * ec.rthru
        if mem_operand:
            # the folded load occupies the load unit too
            ldc = mach.exec_class("ld")
            unit_cycles["load"] = unit_cycles.get("load", 0.0) + w * ldc.rthru

        # loop-carried floating point accumulation chains
        if instr.op in (Opcode.FADD, Opcode.FSUB, Opcode.VADD, Opcode.VSUB,
                        Opcode.FMAX, Opcode.VMAX):
            if instr.dst is not None and any(
                    is_reg(s) and s == instr.dst for s in instr.srcs):
                chain_cycles[instr.dst] = (chain_cycles.get(instr.dst, 0.0)
                                           + w * ec.lat)
        # pointer/counter update chains (latency 1 per trip, rarely binding)
        if instr.op in (Opcode.ADD, Opcode.SUB):
            if instr.dst is not None and any(
                    is_reg(s) and s == instr.dst for s in instr.srcs):
                ptr_chain[instr.dst] = ptr_chain.get(instr.dst, 0.0) + w * ec.lat

    width = mach.issue_width if uops <= mach.decode_budget else mach.decode_width
    issue_bound = uops / width
    unit_bound = max(unit_cycles.values(), default=0.0)
    dep_bound = max(list(chain_cycles.values()) + list(ptr_chain.values()),
                    default=0.0)
    return max(1.0, issue_bound, unit_bound, dep_bound)


def prologue_cycles(summary: LoopSummary, mach: MachineConfig) -> float:
    """Rough once-per-call cost of code outside the tuned loop."""
    return 10.0 + summary.prologue_uop_estimate / mach.issue_width * 2.0


# ---------------------------------------------------------------------------
# memory-side simulation

class _Bus:
    """Finite-bandwidth memory bus.

    Reads stream back-to-back.  Writes are assumed to drain from the
    write/WC buffers opportunistically, so they do not force the read
    stream to re-arbitrate: instead each buffered write line carries an
    amortized share of two bus turnarounds per ``write_batch`` lines.
    A smaller batch (P4E FSB) makes interleaved read/write streams pay
    more — the effect AMD's block-fetch technique exploits (and that the
    hand-tuned dcopy* baseline models with a larger effective batch).
    """

    __slots__ = ("free_at", "bpc", "turnaround", "write_batch",
                 "busy_total")

    def __init__(self, bpc: float, turnaround: int, write_batch: int = 4):
        self.free_at = 0.0
        self.bpc = bpc
        self.turnaround = turnaround
        self.write_batch = max(1, write_batch)
        self.busy_total = 0.0

    def transfer(self, now: float, nbytes: float, direction: str,
                 batch: Optional[int] = None) -> Tuple[float, float]:
        """Schedule a transfer; returns (start, end).  ``end`` is when the
        full line has arrived (for reads, data-available time)."""
        start = max(now, self.free_at)
        dur = nbytes / self.bpc
        if direction == "write":
            dur += 2.0 * self.turnaround / (batch or self.write_batch)
        end = start + dur
        self.free_at = end
        self.busy_total += dur
        return start, end

    def is_busy(self, now: float) -> bool:
        return self.free_at > now


class LoopTimer:
    """Times one kernel invocation of N elements on a machine/context."""

    def __init__(self, mach: MachineConfig, context: Context):
        self.mach = mach
        self.context = context

    # ------------------------------------------------------------------
    def time(self, summary: LoopSummary, n: int) -> TimingResult:
        mach = self.mach
        stats = TimingStats()
        if not summary.has_loop or n <= 0:
            cycles = prologue_cycles(summary, mach)
            return TimingResult(cycles, mach.name, self.context, n, stats)

        epi = summary.elems_per_trip
        trips = n // epi
        remainder = n - trips * epi
        cpi = cpu_cycles_per_trip(summary.body, mach)
        stats.cpu_cycles = cpi * trips

        cycles = prologue_cycles(summary, mach)
        if trips > 0:
            if self.context is Context.OUT_OF_CACHE:
                cycles += self._simulate_ooc(summary, trips, cpi, stats)
            else:
                cycles += self._simulate_inl2(summary, trips, cpi, stats)

        # remainder elements run through the scalar cleanup loop
        if remainder > 0:
            if summary.cleanup:
                ccpi = cpu_cycles_per_trip(summary.cleanup, mach)
            else:
                ccpi = cpi / max(1, epi)
            cycles += remainder * max(1.0, ccpi)

        return TimingResult(cycles, mach.name, self.context, n, stats)

    # ------------------------------------------------------------------
    def _simulate_ooc(self, summary: LoopSummary, trips: int, cpi: float,
                      stats: TimingStats) -> float:
        """Out-of-cache: line-granular walk against the memory bus."""
        mach = self.mach
        line = mach.l1.line
        epi = summary.elems_per_trip
        streams = [s for s in summary.streams.values()
                   if s.reads or s.writes]
        if not streams:
            return cpi * trips

        total_elems = trips * epi
        elem_size = max(s.elem_size for s in streams)
        elems_per_line = max(1, line // elem_size)
        n_lines = (total_elems + elems_per_line - 1) // elems_per_line
        cpu_per_line = cpi * elems_per_line / epi

        bus = _Bus(mach.bus_bpc, mach.bus_turnaround,
                   summary.write_batch_override or mach.write_batch_lines)
        mem_lat = mach.mem_latency
        l2_hop = mach.l2.latency * 0.5
        hw_slack = mach.mem_latency * 0.4
        # software prefetches are dropped when the memory request queue
        # is pathologically saturated.  On a 100%-utilized bus the backlog
        # saw-tooths up to ~2-3x the memory latency in steady state, so
        # the threshold sits well above that: the bandwidth floor — not
        # the drop rule — is what limits prefetch on bus-bound kernels.
        pf_slack = mach.mem_latency * 6.0

        # per-stream state
        class _S:
            __slots__ = ("info", "ready", "dist_lines", "l2_only", "wasted",
                         "hw_streak", "cap_ok", "pf_on")

            def __init__(self, info: StreamInfo):
                self.info = info
                self.ready: Dict[int, float] = {}
                hint = info.prefetch_hint
                self.pf_on = hint is not None and info.prefetch_dist > 0
                self.dist_lines = max(1, info.prefetch_dist // line)
                self.l2_only = (hint in mach.prefetch_l2_only) if hint else False
                cap = mach.prefetch_capacity.get(hint, 1 << 30) if hint else 0
                self.cap_ok = info.prefetch_dist <= cap
                self.hw_streak = 0

        states = [_S(s) for s in streams]
        now = 0.0

        for k in range(n_lines):
            now += cpu_per_line

            # --- software prefetch issue (one new line per stream/step)
            for st in states:
                if not st.pf_on:
                    continue
                tgt = k + st.dist_lines
                if tgt >= n_lines or tgt in st.ready:
                    continue
                if mach.prefetch_drop_when_busy and bus.free_at > now + pf_slack:
                    stats.prefetch_dropped += 1
                    continue
                _, end = bus.transfer(now, line, "read")
                arrive = max(end, now + mem_lat)
                stats.prefetch_issued += 1
                if st.cap_ok:
                    st.ready[tgt] = arrive
                else:
                    # fetched but evicted before use: pure waste
                    stats.prefetch_wasted += 1
                # the prefetch's own miss stream trains the hardware
                # prefetcher, which runs ahead of it within the page
                lines_per_page = max(1, mach.hw_prefetch_page // line)
                for j in range(1, mach.hw_prefetch_ahead + 1):
                    t2 = tgt + j
                    if t2 // lines_per_page != tgt // lines_per_page:
                        break
                    if t2 < n_lines and t2 not in st.ready \
                            and bus.free_at - now < hw_slack:
                        _, e2 = bus.transfer(now, line, "read")
                        st.ready[t2] = max(e2, now + mem_lat)
                        stats.hw_prefetches += 1

            # --- demand reads
            for st in states:
                info = st.info
                if not info.reads:
                    continue
                ready = st.ready.pop(k, None)
                if ready is not None:
                    if ready > now:
                        stats.stall_cycles += ready - now
                        now = ready
                    if st.l2_only:
                        now += l2_hop  # line parked in L2; pay the hop
                else:
                    st.hw_streak += 1
                    _, end = bus.transfer(now, line, "read")
                    arrive = max(end, now + mem_lat)
                    stats.demand_misses += 1
                    stats.stall_cycles += arrive - now
                    now = arrive
                # hardware stream prefetcher: once a stream locks, it keeps
                # a running window of `hw_prefetch_ahead` lines in flight,
                # topped up as lines are consumed
                if st.hw_streak >= mach.hw_prefetch_trigger:
                    lines_per_page = max(1, mach.hw_prefetch_page // line)
                    for j in range(1, mach.hw_prefetch_ahead + 1):
                        t2 = k + j
                        if t2 // lines_per_page != k // lines_per_page:
                            break  # HW prefetch stops at the page boundary
                        if t2 < n_lines and t2 not in st.ready:
                            # low-priority: tolerate a modest backlog but
                            # back off when the bus is saturated
                            if bus.free_at - now < hw_slack:
                                _, e2 = bus.transfer(now, line, "read")
                                st.ready[t2] = max(e2, now + mem_lat)
                                stats.hw_prefetches += 1

            # --- stores
            for st in states:
                info = st.info
                if not info.writes:
                    continue
                if info.nontemporal:
                    nbytes = line * mach.wnt_write_combine_factor
                    _, end = bus.transfer(now, nbytes, "write")
                    if info.reads and mach.wnt_read_write_penalty:
                        now += mach.wnt_read_write_penalty
                        stats.stall_cycles += mach.wnt_read_write_penalty
                else:
                    covered = info.reads or st.ready.pop(k, None) is not None
                    if not covered:
                        # read-for-ownership fetch (store-buffer hidden,
                        # but it consumes the bus)
                        bus.transfer(now, line, "read")
                        stats.demand_misses += 1
                    # dirty writeback when the line retires
                    bus.transfer(now, line * mach.writeback_factor, "write")
                # stores stall only when the bus backlog exceeds the
                # store buffer's tolerance
                backlog = bus.free_at - now
                if backlog > mach.store_buffer_slack:
                    stall = backlog - mach.store_buffer_slack
                    stats.stall_cycles += stall
                    now += stall

        stats.lines_processed = n_lines
        stats.bus_busy_cycles = bus.busy_total
        # drain outstanding writes
        return max(now, bus.free_at * 0.98)

    # ------------------------------------------------------------------
    def _simulate_inl2(self, summary: LoopSummary, trips: int, cpi: float,
                       stats: TimingStats) -> float:
        """In-L2 context: operands resident in L2; the 'memory' is the
        L1<->L2 path, unless non-temporal stores force main-memory
        traffic (which is why WNT is a bad idea in cache)."""
        mach = self.mach
        line = mach.l1.line
        epi = summary.elems_per_trip
        streams = [s for s in summary.streams.values()
                   if s.reads or s.writes]
        if not streams:
            return cpi * trips

        total_elems = trips * epi
        elem_size = max(s.elem_size for s in streams)
        elems_per_line = max(1, line // elem_size)
        n_lines = (total_elems + elems_per_line - 1) // elems_per_line
        cpu_per_line = cpi * elems_per_line / epi

        l2bus = _Bus(mach.l2.fill_bpc, 0)
        membus = _Bus(mach.bus_bpc, mach.bus_turnaround)
        # out-of-order execution overlaps roughly half of an L2 hit's
        # latency with the independent work of the same line's elements
        l2_lat = float(mach.l2.latency) * 0.5
        now = 0.0

        prefetched: List[Dict[int, float]] = [dict() for _ in streams]
        for k in range(n_lines):
            now += cpu_per_line
            for idx, info in enumerate(streams):
                # software prefetch moves the line L2 -> L1 early
                if info.prefetch_hint is not None and info.prefetch_dist > 0:
                    tgt = k + max(1, info.prefetch_dist // line)
                    if tgt < n_lines and tgt not in prefetched[idx]:
                        hint = info.prefetch_hint
                        l2_only = hint in mach.prefetch_l2_only
                        if not l2bus.is_busy(now):
                            _, end = l2bus.transfer(now, line, "read")
                            stats.prefetch_issued += 1
                            if not l2_only:
                                prefetched[idx][tgt] = max(end, now + l2_lat)
                if info.reads:
                    ready = prefetched[idx].pop(k, None)
                    if ready is not None and ready <= now:
                        pass  # L1 hit, already costed in cpi
                    elif ready is not None:
                        stats.stall_cycles += ready - now
                        now = ready
                    else:
                        _, end = l2bus.transfer(now, line, "read")
                        arrive = max(end, now + l2_lat)
                        stats.stall_cycles += arrive - now
                        now = arrive
                        stats.demand_misses += 1
                if info.writes:
                    if info.nontemporal:
                        # forced to memory: slow bus + WC behaviour
                        _, end = membus.transfer(
                            now, line * mach.wnt_write_combine_factor, "write")
                        if info.reads and mach.wnt_read_write_penalty:
                            now += mach.wnt_read_write_penalty
                            stats.stall_cycles += mach.wnt_read_write_penalty
                        backlog = membus.free_at - now
                        if backlog > mach.store_buffer_slack:
                            stall = backlog - mach.store_buffer_slack
                            now += stall
                            stats.stall_cycles += stall
                    else:
                        l2bus.transfer(now, line * 0.5, "write")

        stats.lines_processed = n_lines
        stats.bus_busy_cycles = l2bus.busy_total + membus.busy_total
        return max(now, membus.free_at * 0.98, l2bus.free_at * 0.9)


def time_kernel(summary: LoopSummary, mach: MachineConfig,
                context: Context, n: int) -> TimingResult:
    """Convenience wrapper: one invocation of the timing model."""
    return LoopTimer(mach, context).time(summary, n)
