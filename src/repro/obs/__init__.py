"""repro.obs — the end-to-end instrumentation subsystem.

The paper sells ifko on *explainability*: section 2.2.2's analysis
phase and Figure 7's transform-by-transform decomposition show exactly
where each cycle went.  This package gives the reproduction the same
depth of introspection across every layer:

* the **FKO pipeline** records a span per transform pass (wall time,
  applied/no-op status, IR deltas, per-transform detail counters) on
  the active :class:`Collector`;
* the **timing model** surfaces its internal cycle accounting as a
  per-evaluation attribution (compute vs memory-stall vs
  prefetch-waste — see ``TimingResult.attribution``);
* the **search engine** folds both into trace schema v2 (``pass`` and
  ``attribution`` events, enabled with ``TuneConfig(observe=True)`` /
  ``--observe``);
* two consumers read the trace back: :func:`export_perfetto` renders a
  whole tuning batch as a Chrome-trace-event/Perfetto span timeline,
  and :func:`render_report` generates the markdown run report behind
  ``repro report``.

Everything is **inert when disabled**: no collector installed means
instrumentation points cost one module-global read and a ``None``
check (guarded in CI to ≤ 3% of eval throughput), and enabling it is
provably non-perturbing — cycle counts, eval-cache keys and searcher
decisions are bit-identical either way (``tests/test_obs.py``).
"""

from . import metrics
from .core import Collector, PassSpan, active, count, enabled, use
from .curves import (aggregate_curves, collect_curves, curves_document,
                     render_curves_markdown)
from .irstats import IRSnapshot, ir_snapshot
from .metrics import MetricsRegistry
from .perfdiff import diff_metrics, load_artifact, render_diff
from .perfetto import export_perfetto, write_perfetto
from .report import render_report

__all__ = ["Collector", "PassSpan", "active", "count", "enabled", "use",
           "IRSnapshot", "ir_snapshot", "export_perfetto",
           "write_perfetto", "render_report", "metrics",
           "MetricsRegistry", "collect_curves", "aggregate_curves",
           "curves_document", "render_curves_markdown", "diff_metrics",
           "render_diff", "load_artifact"]
