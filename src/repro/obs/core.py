"""The collector: hierarchical spans, monotonic counters, metrics.

One :class:`Collector` records everything one observed unit of work
(typically a single compile+time evaluation) produced:

* **pass records** — the FKO pipeline opens a :class:`PassSpan` around
  every transform pass it executes; the span captures wall time,
  applied/no-op status, the IR deltas the pass caused (instruction
  count, basic blocks, virtual-register pressure) and any detail
  counters the transform bumped while it ran;
* **counters** — monotonic named counts (``obs.count("spill_loads", n)``
  from inside a transform); counter *deltas* over a pass are folded
  into that pass's record, so each transform's fine-grained numbers
  land next to its wall time;
* **metrics** — a per-run registry of last-write-wins gauges
  (``collector.gauge("cycles", c)``) for whole-run facts that are not
  monotonic counts.

Instrumented code never holds a collector; it asks :func:`active` for
the installed one and does nothing when there is none.  That makes the
whole subsystem inert when disabled: the per-pass cost is one module
global read and a ``None`` check, and no snapshotting, timing or
allocation happens.  Installation is explicit and scoped::

    with obs.use(Collector()) as col:
        compiled = fko.compile(hil, params)
    col.passes   # -> one record per executed pipeline pass

Nothing here is thread-local by design: the engine observes inside
worker *processes* (or the serial parent), never from two threads of
one interpreter, and a plain module global keeps the disabled-mode
check as cheap as Python allows.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, List, Optional

from .irstats import IRSnapshot, ir_snapshot

_ACTIVE: Optional["Collector"] = None

_NO_IR = IRSnapshot(0, 0, 0)


def active() -> Optional["Collector"]:
    """The installed collector, or None when observation is disabled."""
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


@contextmanager
def use(collector: "Collector"):
    """Install ``collector`` for the duration of the block (re-entrant:
    the previous collector, if any, is restored on exit)."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = collector
    try:
        yield collector
    finally:
        _ACTIVE = prev


def count(name: str, by: int = 1) -> None:
    """Bump a monotonic counter on the active collector (no-op when
    observation is disabled — this is the one-liner transforms use)."""
    col = _ACTIVE
    if col is not None:
        col.counters[name] = col.counters.get(name, 0) + by


class Collector:
    """Accumulates one observed unit of work.  See the module docstring."""

    __slots__ = ("passes", "counters", "metrics")

    def __init__(self):
        self.passes: List[Dict] = []
        self.counters: Dict[str, float] = {}
        self.metrics: Dict[str, float] = {}

    # -- counters / metrics --------------------------------------------
    def count(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by

    def gauge(self, name: str, value: float) -> None:
        """Record a last-write-wins metric (not monotonic)."""
        self.metrics[name] = value

    # -- pass spans -----------------------------------------------------
    def pass_span(self, name: str, fn=None) -> "PassSpan":
        """Open a span around one transform pass over ``fn``.  Passing
        ``fn=None`` records a span with zero IR stats — for work that
        happens before any IR exists (e.g. source-level tiling)."""
        return PassSpan(self, name, fn)

    def snapshot(self) -> Dict:
        """A plain-data view (what a worker ships back to the parent)."""
        return {"passes": list(self.passes),
                "counters": dict(self.counters),
                "metrics": dict(self.metrics)}


class PassSpan:
    """Context manager recording one transform pass.

    Captures wall time, the IR stats delta (instructions, blocks, vreg
    pressure) and the detail-counter delta accumulated while the pass
    ran.  ``applied`` defaults to True; the pipeline overrides it for
    passes that report a no-op.
    """

    __slots__ = ("col", "name", "fn", "applied",
                 "_before", "_counters0", "_t0")

    def __init__(self, col: Collector, name: str, fn):
        self.col = col
        self.name = name
        self.fn = fn
        self.applied = True

    def __enter__(self) -> "PassSpan":
        self._before = _NO_IR if self.fn is None else ir_snapshot(self.fn)
        self._counters0 = dict(self.col.counters)
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = perf_counter() - self._t0
        after = _NO_IR if self.fn is None else ir_snapshot(self.fn)
        before = self._before
        base = self._counters0
        detail = {k: v - base.get(k, 0)
                  for k, v in self.col.counters.items()
                  if v != base.get(k, 0)}
        self.col.passes.append({
            "pass": self.name,
            "wall": wall,
            "applied": bool(self.applied) and exc_type is None,
            "instrs": after.instrs,
            "blocks": after.blocks,
            "vregs": after.vregs,
            "d_instrs": after.instrs - before.instrs,
            "d_blocks": after.blocks - before.blocks,
            "d_vregs": after.vregs - before.vregs,
            "detail": detail,
        })
        return False
