"""Anytime-performance curves — ``repro curves``.

ROADMAP item 1 names the *fixed-budget anytime-performance curve* as
the acceptance bar for every search strategy: at each point of the
budget, how good is the best kernel the strategy could hand you if you
stopped it right there?  This module derives that curve from a search
trace and renders it per strategy so strategies are compared at equal
budget, not just at the finish line.

Two sources, one curve:

* **curve events** (schema v2 addition, one per ``tell``) carry the
  engine's own best-so-far samples — ``evaluations`` charged and
  ``best_cycles`` after each ask/tell round;
* for traces recorded before curve events existed, the same trajectory
  is *derived* at evaluation granularity from the ``eval`` and
  ``cache-hit`` events in file order (both charge the searcher's
  budget, so the derived x-axis matches the searcher's accounting).

Everything here consumes any iterable of events — a materialized
:class:`~repro.search.trace.TraceEvents` list or a streaming
:class:`~repro.search.trace.TraceStream` — in a single pass.

Aggregation normalizes each job's curve to *ratio of best known*
(best cycles any strategy reached on that job, over the strategy's
best-so-far at the checkpoint — 1.0 means "already at the best known
answer"), then averages across jobs at power-of-two budget
checkpoints.  That is the ELAPS-style comparative view: one row per
strategy, comparable across kernels with wildly different absolute
cycle counts.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["collect_curves", "aggregate_curves", "render_curves_markdown",
           "curves_document"]


def collect_curves(events: Iterable[Dict]) -> "OrderedDict[str, Dict]":
    """One pass over a trace -> per-(job, strategy) convergence curves.

    Returns an ordered dict keyed ``job@strategy`` (suffixed ``#2``,
    ``#3``, ... when the same pair tunes repeatedly in one trace).
    Each entry carries:

    * ``points`` — eval-granularity improvement steps
      ``[[budget_charged, best_cycles], ...]`` (budget counts real
      evaluations *and* cache hits, matching the searcher's charging);
    * ``tells`` — the engine's per-tell curve-event samples
      ``[[evaluations, best_cycles], ...]`` (empty for pre-curve
      traces);
    * ``evaluations`` — total budget charged;
    * ``best_cycles`` — the final best.
    """
    out: "OrderedDict[str, Dict]" = OrderedDict()
    active: Dict[str, Dict] = {}    # job key -> open entry

    def open_entry(job: str, strategy: str, seed) -> Dict:
        base = f"{job}@{strategy or '?'}"
        key, n = base, 1
        while key in out:
            n += 1
            key = f"{base}#{n}"
        entry = out[key] = {"job": job, "strategy": strategy or "?",
                            "seed": seed, "points": [], "tells": [],
                            "evaluations": 0, "best_cycles": None}
        return entry

    for ev in events:
        kind = ev.get("event")
        job = ev.get("job")
        if not job:
            continue
        if kind == "job-start":
            active[job] = open_entry(job, ev.get("strategy"),
                                     ev.get("seed"))
            continue
        entry = active.get(job)
        if entry is None:
            # trace without job-start (hand-built or truncated): open
            # an anonymous entry so the curve is still recovered
            entry = active[job] = open_entry(job, ev.get("strategy"),
                                             ev.get("seed"))
        if kind in ("eval", "cache-hit"):
            entry["evaluations"] += 1
            c = ev.get("cycles")
            if isinstance(c, (int, float)) and (
                    entry["best_cycles"] is None
                    or c < entry["best_cycles"]):
                entry["best_cycles"] = float(c)
                entry["points"].append([entry["evaluations"], float(c)])
        elif kind == "curve":
            b = ev.get("best_cycles")
            n = ev.get("evaluations")
            if isinstance(b, (int, float)) and isinstance(n, (int, float)):
                entry["tells"].append([int(n), float(b)])
        elif kind in ("job-end", "job-error"):
            active.pop(job, None)
    # curve events carry the budget/best trajectory too, so a trace
    # holding only them (no per-eval events) still aggregates to
    # nonzero checkpoints instead of the zero-budget "no data"
    # degenerate.  Folded only where no eval/cache-hit events were
    # seen: when both sources are present the per-eval counter is the
    # ground truth, and mixing them would double-count the budget.
    for entry in out.values():
        if entry["evaluations"]:
            continue
        for n, b in entry["tells"]:
            if n > entry["evaluations"]:
                entry["evaluations"] = int(n)
            if math.isfinite(b) and (entry["best_cycles"] is None
                                     or b < entry["best_cycles"]):
                entry["best_cycles"] = float(b)
    return out


def _best_at(points: List[List[float]], budget: int) -> Optional[float]:
    """Step-function lookup: the best value reached within ``budget``."""
    best = None
    for n, value in points:
        if n > budget:
            break
        best = value
    return best


def _checkpoints(max_budget: int) -> List[int]:
    """Power-of-two budget checkpoints, always ending at the budget."""
    out, k = [], 1
    while k < max_budget:
        out.append(k)
        k *= 2
    out.append(max_budget)
    return out


def aggregate_curves(curves: Dict[str, Dict],
                     checkpoints: Optional[List[int]] = None) -> Dict:
    """Cross-job, per-strategy anytime summary.

    For every job, the *best known* is the lowest cycle count any
    strategy reached at full budget.  At each checkpoint a strategy
    scores ``best_known / best_so_far`` on each job (in (0, 1], higher
    is better, 1.0 = converged to the best known), averaged over the
    jobs where it had charged at least one evaluation by then.
    """
    by_job_best: Dict[str, float] = {}
    for entry in curves.values():
        b = entry.get("best_cycles")
        if b is None:
            continue
        job = entry["job"]
        if job not in by_job_best or b < by_job_best[job]:
            by_job_best[job] = b

    max_budget = max((e["evaluations"] for e in curves.values()),
                     default=0)
    if not max_budget:
        return {"checkpoints": [], "strategies": {}, "jobs": 0}
    points = checkpoints or _checkpoints(max_budget)

    strategies: "OrderedDict[str, Dict]" = OrderedDict()
    for entry in curves.values():
        strategies.setdefault(entry["strategy"],
                              {"entries": []})["entries"].append(entry)

    table: "OrderedDict[str, Dict]" = OrderedDict()
    for strategy, group in strategies.items():
        row = {}
        for k in points:
            ratios = []
            for entry in group["entries"]:
                curve = entry["points"] or entry["tells"]
                best_k = _best_at(curve, k)
                best_known = by_job_best.get(entry["job"])
                if best_k and best_known and math.isfinite(best_k):
                    ratios.append(best_known / best_k)
            row[k] = (sum(ratios) / len(ratios)) if ratios else None
        table[strategy] = {"ratio_of_best": row,
                           "jobs": len(group["entries"])}
    return {"checkpoints": points, "strategies": table,
            "jobs": len(by_job_best)}


def render_curves_markdown(curves: Dict[str, Dict],
                           aggregate: Optional[Dict] = None,
                           title: str = "Anytime performance") -> str:
    """Markdown: the per-strategy anytime table plus each curve's
    improvement steps."""
    aggregate = aggregate or aggregate_curves(curves)
    lines = [f"# {title}", ""]
    points = aggregate.get("checkpoints") or []
    if points and aggregate["strategies"]:
        lines += [f"Mean ratio-of-best-known across "
                  f"{aggregate['jobs']} job(s) "
                  f"(1.000 = best answer any strategy found):", ""]
        headers = ["Strategy"] + [f"@{k}" for k in points] + ["Jobs"]
        rows = []
        for strategy, row in aggregate["strategies"].items():
            cells = [strategy]
            for k in points:
                r = row["ratio_of_best"].get(k)
                cells.append("-" if r is None else f"{r:.3f}")
            cells.append(str(row["jobs"]))
            rows.append(cells)
        lines += ["| " + " | ".join(headers) + " |",
                  "|" + "|".join("---" for _ in headers) + "|"]
        lines += ["| " + " | ".join(r) + " |" for r in rows]
        lines.append("")
    else:
        lines += ["No convergence data in this trace.", ""]
    for key, entry in curves.items():
        steps = entry["points"] or entry["tells"]
        lines.append(f"## {key}")
        lines.append("")
        lines.append(f"- budget charged: {entry['evaluations']}  "
                     f"best: {entry['best_cycles']}")
        if steps:
            lines.append("- improvements: "
                         + "  ".join(f"{n}→{c:.0f}cy" for n, c in steps))
        lines.append("")
    return "\n".join(lines)


def curves_document(curves: Dict[str, Dict],
                    aggregate: Optional[Dict] = None) -> Dict:
    """The JSON artifact behind ``repro curves --json`` (and the
    ``bench_strategies.py`` curves upload)."""
    return {"version": 1,
            "curves": {k: dict(v) for k, v in curves.items()},
            "aggregate": aggregate or aggregate_curves(curves)}
