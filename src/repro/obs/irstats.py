"""Cheap structural IR statistics for pass-level telemetry.

A :class:`PassSpan` snapshots a function before and after each
transform pass; the *delta* is what the pass did to the code shape —
how many instructions unrolling replicated, how many blocks a CFG
cleanup removed, how much virtual-register pressure accumulator
expansion added.  Only executed when a collector is installed, so the
walk's cost never touches the disabled-mode hot path.

"vreg pressure" here is the static count of distinct virtual registers
referenced anywhere in the function (destinations, sources, and the
base/index registers of memory operands) — a deliberate proxy: the true
max-live number is the register allocator's business, and its
spills/reloads are reported separately through the regalloc pass's
detail counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.operands import Mem, VReg


@dataclass(frozen=True)
class IRSnapshot:
    """Structural size of one function at a point in the pipeline."""

    instrs: int
    blocks: int
    vregs: int


def ir_snapshot(fn) -> IRSnapshot:
    """Count instructions, basic blocks and distinct virtual registers."""
    n_instrs = 0
    vregs = set()
    add = vregs.add
    for block in fn.blocks:
        n_instrs += len(block.instrs)
        for instr in block.instrs:
            dst = instr.dst
            if type(dst) is VReg:
                add(dst)
            elif type(dst) is Mem:
                if type(dst.base) is VReg:
                    add(dst.base)
                if type(dst.index) is VReg:
                    add(dst.index)
            for src in instr.srcs:
                if type(src) is VReg:
                    add(src)
                elif type(src) is Mem:
                    if type(src.base) is VReg:
                        add(src.base)
                    if type(src.index) is VReg:
                        add(src.index)
    return IRSnapshot(instrs=n_instrs, blocks=len(fn.blocks),
                      vregs=len(vregs))
