"""Process-wide metrics: counters, gauges and histograms with labels.

This is the second observability layer, above :mod:`repro.obs.core`'s
per-evaluation collector.  A :class:`Collector` answers "what happened
inside *this* compile+time evaluation"; the metrics registry answers
"what is this *process* doing over time" — evals/sec, cache hit rates,
queue depth, per-pass wall-time distributions — the numbers a serving
fleet scrapes and alerts on.

The design follows the collector's inert-when-disabled contract:

* a single module global ``_ENABLED`` gates every hot-path helper, so
  with metrics off the cost of an instrumentation point is one global
  read and a boolean check (the same CI bench guard that holds the
  collector to ≤ 3% of eval throughput also covers the enabled
  registry);
* instrumented code never holds the registry; it calls the module-level
  helpers (:func:`inc`, :func:`set_gauge`, :func:`observe`) which no-op
  when disabled;
* series are keyed by ``(name, sorted(label items))`` so one metric
  name fans out over label values exactly like Prometheus expects.

Scope is **per process** by design.  The engine records its counters
parent-side (in ``_Evaluator``), so engine-level metrics are complete
even under process-pool fan-out; per-pass compile histograms are fed
from inside whatever process runs the pipeline, so under ``jobs>1``
worker-side compiles land in the worker's registry, not the parent's.
The daemon — the primary scraping target — compiles in-process workers
it owns, and its request/queue/budget metrics are all parent-side.

Export formats: :func:`render_prometheus` emits the Prometheus text
exposition format (``GET /v1/metrics`` on the daemon), and
:func:`snapshot` returns a plain-JSON dict (``repro metrics --json``).
Nothing here needs anything outside the stdlib.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "MetricsRegistry", "enable", "disable", "enabled", "registry",
    "reset", "inc", "set_gauge", "observe",
    "render_prometheus", "snapshot",
]

_ENABLED: bool = False

# Default histogram buckets: wall times from 10us to 10s, roughly
# log-spaced.  Pass pipelines live in the 0.1ms..50ms band; whole
# evals and daemon jobs in the 1ms..10s band — one ladder covers both.
_DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.00001, 0.0000316, 0.0001, 0.000316, 0.001, 0.00316,
    0.01, 0.0316, 0.1, 0.316, 1.0, 3.16, 10.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Histogram:
    """One labeled histogram series: cumulative buckets + sum + count."""

    __slots__ = ("bounds", "buckets", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]):
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)   # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


class MetricsRegistry:
    """Holds every series recorded by this process.

    Three families, all labeled:

    * **counters** — monotonic (``inc``);
    * **gauges** — last-write-wins (``set_gauge``);
    * **histograms** — cumulative-bucket distributions (``observe``).

    Help strings registered via :meth:`describe` become ``# HELP``
    lines in the Prometheus rendering; undescribed metrics still
    render (with a generic help line).
    """

    __slots__ = ("counters", "gauges", "histograms", "help")

    def __init__(self):
        self.counters: Dict[str, Dict[_LabelKey, float]] = {}
        self.gauges: Dict[str, Dict[_LabelKey, float]] = {}
        self.histograms: Dict[str, Dict[_LabelKey, _Histogram]] = {}
        self.help: Dict[str, str] = {}

    # -- recording ------------------------------------------------------
    def describe(self, name: str, help_text: str) -> None:
        self.help[name] = help_text

    def inc(self, name: str, by: float = 1, **labels: str) -> None:
        series = self.counters.setdefault(name, {})
        key = _label_key(labels)
        series[key] = series.get(key, 0) + by

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        self.gauges.setdefault(name, {})[_label_key(labels)] = value

    def observe(self, name: str, value: float,
                buckets: Optional[Tuple[float, ...]] = None,
                **labels: str) -> None:
        series = self.histograms.setdefault(name, {})
        key = _label_key(labels)
        hist = series.get(key)
        if hist is None:
            hist = series[key] = _Histogram(buckets or _DEFAULT_BUCKETS)
        hist.observe(value)

    # -- export ---------------------------------------------------------
    def snapshot(self) -> Dict:
        """A plain-JSON view of every series (labels as a dict)."""
        def expand(series):
            return [{"labels": dict(key), "value": value}
                    for key, value in sorted(series.items())]

        return {
            "counters": {n: expand(s)
                         for n, s in sorted(self.counters.items())},
            "gauges": {n: expand(s)
                       for n, s in sorted(self.gauges.items())},
            "histograms": {
                n: [{"labels": dict(key),
                     "sum": h.sum, "count": h.count,
                     "buckets": [{"le": le, "n": c} for le, c in
                                 zip(list(h.bounds) + ["+Inf"],
                                     _cumulative(h.buckets))]}
                    for key, h in sorted(s.items())]
                for n, s in sorted(self.histograms.items())
            },
        }

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        out: List[str] = []

        def emit_head(name: str, kind: str) -> None:
            help_text = self.help.get(
                name, f"repro metric {name}").replace("\\", "\\\\")
            out.append(f"# HELP {name} {help_text}")
            out.append(f"# TYPE {name} {kind}")

        for name, series in sorted(self.counters.items()):
            emit_head(name, "counter")
            for key, value in sorted(series.items()):
                out.append(f"{name}{_fmt_labels(key)} {_fmt_value(value)}")
        for name, series in sorted(self.gauges.items()):
            emit_head(name, "gauge")
            for key, value in sorted(series.items()):
                out.append(f"{name}{_fmt_labels(key)} {_fmt_value(value)}")
        for name, series in sorted(self.histograms.items()):
            emit_head(name, "histogram")
            for key, hist in sorted(series.items()):
                cum = _cumulative(hist.buckets)
                for le, count in zip(list(hist.bounds) + ["+Inf"], cum):
                    le_s = "+Inf" if le == "+Inf" else _fmt_value(le)
                    lk = key + (("le", le_s),)
                    out.append(f"{name}_bucket{_fmt_labels(lk)} {count}")
                out.append(f"{name}_sum{_fmt_labels(key)} "
                           f"{_fmt_value(hist.sum)}")
                out.append(f"{name}_count{_fmt_labels(key)} {hist.count}")
        return "\n".join(out) + ("\n" if out else "")


def _cumulative(buckets: Iterable[int]) -> List[int]:
    total, out = 0, []
    for b in buckets:
        total += b
        out.append(total)
    return out


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _fmt_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    parts = []
    for k, v in key:
        escaped = str(v).replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n")
        parts.append(f'{k}="{escaped}"')
    return "{" + ",".join(parts) + "}"


# -- module-level facade -------------------------------------------------

_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry (always available; recording into it
    directly bypasses the enabled gate — use the module helpers)."""
    return _REGISTRY


def enabled() -> bool:
    return _ENABLED


def enable() -> None:
    """Turn on metric recording for this process."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    global _ENABLED
    _ENABLED = False


def reset() -> None:
    """Drop every recorded series (tests; help strings survive)."""
    _REGISTRY.counters.clear()
    _REGISTRY.gauges.clear()
    _REGISTRY.histograms.clear()


def inc(name: str, by: float = 1, **labels: str) -> None:
    """Bump a counter; free when metrics are disabled."""
    if not _ENABLED:
        return
    _REGISTRY.inc(name, by, **labels)


def set_gauge(name: str, value: float, **labels: str) -> None:
    """Set a gauge; free when metrics are disabled."""
    if not _ENABLED:
        return
    _REGISTRY.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels: str) -> None:
    """Record a histogram observation; free when metrics are disabled."""
    if not _ENABLED:
        return
    _REGISTRY.observe(name, value, **labels)


def render_prometheus() -> str:
    return _REGISTRY.render_prometheus()


def snapshot() -> Dict:
    return _REGISTRY.snapshot()


# Help strings for everything the platform records, registered up front
# so the first scrape already carries them.
for _name, _help in (
    ("repro_evaluations_total",
     "Engine evaluations recorded, by outcome status"),
    ("repro_eval_cache_hits_total",
     "Evaluations answered from the persistent eval cache"),
    ("repro_eval_path_total",
     "Timing path taken per evaluation (fast extrapolated vs slow full)"),
    ("repro_eval_wall_seconds",
     "Wall time per engine evaluation round-trip"),
    ("repro_evals_per_sec",
     "Most recent evaluation throughput (per batch or per daemon job)"),
    ("repro_batch_groups_total",
     "Prefix-sharing evaluation groups dispatched"),
    ("repro_batch_group_size",
     "Candidates per prefix-sharing evaluation group"),
    ("repro_batch_prefix_hits_total",
     "Batched compiles answered by the prefix-memoized IR cache"),
    ("repro_batch_prefix_misses_total",
     "Batched compiles that ran the full pass prefix"),
    ("repro_batch_walk_hits_total",
     "Batched timings answered by a shared steady-state walk"),
    ("repro_pass_wall_seconds",
     "Wall time per FKO pipeline pass, labeled by pass name"),
    ("repro_tile_wall_seconds",
     "Wall time in the HIL tiling layer (nest discovery / apply)"),
    ("repro_requests_total",
     "Daemon tune submissions, by disposition (new/coalesced/cached)"),
    ("repro_client_requests_total",
     "Daemon tune submissions, by client id"),
    ("repro_queue_depth",
     "Jobs waiting in the daemon's fair queue"),
    ("repro_inflight",
     "Distinct requests currently executing or queued (dedup table)"),
    ("repro_budget_remaining_evals",
     "Evaluations left in the daemon's global budget (-1 = unlimited)"),
    ("repro_jobs_completed_total", "Daemon jobs finished successfully"),
    ("repro_jobs_errored_total", "Daemon jobs finished with an error"),
    ("repro_compiles_total", "Daemon one-shot /v1/compile requests"),
):
    _REGISTRY.describe(_name, _help)
del _name, _help
