"""Performance regression tracking — ``repro perf diff``.

Compares two benchmark artifacts (the ``results/BENCH_*.json`` files
the benchmarks write, or two raw ``.jsonl`` traces, which are first
reduced through ``summarize_trace``) and reports per-metric deltas.

Two separate questions are kept apart:

* **reporting** — every numeric leaf present in *both* artifacts gets
  a delta row, classified higher-is-better / lower-is-better /
  informational by key-name convention (``mflops`` up is good,
  ``wall`` up is bad, a bare ``n`` is neither);
* **gating** — only *deterministic* metrics fail the diff.  Wall
  clock, evals/sec and anything else a loaded CI runner can shift are
  reported but never gate; cycle counts, mismatch counters and
  race-invariant violations are machine-independent in this repo (the
  simulated hardware is deterministic), so a shift there is a real
  regression.  The default gate set matches what the benchmarks
  themselves hard-fail on.

Thresholds are relative (``|new - old| / |old|``); a gated metric
whose old value was 0 regresses on *any* worsening (0 mismatches is a
floor, not a baseline).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

__all__ = ["flatten_numeric", "classify_metric", "diff_metrics",
           "render_diff", "load_artifact", "DEFAULT_GATES"]

#: key-name fragments that mark a metric as higher-is-better
_HIGHER = ("evals_per_sec", "speedup", "hit_rate", "hits", "mflops",
           "ratio_of_best", "throughput")
#: ... and lower-is-better
_LOWER = ("wall", "cycles", "overhead", "mismatch", "regression",
          "malformed", "error", "timeout", "fault", "misses", "seconds")

#: metrics gated by default: deterministic under the simulated
#: machines, so any drift is a code change, not runner noise
DEFAULT_GATES = ("best_cycles", "cycle_mismatch", "mismatches",
                 "random_regressions", "regressions")


def flatten_numeric(obj, prefix: str = "") -> Dict[str, float]:
    """Every numeric leaf of a nested JSON document, dotted-path keyed.
    Booleans are skipped (they are statuses, not metrics); list items
    are indexed."""
    out: Dict[str, float] = {}
    if isinstance(obj, dict):
        for k, v in obj.items():
            out.update(flatten_numeric(v, f"{prefix}{k}."))
    elif isinstance(obj, (list, tuple)):
        for i, v in enumerate(obj):
            out.update(flatten_numeric(v, f"{prefix}{i}."))
    elif isinstance(obj, bool):
        pass
    elif isinstance(obj, (int, float)):
        out[prefix[:-1]] = float(obj)
    return out


def classify_metric(key: str) -> Optional[str]:
    """``"higher"`` / ``"lower"`` / None (informational) by key name.
    The most specific (longest) matching fragment wins, so
    ``cache_hit_rate`` is higher-is-better even though ``hits`` alone
    would also match."""
    low = key.lower()
    best: Tuple[int, Optional[str]] = (0, None)
    for frag in _HIGHER:
        if frag in low and len(frag) > best[0]:
            best = (len(frag), "higher")
    for frag in _LOWER:
        if frag in low and len(frag) > best[0]:
            best = (len(frag), "lower")
    return best[1]


def diff_metrics(old: Dict, new: Dict, threshold: float = 0.05,
                 gates: Tuple[str, ...] = DEFAULT_GATES) -> Dict:
    """Compare two artifacts.  Returns ``{"rows": [...], "regressions":
    [...], "only_old": [...], "only_new": [...]}`` where each row is
    ``{key, old, new, delta_pct, direction, gated, regressed}``.

    Only keys present in both artifacts are compared (a quick-mode
    baseline diffed against a full run simply has fewer common keys);
    one-sided keys are listed, not judged."""
    fold = flatten_numeric(old)
    fnew = flatten_numeric(new)
    rows: List[Dict] = []
    regressions: List[Dict] = []
    for key in sorted(set(fold) & set(fnew)):
        o, n = fold[key], fnew[key]
        direction = classify_metric(key)
        if o != 0:
            delta = (n - o) / abs(o)
        else:
            delta = 0.0 if n == 0 else float("inf")
        worse = ((direction == "higher" and delta < 0)
                 or (direction == "lower" and delta > 0))
        gated = any(frag in key.lower() for frag in gates)
        regressed = bool(gated and direction is not None and worse
                         and abs(delta) > threshold)
        row = {"key": key, "old": o, "new": n, "delta": delta,
               "direction": direction, "gated": gated,
               "regressed": regressed}
        rows.append(row)
        if regressed:
            regressions.append(row)
    return {"rows": rows, "regressions": regressions,
            "only_old": sorted(set(fold) - set(fnew)),
            "only_new": sorted(set(fnew) - set(fold)),
            "threshold": threshold}


def render_diff(report: Dict, verbose: bool = False) -> str:
    """Human-readable diff: regressions first, then notable movements
    (``verbose`` lists every common key)."""
    lines: List[str] = []
    regs = report["regressions"]
    if regs:
        lines.append(f"REGRESSIONS ({len(regs)}), "
                     f"threshold {report['threshold']:.1%}:")
        for r in regs:
            lines.append(f"  {r['key']}: {r['old']:g} -> {r['new']:g} "
                         f"({r['delta']:+.1%}, {r['direction']}-is-better)")
    else:
        lines.append(f"no regressions (threshold "
                     f"{report['threshold']:.1%})")
    moved = [r for r in report["rows"]
             if not r["regressed"] and r["old"] != r["new"]]
    shown = moved if verbose else [
        r for r in moved
        if r["direction"] is not None and abs(r["delta"]) > 0.01]
    if shown:
        lines.append(f"moved ({len(moved)} metric(s), "
                     f"showing {len(shown)}):")
        for r in shown:
            arrow = {"higher": "good" if r["delta"] > 0 else "bad",
                     "lower": "good" if r["delta"] < 0 else "bad"}.get(
                         r["direction"], "info")
            lines.append(f"  {r['key']}: {r['old']:g} -> {r['new']:g} "
                         f"({r['delta']:+.1%}, {arrow})")
    if not report["rows"]:
        lines.append("no data: the artifacts share no numeric metrics")
    n_same = len(report["rows"]) - len(moved) - len(regs)
    lines.append(f"unchanged: {n_same}  "
                 f"only-old: {len(report['only_old'])}  "
                 f"only-new: {len(report['only_new'])}")
    return "\n".join(lines)


def load_artifact(path: str) -> Dict:
    """A BENCH JSON document, or a ``.jsonl`` trace reduced to its
    summary (streamed, never materialized)."""
    if path.endswith(".jsonl"):
        from ..search.trace import TraceStream, summarize_trace
        return summarize_trace(TraceStream(path))
    with open(path) as fh:
        return json.load(fh)
