"""Chrome-trace-event / Perfetto export of a search trace.

``repro trace run.jsonl --perfetto out.json`` turns a JSONL search
trace (schema v2, :mod:`repro.search.trace`) into the Trace Event
Format that ``chrome://tracing`` and https://ui.perfetto.dev load
directly: the batch is one process, every tuning job is a thread, and
each evaluation is a span with its compile passes nested inside.

Span reconstruction: trace events carry only their *completion* time
``t`` plus a ``wall`` duration, so an eval span is ``[t - wall, t]``.
Candidate fan-out records worker evals back-to-back in ask-order with
overlapping wall windows; since Trace-Event ``B``/``E`` pairs on one
thread must nest, sibling spans are clamped to be sequential (each
starts no earlier than its predecessor ends) and children are clamped
inside their parent.  The timeline is therefore faithful in *ordering
and duration attribution*, not in exact wall-clock overlap — which is
what a span viewer needs.

Every ``B`` has a matching ``E`` on the same pid/tid (unclosed spans —
a trace truncated mid-job — are closed at the last event time), and
all output is strict JSON (the trace layer already sanitized
non-finite floats).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional

_PID = 1
_ENGINE_TID = 0

#: event kinds rendered as zero-duration instants on the job's track
_INSTANT = {"cache-hit", "round", "curve", "phase", "job-resumed",
            "pool-broken"}


def _span(name: str, cat: str, start: float, end: Optional[float],
          args: Dict) -> Dict:
    return {"name": name, "cat": cat, "start": start, "end": end,
            "args": args, "children": []}


def _lay_passes(span: Dict, passes: List[Dict]) -> None:
    """Place pass spans sequentially from the eval's start, scaled down
    only when their summed wall exceeds the eval window (the window
    also covers the timing run, so normally they fit)."""
    window = max(span["end"] - span["start"], 0.0)
    walls = [max(float(p.get("wall") or 0.0), 0.0) for p in passes]
    total = sum(walls)
    scale = (window / total) if total > window and total > 0 else 1.0
    cursor = span["start"]
    for p, wall in zip(passes, walls):
        dur = wall * scale
        args = {k: v for k, v in p.items()
                if k not in ("t", "event", "job", "params")}
        span["children"].append(
            _span(p.get("pass", "?"), "pass", cursor, cursor + dur, args))
        cursor += dur


def export_perfetto(events: List[Dict]) -> Dict:
    """Convert trace events into a Trace-Event-Format document
    (``{"traceEvents": [...], "displayTimeUnit": "ms"}``)."""
    times = [ev["t"] for ev in events
             if isinstance(ev.get("t"), (int, float))]
    t0 = min(times) if times else 0.0
    t_last = max(times) if times else 0.0

    def us(t: float) -> float:
        return round((t - t0) * 1e6, 3)

    tids: Dict[str, int] = {}          # job key -> tid, first-seen order

    def tid_of(job: Optional[str]) -> int:
        if not job:
            return _ENGINE_TID
        if job not in tids:
            tids[job] = len(tids) + 1
        return tids[job]

    # per-tid span forest + instants, built in one chronological scan
    roots: Dict[int, List[Dict]] = {}
    open_job: Dict[int, Dict] = {}     # tid -> currently open job span
    last_eval: Dict[int, Dict] = {}
    pending_passes: Dict[int, List[Dict]] = {}
    instants: List[Dict] = []
    batch_span: Optional[Dict] = None

    for ev in events:
        kind = ev.get("event")
        t = ev.get("t")
        if not isinstance(t, (int, float)):
            continue
        tid = tid_of(ev.get("job"))
        if kind == "batch-start":
            batch_span = _span("batch", "batch", t, None,
                               {"njobs": ev.get("njobs")})
            roots.setdefault(_ENGINE_TID, []).append(batch_span)
        elif kind == "batch-end":
            if batch_span is not None and batch_span["end"] is None:
                batch_span["end"] = t
                batch_span["args"].update(
                    {k: ev.get(k) for k in ("completed", "errors",
                                            "evaluations", "cache_hits")})
        elif kind == "job-start":
            span = _span(ev.get("job") or "job", "job", t, None,
                         {k: ev.get(k) for k in ("kernel", "machine",
                                                 "context", "n", "space",
                                                 "strategy", "seed")})
            roots.setdefault(tid, []).append(span)
            open_job[tid] = span
        elif kind in ("job-end", "job-error"):
            span = open_job.pop(tid, None)
            if span is not None and span["end"] is None:
                span["end"] = t
                span["args"].update(
                    {k: ev.get(k) for k in ("best_cycles", "evaluations",
                                            "mflops", "error")
                     if ev.get(k) is not None})
            elif kind == "job-error":
                instants.append({"name": "job-error", "ph": "i", "s": "t",
                                 "ts": us(t), "pid": _PID, "tid": tid,
                                 "args": {"error": ev.get("error")}})
        elif kind == "pass":
            pending_passes.setdefault(tid, []).append(ev)
        elif kind == "eval":
            wall = max(float(ev.get("wall") or 0.0), 0.0)
            span = _span("eval", "eval", t - wall, t,
                         {k: ev.get(k) for k in ("params", "cycles",
                                                 "status", "fast", "phase")})
            _lay_passes(span, pending_passes.pop(tid, []))
            parent = open_job.get(tid)
            (parent["children"] if parent is not None
             else roots.setdefault(tid, [])).append(span)
            last_eval[tid] = span
        elif kind == "attribution":
            ev_span = last_eval.get(tid)
            if ev_span is not None:
                ev_span["args"]["attribution"] = {
                    k: v for k, v in ev.items()
                    if k not in ("t", "event", "job", "phase", "params")}
        elif kind in _INSTANT:
            args = {k: v for k, v in ev.items() if k not in ("t", "event")}
            instants.append({"name": kind, "ph": "i", "s": "t",
                             "ts": us(t), "pid": _PID, "tid": tid,
                             "args": args})

    for span in open_job.values():      # truncated trace: close at end
        if span["end"] is None:
            span["end"] = t_last
    if batch_span is not None and batch_span["end"] is None:
        batch_span["end"] = t_last

    out: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": _PID,
         "args": {"name": "repro tune"}},
        {"name": "thread_name", "ph": "M", "pid": _PID,
         "tid": _ENGINE_TID, "args": {"name": "engine"}}]
    for job, tid in tids.items():
        out.append({"name": "thread_name", "ph": "M", "pid": _PID,
                    "tid": tid, "args": {"name": job}})

    def serialize(span: Dict, lo: float, hi: float, tid: int) -> float:
        b = min(max(span["start"], lo), hi)
        e = min(max(span["end"], b), hi)
        out.append({"name": span["name"], "cat": span["cat"], "ph": "B",
                    "ts": us(b), "pid": _PID, "tid": tid,
                    "args": span["args"]})
        cursor = b
        for child in span["children"]:
            cursor = serialize(child, cursor, e, tid)
        out.append({"name": span["name"], "cat": span["cat"], "ph": "E",
                    "ts": us(e), "pid": _PID, "tid": tid})
        return e

    for tid, spans in sorted(roots.items()):
        cursor = -float("inf")
        for span in spans:
            cursor = serialize(span, cursor, float("inf"), tid)
    out.extend(instants)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_perfetto(events: List[Dict], path: str) -> Dict:
    """Export ``events`` and write the JSON document to ``path``."""
    doc = export_perfetto(events)
    target = pathlib.Path(path)
    if target.parent != pathlib.Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(doc) + "\n")
    return doc
