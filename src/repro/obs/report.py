"""Markdown run report — ``repro report <trace>``.

Renders a recorded search trace (schema v2) into the run report a
human asks for after a batch: where the wall time went per job and
phase, what each compile pass cost across the whole run, and — the
paper's Figure-7 analogue — how the timing model attributes the best
kernel's cycles to compute, memory stalls and wasted prefetches.

The report degrades gracefully: a v1 trace (no ``pass`` /
``attribution`` events, i.e. recorded without ``--observe``) still
gets the phase breakdown, result and cache sections, with a note on
how to capture the rest.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional


def _f(x, digits: int = 1) -> str:
    if x is None:
        return "-"
    return f"{x:,.{digits}f}"


def _pct(part, whole) -> str:
    if not whole:
        return "-"
    return f"{100.0 * part / whole:.1f}%"


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def render_report(events: List[Dict], title: Optional[str] = None) -> str:
    from ..search.trace import summarize_trace
    summary = summarize_trace(events)

    lines = [f"# {title or 'repro tuning run report'}", ""]
    if summary.get("malformed_lines"):
        lines += [f"> **WARNING**: {summary['malformed_lines']} malformed "
                  f"trace line(s) were skipped; totals below may "
                  f"undercount.", ""]
    n_evals = summary["evaluations"]
    n_hits = summary["cache_hits"]
    lines += [f"- events: {summary['n_events']}",
              f"- evaluations: {n_evals} "
              f"(+ {n_hits} cache hits, "
              f"hit rate {100.0 * summary['cache_hit_rate']:.1f}%)",
              f"- evaluation wall time: {summary['eval_wall']:.2f}s "
              f"({summary['evals_per_sec']:.1f} evals/s)",
              ""]

    # -- per-job wall-time breakdown by phase ---------------------------
    by_job: "OrderedDict[str, OrderedDict[str, List[float]]]" = OrderedDict()
    for ev in events:
        if ev.get("event") != "eval":
            continue
        job = ev.get("job") or "?"
        phase = ev.get("phase") or "?"
        cell = by_job.setdefault(job, OrderedDict()).setdefault(
            phase, [0, 0.0])
        cell[0] += 1
        cell[1] += ev.get("wall") or 0.0
    lines += ["## Per-job phase breakdown", ""]
    if by_job:
        rows = []
        for job, phases in by_job.items():
            job_wall = sum(w for _, w in phases.values())
            for phase, (n, wall) in phases.items():
                rows.append([job, phase, str(n), f"{wall:.3f}",
                             _pct(wall, job_wall)])
        lines += _table(["Job", "Phase", "Evals", "Wall (s)",
                         "Job share"], rows)
    else:
        lines.append("No evaluations recorded.")
    lines.append("")

    # -- pass-pipeline cost (observe-only) ------------------------------
    passes: "OrderedDict[str, List]" = OrderedDict()
    for ev in events:
        if ev.get("event") != "pass":
            continue
        agg = passes.setdefault(ev.get("pass", "?"), [0, 0, 0.0, 0])
        agg[0] += 1
        agg[1] += 1 if ev.get("applied") else 0
        agg[2] += ev.get("wall") or 0.0
        agg[3] += ev.get("d_instrs") or 0
    lines += ["## Pass pipeline cost", ""]
    if passes:
        total_wall = sum(a[2] for a in passes.values())
        rows = [[name, str(a[0]), str(a[1]), f"{a[2] * 1e3:.2f}",
                 _pct(a[2], total_wall), f"{a[3]:+d}"]
                for name, a in sorted(passes.items(),
                                      key=lambda kv: (-kv[1][2], kv[0]))]
        lines += _table(["Pass", "Runs", "Applied", "Wall (ms)",
                         "Share", "Net Δinstrs"], rows)
    else:
        lines.append("No pass telemetry in this trace — record one with "
                     "`--observe` to get the per-pass cost table.")
    lines.append("")

    # -- cycle attribution of each job's best kernel (Figure-7 analogue)
    best_params: Dict[str, Optional[str]] = {}
    for ev in events:
        if ev.get("event") == "job-end" and ev.get("job"):
            best_params[ev["job"]] = ev.get("params")
    attribution: "OrderedDict[str, Dict]" = OrderedDict()
    for ev in events:
        if ev.get("event") != "attribution" or not ev.get("job"):
            continue
        job = ev["job"]
        # the winner's attribution if we saw it; otherwise the last one
        if job not in attribution \
                or best_params.get(job) is None \
                or ev.get("params") == best_params.get(job):
            attribution[job] = ev
    lines += ["## Cycle attribution (best kernel per job)", ""]
    if attribution:
        rows = []
        pf_rows = []
        for job, ev in attribution.items():
            total = ev.get("total") or 0
            tag = ("" if best_params.get(job) is None
                   or ev.get("params") == best_params.get(job)
                   else " (last evaluated)")
            rows.append([job + tag, _f(total, 0),
                         _pct(ev.get("compute") or 0, total),
                         _pct(ev.get("memory_stall") or 0, total),
                         _pct(ev.get("prefetch_waste") or 0, total),
                         _pct(ev.get("other") or 0, total)])
            pf_rows.append([job, _f(ev.get("prefetch_issued"), 0),
                            _f(ev.get("prefetch_dropped"), 0),
                            _f(ev.get("prefetch_wasted"), 0),
                            _f(ev.get("demand_misses"), 0),
                            _f(ev.get("hw_prefetches"), 0),
                            _f(ev.get("bus_busy"), 0)])
        lines += _table(["Job", "Total cycles", "Compute",
                         "Memory stall", "Prefetch waste", "Other"], rows)
        lines += ["", "Prefetch and bus behaviour:", ""]
        lines += _table(["Job", "PF issued", "PF dropped", "PF wasted",
                         "Demand misses", "HW prefetches",
                         "Bus busy (cy)"], pf_rows)
        lines += ["", "Memory-stall and prefetch-waste cycles overlap by "
                  "design: a wasted prefetch shows up both as bus "
                  "occupancy and (indirectly) as stall.", ""]
    else:
        lines += ["No attribution telemetry in this trace — record one "
                  "with `--observe` to get the cycle breakdown.", ""]

    # -- TILE phase (Level-3 blocked nests) -----------------------------
    # Rendered only when the trace carries TILE-phase activity, so
    # Level-1/2 reports are byte-identical to before this section
    # existed.
    tile_jobs: "OrderedDict[str, Dict]" = OrderedDict()
    last_best: Dict[str, float] = {}
    for ev in events:
        job = ev.get("job")
        if not job:
            continue
        kind = ev.get("event")
        if kind == "round":
            if ev.get("phase") == "TILE":
                entry = tile_jobs.setdefault(
                    job, {"evals": 0, "before": last_best.get(job),
                          "after": None, "tiles": None})
                entry["after"] = ev.get("best_cycles")
            last_best[job] = ev.get("best_cycles")
        elif kind == "eval" and ev.get("phase") == "TILE":
            tile_jobs.setdefault(
                job, {"evals": 0, "before": last_best.get(job),
                      "after": None, "tiles": None})["evals"] += 1
        elif kind == "job-end" and job in tile_jobs:
            for tok in (ev.get("params") or "").split():
                if tok.startswith("TILE="):
                    tile_jobs[job]["tiles"] = tok[len("TILE="):]
    if tile_jobs:
        rows = []
        for job, e in tile_jobs.items():
            before, after = e["before"], e["after"]
            gain = (before / after) if before and after else None
            rows.append([job, str(e["evals"]), _f(before, 0), _f(after, 0),
                         (f"{gain:.3f}x" if gain is not None else "-"),
                         e["tiles"] or "(untiled)"])
        lines += ["## TILE phase (blocked-nest attribution)", ""]
        lines += _table(["Job", "TILE evals", "Best entering (cy)",
                         "Best after (cy)", "Gain", "Best tiles"], rows)
        lines += ["", "Gain is the best-so-far improvement across the "
                  "TILE line-search phase (cache blocking of the loop "
                  "nest); tiles are the winner's `TILE=` parameters.", ""]

    # -- cache and timing-path stats ------------------------------------
    lines += ["## Cache and timing-path stats", "",
              f"- cache hits: {n_hits} "
              f"(hit rate {100.0 * summary['cache_hit_rate']:.1f}%)",
              f"- fast path (steady-state replay): {summary['fast_path']}",
              f"- slow path (full per-line walk): {summary['slow_path']}"]
    batch = summary.get("batch") or {}
    if batch.get("prefix_hits") or batch.get("prefix_misses"):
        compiles = batch["prefix_hits"] + batch["prefix_misses"]
        lines += [f"- batch.prefix_hits: {batch['prefix_hits']} "
                  f"(reuse rate {100.0 * batch['prefix_hits'] / compiles:.1f}%"
                  f" of {compiles} compiles)",
                  f"- batch.prefix_misses: {batch['prefix_misses']}",
                  f"- batch.walk_hits (shared timing walks): "
                  f"{batch.get('walk_hits', 0)}"]
        if batch.get("groups"):
            lines.append(f"- batch.size: {batch['mean_size']:.1f} mean "
                         f"({batch['size_total']} candidates over "
                         f"{batch['groups']} prefix-sharing groups)")
    bad = {k: v for k, v in summary["statuses"].items() if k != "ok"}
    if bad:
        lines.append("- non-ok evaluations: "
                     + ", ".join(f"{k}={v}" for k, v in sorted(bad.items())))
    lines.append("")

    # -- per-job results ------------------------------------------------
    if summary["jobs"]:
        lines += ["## Results", ""]
        rows = []
        for key, j in summary["jobs"].items():
            if j["status"] == "resumed":
                rows.append([key, "-", "-", "0", str(j["cache_hits"]),
                             "resumed from checkpoint"])
            elif j["status"] == "error":
                rows.append([key, "-", "-", str(j["evaluations"]),
                             str(j["cache_hits"]),
                             f"ERROR: {j.get('error')}"])
            else:
                rows.append([key, _f(j["best_cycles"], 0),
                             _f(j["mflops"], 1), str(j["evaluations"]),
                             str(j["cache_hits"]), j["params"] or "-"])
        lines += _table(["Job", "Best cycles", "MFLOPS", "Evals",
                         "Cache hits", "Best params"], rows)
        lines.append("")
    return "\n".join(lines)
