"""Differential correctness QA — the fuzzing harness around the tester.

The paper keeps a tester in the loop because empirical compilation is
only trustworthy when every candidate is provably correct ("unnecessary
in theory, but useful in practice", section 2.1).  The tester and the
IR verifier exist, but on their own nothing *drives* them across the
transform space — a miscompiling transform combination the search never
happens to test would be accepted as a "fast" kernel.  This package is
that driver:

* :mod:`~repro.qa.sampler` — a seeded fuzzer that samples
  (kernel x machine x full ``TransformParams`` space x problem sizes,
  including the 0/1/remainder-loop edge cases);
* :mod:`~repro.qa.differ` — compiles each sample with pass-boundary IR
  verification forced on, runs it through the functional interpreter,
  and differentially compares the result against both the untransformed
  baseline compile and the NumPy reference, with association-aware
  tolerances for reductions;
* :mod:`~repro.qa.shrink` — greedy parameter/size minimization of any
  failure down to a minimal reproducer;
* :mod:`~repro.qa.artifacts` — JSON repro artifacts that replay via
  ``repro fuzz --replay``;
* :mod:`~repro.qa.fuzz` — the budgeted driver tying it all together
  (the ``repro fuzz`` CLI and the CI fuzz-smoke job call this).
"""

from __future__ import annotations

from .artifacts import load_artifact, replay_artifact, save_artifact
from .differ import BASELINE_PARAMS, FuzzFailure, check_sample
from .fuzz import FuzzReport, run_fuzz
from .sampler import FuzzSample, iter_samples, sample_sizes
from .shrink import shrink_failure, simpler_neighbors

__all__ = [
    "BASELINE_PARAMS", "FuzzFailure", "FuzzReport", "FuzzSample",
    "check_sample", "iter_samples", "load_artifact", "replay_artifact",
    "run_fuzz", "sample_sizes", "save_artifact", "shrink_failure",
    "simpler_neighbors",
]
