"""Repro artifacts — failures as replayable JSON.

A fuzz failure is only useful if someone else (CI, the developer who
gets the bug report, the regression suite) can re-run it.  An artifact
is one JSON file holding the minimal failing sample, the stage it died
in and the exact error text; ``repro fuzz --replay FILE`` re-checks it
and reports whether the identical failure still reproduces — the whole
pipeline is deterministic, so "same sample" means "same failure" until
the bug is fixed.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Dict, Optional, Union

from .. import __version__
from .differ import FuzzFailure, check_sample, reset_compiler_state


@dataclass
class ReplayResult:
    """Outcome of re-running an artifact's sample."""

    artifact: FuzzFailure            # what the artifact claims
    observed: Optional[FuzzFailure]  # what re-checking produced (None = clean)

    @property
    def reproduced(self) -> bool:
        """True when the identical failure (stage and error) fired."""
        return (self.observed is not None
                and self.observed.stage == self.artifact.stage
                and self.observed.error == self.artifact.error)

    def describe(self) -> str:
        if self.reproduced:
            return f"reproduced: {self.observed.describe()}"
        if self.observed is None:
            return (f"did NOT reproduce (sample is clean now): "
                    f"{self.artifact.describe()}")
        return (f"failed DIFFERENTLY:\n  artifact: "
                f"{self.artifact.describe()}\n  observed: "
                f"{self.observed.describe()}")


def save_artifact(failure: FuzzFailure,
                  path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write one failure as a JSON repro artifact."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    data = failure.to_dict()
    data["version"] = __version__
    target.write_text(json.dumps(data, indent=1) + "\n")
    return target


def load_artifact(path: Union[str, pathlib.Path]) -> FuzzFailure:
    data = json.loads(pathlib.Path(path).read_text())
    return FuzzFailure.from_dict(data)


def replay_artifact(source: Union[str, pathlib.Path, FuzzFailure]
                    ) -> ReplayResult:
    """Re-run an artifact's sample and compare against what it
    recorded.  Accepts a path or an in-memory failure.  The check runs
    on a cold compiler (memoized FKO instances and their compile caches
    dropped first): replay verifies the compiler as it stands, not
    snapshots cached before a fix landed."""
    failure = (source if isinstance(source, FuzzFailure)
               else load_artifact(source))
    reset_compiler_state()
    return ReplayResult(artifact=failure, observed=check_sample(failure.sample))
