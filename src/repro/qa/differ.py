"""Differential checking of one fuzz sample.

Each sample is compiled with pass-boundary IR verification forced on,
executed in the functional interpreter, and compared against two
independent oracles:

* the **untransformed baseline** — the same kernel compiled with every
  searchable transform disabled (scalar code, no unrolling, one
  accumulator).  The baseline rounds at every step exactly like the
  candidate, so element-wise outputs must agree *bitwise*;
* the **NumPy reference** — the tester's oracle, independent of the
  whole compiler stack.

Reductions legitimately reorder their adds under SV/AE, so scalar
results get an association-aware relative bound (the tester's
``eps * max(4, N) * 8``, which scales with the number of reordered
summands); integer results (iamax) must match exactly.  Everything
else — element-wise outputs, NaN positions — must match bitwise.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ReproError, SimulationFault
from ..fko import FKO, TransformParams
from ..ir import Function
from ..kernels import get_kernel
from ..machine import get_machine
from ..machine.interp import run_function
from ..timing.tester import (_reduction_close, _tolerance, make_inputs,
                             ref_views)
from .sampler import FuzzSample

#: every searchable transform off — the closest legal compile to the
#: untransformed kernel (repeatable cleanup passes stay on: they are
#: not searched and the baseline must still be valid allocatable code)
BASELINE_PARAMS = TransformParams(sv=False, unroll=1, lc=False, ae=1,
                                  wnt=False)


@dataclass
class FuzzFailure:
    """One confirmed disagreement, attributed to a pipeline stage.

    ``stage`` is where the sample died: ``compile`` (transform error or
    pass-boundary IR verification), ``run`` (interpreter fault),
    ``output`` / ``return`` (differential mismatch vs the oracles), or
    ``baseline`` (the untransformed compile itself is broken — an
    infrastructure bug, reported loudly rather than masked).
    """

    sample: FuzzSample
    stage: str
    error: str
    shrunk_from: Optional[FuzzSample] = None
    shrink_steps: int = 0

    def describe(self) -> str:
        return f"[{self.stage}] {self.sample.describe()}: {self.error}"

    def to_dict(self) -> Dict:
        out = {"schema": 1, "sample": self.sample.to_dict(),
               "stage": self.stage, "error": self.error,
               "shrink_steps": self.shrink_steps}
        if self.shrunk_from is not None:
            out["shrunk_from"] = self.shrunk_from.to_dict()
        return out

    @staticmethod
    def from_dict(data: Dict) -> "FuzzFailure":
        shrunk_from = data.get("shrunk_from")
        return FuzzFailure(
            sample=FuzzSample.from_dict(data["sample"]),
            stage=data["stage"], error=data["error"],
            shrunk_from=(FuzzSample.from_dict(shrunk_from)
                         if shrunk_from else None),
            shrink_steps=int(data.get("shrink_steps", 0)))


# ---------------------------------------------------------------------------

_FKO_MEMO: Dict[str, FKO] = {}
_BASELINE_MEMO: Dict[Tuple[str, str], Function] = {}


def _fko(machine: str) -> FKO:
    fko = _FKO_MEMO.get(machine)
    if fko is None:
        fko = _FKO_MEMO[machine] = FKO(get_machine(machine))
    return fko


def reset_compiler_state() -> None:
    """Drop the memoized per-machine FKO instances (and with them their
    prefix/full compile caches) plus the baseline compiles.  Artifact
    replay calls this so verification always compiles cold: a replay
    must reflect the compiler as it is *now*, never IR snapshots cached
    while a since-fixed bug was live."""
    _FKO_MEMO.clear()
    _BASELINE_MEMO.clear()


def _baseline_fn(kernel: str, machine: str) -> Function:
    key = (kernel, machine)
    fn = _BASELINE_MEMO.get(key)
    if fn is None:
        compiled = _fko(machine).compile(get_kernel(kernel).hil,
                                         BASELINE_PARAMS, debug_verify=True)
        fn = _BASELINE_MEMO[key] = compiled.fn
    return fn


def compile_digest(sample: FuzzSample) -> Dict:
    """Compile ``sample`` locally (IR verification on) and summarize
    the result as content identity: the applied-transform list and a
    SHA-256 over the printed IR.  The compile runs on a **fresh**
    front-end: FKO's symbol generation is stateful across compiles
    (reusing an instance shifts generated names), so only a cold
    instance's first compile is canonical.  The text is the *canonical*
    dump — virtual-register uids renumbered by first appearance — so
    the digest is also independent of how far the process-global uid
    counter had advanced before this compile (visible whenever VRegs
    survive into the output, e.g. register allocation off).  Any
    process compiling the same point must then produce the identical
    digest — the ``--via-serve`` soak mode compares this against a
    daemon's answer (``POST /v1/compile``), computed the same way."""
    from ..ir import canonical_function_text
    fko = FKO(get_machine(sample.machine))
    compiled = fko.compile(get_kernel(sample.kernel).hil, sample.params,
                           debug_verify=True)
    text = canonical_function_text(compiled.fn)
    return {"applied": list(compiled.applied),
            "ir_digest": hashlib.sha256(text.encode()).hexdigest()}


def _input_rng(sample: FuzzSample) -> np.random.Generator:
    """Inputs are a pure function of (kernel, n) — candidate, baseline
    and reference all see identical data, the seed is stable across
    processes (no PYTHONHASHSEED dependence), and shrinking the
    parameters never changes the data that exposed the bug."""
    digest = hashlib.sha256(
        f"repro.qa:{sample.kernel}:{sample.n}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def check_sample(sample: FuzzSample) -> Optional[FuzzFailure]:
    """Compile, verify, run and differentially compare one sample.
    Returns ``None`` when the sample is clean."""
    spec = get_kernel(sample.kernel)
    n = sample.n

    # 1. compile with pass-boundary IR verification forced on
    try:
        compiled = _fko(sample.machine).compile(spec.hil, sample.params,
                                                debug_verify=True)
    except ReproError as exc:
        return FuzzFailure(sample, "compile",
                           f"{type(exc).__name__}: {exc}")

    # 2. untransformed baseline (a broken baseline is an infrastructure
    # bug: surface it as its own stage instead of blaming the sample)
    try:
        baseline_fn = _baseline_fn(sample.kernel, sample.machine)
    except ReproError as exc:
        return FuzzFailure(sample, "baseline",
                           f"{type(exc).__name__}: {exc}")

    arrays, scalars = make_inputs(spec, n, _input_rng(sample))
    fscalars = {k: v for k, v in scalars.items() if k != "N"}

    # 3. run the candidate
    got_arrays = {k: v.copy() for k, v in arrays.items()}
    try:
        got = run_function(compiled.fn, got_arrays, {"N": n, **fscalars})
    except SimulationFault as exc:
        return FuzzFailure(sample, "run", f"SimulationFault: {exc}")

    # 4. run the baseline on identical data
    base_arrays = {k: v.copy() for k, v in arrays.items()}
    try:
        base = run_function(baseline_fn, base_arrays, {"N": n, **fscalars})
    except SimulationFault as exc:
        return FuzzFailure(sample, "baseline",
                           f"SimulationFault: {exc}")

    # 5. NumPy reference on identical data
    from ..kernels.blas1 import reference
    ref_arrays = {k: v.copy() for k, v in arrays.items()}
    ref = reference(spec, ref_views(spec, ref_arrays, n), fscalars)

    # 6. vector outputs
    for name in spec.output_args:
        elems = spec.arg_elems(name, n)
        cand, refv = got_arrays[name][:elems], ref_arrays[name][:elems]
        basev = base_arrays[name][:elems]
        if name in spec.reduction_outputs:
            tol = _tolerance(spec, n)
            for oracle, want in (("baseline", basev), ("reference", refv)):
                if not _reduction_close(cand, want, tol):
                    return FuzzFailure(
                        sample, "output",
                        f"array {name} diverges from {oracle} beyond the "
                        f"association tolerance {tol:.3e}")
        else:
            for oracle, want in (("baseline", basev), ("reference", refv)):
                if cand.tobytes() != want.tobytes():
                    diff = np.nonzero(
                        cand.view(f"i{cand.dtype.itemsize}")
                        != want.view(f"i{want.dtype.itemsize}"))[0]
                    bad = int(diff[0]) if len(diff) else 0
                    return FuzzFailure(
                        sample, "output",
                        f"array {name}[{bad}] = {cand[bad]!r} vs {oracle} "
                        f"{want[bad]!r} (element-wise outputs must match "
                        f"bitwise)")

    # 7. scalar result
    if spec.returns is not None:
        if got.ret is None:
            return FuzzFailure(sample, "return",
                               f"kernel returned nothing, expected {ref!r}")
        if base.ret is None:
            return FuzzFailure(sample, "baseline",
                               "baseline compile returned nothing")
        if spec.returns == "int":
            if int(got.ret) != int(ref) or int(got.ret) != int(base.ret):
                return FuzzFailure(
                    sample, "return",
                    f"returned index {int(got.ret)}, reference "
                    f"{int(ref)}, baseline {int(base.ret)}")
        else:
            tol = _tolerance(spec, n)
            for oracle, want in (("baseline", float(base.ret)),
                                 ("reference", float(ref))):
                denom = max(1.0, abs(want))
                if not abs(float(got.ret) - want) / denom <= tol:
                    return FuzzFailure(
                        sample, "return",
                        f"returned {float(got.ret)!r}, {oracle} expected "
                        f"{want!r} (rel err "
                        f"{abs(float(got.ret) - want) / denom:.3e}, "
                        f"tol {tol:.3e})")
    return None
