"""The budgeted fuzz driver behind ``repro fuzz`` and the CI smoke job.

Draws ``budget`` samples from the seeded sampler, differentially checks
each, greedily shrinks every failure to its minimal repro and (when an
artifact directory is given) writes one JSON artifact per distinct
failure.  Failures are deduplicated by (kernel, machine, stage) — one
miscompiling transform tends to fire on many samples, and one minimal
artifact per bug is what a human wants to look at; the total raw count
is still reported.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .differ import FuzzFailure, check_sample, compile_digest
from .sampler import DEFAULT_MACHINES, FuzzSample, iter_samples
from .shrink import shrink_failure


def serve_check(url: str,
                base: Callable[[FuzzSample],
                               Optional[FuzzFailure]] = check_sample
                ) -> Callable[[FuzzSample], Optional[FuzzFailure]]:
    """Wrap a sample checker so every clean sample is *also* compiled
    by a running ``repro serve`` daemon and differentially compared
    (applied transforms + IR content digest) against the local compile.

    This makes the fuzzer double as a service soak test: thousands of
    concurrent-ish small requests against a long-lived daemon, each one
    a hard assertion that the service's compiler answers are
    bit-identical to in-process compilation.  A divergence (or a
    transport failure) is reported as a ``serve``-stage failure and
    shrunk like any other.
    """
    from ..client import ServeClient, ServiceError
    client = ServeClient(url)

    def check(sample: FuzzSample) -> Optional[FuzzFailure]:
        failure = base(sample)
        if failure is not None:
            return failure
        try:
            remote = client.compile(sample.kernel, sample.machine,
                                    sample.params.to_dict())
        except ServiceError as exc:
            return FuzzFailure(sample, "serve", f"transport: {exc}")
        if not remote.get("ok"):
            # the local compile succeeded (base() passed); a daemon
            # refusal on the same point is a divergence
            return FuzzFailure(sample, "serve",
                               f"daemon compile failed: "
                               f"{remote.get('error')}")
        local = compile_digest(sample)
        if (remote.get("ir_digest") != local["ir_digest"]
                or list(remote.get("applied") or []) != local["applied"]):
            return FuzzFailure(
                sample, "serve",
                f"IR divergence: daemon "
                f"{str(remote.get('ir_digest'))[:12]} "
                f"(applied {remote.get('applied')}) vs local "
                f"{local['ir_digest'][:12]} (applied {local['applied']})")
        return None

    return check


@dataclass
class FuzzReport:
    """What one fuzz run found."""

    seed: int
    budget: int
    checked: int = 0
    raw_failures: int = 0                       # before deduplication
    failures: List[FuzzFailure] = field(default_factory=list)   # shrunk
    coverage: Dict[str, int] = field(default_factory=dict)      # cell -> n
    artifacts: List[str] = field(default_factory=list)
    wall: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        lines = [f"# fuzz: seed={self.seed} budget={self.budget} "
                 f"checked={self.checked} in {self.wall:.1f}s"]
        cells = len(self.coverage)
        per = sorted(self.coverage.values())
        if per:
            lines.append(f"# coverage: {cells} (kernel, machine) cells, "
                         f"{per[0]}..{per[-1]} samples each")
        if self.ok:
            lines.append("# no differential failures")
        else:
            lines.append(f"# FAILURES: {len(self.failures)} distinct "
                         f"({self.raw_failures} raw)")
            for f in self.failures:
                lines.append(f"#   {f.describe()}")
                if f.shrunk_from is not None and f.shrink_steps:
                    lines.append(f"#     shrunk in {f.shrink_steps} steps "
                                 f"from {f.shrunk_from.describe()}")
        for a in self.artifacts:
            lines.append(f"# artifact: {a}")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {"seed": self.seed, "budget": self.budget,
                "checked": self.checked, "raw_failures": self.raw_failures,
                "failures": [f.to_dict() for f in self.failures],
                "coverage": dict(self.coverage),
                "artifacts": list(self.artifacts), "wall": self.wall}


def run_fuzz(seed: int = 0, budget: int = 200,
             kernels: Optional[Sequence[str]] = None,
             machines: Sequence[str] = DEFAULT_MACHINES,
             shrink: bool = True,
             artifact_dir: Optional[str] = None,
             check: Callable[[FuzzSample], Optional[FuzzFailure]]
             = check_sample,
             log: Optional[Callable[[str], None]] = None) -> FuzzReport:
    """Run one seeded, budgeted fuzz campaign.

    Deterministic per (seed, budget, kernels, machines): the sample
    stream, the failures and the shrunk repros all replay identically.
    ``check`` is injectable for tests (and by ``--replay``-style
    tooling) — the default is the real differential checker.
    """
    report = FuzzReport(seed=seed, budget=budget)
    seen: Dict[Tuple[str, str, str], FuzzFailure] = {}
    t0 = time.perf_counter()
    for sample in iter_samples(seed, budget, kernels=kernels,
                               machines=machines):
        cell = f"{sample.kernel}@{sample.machine}"
        report.coverage[cell] = report.coverage.get(cell, 0) + 1
        failure = check(sample)
        report.checked += 1
        if failure is None:
            continue
        report.raw_failures += 1
        if log is not None:
            log(f"FAIL {failure.describe()}")
        key = (sample.kernel, sample.machine, failure.stage)
        if key in seen:
            continue
        if shrink:
            failure = shrink_failure(failure, check=check)
            if log is not None and failure.shrink_steps:
                log(f"  shrunk ({failure.shrink_steps} steps) -> "
                    f"{failure.sample.describe()}")
        seen[key] = failure
        report.failures.append(failure)
        if artifact_dir is not None:
            from .artifacts import save_artifact
            name = (f"fuzz-{sample.kernel}-{sample.machine}"
                    f"-{failure.stage}-{len(report.failures)}.json")
            path = save_artifact(failure,
                                 pathlib.Path(artifact_dir) / name)
            report.artifacts.append(str(path))
    report.wall = time.perf_counter() - t0
    return report
