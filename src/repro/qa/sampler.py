"""Seeded sampling of the fuzz space.

One :class:`FuzzSample` is a point in
(kernel x machine x ``TransformParams`` space x problem size).  The
sampler is deterministic per seed — the whole point of a fuzz seed is
that CI and a developer's shell replay the identical sample stream —
and walks the (kernel, machine) grid round-robin so that any budget
``>= len(kernels) * len(machines)`` covers every kernel on every
machine.

Problem sizes are edge-biased: 0 and 1 (empty/degenerate loops), sizes
straddling the vector width and the unrolled-body trip count (the
remainder-loop corner cases the chosen ``unroll`` actually creates),
plus a uniform draw for everything in between.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..fko import FKO, PrefetchParams, TransformParams
from ..hil.tiling import nest_info
from ..kernels import ALL_KERNEL_ORDER, get_kernel
from ..machine import get_machine
from ..search.space import SearchSpace, build_space, dim_set

DEFAULT_MACHINES = ("p4e", "opteron")

#: repeatable-pass ablation draws: mostly the normal all-on pipeline,
#: with occasional single-switch ablations (each is a legal compile the
#: search could visit via an explicit TuneConfig.space)
_REGALLOC_CHOICES = ("global", "global", "global", "local", "off")


@dataclass(frozen=True)
class FuzzSample:
    """One fuzzed compile: a kernel, a machine, a full parameter point
    and a problem size."""

    kernel: str
    machine: str
    n: int
    params: TransformParams

    def key(self) -> Tuple:
        return (self.kernel, self.machine, self.n, self.params.key())

    def describe(self) -> str:
        return (f"{self.kernel}@{self.machine} N={self.n} "
                f"[{self.params.describe()}]")

    def to_dict(self) -> Dict:
        return {"kernel": self.kernel, "machine": self.machine,
                "n": self.n, "params": self.params.to_dict()}

    @staticmethod
    def from_dict(data: Dict) -> "FuzzSample":
        return FuzzSample(kernel=data["kernel"], machine=data["machine"],
                          n=int(data["n"]),
                          params=TransformParams.from_dict(data["params"]))


# ---------------------------------------------------------------------------

_SPACE_MEMO: Dict[Tuple[str, str], Tuple[SearchSpace, int, int]] = {}


def _space_for(kernel: str, machine: str) -> Tuple[SearchSpace, int, int]:
    """(search space, veclen, flops order) for one (kernel, machine) —
    memoized, the sampler asks for the same handful over and over."""
    key = (kernel, machine)
    hit = _SPACE_MEMO.get(key)
    if hit is None:
        mach = get_machine(machine)
        spec = get_kernel(kernel)
        analysis = FKO(mach).analyze(spec.hil)
        space = build_space(analysis, mach, enable_block_fetch=True,
                            nest=nest_info(spec.hil))
        veclen = analysis.veclen if analysis.vectorizable else 1
        hit = (space, max(1, veclen), spec.flops_order)
        _SPACE_MEMO[key] = hit
    return hit


def sample_sizes(unroll: int, veclen: int, sv: bool) -> List[int]:
    """The edge-biased size pool for one parameter point: empty and
    degenerate loops, one-off-the-remainder boundaries of the actual
    unrolled trip (``unroll * veclen`` elements per iteration when SV
    applies), and a couple of comfortably-interior sizes."""
    step = unroll * (veclen if sv else 1)
    pool = {0, 1, 2, 3, step - 1, step, step + 1,
            2 * step - 1, 2 * step + 1, 33, 100, 257}
    return sorted(s for s in pool if s >= 0)


def _draw_params(rng: random.Random, space: SearchSpace) -> TransformParams:
    params = TransformParams(
        sv=rng.choice(space.sv_options),
        unroll=rng.choice(space.unroll_options or [1]),
        lc=rng.random() < 0.9,
        ae=rng.choice(space.ae_options),
        wnt=rng.choice(space.wnt_options),
        block_fetch=rng.choice(space.block_fetch_options),
        copy_propagation=rng.random() < 0.85,
        peephole=rng.random() < 0.85,
        cf_cleanup=rng.random() < 0.85,
        register_allocation=rng.choice(_REGALLOC_CHOICES),
    )
    nonzero_dists = [d for d in space.dist_options if d > 0]
    for arr in space.prefetch_arrays:
        if space.hint_options and nonzero_dists and rng.random() < 0.5:
            params.prefetch[arr] = PrefetchParams(
                rng.choice(space.hint_options), rng.choice(nonzero_dists))
    # tile dimensions last, so legacy kernels (no tiles) draw the
    # exact same stream they always have
    for dim in space.tile_dims:
        if rng.random() < 0.5:
            params = dim_set(params, dim.name,
                             rng.choice([o for o in dim.options if o]))
    return params


def iter_samples(seed: int, budget: int,
                 kernels: Optional[Sequence[str]] = None,
                 machines: Sequence[str] = DEFAULT_MACHINES
                 ) -> Iterator[FuzzSample]:
    """Yield ``budget`` deterministic samples for ``seed``.

    The (kernel, machine) grid is walked round-robin, so every cell is
    visited ``budget // len(grid)`` times (+/- 1); parameters and the
    problem size are drawn fresh per sample from one seeded stream.
    """
    rng = random.Random(seed)
    kernels = list(kernels or ALL_KERNEL_ORDER)
    grid = [(k, m) for k in kernels for m in machines]
    if not grid:
        return
    for i in range(budget):
        kernel, machine = grid[i % len(grid)]
        space, veclen, flops_order = _space_for(kernel, machine)
        params = _draw_params(rng, space)
        sizes = sample_sizes(params.unroll, veclen, params.sv)
        if flops_order >= 3:
            # a cubic kernel at N=257 is ~17M simulated flops per
            # compile — cap fuzz sizes so campaigns stay seconds, not
            # hours (small N still exercises every remainder shape)
            sizes = [s for s in sizes if s <= 17] or [0, 1, 2, 3]
        n = rng.choice(sizes)
        yield FuzzSample(kernel=kernel, machine=machine, n=n, params=params)
