"""Greedy failure minimization.

A raw fuzz failure fires with whatever parameter soup the sampler drew
— unrolling, accumulators, prefetches and a 257-element problem all at
once.  The shrinker walks the sample toward the untransformed baseline
one step at a time (drop a transform, halve a factor, shrink the
problem), keeping a step only if the *same stage* still fails, until no
single simplification reproduces the failure.  The result is the
minimal repro that lands in the JSON artifact.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from .differ import FuzzFailure, check_sample
from .sampler import FuzzSample

#: hard cap on accepted shrink steps — every accepted step strictly
#: simplifies, so real shrinks converge in far fewer; the cap only
#: guards against a pathological (e.g. flaky) predicate
MAX_STEPS = 200


def _with_params(sample: FuzzSample, params) -> FuzzSample:
    return FuzzSample(kernel=sample.kernel, machine=sample.machine,
                      n=sample.n, params=params)


def simpler_neighbors(sample: FuzzSample) -> Iterator[FuzzSample]:
    """One-step-simpler variants of ``sample``, most aggressive first.

    Deterministic order: problem size first (a small N makes every
    later re-check cheap), then transform knobs toward the baseline,
    then ablated repeatable passes back to their defaults.
    """
    p = sample.params
    for m in sorted({0, 1, 2, 3, sample.n // 2, sample.n - 1}):
        if 0 <= m < sample.n:
            yield FuzzSample(kernel=sample.kernel, machine=sample.machine,
                             n=m, params=p)
    if p.sv:
        yield _with_params(sample, p.copy(sv=False))
    if p.wnt:
        yield _with_params(sample, p.copy(wnt=False))
    if p.block_fetch:
        yield _with_params(sample, p.copy(block_fetch=False))
    if p.unroll > 1:
        for u in sorted({1, 2, p.unroll // 2, p.unroll - 1}):
            if 1 <= u < p.unroll:
                yield _with_params(sample, p.copy(unroll=u))
    if p.ae > 1:
        for a in sorted({1, 2, p.ae // 2, p.ae - 1}):
            if 1 <= a < p.ae:
                yield _with_params(sample, p.copy(ae=a))
    if p.lc:
        yield _with_params(sample, p.copy(lc=False))
    for name in sorted(p.ext):
        yield _with_params(sample, p.with_ext(name, 0))
    for arr in sorted(p.prefetch):
        trimmed = p.copy()
        del trimmed.prefetch[arr]
        yield _with_params(sample, trimmed)
    if not p.copy_propagation:
        yield _with_params(sample, p.copy(copy_propagation=True))
    if not p.peephole:
        yield _with_params(sample, p.copy(peephole=True))
    if not p.cf_cleanup:
        yield _with_params(sample, p.copy(cf_cleanup=True))
    if p.register_allocation != "global":
        yield _with_params(sample, p.copy(register_allocation="global"))


def shrink_failure(failure: FuzzFailure,
                   check: Callable[[FuzzSample], Optional[FuzzFailure]]
                   = check_sample) -> FuzzFailure:
    """Greedily minimize ``failure``.

    Repeatedly tries every one-step simplification and accepts the
    first that still fails *at the same stage*; stops when none does
    (1-minimality: every strictly simpler neighbor of the result
    passes, or fails differently).  The returned failure remembers the
    original sample in ``shrunk_from``.
    """
    original = failure.shrunk_from or failure.sample
    current = failure
    steps = 0
    progressed = True
    while progressed and steps < MAX_STEPS:
        progressed = False
        for candidate in simpler_neighbors(current.sample):
            result = check(candidate)
            if result is not None and result.stage == failure.stage:
                current = result
                steps += 1
                progressed = True
                break
    return FuzzFailure(sample=current.sample, stage=current.stage,
                       error=current.error, shrunk_from=original,
                       shrink_steps=steps)
