"""Modeled native compilers: the gcc / icc / icc+prof baselines."""

from .base import ModeledCompiler, ReferenceBuild
from .compilers import ALL_COMPILERS, Gcc, Icc, IccProf, get_compiler

__all__ = ["ModeledCompiler", "ReferenceBuild", "ALL_COMPILERS", "Gcc",
           "Icc", "IccProf", "get_compiler"]
