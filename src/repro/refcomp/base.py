"""Modeled native compilers.

The paper's baselines compile the ANSI C reference implementation with
gcc and icc (Table 2 lists the exact flags).  We model each native
compiler as a *fixed, model-driven parameter policy* over the same
back end: the compiler looks at the kernel once and decides — from
heuristics, not measurements — which transformations to apply.  This is
precisely the contrast the paper draws: "heuristics and architectural
assumptions are replaced with empirical probes".

Each policy captures the documented behaviour of its compiler:

* **gcc 3.x** (``-O3 -funroll-all-loops``): no auto-vectorization, no
  software prefetch, moderate unrolling.
* **icc 8.0** (``-xP/-xW -O3``): auto-vectorizes — but only loops in
  canonical ``for(i=0;i<N;i++)`` form (section 3.2: "icc will not
  vectorize either [ATLAS] form, regardless of what is in the loop");
  inserts software prefetch at a fixed model distance tuned for Intel
  hardware; never uses non-temporal stores without profile data.
* **icc 8.0 + profiling**: additionally "detects that the loop is long
  enough for cache retention not to be an issue, and blindly applies
  WNT" — good on the P4E, disastrous for read-write streams on the
  Opteron (section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..fko import FKO, TransformParams
from ..fko.analysis import KernelAnalysis
from ..fko.params import PrefetchParams
from ..fko.pipeline import CompiledKernel
from ..ir import PrefetchHint
from ..kernels.blas1 import KernelSpec
from ..machine.config import MachineConfig
from ..machine.timing import Context
from ..timing.timer import KernelTiming, Timer


@dataclass
class ReferenceBuild:
    """A reference implementation compiled by a modeled native compiler."""

    compiler: str
    spec: KernelSpec
    compiled: CompiledKernel
    timing: KernelTiming

    @property
    def mflops(self) -> float:
        return self.timing.mflops


class ModeledCompiler:
    """Base: subclasses implement the parameter policy."""

    name = "cc"

    def flags(self, machine: MachineConfig) -> str:
        return "-O2"

    def decide(self, spec: KernelSpec, analysis: KernelAnalysis,
               machine: MachineConfig, context: Context,
               n: int) -> TransformParams:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def compile(self, spec: KernelSpec, machine: MachineConfig,
                context: Context, n: int,
                modified_source: bool = True) -> CompiledKernel:
        """Compile the reference implementation of ``spec``.

        ``modified_source`` mirrors the paper's methodology: the ATLAS
        reference loops were rewritten into canonical form so icc would
        vectorize them.  Pass False to compile the original
        ``for(i=N; i; i--)`` form (used by the loop-form ablation).
        """
        fko = FKO(machine)
        analysis = fko.analyze(spec.hil)
        params = self.decide(spec, analysis, machine, context, n)
        if not modified_source and spec.loop_form == "downcount":
            # the original source form defeats icc's vectorizer
            params = params.copy(sv=False)
        return fko.compile(spec.hil, params)

    def build(self, spec: KernelSpec, machine: MachineConfig,
              context: Context, n: int,
              modified_source: bool = True) -> ReferenceBuild:
        compiled = self.compile(spec, machine, context, n, modified_source)
        timing = Timer(machine, context, n).time(compiled, spec)
        return ReferenceBuild(self.name, spec, compiled, timing)
