"""The three modeled native-compiler policies (gcc, icc, icc+prof)."""

from __future__ import annotations

from ..fko import TransformParams
from ..fko.analysis import KernelAnalysis
from ..fko.params import PrefetchParams
from ..ir import PrefetchHint
from ..kernels.blas1 import KernelSpec
from ..machine.config import MachineConfig
from ..machine.timing import Context
from .base import ModeledCompiler


class Gcc(ModeledCompiler):
    """gcc 3.x at the paper's flags: no auto-vectorization, no software
    prefetch; ``-funroll-all-loops`` unrolls modestly."""

    name = "gcc"

    def flags(self, machine: MachineConfig) -> str:
        if machine.name == "Opteron":
            return "-fomit-frame-pointer -O -mfpmath=387 -m64"
        return "-fomit-frame-pointer -O3 -funroll-all-loops"

    def decide(self, spec: KernelSpec, analysis: KernelAnalysis,
               machine: MachineConfig, context: Context,
               n: int) -> TransformParams:
        return TransformParams(sv=False, unroll=4, lc=True, ae=1, wnt=False)


class Icc(ModeledCompiler):
    """icc 8.0: vectorizes canonical loops, schedules software prefetch
    at a fixed distance chosen from Intel-machine assumptions, unrolls
    vector loops once.  No WNT, no accumulator expansion at these flags.

    The prefetch heuristic is static: ``prefetchnta`` at 8 cache lines.
    On the P4E that is a reasonable (if conservative) pick; on the
    Opteron nobody retuned it — the paper's point about compilers that
    are "not yet (or will never be) fully tuned to the new platform".
    """

    name = "icc"

    def flags(self, machine: MachineConfig) -> str:
        return "-xW -O3 -mp1 -static" if machine.name == "Opteron" \
            else "-xP -O3 -mp1 -static"

    def decide(self, spec: KernelSpec, analysis: KernelAnalysis,
               machine: MachineConfig, context: Context,
               n: int) -> TransformParams:
        params = TransformParams(sv=analysis.vectorizable, unroll=2,
                                 lc=True, ae=1, wnt=False)
        # Static P4-generation heuristic distance.  On the Intel target
        # (-xP) icc prefetches every stream, including read-for-ownership
        # prefetch of stored arrays; its RFO-profitability models are
        # Intel-specific, so under -xW on the Opteron only pure input
        # streams get prefetched — "optimizing for an architecture upon
        # which compilers are not yet well-tuned (and may never be
        # well-tuned)" (section 1).
        dist = 8 * 64
        for arr in analysis.prefetch_arrays:
            if machine.name == "Opteron" and arr in analysis.output_arrays:
                continue
            params.prefetch[arr] = PrefetchParams(PrefetchHint.NTA, dist)
        return params


class IccProf(Icc):
    """icc 8.0 with profile feedback gathered on the timed data.

    Profiling tells icc the trip count.  For long streaming loops it
    "blindly applies WNT" (section 3.3) and unrolls more aggressively;
    for short (cache-resident) trip counts it leaves stores temporal.
    """

    name = "icc+prof"
    #: trip count above which icc's profile feedback treats the loop as
    #: streaming (no cache reuse expected)
    STREAMING_N = 8192

    def decide(self, spec: KernelSpec, analysis: KernelAnalysis,
               machine: MachineConfig, context: Context,
               n: int) -> TransformParams:
        params = super().decide(spec, analysis, machine, context, n)
        params = params.copy(unroll=4)
        if n >= self.STREAMING_N and analysis.output_arrays:
            # the blind bit: WNT applied wherever the profile says the
            # operand is not re-read soon — with no idea whether this
            # machine's WNT path tolerates read-write streams
            params = params.copy(wnt=True)
        return params


ALL_COMPILERS = (Gcc(), Icc(), IccProf())


def get_compiler(name: str) -> ModeledCompiler:
    for c in ALL_COMPILERS:
        if c.name == name:
            return c
    raise KeyError(f"unknown modeled compiler {name!r}")
