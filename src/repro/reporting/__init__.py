"""Text rendering of experiment results (tables + ASCII bar charts)."""

from .tables import bar_chart, format_table, percent_of_best

__all__ = ["bar_chart", "format_table", "percent_of_best"]
