"""Plain-text tables and bar charts for the experiment harnesses.

The paper presents results as grouped bar charts (Figures 2-5, 7) and
tables (1-3).  The harnesses emit the same data as aligned text tables
plus ASCII bar charts, which is what a terminal reproduction can do
without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

Number = Union[int, float]


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "", floatfmt: str = "{:.1f}") -> str:
    """Render rows as an aligned monospace table."""
    def cell(x) -> str:
        if isinstance(x, float):
            return floatfmt.format(x)
        return str(x)

    str_rows = [[cell(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) if i else c.ljust(w)
                         for i, (c, w) in enumerate(zip(cells, widths)))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def bar_chart(labels: Sequence[str], series: Dict[str, Sequence[Number]],
              title: str = "", width: int = 46, unit: str = "",
              vmax: Optional[float] = None) -> str:
    """Grouped horizontal ASCII bar chart: one group per label, one bar
    per series (the shape of the paper's figures)."""
    all_vals = [v for vals in series.values() for v in vals]
    top = vmax if vmax is not None else (max(all_vals) if all_vals else 1.0)
    top = top or 1.0
    name_w = max((len(s) for s in series), default=4)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for i, label in enumerate(labels):
        lines.append(f"{label}:")
        for sname, vals in series.items():
            v = vals[i]
            n = int(round(width * v / top))
            bar = "#" * max(0, min(width, n))
            lines.append(f"  {sname.ljust(name_w)} |{bar:<{width}}| "
                         f"{v:8.1f}{unit}")
    return "\n".join(lines)


def percent_of_best(rows: Dict[str, List[float]]) -> Dict[str, List[float]]:
    """Convert per-method MFLOPS columns to the paper's percent-of-best
    presentation: for each kernel position, divide by the column max."""
    methods = list(rows)
    n = len(next(iter(rows.values()))) if rows else 0
    out: Dict[str, List[float]] = {m: [] for m in methods}
    for i in range(n):
        best = max(rows[m][i] for m in methods) or 1.0
        for m in methods:
            out[m].append(100.0 * rows[m][i] / best)
    return out
