"""Iterative search drivers — the empirical half of ifko (section 2.3)."""

from .space import (DEFAULT_AES, DEFAULT_DIST_LINES, DEFAULT_UNROLLS,
                    SearchSpace, build_space)
from .linesearch import PHASES, Evaluator, LineSearch, SearchResult
from .drivers import TunedKernel, compile_default, tune_kernel
from .alternatives import (STRATEGIES, exhaustive_search, genetic_search,
                           random_search, simulated_annealing)

__all__ = ["DEFAULT_AES", "DEFAULT_DIST_LINES", "DEFAULT_UNROLLS",
           "SearchSpace", "build_space", "PHASES", "Evaluator",
           "LineSearch", "SearchResult", "TunedKernel", "compile_default",
           "tune_kernel", "STRATEGIES", "exhaustive_search",
           "genetic_search", "random_search", "simulated_annealing"]
