"""Iterative search drivers — the empirical half of ifko (section 2.3).

:mod:`~repro.search.strategies` defines the seeded ask/tell
:class:`Searcher` protocol and the name-based strategy registry;
:mod:`~repro.search.linesearch` is the paper's modified line search
(the first registered strategy); :mod:`~repro.search.engine` is the
batch engine that runs many searches (and many candidate evaluations)
in parallel behind the :class:`TuningSession` API, with a persistent
evaluation cache (:mod:`~repro.search.evalcache`), JSONL search traces
(:mod:`~repro.search.trace`) and checkpoint/resume.
"""

from .space import (DEFAULT_AES, DEFAULT_DIST_LINES, DEFAULT_UNROLLS,
                    SearchSpace, build_space)
from .strategies import (SEARCHERS, AnnealSearch, BatchEvaluator, Evaluator,
                         ExhaustiveSearch, GeneticSearch, RandomSearch,
                         Searcher, SurrogateSearch, TransferSearch,
                         make_searcher, register_searcher, searcher_names,
                         split_strategy, valid_strategy)
from .warmstart import (WarmEntry, load_entries, lookup_warm_start,
                        write_warm_entry)
from .linesearch import PHASES, LineSearch, SearchResult
from .config import TuneConfig
from .drivers import TunedKernel, compile_default, tune_kernel
from .engine import (BatchResult, EngineStats, TuningJob, TuningSession,
                     evaluate_params, registry_jobs)
from .evalcache import EvalCache, eval_key
from .scheduler import BudgetLedger, FairQueue, InflightTable, Scheduler
from .trace import (TRACE_VERSION, TraceEvents, TraceStream,
                    TraceWriter, read_trace, render_trace_summary,
                    summarize_trace)
from .alternatives import (STRATEGIES, exhaustive_search, genetic_search,
                           random_search, simulated_annealing)

__all__ = ["DEFAULT_AES", "DEFAULT_DIST_LINES", "DEFAULT_UNROLLS",
           "SearchSpace", "build_space", "SEARCHERS", "Searcher",
           "make_searcher", "register_searcher", "searcher_names",
           "split_strategy", "valid_strategy",
           "AnnealSearch", "ExhaustiveSearch", "GeneticSearch",
           "RandomSearch", "SurrogateSearch", "TransferSearch",
           "WarmEntry", "load_entries", "lookup_warm_start",
           "write_warm_entry", "PHASES", "BatchEvaluator",
           "Evaluator", "LineSearch", "SearchResult", "TuneConfig",
           "TunedKernel", "compile_default", "tune_kernel",
           "BatchResult", "EngineStats", "TuningJob", "TuningSession",
           "evaluate_params", "registry_jobs", "EvalCache", "eval_key",
           "BudgetLedger", "FairQueue", "InflightTable", "Scheduler",
           "TRACE_VERSION", "TraceEvents", "TraceWriter",
           "read_trace", "render_trace_summary", "TraceStream",
           "summarize_trace", "STRATEGIES", "exhaustive_search",
           "genetic_search", "random_search", "simulated_annealing"]
