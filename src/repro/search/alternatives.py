"""Alternative search strategies over the same optimization space.

"There are several ways of performing this search, including simulated
annealing and genetic algorithms.  We currently use a much simpler
technique, a modified line search." (section 2.3)

This module implements the alternatives the paper names — plus plain
random sampling and a small exhaustive grid — behind one interface, so
the paper's argument ("a simple but intelligently designed search ...
reduces the problem of search to a low order term") can be tested
rather than taken on faith.  See ``benchmarks/bench_ablations.py`` and
the search-strategy example.

All strategies share the evaluation-count budget accounting and cache
of :class:`~repro.search.linesearch.LineSearch`, so comparisons are at
equal measured-compilation cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SearchError
from ..fko.params import PrefetchParams, TransformParams
from ..ir import PrefetchHint
from .linesearch import Evaluator, SearchResult
from .space import SearchSpace


@dataclass
class _Budgeted:
    """Shared evaluation bookkeeping (cache + budget) for the strategies."""

    evaluate_raw: Evaluator
    max_evals: int
    cache: Dict[Tuple, float] = field(default_factory=dict)
    n_evaluations: int = 0
    history: List[Tuple[str, Tuple, float]] = field(default_factory=list)

    def __call__(self, params: TransformParams, phase: str = "") -> float:
        key = params.key()
        if key in self.cache:
            return self.cache[key]
        if self.n_evaluations >= self.max_evals:
            return float("inf")
        self.n_evaluations += 1
        cycles = self.evaluate_raw(params)
        self.cache[key] = cycles
        self.history.append((phase, key, cycles))
        return cycles


def _random_point(space: SearchSpace, rng: np.random.Generator,
                  ) -> TransformParams:
    p = TransformParams(
        sv=bool(rng.choice(space.sv_options)),
        unroll=int(rng.choice(space.unroll_options)),
        ae=int(rng.choice(space.ae_options)),
        wnt=bool(rng.choice(space.wnt_options)),
    )
    for arr in space.prefetch_arrays:
        d = int(rng.choice(space.dist_options))
        h = rng.choice(space.hint_options) if d > 0 else None
        p.prefetch[arr] = PrefetchParams(h, d)
    return p


def _neighbor(space: SearchSpace, rng: np.random.Generator,
              params: TransformParams) -> TransformParams:
    """One random single-coordinate move (the annealer's proposal)."""
    moves = ["unroll", "ae"]
    if len(space.sv_options) > 1:
        moves.append("sv")
    if len(space.wnt_options) > 1:
        moves.append("wnt")
    for arr in space.prefetch_arrays:
        moves.append(f"dist:{arr}")
        moves.append(f"hint:{arr}")
    move = rng.choice(moves)

    def step(options, value):
        i = options.index(value) if value in options else 0
        j = min(len(options) - 1, max(0, i + int(rng.choice([-1, 1]))))
        return options[j]

    if move == "sv":
        return params.copy(sv=not params.sv)
    if move == "wnt":
        return params.copy(wnt=not params.wnt)
    if move == "unroll":
        return params.copy(unroll=step(space.unroll_options, params.unroll))
    if move == "ae":
        return params.copy(ae=step(space.ae_options, params.ae))
    kind, arr = move.split(":")
    pf = params.pf(arr)
    if kind == "dist":
        d = step(space.dist_options, pf.dist)
        h = (pf.hint or PrefetchHint.NTA) if d > 0 else None
        return params.with_pf(arr, h, d)
    hints = list(space.hint_options)
    h = hints[int(rng.integers(len(hints)))]
    d = pf.dist if pf.dist > 0 else space.line * 2
    return params.with_pf(arr, h, d)


# ---------------------------------------------------------------------------
# strategies

def random_search(evaluate: Evaluator, space: SearchSpace,
                  start: TransformParams, max_evals: int = 100,
                  seed: int = 0) -> SearchResult:
    """Uniform random sampling of the space (the geometry-only baseline)."""
    if max_evals <= 0:
        raise SearchError("max_evals must be positive")
    budget = _Budgeted(evaluate, max_evals)
    rng = np.random.default_rng(seed)
    best_params = start
    best = budget(start, "start")
    start_cycles = best
    for _ in range(max_evals * 20):
        if budget.n_evaluations >= max_evals:
            break
        cand = _random_point(space, rng)
        c = budget(cand, "random")
        if c < best:
            best, best_params = c, cand
    return SearchResult(best_params=best_params, best_cycles=best,
                        start_cycles=start_cycles,
                        n_evaluations=budget.n_evaluations,
                        history=budget.history)


def simulated_annealing(evaluate: Evaluator, space: SearchSpace,
                        start: TransformParams, max_evals: int = 100,
                        seed: int = 0, t0: float = 0.10,
                        cooling: float = 0.97) -> SearchResult:
    """Single-coordinate-move simulated annealing.

    Temperature is relative (fraction of current cycles): a move that is
    ``d`` fractionally worse is accepted with probability
    ``exp(-d / T)``; T cools geometrically per evaluation.
    """
    if max_evals <= 0:
        raise SearchError("max_evals must be positive")
    budget = _Budgeted(evaluate, max_evals)
    rng = np.random.default_rng(seed)
    cur = start
    cur_c = budget(start, "start")
    start_cycles = cur_c
    best, best_c = cur, cur_c
    temp = t0
    for _ in range(max_evals * 20):
        if budget.n_evaluations >= max_evals:
            break
        cand = _neighbor(space, rng, cur)
        c = budget(cand, "anneal")
        if not math.isfinite(c):
            break
        delta = (c - cur_c) / max(cur_c, 1e-9)
        if delta <= 0 or rng.random() < math.exp(-delta / max(temp, 1e-6)):
            cur, cur_c = cand, c
        if c < best_c:
            best, best_c = cand, c
        temp *= cooling
    return SearchResult(best_params=best, best_cycles=best_c,
                        start_cycles=start_cycles,
                        n_evaluations=budget.n_evaluations,
                        history=budget.history)


def genetic_search(evaluate: Evaluator, space: SearchSpace,
                   start: TransformParams, max_evals: int = 100,
                   seed: int = 0, population: int = 12,
                   elite: int = 3, mutation: float = 0.35) -> SearchResult:
    """A small generational GA: tournament-free elitist selection,
    uniform crossover over the parameter coordinates, single-coordinate
    mutation."""
    if max_evals <= 0:
        raise SearchError("max_evals must be positive")
    budget = _Budgeted(evaluate, max_evals)
    rng = np.random.default_rng(seed)

    def crossover(a: TransformParams, b: TransformParams) -> TransformParams:
        child = TransformParams(
            sv=a.sv if rng.random() < 0.5 else b.sv,
            unroll=a.unroll if rng.random() < 0.5 else b.unroll,
            ae=a.ae if rng.random() < 0.5 else b.ae,
            wnt=a.wnt if rng.random() < 0.5 else b.wnt)
        for arr in space.prefetch_arrays:
            src = a if rng.random() < 0.5 else b
            child.prefetch[arr] = src.pf(arr)
        return child

    # generation 0: the seed plus random immigrants
    pop: List[Tuple[float, TransformParams]] = []
    pop.append((budget(start, "gen0"), start))
    start_cycles = pop[0][0]
    while len(pop) < population and budget.n_evaluations < max_evals:
        cand = _random_point(space, rng)
        pop.append((budget(cand, "gen0"), cand))

    for _gen in range(max_evals):
        if budget.n_evaluations >= max_evals:
            break
        pop.sort(key=lambda t: t[0])
        parents = pop[:max(elite, 2)]
        children: List[Tuple[float, TransformParams]] = list(parents)
        proposals = 0
        while len(children) < population \
                and budget.n_evaluations < max_evals \
                and proposals < population * 20:
            proposals += 1
            i = int(rng.integers(len(parents)))
            j = int(rng.integers(len(parents)))
            child = crossover(parents[i][1], parents[j][1])
            if rng.random() < mutation:
                child = _neighbor(space, rng, child)
            children.append((budget(child, "ga"), child))
        if proposals >= population * 20 and len(children) <= len(parents):
            break  # space exhausted: every proposal is already cached
        pop = children

    pop.sort(key=lambda t: t[0])
    best_c, best = pop[0]
    return SearchResult(best_params=best, best_cycles=best_c,
                        start_cycles=start_cycles,
                        n_evaluations=budget.n_evaluations,
                        history=budget.history)


def exhaustive_search(evaluate: Evaluator, space: SearchSpace,
                      start: TransformParams,
                      max_evals: int = 100000) -> SearchResult:
    """Full cross-product sweep, restricted to a *shared* prefetch
    distance/hint across arrays to keep it tractable.  The gold standard
    the cheap searches are judged against in the ablation."""
    budget = _Budgeted(evaluate, max_evals)
    best_params = start
    best = budget(start, "start")
    start_cycles = best
    pf_options: List[Tuple[Optional[PrefetchHint], int]] = [(None, 0)]
    pf_options += [(h, d) for d in space.dist_options if d > 0
                   for h in space.hint_options]
    for sv in space.sv_options:
        for wnt in space.wnt_options:
            for ur in space.unroll_options:
                for ae in space.ae_options:
                    for hint, dist in pf_options:
                        p = TransformParams(sv=sv, unroll=ur, ae=ae, wnt=wnt)
                        for arr in space.prefetch_arrays:
                            p.prefetch[arr] = PrefetchParams(hint, dist)
                        c = budget(p, "grid")
                        if c < best:
                            best, best_params = c, p
    return SearchResult(best_params=best_params, best_cycles=best,
                        start_cycles=start_cycles,
                        n_evaluations=budget.n_evaluations,
                        history=budget.history)


STRATEGIES: Dict[str, Callable] = {
    "random": random_search,
    "anneal": simulated_annealing,
    "genetic": genetic_search,
    "exhaustive": exhaustive_search,
}
