"""Functional fronts over the alternative search strategies.

"There are several ways of performing this search, including simulated
annealing and genetic algorithms.  We currently use a much simpler
technique, a modified line search." (section 2.3)

The strategies themselves live in :mod:`repro.search.strategies` as
ask/tell :class:`~repro.search.strategies.Searcher` classes (registered
as ``random`` / ``anneal`` / ``genetic`` / ``exhaustive``); these
one-call wrappers keep the original functional interface for ablation
scripts and notebooks that just want ``result = strategy(evaluate,
space, start, budget)``.  All strategies share the same budget
accounting and memo cache (the :class:`Searcher` base class), so
comparisons are at equal measured-compilation cost.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..fko.params import TransformParams
from .linesearch import SearchResult
from .space import SearchSpace
from .strategies import (AnnealSearch, Evaluator, ExhaustiveSearch,
                         GeneticSearch, RandomSearch)


def random_search(evaluate: Evaluator, space: SearchSpace,
                  start: TransformParams, max_evals: int = 100,
                  seed: int = 0) -> SearchResult:
    """Uniform random sampling of the space (the geometry-only baseline)."""
    return RandomSearch(space, start, max_evals=max_evals,
                        seed=seed).run(evaluate)


def simulated_annealing(evaluate: Evaluator, space: SearchSpace,
                        start: TransformParams, max_evals: int = 100,
                        seed: int = 0, t0: float = 0.05,
                        cooling: float = 0.95,
                        explore: float = 0.85) -> SearchResult:
    """Explore-then-anneal simulated annealing (see
    :class:`~repro.search.strategies.AnnealSearch`)."""
    return AnnealSearch(space, start, t0=t0, cooling=cooling,
                        explore=explore, max_evals=max_evals,
                        seed=seed).run(evaluate)


def genetic_search(evaluate: Evaluator, space: SearchSpace,
                   start: TransformParams, max_evals: int = 100,
                   seed: int = 0, population: int = 12,
                   elite: int = 3, mutation: float = 0.35) -> SearchResult:
    """A small generational GA (see
    :class:`~repro.search.strategies.GeneticSearch`)."""
    return GeneticSearch(space, start, population=population, elite=elite,
                         mutation=mutation, max_evals=max_evals,
                         seed=seed).run(evaluate)


def exhaustive_search(evaluate: Evaluator, space: SearchSpace,
                      start: TransformParams,
                      max_evals: int = 100000) -> SearchResult:
    """Full cross-product sweep with a shared prefetch configuration —
    the gold standard the cheap searches are judged against."""
    return ExhaustiveSearch(space, start,
                            max_evals=max_evals).run(evaluate)


STRATEGIES: Dict[str, Callable] = {
    "random": random_search,
    "anneal": simulated_annealing,
    "genetic": genetic_search,
    "exhaustive": exhaustive_search,
}
