"""Deprecated functional fronts over the alternative search strategies.

"There are several ways of performing this search, including simulated
annealing and genetic algorithms.  We currently use a much simpler
technique, a modified line search." (section 2.3)

The strategies themselves live in :mod:`repro.search.strategies` as
ask/tell :class:`~repro.search.strategies.Searcher` classes (registered
as ``random`` / ``anneal`` / ``genetic`` / ``exhaustive``).  These
one-call wrappers predate the registry; they are now thin shims that
resolve their class through :func:`~repro.search.strategies.make_searcher`
— the single construction path the engine, the CLI and the service
share — and emit a :class:`DeprecationWarning` pointing callers there.
Behavior is unchanged: same classes, same budget accounting, same memo
cache, bit-identical results for equal arguments.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict

from ..fko.params import TransformParams
from .linesearch import SearchResult
from .space import SearchSpace
from .strategies import Evaluator, make_searcher


def _shim(name: str, evaluate: Evaluator, space: SearchSpace,
          start: TransformParams, max_evals: int,
          **opts) -> SearchResult:
    warnings.warn(
        f"repro.search.alternatives.{_SHIM_NAMES[name]} is deprecated; "
        f"use make_searcher({name!r}, space, start, ...).run(evaluate) "
        f"or TuneConfig(strategy={name!r})",
        DeprecationWarning, stacklevel=3)
    return make_searcher(name, space, start, max_evals=max_evals,
                         **opts).run(evaluate)


def random_search(evaluate: Evaluator, space: SearchSpace,
                  start: TransformParams, max_evals: int = 100,
                  seed: int = 0) -> SearchResult:
    """Deprecated shim: uniform random sampling of the space (the
    geometry-only baseline)."""
    return _shim("random", evaluate, space, start, max_evals, seed=seed)


def simulated_annealing(evaluate: Evaluator, space: SearchSpace,
                        start: TransformParams, max_evals: int = 100,
                        seed: int = 0, t0: float = 0.05,
                        cooling: float = 0.95,
                        explore: float = 0.85) -> SearchResult:
    """Deprecated shim: explore-then-anneal simulated annealing (see
    :class:`~repro.search.strategies.AnnealSearch`)."""
    return _shim("anneal", evaluate, space, start, max_evals, seed=seed,
                 t0=t0, cooling=cooling, explore=explore)


def genetic_search(evaluate: Evaluator, space: SearchSpace,
                   start: TransformParams, max_evals: int = 100,
                   seed: int = 0, population: int = 12,
                   elite: int = 3, mutation: float = 0.35) -> SearchResult:
    """Deprecated shim: a small generational GA (see
    :class:`~repro.search.strategies.GeneticSearch`)."""
    return _shim("genetic", evaluate, space, start, max_evals, seed=seed,
                 population=population, elite=elite, mutation=mutation)


def exhaustive_search(evaluate: Evaluator, space: SearchSpace,
                      start: TransformParams,
                      max_evals: int = 100000) -> SearchResult:
    """Deprecated shim: full cross-product sweep with a shared prefetch
    configuration — the gold standard the cheap searches are judged
    against."""
    return _shim("exhaustive", evaluate, space, start, max_evals)


_SHIM_NAMES = {
    "random": "random_search",
    "anneal": "simulated_annealing",
    "genetic": "genetic_search",
    "exhaustive": "exhaustive_search",
}

STRATEGIES: Dict[str, Callable] = {
    "random": random_search,
    "anneal": simulated_annealing,
    "genetic": genetic_search,
    "exhaustive": exhaustive_search,
}
