"""Tuning configuration — the one options object for ifko runs.

`tune_kernel` historically accreted positional keywords (``max_evals``,
``space``, ``run_tester``, ``start``); the engine adds five more
(``jobs``, ``cache_dir``, ``trace``, ``timeout``, ``resume``) and the
strategy layer two more (``strategy``, ``seed``).  Rather than an
eleven-keyword signature, everything that shapes *how* a search runs
lives here, and the drivers take ``config=TuneConfig(...)`` — the only
spelling (the pre-engine keyword shim was removed after its
deprecation window).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:   # only type hints; avoids import cycles
    from ..fko.params import TransformParams
    from .space import SearchSpace


@dataclass
class TuneConfig:
    """Everything that shapes one ifko search except the problem itself
    (kernel, machine, context, N stay as positional arguments)."""

    #: evaluation budget of the line search
    max_evals: int = 400
    #: explicit search space (default: built from FKO's analysis)
    space: Optional["SearchSpace"] = None
    #: verify the winning kernel against the NumPy reference
    run_tester: bool = True
    #: starting point (default: FKO's static defaults)
    start: Optional["TransformParams"] = None
    #: worker processes; 1 = serial (no pool is ever created)
    jobs: int = 1
    #: directory of the persistent, content-addressed evaluation cache
    #: shared across runs and processes; None disables persistence
    cache_dir: Optional[str] = None
    #: path of a JSON-lines search trace (one event per evaluation /
    #: phase / cache hit); None disables tracing
    trace: Optional[str] = None
    #: wall-clock seconds allowed per evaluation; None = unlimited
    timeout: Optional[float] = None
    #: path of a batch checkpoint file: completed jobs are recorded
    #: there and skipped when the batch is re-run; None disables
    resume: Optional[str] = None
    #: make the BF extension searchable (paper lists it as planned)
    enable_block_fetch: bool = False
    #: fraction a candidate must win by to displace the incumbent
    min_gain: float = 0.005
    #: global-search strategy, by registry name ("line" is the paper's
    #: modified line search; see ``repro.search.searcher_names()``)
    strategy: str = "line"
    #: seed of the strategy's random stream (the line search ignores it
    #: — the sweep is deterministic by construction)
    seed: int = 0
    #: steady-state extrapolation in the timing model (bit-identical to
    #: the full walk; False forces the full per-line walk everywhere —
    #: the escape hatch the equivalence suite exercises)
    fast_timing: bool = True
    #: collect pass-level compile spans and cycle attribution per eval
    #: and fold them into the trace (schema v2 ``pass`` / ``attribution``
    #: events).  Observation never perturbs results: cycles, cache keys
    #: and search decisions are bit-identical with it on or off
    observe: bool = False
    #: run the IR verifier at every pass boundary of every evaluation's
    #: compile (the pipeline's ``debug_verify``).  Verification only
    #: observes: cycles, cache keys and search decisions are
    #: bit-identical with it on or off — a violation raises instead
    verify_ir: bool = False
    #: tester-check the winning kernel before it is returned/stored; a
    #: failure emits a ``best-rejected`` trace event and raises
    #: :class:`~repro.errors.KernelTestFailure` (``run_tester`` does the
    #: same check silently — ``test_best`` is the audited spelling)
    test_best: bool = False
    #: evaluation grouping grain: candidates of one search round are
    #: partitioned into prefix-sharing groups of at most this many and
    #: evaluated group-at-a-time (one worker payload per group under
    #: ``jobs > 1``).  Purely an evaluation-order/transport choice —
    #: cycles, cache keys, traces and search decisions are bit-identical
    #: for every value; 1 = today's per-candidate dispatch
    batch_size: int = 1
    #: the compiler's prefix-memoized compilation + the timer's shared
    #: walks (both bit-identical by construction; False forces every
    #: evaluation through the full pipeline and its own walk — the
    #: escape hatch the equivalence suite exercises)
    prefix_cache: bool = True
    #: directory of a ``repro serve`` result store to warm-start from:
    #: the engine wraps the strategy in the transfer layer and seeds it
    #: with the best params of the nearest previously-tuned problem
    #: (spelling variants canonicalize through the wire schema).  An
    #: operational knob like ``cache_dir`` — never part of a request's
    #: wire identity; None disables warm-starting
    warm_start: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_evals <= 0:
            raise ValueError(f"max_evals must be positive, "
                             f"got {self.max_evals}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, "
                             f"got {self.timeout}")
        # a negative min_gain would make every candidate "win" (each
        # move only needs to beat best * (1 - min_gain) > best), so the
        # search would thrash between equivalent points
        if self.min_gain < 0:
            raise ValueError(f"min_gain must be >= 0, got {self.min_gain}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, "
                             f"got {self.batch_size}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) \
                or self.seed < 0:
            raise ValueError(f"seed must be a non-negative integer, "
                             f"got {self.seed!r}")
        from .strategies import searcher_names, valid_strategy
        if not valid_strategy(self.strategy):
            raise ValueError(
                f"unknown search strategy {self.strategy!r}; valid "
                f"strategies: {', '.join(searcher_names())} "
                f"(or transfer:<strategy>)")

    def replace(self, **changes) -> "TuneConfig":
        return dataclasses.replace(self, **changes)

    def to_public_dict(self) -> dict:
        """The JSON-safe field subset — what the service daemon reports
        under ``GET /v1/stats``.  ``space`` and ``start`` are live
        objects (not wire data), so they are reported only by presence."""
        out = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if f.name in ("space", "start"):
                out[f.name] = None if value is None else "<set>"
            else:
                out[f.name] = value
        return out
