"""ifko's master search driver (the paper's Figure 1).

"The search first passes the input kernel to be optimized to FKO for
analysis.  FKO then provides feedback to the master search based on
this analysis. ... For each optimization of interest that takes an
empirically tuned parameter, the search invokes FKO to perform the
transformation, the timer to determine its effect on performance, and
the tester to ensure that the answer is correct."

:func:`tune_kernel` is "ifko": analysis -> line search over the space
-> best compiled kernel, verified by the tester.
:func:`compile_default` is plain "FKO": static defaults, no search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import KernelTestFailure
from ..fko import FKO, TransformParams
from ..fko.pipeline import CompiledKernel
from ..kernels.blas1 import KernelSpec
from ..machine.config import MachineConfig
from ..machine.timing import Context
from ..timing.timer import KernelTiming, Timer
from ..timing.tester import test_kernel
from .linesearch import LineSearch, SearchResult
from .space import SearchSpace, build_space


@dataclass
class TunedKernel:
    """The product of one ifko tuning run."""

    spec: KernelSpec
    machine: MachineConfig
    context: Context
    n: int
    compiled: CompiledKernel
    timing: KernelTiming
    search: Optional[SearchResult] = None

    @property
    def params(self) -> TransformParams:
        return self.compiled.params

    @property
    def mflops(self) -> float:
        return self.timing.mflops


def _make_evaluator(fko: FKO, spec: KernelSpec, timer: Timer):
    def evaluate(params: TransformParams) -> float:
        compiled = fko.compile(spec.hil, params)
        return timer.time(compiled, spec).cycles
    return evaluate


def compile_default(spec: KernelSpec, machine: MachineConfig,
                    context: Context, n: int) -> TunedKernel:
    """Plain FKO: static transformation defaults, no empirical search."""
    fko = FKO(machine)
    timer = Timer(machine, context, n)
    compiled = fko.compile(spec.hil)   # params=None -> defaults
    timing = timer.time(compiled, spec)
    return TunedKernel(spec=spec, machine=machine, context=context, n=n,
                       compiled=compiled, timing=timing)


def tune_kernel(spec: KernelSpec, machine: MachineConfig, context: Context,
                n: int, max_evals: int = 400,
                space: Optional[SearchSpace] = None,
                run_tester: bool = True,
                start: Optional[TransformParams] = None) -> TunedKernel:
    """ifko: iterative compilation of one kernel for one machine/context."""
    fko = FKO(machine)
    timer = Timer(machine, context, n)
    analysis = fko.analyze(spec.hil)
    if space is None:
        space = build_space(analysis, machine)
    if start is None:
        start = fko.defaults(spec.hil)

    search = LineSearch(_make_evaluator(fko, spec, timer), space, start,
                        max_evals=max_evals,
                        output_arrays=analysis.output_arrays)
    result = search.run()

    compiled = fko.compile(spec.hil, result.best_params)
    if run_tester:
        test_kernel(compiled, spec)   # "unnecessary in theory, useful in practice"
    timing = timer.time(compiled, spec)
    return TunedKernel(spec=spec, machine=machine, context=context, n=n,
                       compiled=compiled, timing=timing, search=result)
