"""ifko's master search driver (the paper's Figure 1).

"The search first passes the input kernel to be optimized to FKO for
analysis.  FKO then provides feedback to the master search based on
this analysis. ... For each optimization of interest that takes an
empirically tuned parameter, the search invokes FKO to perform the
transformation, the timer to determine its effect on performance, and
the tester to ensure that the answer is correct."

:func:`tune_kernel` is "ifko": analysis -> line search over the space
-> best compiled kernel, verified by the tester.
:func:`compile_default` is plain "FKO": static defaults, no search.

Both are thin fronts over :class:`repro.search.engine.TuningSession`;
how a search runs (budget, parallelism, caching, tracing, timeouts) is
configured through :class:`repro.search.config.TuneConfig`.  The
pre-engine keyword signature (``max_evals``/``space``/``run_tester``/
``start``) still works through a deprecation shim.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional

from ..fko import FKO, TransformParams
from ..fko.pipeline import CompiledKernel
from ..kernels import get_kernel
from ..kernels.blas1 import KernelSpec
from ..machine import Context, get_machine
from ..machine.config import MachineConfig
from ..timing.timer import KernelTiming
from .config import TuneConfig
from .linesearch import SearchResult


@dataclass
class TunedKernel:
    """The product of one ifko tuning run (``search=None`` when it came
    from :func:`compile_default` — same shape, no empirical search)."""

    spec: KernelSpec
    machine: MachineConfig
    context: Context
    n: int
    compiled: CompiledKernel
    timing: KernelTiming
    search: Optional[SearchResult] = None

    @property
    def params(self) -> TransformParams:
        return self.compiled.params

    @property
    def mflops(self) -> float:
        return self.timing.mflops

    # -- JSON round-trip (evaluation cache, checkpoints, result store) --
    def to_dict(self) -> Dict:
        """Summary form: the compiled IR is not serialized — FKO is
        deterministic, so ``from_dict`` recompiles it from the params."""
        return {"kernel": self.spec.name, "machine": self.machine.name,
                "context": self.context.value, "n": self.n,
                "params": self.params.to_dict(),
                "timing": self.timing.to_dict(),
                "search": self.search.to_dict() if self.search else None}

    @classmethod
    def from_dict(cls, data: Dict) -> "TunedKernel":
        spec = get_kernel(data["kernel"])
        machine = get_machine(data["machine"])
        params = TransformParams.from_dict(data["params"])
        compiled = FKO(machine).compile(spec.hil, params)
        search = (SearchResult.from_dict(data["search"])
                  if data.get("search") else None)
        return cls(spec=spec, machine=machine,
                   context=Context(data["context"]), n=int(data["n"]),
                   compiled=compiled,
                   timing=KernelTiming.from_dict(data["timing"]),
                   search=search)


_LEGACY_KEYS = ("max_evals", "space", "run_tester", "start")


def _fold_legacy(config: Optional[TuneConfig], legacy: Dict) -> TuneConfig:
    if legacy:
        unknown = set(legacy) - set(_LEGACY_KEYS)
        if unknown:
            raise TypeError(f"tune_kernel() got unexpected keyword "
                            f"argument(s) {sorted(unknown)}")
        warnings.warn(
            "passing max_evals/space/run_tester/start to tune_kernel() "
            "directly is deprecated; use config=TuneConfig(...)",
            DeprecationWarning, stacklevel=3)
        return (config or TuneConfig()).replace(**legacy)
    return config or TuneConfig()


def compile_default(spec: KernelSpec, machine: MachineConfig,
                    context: Context, n: int,
                    config: Optional[TuneConfig] = None) -> TunedKernel:
    """Plain FKO: static transformation defaults, no empirical search."""
    from .engine import TuningSession
    with TuningSession(config) as session:
        return session.compile_default(spec, machine, context, n)


def tune_kernel(spec: KernelSpec, machine: MachineConfig, context: Context,
                n: int, config: Optional[TuneConfig] = None,
                **legacy) -> TunedKernel:
    """ifko: iterative compilation of one kernel for one machine/context.

    ``config`` carries the how (budget, space, start point, tester,
    ``jobs``, ``cache_dir``, ``trace``, ``timeout``); a one-shot session
    is created around it.  For many kernels, or to share one pool and
    cache, hold a :class:`~repro.search.engine.TuningSession` instead.
    """
    config = _fold_legacy(config, legacy)
    from .engine import TuningSession
    with TuningSession(config) as session:
        return session.tune(spec, machine, context, n)
