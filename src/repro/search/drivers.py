"""ifko's master search driver (the paper's Figure 1).

"The search first passes the input kernel to be optimized to FKO for
analysis.  FKO then provides feedback to the master search based on
this analysis. ... For each optimization of interest that takes an
empirically tuned parameter, the search invokes FKO to perform the
transformation, the timer to determine its effect on performance, and
the tester to ensure that the answer is correct."

:func:`tune_kernel` is "ifko": analysis -> global search over the space
-> best compiled kernel, verified by the tester.
:func:`compile_default` is plain "FKO": static defaults, no search.

Both are thin fronts over :class:`repro.search.engine.TuningSession`;
how a search runs (budget, strategy, parallelism, caching, tracing,
timeouts) is configured through ``config=TuneConfig(...)`` — the only
spelling: the pre-engine keyword shim (``max_evals``/``space``/
``run_tester``/``start`` as direct keywords) finished its deprecation
window and was removed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..fko import FKO, TransformParams
from ..fko.pipeline import CompiledKernel
from ..kernels import get_kernel
from ..kernels.blas1 import KernelSpec
from ..machine import Context, get_machine
from ..machine.config import MachineConfig
from ..timing.timer import KernelTiming
from ..util import check_schema
from .config import TuneConfig
from .linesearch import SearchResult


@dataclass
class TunedKernel:
    """The product of one ifko tuning run (``search=None`` when it came
    from :func:`compile_default` — same shape, no empirical search)."""

    spec: KernelSpec
    machine: MachineConfig
    context: Context
    n: int
    compiled: CompiledKernel
    timing: KernelTiming
    search: Optional[SearchResult] = None

    @property
    def params(self) -> TransformParams:
        return self.compiled.params

    @property
    def mflops(self) -> float:
        return self.timing.mflops

    # -- JSON round-trip (evaluation cache, checkpoints, result store) --
    def to_dict(self) -> Dict:
        """Summary form: the compiled IR is not serialized — FKO is
        deterministic, so ``from_dict`` recompiles it from the params."""
        return {"schema": 1,
                "kernel": self.spec.name, "machine": self.machine.name,
                "context": self.context.value, "n": self.n,
                "params": self.params.to_dict(),
                "timing": self.timing.to_dict(),
                "search": self.search.to_dict() if self.search else None}

    @classmethod
    def from_dict(cls, data: Dict) -> "TunedKernel":
        check_schema(data, "TunedKernel")
        spec = get_kernel(data["kernel"])
        machine = get_machine(data["machine"])
        params = TransformParams.from_dict(data["params"])
        compiled = FKO(machine).compile(spec.hil, params)
        search = (SearchResult.from_dict(data["search"])
                  if data.get("search") else None)
        return cls(spec=spec, machine=machine,
                   context=Context(data["context"]), n=int(data["n"]),
                   compiled=compiled,
                   timing=KernelTiming.from_dict(data["timing"]),
                   search=search)


def compile_default(spec: KernelSpec, machine: MachineConfig,
                    context: Context, n: int,
                    config: Optional[TuneConfig] = None) -> TunedKernel:
    """Plain FKO: static transformation defaults, no empirical search."""
    from .engine import TuningSession
    with TuningSession(config) as session:
        return session.compile_default(spec, machine, context, n)


def tune_kernel(spec: KernelSpec, machine: MachineConfig, context: Context,
                n: int, config: Optional[TuneConfig] = None) -> TunedKernel:
    """ifko: iterative compilation of one kernel for one machine/context.

    ``config`` carries the how (budget, space, start point, tester,
    ``jobs``, ``cache_dir``, ``trace``, ``timeout``, ``strategy``,
    ``seed``); a one-shot session is created around it.  For many
    kernels, or to share one pool and cache, hold a
    :class:`~repro.search.engine.TuningSession` instead.
    """
    config = config or TuneConfig()
    from .engine import TuningSession
    with TuningSession(config) as session:
        return session.tune(spec, machine, context, n)
