"""The parallel batch-tuning engine behind the :class:`TuningSession` API.

The paper's evaluation tunes 10+ kernels x 2 machines x 2 contexts, and
each ifko run makes hundreds of compile+time evaluations.  All of that
work is embarrassingly parallel at two grains, and this module exploits
both through one ``concurrent.futures.ProcessPoolExecutor``:

* **across jobs** — independent (kernel, machine, context, N) tuning
  runs fan out whole, one search per worker process
  (:meth:`TuningSession.run`);
* **within a sweep** — a single search's candidate list fans out
  per-evaluation (:meth:`TuningSession.tune` with ``jobs > 1``).

Parallelism never changes the answer: every search strategy (the
ask/tell :class:`~repro.search.strategies.Searcher` protocol — line
search, random, annealing, genetic) charges its budget and reduces each
asked batch in candidate order regardless of who computed the cycle
counts, so ``jobs=N`` is bit-identical to ``jobs=1`` (the simulated
machines and the seeded timer noise are deterministic).

Around the pool the session layers the robustness an overnight tuning
run needs:

* a persistent content-addressed **evaluation cache**
  (:mod:`repro.search.evalcache`) shared across runs and processes;
* per-evaluation **timeouts**; :class:`~repro.errors.SimulationFault`
  is recorded immediately (the simulated machine is deterministic, so
  identical inputs fault identically — nothing to retry at the
  evaluation grain);
* **checkpoint/resume** of partially completed batches to a JSON state
  file;
* a JSON-lines **trace** (:mod:`repro.search.trace`) of every
  evaluation, cache hit and phase move;
* graceful **fallback to serial** when ``jobs=1`` or the pool dies.

Worker-pool lifecycle (and the fair-queue / in-flight-dedup / budget
primitives the service daemon builds on) live one layer down in
:mod:`repro.search.scheduler`; how requests arrive and results leave is
the transport layer's business — this session for in-process callers,
:mod:`repro.service` for HTTP clients.
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import pathlib
import signal
import tempfile
import threading
import time
import warnings
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import __version__
from ..errors import KernelTestFailure, ReproError, SimulationFault
from ..fko import FKO, TransformParams
from ..hil.tiling import nest_info
from ..kernels import KERNEL_ORDER, REGISTRY, get_kernel
from ..kernels.blas1 import KernelSpec
from ..machine import Context, get_machine, summarize
from ..machine.config import MachineConfig
from ..obs import metrics as _metrics
from ..obs.core import Collector, use as _obs_use
from ..timing.tester import test_kernel
from ..timing.timer import Timer, paper_n
from ..util import LRUCache
from .config import TuneConfig
from .drivers import TunedKernel
from .evalcache import EvalCache, eval_key
from .scheduler import Scheduler
from .space import build_space
from .strategies import Searcher, make_searcher
from .trace import TraceWriter


# ---------------------------------------------------------------------------
# one evaluation: compile + time, with timeout and retry

class EvalTimeout(ReproError):
    """An evaluation exceeded the configured per-evaluation timeout."""


class _alarm:
    """SIGALRM-based wall-clock guard around one evaluation.  A no-op
    when no timeout is set, off the main thread, or on platforms
    without SIGALRM (evaluations then simply run to completion)."""

    def __init__(self, seconds: Optional[float]):
        self.seconds = seconds
        self.active = (seconds is not None and hasattr(signal, "SIGALRM")
                       and threading.current_thread()
                       is threading.main_thread())
        self._prev = None

    def __enter__(self):
        if self.active:
            def _raise(signum, frame):
                raise EvalTimeout(f"evaluation exceeded {self.seconds}s")
            self._prev = signal.signal(signal.SIGALRM, _raise)
            signal.setitimer(signal.ITIMER_REAL, self.seconds)
        return self

    def __exit__(self, *exc):
        if self.active:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._prev)
        return False


def evaluate_params(fko: FKO, timer: Timer, hil: str,
                    params: TransformParams, flops: float,
                    ident_prefix: str,
                    timeout: Optional[float] = None,
                    observe: bool = False,
                    verify_ir: bool = False) -> Tuple[float, str, Dict]:
    """One compile+time.  Returns ``(cycles, status, meta)`` where
    status is ``ok`` | ``timeout`` | ``fault: ...``; failures come back
    as ``inf`` cycles (the sweep just never picks them) instead of
    killing a batch that has hours of work behind it.  ``meta`` reports
    whether the timing model's steady-state fast path fired.

    ``observe=True`` additionally collects pass-level compile telemetry
    (an :mod:`repro.obs` collector around the compile) and the timing
    model's cycle attribution, returned as ``meta["passes"]`` /
    ``meta["attribution"]``.  Observation reads state the compile and
    the simulator produce anyway, so cycles, cache keys and search
    decisions are bit-identical with it on or off.

    ``verify_ir=True`` runs the IR verifier at every pass boundary of
    the compile.  Like observation it never perturbs the result — a
    clean compile produces bit-identical cycles; a violation surfaces
    as an :class:`~repro.errors.IRVerifyError` fault instead of a
    silently miscompiled candidate.

    A :class:`SimulationFault` is terminal: the simulated machine is
    deterministic, so re-running the identical (kernel, params) inputs
    would fault identically — the fault is recorded immediately instead
    of compiling and timing a doomed candidate twice."""
    col = Collector() if observe else None
    try:
        with _alarm(timeout):
            if col is not None:
                with _obs_use(col):
                    compiled = fko.compile(hil, params,
                                           debug_verify=verify_ir)
            else:
                compiled = fko.compile(hil, params, debug_verify=verify_ir)
            # the share key asserts the compile's complete effective
            # identity, letting the timer reuse the walk of an earlier
            # bit-identical kernel (None when caching is disabled);
            # on a memoized walk the summary itself is skipped — the
            # shared key guarantees it would have been identical
            share = fko.share_key(hil, params, debug_verify=verify_ir)
            base = timer.peek_base(share)
            if base is None:
                nest = nest_info(hil) if isinstance(hil, str) else None
                if nest is not None:
                    # the tuned loop is the innermost level of a full
                    # nest: route through the analytic blocked-nest
                    # model (the per-line walk cannot cover O(N^3))
                    base = timer.base_nest(summarize(compiled.fn), nest,
                                           params.tiles(), share)
                else:
                    base = timer.base(summarize(compiled.fn), share)
            timing = timer.finish(base, flops,
                                  ident=f"{ident_prefix}{params.key()}")
    except SimulationFault as exc:
        return float("inf"), f"fault: {exc}", {"fast": False}
    except EvalTimeout:
        return float("inf"), "timeout", {"fast": False}
    raw = timing.raw
    meta = {"fast": bool(raw is not None
                         and raw.stats.lines_extrapolated > 0)}
    if col is not None:
        meta["passes"] = col.passes
        if raw is not None:
            meta["attribution"] = raw.attribution(timer.machine)
    return timing.cycles, "ok", meta


# ---------------------------------------------------------------------------
# pool workers (top-level so they pickle by name; the per-process
# FKO/Timer pairs are memoized because every candidate of a sweep
# shares them — bounded, because a long tune-all batch walks many
# (machine, context, N) combinations through the same worker)

_WORKER_FKOS = LRUCache(maxsize=4)
_WORKER_TOOLS = LRUCache(maxsize=8)


def _worker_tools(machine_name: str, context_value: str, n: int,
                  fast: bool = True,
                  prefix_cache: bool = True) -> Tuple[FKO, Timer]:
    # the FKO is keyed by machine alone: its compile caches are
    # context-independent, so sharing one instance across a job's
    # contexts halves the distinct compiles of an (OOC, in-L2) sweep
    fkey = (machine_name, bool(prefix_cache))
    fko = _WORKER_FKOS.get(fkey)
    if fko is None:
        fko = FKO(get_machine(machine_name), prefix_cache=prefix_cache)
        _WORKER_FKOS.put(fkey, fko)
    tkey = (machine_name, context_value, int(n), bool(fast))
    timer = _WORKER_TOOLS.get(tkey)
    if timer is None:
        timer = Timer(get_machine(machine_name), Context(context_value),
                      n, fast=fast)
        _WORKER_TOOLS.put(tkey, timer)
    return fko, timer


def _run_one(fko: FKO, timer: Timer, payload: Dict,
             params: TransformParams) -> Dict:
    t0 = time.perf_counter()
    cycles, status, meta = evaluate_params(fko, timer, payload["hil"],
                                           params, payload["flops"],
                                           payload["ident"],
                                           payload["timeout"],
                                           observe=payload.get("observe",
                                                               False),
                                           verify_ir=payload.get("verify_ir",
                                                                 False))
    out = {"cycles": cycles, "status": status,
           "wall": time.perf_counter() - t0, "fast": meta.get("fast")}
    if payload.get("observe"):
        out["passes"] = meta.get("passes")
        out["attribution"] = meta.get("attribution")
    return out


def _eval_worker(payload: Dict) -> Dict:
    """Evaluate one candidate in a worker (within-sweep fan-out)."""
    fko, timer = _worker_tools(payload["machine"], payload["context"],
                               payload["n"], payload.get("fast", True),
                               payload.get("prefix_cache", True))
    before = fko.cache_stats()
    tbefore = timer.cache_stats()
    out = _run_one(fko, timer, payload,
                   TransformParams.from_dict(payload["params"]))
    after = fko.cache_stats()
    tafter = timer.cache_stats()
    out["batch_prefix_hits"] = after["prefix_hits"] - before["prefix_hits"]
    out["batch_prefix_misses"] = (after["prefix_misses"]
                                  - before["prefix_misses"])
    out["batch_walk_hits"] = tafter["base_hits"] - tbefore["base_hits"]
    return out


def _eval_group_worker(payload: Dict) -> Dict:
    """Evaluate one prefix-sharing candidate group in a worker.  The
    group shares the worker FKO's compile caches and the worker timer's
    walk cache within a single payload, and ships the reuse-counter
    deltas home so the parent's batch counters stay batch-wide."""
    fko, timer = _worker_tools(payload["machine"], payload["context"],
                               payload["n"], payload.get("fast", True),
                               payload.get("prefix_cache", True))
    before = fko.cache_stats()
    tbefore = timer.cache_stats()
    outcomes = [_run_one(fko, timer, payload,
                         TransformParams.from_dict(p))
                for p in payload["params_list"]]
    after = fko.cache_stats()
    tafter = timer.cache_stats()
    return {"outcomes": outcomes,
            "batch_prefix_hits": after["prefix_hits"]
            - before["prefix_hits"],
            "batch_prefix_misses": after["prefix_misses"]
            - before["prefix_misses"],
            "batch_walk_hits": tafter["base_hits"] - tbefore["base_hits"]}


def _job_worker(payload: Dict) -> Dict:
    """Run one whole tuning job serially in a worker (job-level
    fan-out).  Trace events are buffered and shipped back so the parent
    stays the only writer of the trace file."""
    job = TuningJob.from_dict(payload["job"])
    config = TuneConfig(jobs=1, trace=None, resume=None,
                        **payload["config"])
    with TuningSession(config, buffer_events=True) as session:
        try:
            tuned = session.tune(job.kernel, job.machine, job.context, job.n,
                                 max_evals=job.max_evals)
            return {"ok": True, "result": tuned.to_dict(),
                    "events": session.drain_events(),
                    "stats": session.stats.to_dict()}
        except Exception as exc:   # noqa: BLE001 — report, parent decides
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}",
                    "events": session.drain_events(),
                    "stats": session.stats.to_dict()}


# ---------------------------------------------------------------------------
# jobs, stats, batch results

@dataclass
class TuningJob:
    """One unit of batch work: tune ``kernel`` on ``machine`` in
    ``context`` at size ``n``.  Kernel and machine are held by registry
    *name* so a job pickles as a handful of strings."""

    kernel: str
    machine: str
    context: Context
    n: int
    max_evals: Optional[int] = None    # per-job budget override

    def __post_init__(self):
        if isinstance(self.kernel, KernelSpec):
            self.kernel = self.kernel.name
        if isinstance(self.machine, MachineConfig):
            self.machine = self.machine.name
        # canonicalize aliases ("P4E", "pentium4", ...) so checkpoint
        # keys match however the job was constructed
        self.machine = get_machine(self.machine).name.lower()
        if isinstance(self.context, str):
            self.context = Context(self.context)
        if self.kernel not in REGISTRY:
            raise KeyError(f"unknown kernel {self.kernel!r}")

    def key(self) -> str:
        return f"{self.kernel}:{self.machine}:{self.context.value}:{self.n}"

    def to_dict(self) -> Dict:
        return {"kernel": self.kernel, "machine": self.machine,
                "context": self.context.value, "n": self.n,
                "max_evals": self.max_evals}

    @staticmethod
    def from_dict(data: Dict) -> "TuningJob":
        return TuningJob(kernel=data["kernel"], machine=data["machine"],
                         context=Context(data["context"]), n=int(data["n"]),
                         max_evals=data.get("max_evals"))


def registry_jobs(kernels: Optional[Sequence[str]] = None,
                  machines: Sequence[str] = ("p4e",),
                  contexts: Sequence[Context] = (Context.OUT_OF_CACHE,),
                  n: Optional[int] = None) -> List[TuningJob]:
    """The full batch for ``tune-all``: every registry kernel crossed
    with the requested machines and contexts (paper N per context when
    ``n`` is None)."""
    jobs = []
    for kernel in (kernels or KERNEL_ORDER):
        for machine in machines:
            for context in contexts:
                jobs.append(TuningJob(kernel, machine, context,
                                      n or paper_n(context)))
    return jobs


@dataclass
class EngineStats:
    """Counters across one session (workers report theirs back and the
    parent merges, so these are batch-wide totals)."""

    evaluations: int = 0      # real compile+time runs
    cache_hits: int = 0       # served from the persistent cache
    timeouts: int = 0
    faults: int = 0           # evaluations lost to a SimulationFault
    fast_path: int = 0        # evaluations timed via steady-state replay
    slow_path: int = 0        # evaluations that walked every line
    jobs_completed: int = 0
    jobs_resumed: int = 0
    # batched-evaluation reuse (compile prefix snapshots forked /
    # full pipelines run, and walks served from the timer's shared
    # cache); the session and its workers both contribute
    batch_prefix_hits: int = 0
    batch_prefix_misses: int = 0
    batch_walk_hits: int = 0
    batch_groups: int = 0      # evaluation groups dispatched
    batch_size_total: int = 0  # candidates across those groups

    def to_dict(self) -> Dict:
        return dict(self.__dict__)

    def merge(self, other: Optional[Dict]) -> None:
        for k, v in (other or {}).items():
            if hasattr(self, k):
                setattr(self, k, getattr(self, k) + int(v))

    def throughput(self, wall: float) -> float:
        """Real evaluations per second over ``wall`` seconds."""
        return self.evaluations / wall if wall > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        seen = self.evaluations + self.cache_hits
        return self.cache_hits / seen if seen else 0.0


@dataclass
class BatchResult:
    """What :meth:`TuningSession.run` hands back."""

    results: Dict[str, TunedKernel]
    errors: Dict[str, str] = field(default_factory=dict)
    resumed: List[str] = field(default_factory=list)
    wall: float = 0.0

    def __getitem__(self, job_key: str) -> TunedKernel:
        return self.results[job_key]

    def __len__(self) -> int:
        return len(self.results)

    def to_dict(self) -> Dict:
        return {"results": {k: tk.to_dict()
                            for k, tk in self.results.items()},
                "errors": dict(self.errors),
                "resumed": list(self.resumed), "wall": self.wall}


# ---------------------------------------------------------------------------
# the cache-, trace- and fault-aware evaluator handed to LineSearch

class _Evaluator:
    def __init__(self, session: "TuningSession", spec: KernelSpec,
                 machine: MachineConfig, context: Context, n: int,
                 fko: FKO, timer: Timer):
        self.session = session
        self.spec = spec
        self.machine = machine
        self.context = context
        self.n = n
        self.fko = fko
        self.timer = timer
        self.flops = spec.flops(n)
        self.ident = f"{spec.name}|"
        self.job = (f"{spec.name}:{machine.name.lower()}"
                    f":{context.value}:{n}")
        self.search: Optional[Searcher] = None   # set post-construction

    def _phase(self) -> str:
        return self.search.phase if self.search is not None else ""

    def _digest(self, params: TransformParams) -> str:
        return eval_key(self.spec.hil, self.machine.name, self.context,
                        self.n, params.key(), __version__)

    def __call__(self, params: TransformParams) -> float:
        return self.many([params])[0]

    def _base_payload(self) -> Dict:
        session = self.session
        return {"hil": self.spec.hil, "machine": self.machine.name,
                "context": self.context.value, "n": self.n,
                "flops": self.flops, "ident": self.ident,
                "timeout": session.config.timeout,
                "fast": session.config.fast_timing,
                "observe": session.config.observe,
                "verify_ir": session.config.verify_ir,
                "prefix_cache": session.config.prefix_cache}

    def _groups_to_run(self, batch: List[TransformParams],
                       groups: Optional[List[List[TransformParams]]],
                       to_run: List[int]) -> List[List[int]]:
        """Project the searcher's evaluation groups onto the indices
        that still need real evaluations (cache hits drop out), in
        group order.  Without groups, every candidate is its own
        group — today's per-candidate dispatch."""
        if not groups:
            return [[i] for i in to_run]
        pos = {batch[i].key(): i for i in to_run}
        out = []
        for group in groups:
            idxs = [pos[p.key()] for p in group if p.key() in pos]
            if idxs:
                out.append(idxs)
        return out

    _BATCH_KEYS = (("batch_prefix_hits", "repro_batch_prefix_hits_total"),
                   ("batch_prefix_misses", "repro_batch_prefix_misses_total"),
                   ("batch_walk_hits", "repro_batch_walk_hits_total"))

    def _charge_batch(self, src: Dict) -> None:
        """Fold a worker's (or the serial path's) cache-reuse counter
        deltas into the session stats and the metrics registry."""
        stats = self.session.stats
        for key, metric in self._BATCH_KEYS:
            v = int(src.get(key) or 0)
            if v:
                setattr(stats, key, getattr(stats, key) + v)
                _metrics.inc(metric, v)

    def many(self, batch: List[TransformParams],
             groups: Optional[List[List[TransformParams]]] = None
             ) -> List[float]:
        session = self.session
        cycles: List[Optional[float]] = [None] * len(batch)

        to_run: List[int] = []
        digests = [self._digest(p) for p in batch]
        for i, params in enumerate(batch):
            hit = (session.cache.get(digests[i])
                   if session.cache is not None else None)
            if hit is not None:
                cycles[i] = hit
                session.stats.cache_hits += 1
                _metrics.inc("repro_eval_cache_hits_total")
                session.emit("cache-hit", job=self.job, phase=self._phase(),
                             params=params.describe(), cycles=hit, wall=0.0)
            else:
                to_run.append(i)

        run_groups = self._groups_to_run(batch, groups, to_run)
        if groups:
            session.stats.batch_groups += len(run_groups)
            session.stats.batch_size_total += len(to_run)
            if _metrics._ENABLED:
                _metrics.inc("repro_batch_groups_total", len(run_groups))
                for idxs in run_groups:
                    _metrics.observe("repro_batch_group_size", len(idxs))
        outcomes: Dict[int, Dict] = {}

        pool = session.pool() if len(to_run) > 1 else None
        if pool is not None:
            base = self._base_payload()
            try:
                if groups:
                    payloads = [dict(base, params_list=[batch[i].to_dict()
                                                        for i in idxs])
                                for idxs in run_groups]
                    replies = list(pool.map(_eval_group_worker, payloads))
                    for idxs, reply in zip(run_groups, replies):
                        self._charge_batch(reply)
                        for i, outcome in zip(idxs, reply["outcomes"]):
                            outcomes[i] = outcome
                else:
                    payloads = [dict(base, params=batch[i].to_dict())
                                for i in to_run]
                    for i, outcome in zip(to_run,
                                          pool.map(_eval_worker, payloads)):
                        self._charge_batch(outcome)
                        outcomes[i] = outcome
            except BrokenProcessPool:
                session.mark_pool_broken(self.job)
                outcomes.clear()

        if len(outcomes) < len(to_run):
            # serial path, and fallback after a dead pool: evaluate in
            # group order (prefix-sharing candidates adjacent), record
            # in ask order below
            before = self.fko.cache_stats()
            tbefore = self.timer.cache_stats()
            for idxs in run_groups:
                for i in idxs:
                    if i in outcomes:
                        continue
                    t0 = time.perf_counter()
                    c, status, meta = evaluate_params(
                        self.fko, self.timer, self.spec.hil, batch[i],
                        self.flops, self.ident, session.config.timeout,
                        observe=session.config.observe,
                        verify_ir=session.config.verify_ir)
                    outcomes[i] = {"cycles": c, "status": status,
                                   "wall": time.perf_counter() - t0,
                                   "fast": meta.get("fast"),
                                   "passes": meta.get("passes"),
                                   "attribution": meta.get("attribution")}
            after = self.fko.cache_stats()
            tafter = self.timer.cache_stats()
            self._charge_batch({
                "batch_prefix_hits": after["prefix_hits"]
                - before["prefix_hits"],
                "batch_prefix_misses": after["prefix_misses"]
                - before["prefix_misses"],
                "batch_walk_hits": tafter["base_hits"]
                - tbefore["base_hits"]})

        # record strictly in ask order, whoever computed the numbers —
        # trace rows, eval-cache writes and stats are order-identical
        # to per-candidate dispatch
        for i in to_run:
            cycles[i] = self._record(batch[i], digests[i], outcomes[i])
        return cycles

    def _record(self, params: TransformParams, digest: str,
                outcome: Dict) -> float:
        session = self.session
        c, status = outcome["cycles"], outcome["status"]
        session.stats.evaluations += 1
        if status == "timeout":
            session.stats.timeouts += 1
        elif status != "ok":
            session.stats.faults += 1
        elif outcome.get("fast"):
            session.stats.fast_path += 1
        else:
            session.stats.slow_path += 1
        if _metrics._ENABLED:
            # recorded parent-side (whichever process computed the
            # outcome), so engine metrics are complete under fan-out
            _metrics.inc("repro_evaluations_total",
                         status=("fault" if status.startswith("fault")
                                 else status))
            if status == "ok":
                _metrics.inc("repro_eval_path_total",
                             path="fast" if outcome.get("fast") else "slow")
            _metrics.observe("repro_eval_wall_seconds",
                             float(outcome.get("wall") or 0.0))
        # only completed measurements are worth remembering: a timeout
        # may be transient, so the next run should try again
        if session.cache is not None and status == "ok":
            session.cache.put(digest, c, meta={"kernel": self.spec.name,
                                               "machine": self.machine.name,
                                               "context": self.context.value,
                                               "n": self.n,
                                               "params": params.describe()})
        desc = params.describe()
        phase = self._phase()
        # observation rows bracket the eval: every pass record first,
        # the eval itself, then its cycle attribution — one contiguous,
        # deterministic per-candidate group in the trace regardless of
        # whether the outcome came from a worker or the serial path
        for p in outcome.get("passes") or ():
            session.emit("pass", job=self.job, phase=phase,
                         params=desc, **p)
        session.emit("eval", job=self.job, phase=phase,
                     params=desc, cycles=c,
                     wall=outcome["wall"], status=status,
                     fast=bool(outcome.get("fast")))
        attribution = outcome.get("attribution")
        if attribution is not None:
            session.emit("attribution", job=self.job, phase=phase,
                         params=desc, **attribution)
        return c


# ---------------------------------------------------------------------------
# the session

class TuningSession:
    """The in-process transport over the engine + scheduler layers.

    Owns the scheduler (and through it the worker pool), the persistent
    evaluation cache, the trace writer and batch checkpoints.  Use it
    as a context manager::

        with TuningSession(TuneConfig(jobs=4, cache_dir=".cache")) as s:
            batch = s.run(registry_jobs(machines=["p4e", "opteron"]))
    """

    def __init__(self, config: Optional[TuneConfig] = None,
                 buffer_events: bool = False, *,
                 collect_events: Optional[bool] = None):
        if collect_events is not None:
            warnings.warn(
                "TuningSession(collect_events=...) is deprecated and will "
                "be removed after one release; use buffer_events=...",
                DeprecationWarning, stacklevel=2)
            buffer_events = collect_events
        self.config = config or TuneConfig()
        self.cache = (EvalCache(self.config.cache_dir)
                      if self.config.cache_dir else None)
        self.stats = EngineStats()
        self._trace = (TraceWriter(self.config.trace)
                       if (self.config.trace or buffer_events) else None)
        # the scheduling layer owns the worker-pool lifecycle; the
        # session is just its first transport
        self.scheduler = Scheduler(self.config.jobs)
        # FKO/Timer instances reused across the jobs of a batch (an FKO
        # carries warm front-end/analysis/compile caches shared across
        # contexts; a Timer holds the walk cache of one
        # (machine, context, n))
        self._fkos = LRUCache(maxsize=4)
        self._tools = LRUCache(maxsize=8)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Idempotent teardown: the scheduler's pool is cancelled and
        shut down (no orphaned workers) and the trace file is closed —
        safe from error paths, including a mid-batch KeyboardInterrupt."""
        self.scheduler.shutdown()
        if self._trace is not None:
            self._trace.close()

    def __enter__(self) -> "TuningSession":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- pool / trace plumbing -----------------------------------------
    def pool(self) -> Optional[concurrent.futures.ProcessPoolExecutor]:
        """The executor, or None when running serially (``jobs=1``, a
        previously broken pool, or a platform that cannot fork)."""
        return self.scheduler.pool()

    def mark_pool_broken(self, job: Optional[str] = None) -> None:
        self.scheduler.mark_broken()
        self.emit("pool-broken", job=job)

    @property
    def trace_writer(self) -> Optional[TraceWriter]:
        """The session's trace writer (None when tracing is off) — the
        seam a transport subscribes to for live event streaming."""
        return self._trace

    def emit(self, event: str, **fields) -> None:
        if self._trace is not None:
            self._trace.emit(event, **fields)

    def drain_events(self) -> List[Dict]:
        return self._trace.drain() if self._trace is not None else []

    def _session_tools(self, machine: MachineConfig,
                       context: Context, n: int) -> Tuple[FKO, Timer]:
        # one FKO per machine (its compile caches are context-free, so
        # an (OOC, in-L2) sweep shares compiles); one Timer per
        # (machine, context, n)
        fko = self._fkos.get(machine.name)
        if fko is None:
            fko = FKO(machine, prefix_cache=self.config.prefix_cache)
            self._fkos.put(machine.name, fko)
        key = (machine.name, context.value, int(n),
               self.config.fast_timing)
        timer = self._tools.get(key)
        if timer is None:
            timer = Timer(machine, context, n,
                          fast=self.config.fast_timing)
            self._tools.put(key, timer)
        return fko, timer

    # -- single-kernel tuning ------------------------------------------
    def tune(self, spec: Union[str, KernelSpec],
             machine: Union[str, MachineConfig], context: Context, n: int,
             max_evals: Optional[int] = None) -> TunedKernel:
        """ifko one kernel: analysis -> global search -> verified best.

        The strategy is picked by ``config.strategy`` (the paper's line
        search by default); any registered strategy is driven through
        the same ask/tell loop, so every strategy shares the budget
        accounting, the persistent evaluation cache and — with
        ``jobs > 1`` — the per-batch fan-out across the worker pool.
        Candidates are charged and reduced in ask-order, which keeps
        each strategy bit-identical between ``jobs=1`` and ``jobs=N``.

        A ``KeyboardInterrupt`` (or any other non-``Exception``) during
        the search tears the session down on the way out — the
        scheduler's pool is shut down with futures cancelled and the
        trace file is closed — so an interrupted interactive run leaves
        no orphaned workers and a readable partial trace.  Ordinary
        exceptions propagate without closing: a batch (:meth:`run`)
        keeps its session alive across individual job failures.
        """
        try:
            return self._tune(spec, machine, context, n,
                              max_evals=max_evals)
        except Exception:
            raise
        except BaseException:   # KeyboardInterrupt, SystemExit, ...
            self.close()
            raise

    def _tune(self, spec: Union[str, KernelSpec],
              machine: Union[str, MachineConfig], context: Context, n: int,
              max_evals: Optional[int] = None) -> TunedKernel:
        spec = get_kernel(spec) if isinstance(spec, str) else spec
        machine = (get_machine(machine) if isinstance(machine, str)
                   else machine)
        config = self.config
        fko, timer = self._session_tools(machine, context, n)
        analysis = fko.analyze(spec.hil)
        space = config.space or build_space(
            analysis, machine, enable_block_fetch=config.enable_block_fetch,
            nest=nest_info(spec.hil))
        start = config.start or fko.defaults(spec.hil)

        evaluator = _Evaluator(self, spec, machine, context, n, fko, timer)
        # warm-starting wraps any strategy in the transfer layer and
        # resolves the neighbor lookup parent-side (workers only ever
        # compute cycles, so jobs=1 vs jobs=N stays bit-identical)
        strategy_name = config.strategy
        warm_kwargs: Dict = {}
        if config.warm_start:
            if strategy_name.partition(":")[0] != "transfer":
                strategy_name = f"transfer:{strategy_name}"
            from .warmstart import lookup_warm_start
            warm, warm_source = lookup_warm_start(
                config.warm_start, kernel=spec.name, machine=machine.name,
                context=context, n=n)
            warm_kwargs = {"warm": warm, "warm_source": warm_source}
        searcher = make_searcher(strategy_name, space, start,
                                 max_evals=max_evals or config.max_evals,
                                 min_gain=config.min_gain,
                                 seed=config.seed,
                                 output_arrays=analysis.output_arrays,
                                 **warm_kwargs)
        evaluator.search = searcher

        self.emit("job-start", job=evaluator.job, kernel=spec.name,
                  machine=machine.name, context=context.value, n=n,
                  space=space.size, strategy=strategy_name,
                  seed=config.seed)
        if config.warm_start:
            self.emit("warm-start", job=evaluator.job,
                      store=config.warm_start,
                      source=warm_kwargs.get("warm_source") or None,
                      candidates=len(warm_kwargs.get("warm") or ()))
        prefix_of = None
        if config.batch_size > 1:
            from ..fko import prefix_key

            def prefix_of(p: TransformParams):
                return prefix_key(p, analysis,
                                  debug_verify=config.verify_ir)
        best_prev = float("inf")
        while not searcher.finished:
            batch = searcher.ask()
            groups = (searcher.ask_batch(config.batch_size, key=prefix_of)
                      if config.batch_size > 1 else None)
            cycles = evaluator.many(batch, groups=groups)
            searcher.tell(list(zip(batch, cycles)))
            # convergence telemetry: one best-so-far sample per tell.
            # Emitted off-path (nothing in the search reads it) and with
            # deterministic fields only, so jobs=1 vs jobs=N traces stay
            # bit-identical
            best_now = searcher.best_cycles
            self.emit("curve", job=evaluator.job, strategy=searcher.name,
                      seed=config.seed, round=searcher.rounds,
                      evaluations=searcher.n_evaluations,
                      best_cycles=best_now, improved=best_now < best_prev)
            best_prev = min(best_prev, best_now)
            self.emit("round", job=evaluator.job, strategy=searcher.name,
                      round=searcher.rounds, phase=searcher.phase,
                      evaluations=searcher.n_evaluations,
                      best_cycles=searcher.best_cycles)
        result = searcher.result()

        compiled = fko.compile(spec.hil, result.best_params,
                               debug_verify=config.verify_ir)
        if (config.run_tester or config.test_best) and spec.name in REGISTRY:
            try:
                test_kernel(compiled, spec)
            except KernelTestFailure as exc:
                # the winner failed the tester: never hand it back as a
                # "fast" kernel — record the rejection in the trace and
                # surface the failure
                if config.test_best:
                    self.emit("best-rejected", job=evaluator.job,
                              params=result.best_params.describe(),
                              best_cycles=result.best_cycles,
                              error=str(exc))
                raise
        timing = timer.time(compiled, spec)
        self.emit("job-end", job=evaluator.job,
                  best_cycles=result.best_cycles,
                  evaluations=result.n_evaluations, mflops=timing.mflops,
                  params=result.best_params.describe(),
                  batch_prefix_hits=self.stats.batch_prefix_hits,
                  batch_prefix_misses=self.stats.batch_prefix_misses,
                  batch_walk_hits=self.stats.batch_walk_hits,
                  batch_groups=self.stats.batch_groups,
                  batch_size_total=self.stats.batch_size_total)
        self.stats.jobs_completed += 1
        return TunedKernel(spec=spec, machine=machine, context=context, n=n,
                           compiled=compiled, timing=timing, search=result)

    def compile_default(self, spec: Union[str, KernelSpec],
                        machine: Union[str, MachineConfig],
                        context: Context, n: int) -> TunedKernel:
        """Plain FKO (static defaults, no search) in the same
        fully-populated result shape, just with ``search=None``."""
        spec = get_kernel(spec) if isinstance(spec, str) else spec
        machine = (get_machine(machine) if isinstance(machine, str)
                   else machine)
        fko, timer = self._session_tools(machine, context, n)
        compiled = fko.compile(spec.hil)   # params=None -> defaults
        timing = timer.time(compiled, spec)
        return TunedKernel(spec=spec, machine=machine, context=context, n=n,
                           compiled=compiled, timing=timing, search=None)

    # -- batch tuning ---------------------------------------------------
    def run(self, jobs: Sequence[Union[TuningJob, Dict]]) -> BatchResult:
        """Tune a batch of independent jobs, fanning whole jobs across
        the pool; each worker runs its search serially, so per-job
        results are bit-identical to a serial batch.

        If the batch dies with an unhandled exception the session is
        closed on the way out, so the trace file handle does not leak
        and the partial trace is flushed and readable — callers that
        skipped the ``with`` block still get a usable trace."""
        try:
            return self._run_batch(jobs)
        except BaseException:
            self.close()
            raise

    def _run_batch(self, jobs: Sequence[Union[TuningJob, Dict]]
                   ) -> BatchResult:
        jobs = [j if isinstance(j, TuningJob) else TuningJob.from_dict(j)
                for j in jobs]
        t0 = time.perf_counter()
        completed = self._load_checkpoint()
        results: Dict[str, TunedKernel] = {}
        errors: Dict[str, str] = {}
        resumed: List[str] = []

        self.emit("batch-start", jobs=[j.key() for j in jobs],
                  njobs=len(jobs))
        pending: List[TuningJob] = []
        for job in jobs:
            key = job.key()
            if key in completed:
                try:
                    results[key] = TunedKernel.from_dict(completed[key])
                except (ReproError, KeyError, ValueError, TypeError):
                    pending.append(job)   # corrupt entry: recompute
                    continue
                resumed.append(key)
                self.stats.jobs_resumed += 1
                self.emit("job-resumed", job=key)
            else:
                pending.append(job)

        retry_serially: List[TuningJob] = []
        pool = self.pool() if len(pending) > 1 else None
        if pool is not None:
            blob = self._worker_config()
            futures = {pool.submit(_job_worker,
                                   {"job": job.to_dict(), "config": blob}):
                       job for job in pending}
            try:
                for fut in concurrent.futures.as_completed(futures):
                    job = futures[fut]
                    outcome = fut.result()
                    self._absorb(job, outcome, results, errors,
                                 retry_serially, completed)
            except BrokenProcessPool:
                self.mark_pool_broken()   # leftovers re-run serially below

        leftovers = [job for job in pending
                     if job.key() not in results
                     and job.key() not in errors] + retry_serially
        for job in leftovers:
            key = job.key()
            errors.pop(key, None)
            try:
                tuned = self.tune(job.kernel, job.machine, job.context,
                                  job.n, max_evals=job.max_evals)
            except Exception as exc:   # noqa: BLE001 — keep batch alive
                errors[key] = f"{type(exc).__name__}: {exc}"
                self.emit("job-error", job=key, error=errors[key])
                continue
            results[key] = tuned
            completed[key] = tuned.to_dict()
            self._save_checkpoint(completed)

        wall = time.perf_counter() - t0
        stats = self.stats
        _metrics.set_gauge("repro_evals_per_sec",
                           round(stats.throughput(wall), 2), scope="batch")
        self.emit("batch-end", completed=len(results), errors=len(errors),
                  wall=wall, evaluations=stats.evaluations,
                  cache_hits=stats.cache_hits,
                  evals_per_sec=round(stats.throughput(wall), 2),
                  cache_hit_rate=round(stats.cache_hit_rate, 4),
                  fast_path=stats.fast_path, slow_path=stats.slow_path,
                  batch_prefix_hits=stats.batch_prefix_hits,
                  batch_prefix_misses=stats.batch_prefix_misses,
                  batch_walk_hits=stats.batch_walk_hits,
                  batch_groups=stats.batch_groups,
                  batch_size_total=stats.batch_size_total)
        return BatchResult(results=results, errors=errors, resumed=resumed,
                           wall=wall)

    def _absorb(self, job: TuningJob, outcome: Dict,
                results: Dict[str, TunedKernel], errors: Dict[str, str],
                retry_serially: List[TuningJob],
                completed: Dict[str, Dict]) -> None:
        key = job.key()
        if self._trace is not None:
            self._trace.write_many(outcome.get("events") or [])
        self.stats.merge(outcome.get("stats"))
        if outcome.get("ok"):
            results[key] = TunedKernel.from_dict(outcome["result"])
            completed[key] = outcome["result"]
            self._save_checkpoint(completed)
        elif "SimulationFault" in (outcome.get("error") or ""):
            retry_serially.append(job)   # the engine's retry-once, job grain
        else:
            errors[key] = outcome.get("error") or "unknown worker failure"
            self.emit("job-error", job=key, error=errors[key])

    def _worker_config(self) -> Dict:
        """The picklable TuneConfig subset a job worker rebuilds from
        (space/start stay parent-side: batch jobs are registry kernels
        whose space comes from their own analysis)."""
        return {"max_evals": self.config.max_evals,
                "run_tester": self.config.run_tester,
                "cache_dir": self.config.cache_dir,
                "timeout": self.config.timeout,
                "enable_block_fetch": self.config.enable_block_fetch,
                "min_gain": self.config.min_gain,
                "strategy": self.config.strategy,
                "seed": self.config.seed,
                "fast_timing": self.config.fast_timing,
                "observe": self.config.observe,
                "verify_ir": self.config.verify_ir,
                "test_best": self.config.test_best,
                "batch_size": self.config.batch_size,
                "prefix_cache": self.config.prefix_cache,
                "warm_start": self.config.warm_start}

    # -- checkpointing --------------------------------------------------
    def _load_checkpoint(self) -> Dict[str, Dict]:
        path = self.config.resume
        if not path or not os.path.exists(path):
            return {}
        try:
            state = json.loads(pathlib.Path(path).read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        if state.get("version") != __version__:
            return {}   # results from another code version: recompute
        return dict(state.get("completed", {}))

    def _save_checkpoint(self, completed: Dict[str, Dict]) -> None:
        path = self.config.resume
        if not path:
            return
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        state = {"version": __version__, "completed": completed}
        fd, tmp = tempfile.mkstemp(dir=target.parent, prefix=".ckpt-")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(state, fh, indent=1)
            os.replace(tmp, target)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
