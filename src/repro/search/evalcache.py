"""Persistent, content-addressed cache of kernel evaluations.

Every ifko evaluation is a pure function of (kernel source, machine,
context, problem size, transform parameters, code version): the
simulated machines are deterministic and the timer's pseudo-noise is
seeded from the same identity.  That makes evaluations perfectly
cacheable *across runs and processes* — the way an ATLAS install
records its search so a reinstall does not re-time the world.

The cache is a directory of tiny JSON files named by the SHA-256 of the
key tuple ``(hil_hash, machine, context, n, params.key(), __version__)``.
One file per entry keeps concurrent writers trivially safe (each write
is an atomic ``os.replace``), and including ``__version__`` in the key
means stale entries are never reused across code changes — they are
simply never looked up again.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import pathlib
import tempfile
from typing import Dict, Optional, Tuple


def eval_key(hil: str, machine_name: str, context, n: int,
             params_key: Tuple, version: str) -> str:
    """SHA-256 digest naming one evaluation.

    ``context`` may be a :class:`repro.machine.Context` or its string
    value; ``params_key`` is ``TransformParams.key()`` (a nested tuple
    of primitives, so its ``repr`` is stable).
    """
    hil_hash = hashlib.sha256(hil.encode()).hexdigest()
    ctx = getattr(context, "value", str(context))
    blob = repr((hil_hash, machine_name, ctx, int(n), params_key, version))
    return hashlib.sha256(blob.encode()).hexdigest()


class EvalCache:
    """Disk dictionary: evaluation digest -> cycle count."""

    def __init__(self, root: str):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, digest: str) -> pathlib.Path:
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> Optional[float]:
        """Cycles for ``digest``, or None (corrupt entries count as
        misses and are recomputed, never raised).  Non-finite cycle
        counts are corrupt by definition — a NaN/inf served as a hit
        would poison every search that touches the entry — so they too
        count as misses and are recomputed."""
        try:
            data = json.loads(self._path(digest).read_text())
            cycles = float(data["cycles"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        if not math.isfinite(cycles):
            self.misses += 1
            return None
        self.hits += 1
        return cycles

    def put(self, digest: str, cycles: float,
            meta: Optional[Dict] = None) -> None:
        """Record an evaluation.  Atomic (write-then-rename), so a
        concurrent reader sees either nothing or the full entry.
        Non-finite cycle counts are refused outright: failed
        evaluations (``inf``) are not measurements, and persisting one
        would poison searches across runs."""
        if not math.isfinite(cycles):
            return
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = dict(meta or {})
        data["cycles"] = float(cycles)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(data, fh)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return   # a cache that cannot write is merely cold
        self.stores += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        n = 0
        for f in self.root.glob("*/*.json"):
            try:
                f.unlink()
                n += 1
            except OSError:
                pass
        return n
