"""The modified line search (section 2.3).

"In a pure line search, the N_T-D problem is split into N_T separate
1-D searches, where the starting points in the space correspond to the
initial search parameter selection (in our case, FKO defaults). ...
because we understand many of the interactions between optimizations,
we are able to relax the strict 1-D searches to account for
interdependencies (eg., when two transformations are known to strongly
interact, do a restricted 2-D search)."

Sweep plan (each phase keeps the best-so-far as the new base; a move
requires a *strict* improvement, so plateaus resolve to the earliest —
usually smallest/simplest — value):

1. SV on/off (defaults to on when legal; almost always stays on).
2. WNT on/off.
3. Per prefetchable array: distance sweep at the default instruction
   (the "PF DST" gain of Figure 7), then instruction-flavor sweep at
   the best distance ("PF INS") — the restricted 2-D search for the
   known PF interaction.
4. Unroll sweep ("UR").
5. Accumulator-expansion sweep ("AE"), then a restricted 2-D
   refinement over (UR, AE) neighborhoods — the paper's example of a
   strongly interacting pair.

The per-phase best cycles are recorded so Figure 7's speedup
decomposition can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SearchError
from ..fko.params import PrefetchParams, TransformParams
from ..ir import PrefetchHint
from .space import SearchSpace

Evaluator = Callable[[TransformParams], float]   # -> cycles (lower = better)
#: optional vectorized evaluator: a whole candidate list at once (the
#: engine fans these across its worker pool); must return cycles in the
#: same order as its input
BatchEvaluator = Callable[[List[TransformParams]], List[float]]

#: phase names in Figure 7's legend order (BF is this reproduction's
#: extension: the block-fetch transform the paper lists as planned)
PHASES = ("SV", "WNT", "PF DST", "PF INS", "UR", "AE", "BF")


@dataclass
class SearchResult:
    best_params: TransformParams
    best_cycles: float
    start_cycles: float
    n_evaluations: int
    phase_gains: Dict[str, float] = field(default_factory=dict)
    history: List[Tuple[str, Tuple, float]] = field(default_factory=list)

    @property
    def speedup_over_start(self) -> float:
        if self.best_cycles == self.start_cycles:
            return 1.0   # covers inf == inf (every evaluation failed)
        return self.start_cycles / self.best_cycles if self.best_cycles else 1.0

    def phase_speedups(self) -> Dict[str, float]:
        """Multiplicative gain attributed to each tuning phase (the
        Figure 7 decomposition); the product equals the total speedup."""
        return {p: self.phase_gains.get(p, 1.0) for p in PHASES}

    # -- JSON round-trip (evaluation cache, checkpoints, result store) --
    def to_dict(self) -> Dict:
        return {"best_params": self.best_params.to_dict(),
                "best_cycles": self.best_cycles,
                "start_cycles": self.start_cycles,
                "n_evaluations": self.n_evaluations,
                "phase_gains": dict(self.phase_gains),
                "history": [[phase, _jsonable(key), cycles]
                            for phase, key, cycles in self.history]}

    @staticmethod
    def from_dict(data: Dict) -> "SearchResult":
        return SearchResult(
            best_params=TransformParams.from_dict(data["best_params"]),
            best_cycles=float(data["best_cycles"]),
            start_cycles=float(data["start_cycles"]),
            n_evaluations=int(data["n_evaluations"]),
            phase_gains={p: float(g)
                         for p, g in data.get("phase_gains", {}).items()},
            history=[(phase, _tupled(key), float(cycles))
                     for phase, key, cycles in data.get("history", [])])


def _jsonable(obj):
    """Nested params-key tuple -> nested JSON list."""
    if isinstance(obj, tuple):
        return [_jsonable(x) for x in obj]
    return obj


def _tupled(obj):
    """Inverse of :func:`_jsonable`."""
    if isinstance(obj, list):
        return tuple(_tupled(x) for x in obj)
    return obj


class LineSearch:
    def __init__(self, evaluate: Evaluator, space: SearchSpace,
                 start: TransformParams, max_evals: int = 500,
                 min_gain: float = 0.005,
                 output_arrays: Sequence[str] = (),
                 evaluate_many: Optional[BatchEvaluator] = None):
        if max_evals <= 0:
            raise SearchError("max_evals must be positive")
        self.evaluate_raw = evaluate
        self.evaluate_many = evaluate_many
        self.space = space
        self.start = start
        self.max_evals = max_evals
        self.output_arrays = list(output_arrays)
        # a move requires improvement beyond timing noise, so plateaus
        # and noise-level ties resolve to the incumbent (FKO defaults)
        self.min_gain = min_gain
        self._cache: Dict[Tuple, float] = {}
        self.n_evaluations = 0
        self.history: List[Tuple[str, Tuple, float]] = []
        #: name of the sweep phase currently evaluating (trace observers
        #: read this through the engine's evaluator)
        self.phase = "start"

    # ------------------------------------------------------------------
    def _eval(self, params: TransformParams) -> float:
        return self._eval_batch([params])[0]

    def _eval_batch(self, candidates: List[TransformParams]) -> List[float]:
        """Evaluate a candidate list with semantics identical to
        one-at-a-time evaluation (memoization, budget consumption and
        history all happen in candidate order), but let the *uncached*
        evaluations fan out through ``evaluate_many`` when the caller
        provided one.  This is what keeps ``jobs=N`` bit-identical to
        ``jobs=1``: parallelism only changes who computes the cycle
        counts, never which candidates are charged to the budget or how
        the sweep reduces them."""
        out: List[Optional[float]] = [None] * len(candidates)
        fresh: List[Tuple[int, TransformParams, Tuple]] = []
        batch_pos: Dict[Tuple, int] = {}   # key -> position of first use
        for i, params in enumerate(candidates):
            key = params.key()
            if key in self._cache:
                out[i] = self._cache[key]
            elif key in batch_pos:
                continue                   # duplicate: filled in below
            elif self.n_evaluations >= self.max_evals:
                out[i] = float("inf")
            else:
                self.n_evaluations += 1
                batch_pos[key] = i
                fresh.append((i, params, key))
        if fresh:
            if self.evaluate_many is not None and len(fresh) > 1:
                values = self.evaluate_many([p for _, p, _ in fresh])
            else:
                values = [self.evaluate_raw(p) for _, p, _ in fresh]
            for (i, _, key), cycles in zip(fresh, values):
                self._cache[key] = cycles
                self.history.append((self.phase, key, cycles))
                out[i] = cycles
        for i, params in enumerate(candidates):   # resolve duplicates
            if out[i] is None:
                out[i] = self._cache.get(params.key(), float("inf"))
        return out

    def _sweep(self, base: TransformParams, best: float,
               candidates) -> Tuple[TransformParams, float]:
        """Try each candidate; move only on strict improvement."""
        candidates = list(candidates)
        best_params = base
        for params, c in zip(candidates, self._eval_batch(candidates)):
            if c < best * (1.0 - self.min_gain):
                best, best_params = c, params
        return best_params, best

    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        sp = self.space
        gains: Dict[str, float] = {p: 1.0 for p in PHASES}

        self.phase = "start"
        base = self.start
        best = self._eval(base)
        start_cycles = best

        def attributed(phase: str, cands) -> None:
            nonlocal base, best
            self.phase = phase
            before = best
            base, best = self._sweep(base, best, cands)
            if best > 0:
                gains[phase] *= before / best

        # --- SV
        if len(sp.sv_options) > 1:
            attributed("SV", [base.copy(sv=v) for v in sp.sv_options
                              if v != base.sv])

        # --- WNT (with its known PF interaction: a non-temporal store
        # needs no read-for-ownership, so the best WNT configuration may
        # also drop the output array's prefetch — try the combo)
        def wnt_candidates(cur: TransformParams):
            cands = []
            for v in sp.wnt_options:
                if v == cur.wnt:
                    continue
                cands.append(cur.copy(wnt=v))
                if v:
                    nopf = cur.copy(wnt=True)
                    for arr in self.output_arrays:
                        if arr in sp.prefetch_arrays:
                            nopf = nopf.with_pf(arr, None, 0)
                    cands.append(nopf)
            return cands

        if len(sp.wnt_options) > 1:
            attributed("WNT", wnt_candidates(base))

        # --- PF distance.  The streams advance in lockstep, so array
        # distances interact strongly: sweep one distance applied to
        # *all* prefetched arrays first (a restricted N-D search), then
        # refine per array.
        def pf_dist_candidates(cur: TransformParams):
            cands = []
            prefetched = [a for a in sp.prefetch_arrays
                          if cur.pf(a).enabled]
            if len(prefetched) > 1:
                for d in sp.dist_options:
                    if d == 0:
                        continue
                    c = cur
                    for arr in prefetched:
                        hint = cur.pf(arr).hint or PrefetchHint.NTA
                        c = c.with_pf(arr, hint, d)
                    if c.key() != cur.key():
                        cands.append(c)
            return cands

        attributed("PF DST", pf_dist_candidates(base))
        for arr in sp.prefetch_arrays:
            hint = base.pf(arr).hint or PrefetchHint.NTA
            attributed("PF DST",
                       [base.with_pf(arr, hint if d > 0 else None, d)
                        for d in sp.dist_options
                        if d != base.pf(arr).dist])

        # --- PF instruction flavor at the chosen distance
        for arr in sp.prefetch_arrays:
            cur = base.pf(arr)
            if not cur.enabled:
                continue
            attributed("PF INS", [base.with_pf(arr, h, cur.dist)
                                  for h in sp.hint_options
                                  if h is not cur.hint])

        # --- UR
        attributed("UR", [base.copy(unroll=u) for u in sp.unroll_options
                          if u != base.unroll])

        # --- AE, then the restricted (UR, AE) 2-D refinement
        if len(sp.ae_options) > 1:
            attributed("AE", [base.copy(ae=a) for a in sp.ae_options
                              if a != base.ae])
            urs = _neighbors(sp.unroll_options, base.unroll)
            aes = _neighbors(sp.ae_options, base.ae)
            attributed("AE", [base.copy(unroll=u, ae=a)
                              for u in urs for a in aes
                              if (u, a) != (base.unroll, base.ae)])

        # --- BF (extension): block-fetch scheduling
        if len(sp.block_fetch_options) > 1:
            attributed("BF", [base.copy(block_fetch=v)
                              for v in sp.block_fetch_options
                              if v != base.block_fetch])

        # --- revisit round: transforms whose payoff only appears once
        # the prefetch distances stopped the latency stalls (e.g. WNT's
        # bus saving on a now-bandwidth-bound loop)
        if len(sp.wnt_options) > 1:
            attributed("WNT", wnt_candidates(base))
        for arr in sp.prefetch_arrays:
            hint = base.pf(arr).hint or PrefetchHint.NTA
            attributed("PF DST",
                       [base.with_pf(arr, hint if d > 0 else None, d)
                        for d in sp.dist_options
                        if d != base.pf(arr).dist])
        attributed("UR", [base.copy(unroll=u) for u in sp.unroll_options
                          if u != base.unroll])

        return SearchResult(best_params=base, best_cycles=best,
                            start_cycles=start_cycles,
                            n_evaluations=self.n_evaluations,
                            phase_gains=gains,
                            history=self.history)


def _neighbors(options: List, value, radius: int = 1) -> List:
    if value not in options:
        return [value]
    i = options.index(value)
    lo = max(0, i - radius)
    hi = min(len(options), i + radius + 1)
    return list(options[lo:hi])
