"""The modified line search (section 2.3).

"In a pure line search, the N_T-D problem is split into N_T separate
1-D searches, where the starting points in the space correspond to the
initial search parameter selection (in our case, FKO defaults). ...
because we understand many of the interactions between optimizations,
we are able to relax the strict 1-D searches to account for
interdependencies (eg., when two transformations are known to strongly
interact, do a restricted 2-D search)."

Sweep plan (each phase keeps the best-so-far as the new base; a move
requires a *strict* improvement, so plateaus resolve to the earliest —
usually smallest/simplest — value):

1. SV on/off (defaults to on when legal; almost always stays on).
2. WNT on/off.
3. Per prefetchable array: distance sweep at the default instruction
   (the "PF DST" gain of Figure 7), then instruction-flavor sweep at
   the best distance ("PF INS") — the restricted 2-D search for the
   known PF interaction.
4. Unroll sweep ("UR").
5. Accumulator-expansion sweep ("AE"), then a restricted 2-D
   refinement over (UR, AE) neighborhoods — the paper's example of a
   strongly interacting pair.

The per-phase best cycles are recorded so Figure 7's speedup
decomposition can be regenerated.

:class:`LineSearch` is the first registered strategy behind the ask/tell
:class:`~repro.search.strategies.Searcher` protocol; its sweep plan —
and therefore its evaluation order, budget charging and results — is
unchanged from the pre-protocol implementation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..ir import PrefetchHint
from ..fko.params import TransformParams
from ..util import check_schema
from .space import dim_get, dim_set
from .strategies import (BatchEvaluator, Evaluator, Plan, Searcher,
                         register_searcher)

#: phase names in Figure 7's legend order (BF is this reproduction's
#: extension: the block-fetch transform the paper lists as planned)
PHASES = ("SV", "WNT", "PF DST", "PF INS", "UR", "AE", "BF")


@dataclass
class SearchResult:
    best_params: TransformParams
    best_cycles: float
    start_cycles: float
    n_evaluations: int
    phase_gains: Dict[str, float] = field(default_factory=dict)
    history: List[Tuple[str, Tuple, float]] = field(default_factory=list)

    @property
    def speedup_over_start(self) -> float:
        if self.best_cycles == self.start_cycles:
            return 1.0   # covers inf == inf (every evaluation failed)
        return self.start_cycles / self.best_cycles if self.best_cycles else 1.0

    def phase_speedups(self) -> Dict[str, float]:
        """Multiplicative gain attributed to each tuning phase (the
        Figure 7 decomposition); the product equals the total speedup.
        Only the line search attributes gains; other strategies report
        an empty ``phase_gains`` (every phase shows as 1.0).  Phases
        beyond the paper's legend (the TILE phase of nest kernels) pass
        through after the fixed seven, so the decomposition stays
        complete for every kernel."""
        out = {p: self.phase_gains.get(p, 1.0) for p in PHASES}
        for p, g in self.phase_gains.items():
            if p not in out:
                out[p] = g
        return out

    # -- JSON round-trip (evaluation cache, checkpoints, result store) --
    def to_dict(self) -> Dict:
        return {"schema": 1,
                "best_params": self.best_params.to_dict(),
                "best_cycles": self.best_cycles,
                "start_cycles": self.start_cycles,
                "n_evaluations": self.n_evaluations,
                "phase_gains": dict(self.phase_gains),
                "history": [[phase, _jsonable(key), cycles]
                            for phase, key, cycles in self.history]}

    @staticmethod
    def from_dict(data: Dict) -> "SearchResult":
        check_schema(data, "SearchResult")
        return SearchResult(
            best_params=TransformParams.from_dict(data["best_params"]),
            best_cycles=float(data["best_cycles"]),
            start_cycles=float(data["start_cycles"]),
            n_evaluations=int(data["n_evaluations"]),
            phase_gains={p: float(g)
                         for p, g in data.get("phase_gains", {}).items()},
            history=[(phase, _tupled(key), float(cycles))
                     for phase, key, cycles in data.get("history", [])])


def _jsonable(obj):
    """Nested params-key tuple -> nested JSON list."""
    if isinstance(obj, tuple):
        return [_jsonable(x) for x in obj]
    return obj


def _tupled(obj):
    """Inverse of :func:`_jsonable`."""
    if isinstance(obj, list):
        return tuple(_tupled(x) for x in obj)
    return obj


@register_searcher
class LineSearch(Searcher):
    """The paper's modified line search as an ask/tell strategy.

    The plan proposes each phase's candidate list as one batch — the
    engine fans uncached candidates across its worker pool — and keeps
    the best-so-far as the new base, moving only on strict improvement
    beyond ``min_gain``.  ``seed`` is accepted for protocol uniformity
    but unused: the sweep is fully deterministic by construction.
    """

    name = "line"

    def _plan(self) -> Plan:
        sp = self.space
        gains = {p: 1.0 for p in PHASES}
        self.phase_gains = gains

        self.phase = "start"
        base = self.start
        (best,) = yield [base]
        self.start_cycles = best
        self.best_params, self.best_cycles = base, best

        def attributed(phase: str, cands) -> Plan:
            """Try each candidate; move only on strict improvement;
            credit the phase with the multiplicative gain."""
            nonlocal base, best
            self.phase = phase
            before = best
            cands = list(cands)
            cycles = yield cands
            best_params = base
            for params, c in zip(cands, cycles):
                if c < best * (1.0 - self.min_gain):
                    best, best_params = c, params
            base = best_params
            if best > 0:
                gains[phase] *= before / best
            self.best_params, self.best_cycles = base, best

        # --- SV
        if len(sp.sv_options) > 1:
            yield from attributed("SV", [base.copy(sv=v)
                                         for v in sp.sv_options
                                         if v != base.sv])

        # --- WNT (with its known PF interaction: a non-temporal store
        # needs no read-for-ownership, so the best WNT configuration may
        # also drop the output array's prefetch — try the combo)
        def wnt_candidates(cur: TransformParams):
            cands = []
            for v in sp.wnt_options:
                if v == cur.wnt:
                    continue
                cands.append(cur.copy(wnt=v))
                if v:
                    nopf = cur.copy(wnt=True)
                    for arr in self.output_arrays:
                        if arr in sp.prefetch_arrays:
                            nopf = nopf.with_pf(arr, None, 0)
                    cands.append(nopf)
            return cands

        if len(sp.wnt_options) > 1:
            yield from attributed("WNT", wnt_candidates(base))

        # --- TILE (nest kernels only): cache-blocking sizes dominate
        # the memory behavior every later phase tunes against, so they
        # are fixed early — one 1-D sweep per blocked loop variable,
        # then a restricted 2-D neighborhood refinement for the known
        # tile-tile interaction (the blocks share the L2).
        tile_dims = sp.tile_dims
        if tile_dims:
            gains["TILE"] = 1.0
            for d in tile_dims:
                yield from attributed(
                    "TILE", [dim_set(base, d.name, v)
                             for v in d.options
                             if v != dim_get(base, d.name)])
            if len(tile_dims) > 1:
                axes = [_neighbors(list(d.options),
                                   dim_get(base, d.name))
                        for d in tile_dims]
                combos = []
                cur = tuple(dim_get(base, d.name) for d in tile_dims)
                for combo in itertools.product(*axes):
                    if combo == cur:
                        continue
                    c = base
                    for d, v in zip(tile_dims, combo):
                        c = dim_set(c, d.name, v)
                    combos.append(c)
                yield from attributed("TILE", combos)

        # --- PF distance.  The streams advance in lockstep, so array
        # distances interact strongly: sweep one distance applied to
        # *all* prefetched arrays first (a restricted N-D search), then
        # refine per array.
        def pf_dist_candidates(cur: TransformParams):
            cands = []
            prefetched = [a for a in sp.prefetch_arrays
                          if cur.pf(a).enabled]
            if len(prefetched) > 1:
                for d in sp.dist_options:
                    if d == 0:
                        continue
                    c = cur
                    for arr in prefetched:
                        hint = cur.pf(arr).hint or PrefetchHint.NTA
                        c = c.with_pf(arr, hint, d)
                    if c.key() != cur.key():
                        cands.append(c)
            return cands

        yield from attributed("PF DST", pf_dist_candidates(base))
        for arr in sp.prefetch_arrays:
            hint = base.pf(arr).hint or PrefetchHint.NTA
            yield from attributed(
                "PF DST", [base.with_pf(arr, hint if d > 0 else None, d)
                           for d in sp.dist_options
                           if d != base.pf(arr).dist])

        # --- PF instruction flavor at the chosen distance
        for arr in sp.prefetch_arrays:
            cur = base.pf(arr)
            if not cur.enabled:
                continue
            yield from attributed("PF INS", [base.with_pf(arr, h, cur.dist)
                                             for h in sp.hint_options
                                             if h is not cur.hint])

        # --- UR
        yield from attributed("UR", [base.copy(unroll=u)
                                     for u in sp.unroll_options
                                     if u != base.unroll])

        # --- AE, then the restricted (UR, AE) 2-D refinement
        if len(sp.ae_options) > 1:
            yield from attributed("AE", [base.copy(ae=a)
                                         for a in sp.ae_options
                                         if a != base.ae])
            urs = _neighbors(sp.unroll_options, base.unroll)
            aes = _neighbors(sp.ae_options, base.ae)
            yield from attributed("AE", [base.copy(unroll=u, ae=a)
                                         for u in urs for a in aes
                                         if (u, a) != (base.unroll, base.ae)])

        # --- BF (extension): block-fetch scheduling
        if len(sp.block_fetch_options) > 1:
            yield from attributed("BF", [base.copy(block_fetch=v)
                                         for v in sp.block_fetch_options
                                         if v != base.block_fetch])

        # --- revisit round: transforms whose payoff only appears once
        # the prefetch distances stopped the latency stalls (e.g. WNT's
        # bus saving on a now-bandwidth-bound loop)
        if len(sp.wnt_options) > 1:
            yield from attributed("WNT", wnt_candidates(base))
        for arr in sp.prefetch_arrays:
            hint = base.pf(arr).hint or PrefetchHint.NTA
            yield from attributed(
                "PF DST", [base.with_pf(arr, hint if d > 0 else None, d)
                           for d in sp.dist_options
                           if d != base.pf(arr).dist])
        for d in tile_dims:
            yield from attributed(
                "TILE", [dim_set(base, d.name, v)
                         for v in _neighbors(list(d.options),
                                             dim_get(base, d.name))
                         if v != dim_get(base, d.name)])
        yield from attributed("UR", [base.copy(unroll=u)
                                     for u in sp.unroll_options
                                     if u != base.unroll])


def _neighbors(options: List, value, radius: int = 1) -> List:
    if value not in options:
        return [value]
    i = options.index(value)
    lo = max(0, i - radius)
    hi = min(len(options), i + radius + 1)
    return list(options[lo:hi])
