"""The modified line search (section 2.3).

"In a pure line search, the N_T-D problem is split into N_T separate
1-D searches, where the starting points in the space correspond to the
initial search parameter selection (in our case, FKO defaults). ...
because we understand many of the interactions between optimizations,
we are able to relax the strict 1-D searches to account for
interdependencies (eg., when two transformations are known to strongly
interact, do a restricted 2-D search)."

Sweep plan (each phase keeps the best-so-far as the new base; a move
requires a *strict* improvement, so plateaus resolve to the earliest —
usually smallest/simplest — value):

1. SV on/off (defaults to on when legal; almost always stays on).
2. WNT on/off.
3. Per prefetchable array: distance sweep at the default instruction
   (the "PF DST" gain of Figure 7), then instruction-flavor sweep at
   the best distance ("PF INS") — the restricted 2-D search for the
   known PF interaction.
4. Unroll sweep ("UR").
5. Accumulator-expansion sweep ("AE"), then a restricted 2-D
   refinement over (UR, AE) neighborhoods — the paper's example of a
   strongly interacting pair.

The per-phase best cycles are recorded so Figure 7's speedup
decomposition can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SearchError
from ..fko.params import PrefetchParams, TransformParams
from ..ir import PrefetchHint
from .space import SearchSpace

Evaluator = Callable[[TransformParams], float]   # -> cycles (lower = better)

#: phase names in Figure 7's legend order (BF is this reproduction's
#: extension: the block-fetch transform the paper lists as planned)
PHASES = ("SV", "WNT", "PF DST", "PF INS", "UR", "AE", "BF")


@dataclass
class SearchResult:
    best_params: TransformParams
    best_cycles: float
    start_cycles: float
    n_evaluations: int
    phase_gains: Dict[str, float] = field(default_factory=dict)
    history: List[Tuple[str, Tuple, float]] = field(default_factory=list)

    @property
    def speedup_over_start(self) -> float:
        return self.start_cycles / self.best_cycles if self.best_cycles else 1.0

    def phase_speedups(self) -> Dict[str, float]:
        """Multiplicative gain attributed to each tuning phase (the
        Figure 7 decomposition); the product equals the total speedup."""
        return {p: self.phase_gains.get(p, 1.0) for p in PHASES}


class LineSearch:
    def __init__(self, evaluate: Evaluator, space: SearchSpace,
                 start: TransformParams, max_evals: int = 500,
                 min_gain: float = 0.005,
                 output_arrays: Sequence[str] = ()):
        if max_evals <= 0:
            raise SearchError("max_evals must be positive")
        self.evaluate_raw = evaluate
        self.space = space
        self.start = start
        self.max_evals = max_evals
        self.output_arrays = list(output_arrays)
        # a move requires improvement beyond timing noise, so plateaus
        # and noise-level ties resolve to the incumbent (FKO defaults)
        self.min_gain = min_gain
        self._cache: Dict[Tuple, float] = {}
        self.n_evaluations = 0
        self.history: List[Tuple[str, Tuple, float]] = []
        self._phase = "start"

    # ------------------------------------------------------------------
    def _eval(self, params: TransformParams) -> float:
        key = params.key()
        if key in self._cache:
            return self._cache[key]
        if self.n_evaluations >= self.max_evals:
            return float("inf")
        self.n_evaluations += 1
        cycles = self.evaluate_raw(params)
        self._cache[key] = cycles
        self.history.append((self._phase, key, cycles))
        return cycles

    def _sweep(self, base: TransformParams, best: float,
               candidates) -> Tuple[TransformParams, float]:
        """Try each candidate; move only on strict improvement."""
        best_params = base
        for params in candidates:
            c = self._eval(params)
            if c < best * (1.0 - self.min_gain):
                best, best_params = c, params
        return best_params, best

    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        sp = self.space
        gains: Dict[str, float] = {p: 1.0 for p in PHASES}

        self._phase = "start"
        base = self.start
        best = self._eval(base)
        start_cycles = best

        def attributed(phase: str, cands) -> None:
            nonlocal base, best
            self._phase = phase
            before = best
            base, best = self._sweep(base, best, cands)
            if best > 0:
                gains[phase] *= before / best

        # --- SV
        if len(sp.sv_options) > 1:
            attributed("SV", [base.copy(sv=v) for v in sp.sv_options
                              if v != base.sv])

        # --- WNT (with its known PF interaction: a non-temporal store
        # needs no read-for-ownership, so the best WNT configuration may
        # also drop the output array's prefetch — try the combo)
        def wnt_candidates(cur: TransformParams):
            cands = []
            for v in sp.wnt_options:
                if v == cur.wnt:
                    continue
                cands.append(cur.copy(wnt=v))
                if v:
                    nopf = cur.copy(wnt=True)
                    for arr in self.output_arrays:
                        if arr in sp.prefetch_arrays:
                            nopf = nopf.with_pf(arr, None, 0)
                    cands.append(nopf)
            return cands

        if len(sp.wnt_options) > 1:
            attributed("WNT", wnt_candidates(base))

        # --- PF distance.  The streams advance in lockstep, so array
        # distances interact strongly: sweep one distance applied to
        # *all* prefetched arrays first (a restricted N-D search), then
        # refine per array.
        def pf_dist_candidates(cur: TransformParams):
            cands = []
            prefetched = [a for a in sp.prefetch_arrays
                          if cur.pf(a).enabled]
            if len(prefetched) > 1:
                for d in sp.dist_options:
                    if d == 0:
                        continue
                    c = cur
                    for arr in prefetched:
                        hint = cur.pf(arr).hint or PrefetchHint.NTA
                        c = c.with_pf(arr, hint, d)
                    if c.key() != cur.key():
                        cands.append(c)
            return cands

        attributed("PF DST", pf_dist_candidates(base))
        for arr in sp.prefetch_arrays:
            hint = base.pf(arr).hint or PrefetchHint.NTA
            attributed("PF DST",
                       [base.with_pf(arr, hint if d > 0 else None, d)
                        for d in sp.dist_options
                        if d != base.pf(arr).dist])

        # --- PF instruction flavor at the chosen distance
        for arr in sp.prefetch_arrays:
            cur = base.pf(arr)
            if not cur.enabled:
                continue
            attributed("PF INS", [base.with_pf(arr, h, cur.dist)
                                  for h in sp.hint_options
                                  if h is not cur.hint])

        # --- UR
        attributed("UR", [base.copy(unroll=u) for u in sp.unroll_options
                          if u != base.unroll])

        # --- AE, then the restricted (UR, AE) 2-D refinement
        if len(sp.ae_options) > 1:
            attributed("AE", [base.copy(ae=a) for a in sp.ae_options
                              if a != base.ae])
            urs = _neighbors(sp.unroll_options, base.unroll)
            aes = _neighbors(sp.ae_options, base.ae)
            attributed("AE", [base.copy(unroll=u, ae=a)
                              for u in urs for a in aes
                              if (u, a) != (base.unroll, base.ae)])

        # --- BF (extension): block-fetch scheduling
        if len(sp.block_fetch_options) > 1:
            attributed("BF", [base.copy(block_fetch=v)
                              for v in sp.block_fetch_options
                              if v != base.block_fetch])

        # --- revisit round: transforms whose payoff only appears once
        # the prefetch distances stopped the latency stalls (e.g. WNT's
        # bus saving on a now-bandwidth-bound loop)
        if len(sp.wnt_options) > 1:
            attributed("WNT", wnt_candidates(base))
        for arr in sp.prefetch_arrays:
            hint = base.pf(arr).hint or PrefetchHint.NTA
            attributed("PF DST",
                       [base.with_pf(arr, hint if d > 0 else None, d)
                        for d in sp.dist_options
                        if d != base.pf(arr).dist])
        attributed("UR", [base.copy(unroll=u) for u in sp.unroll_options
                          if u != base.unroll])

        return SearchResult(best_params=base, best_cycles=best,
                            start_cycles=start_cycles,
                            n_evaluations=self.n_evaluations,
                            phase_gains=gains,
                            history=self.history)


def _neighbors(options: List, value, radius: int = 1) -> List:
    if value not in options:
        return [value]
    i = options.index(value)
    lo = max(0, i - radius)
    hi = min(len(options), i + radius + 1)
    return list(options[lo:hi])
