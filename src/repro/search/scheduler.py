"""The scheduling layer between the evaluation engine and a transport.

The tuning stack separates into three layers with explicit seams:

* **engine** — evaluate one candidate (compile + time), the pure
  function at the bottom (:func:`repro.search.engine.evaluate_params`
  and the ``TuningSession.tune`` loop around it);
* **scheduler** — *this module*: who runs next and on what resources.
  It owns the worker-pool lifecycle (:class:`Scheduler`), fair ordering
  of queued work across clients (:class:`FairQueue`), coalescing of
  identical in-flight requests (:class:`InflightTable`) and budget
  accounting across jobs (:class:`BudgetLedger`);
* **transport** — how requests arrive and results/progress leave:
  the in-process :class:`~repro.search.engine.TuningSession` API, and
  the HTTP daemon in :mod:`repro.service` that multiplexes many
  clients onto one session.

Nothing in here decides *what* a candidate costs — scheduling is pure
bookkeeping, so every ordering decision is deterministic given the
arrival order, which keeps the standing invariant (``jobs=1`` vs
``jobs=N`` bit-identity) out of the scheduler's reach entirely.
"""

from __future__ import annotations

import concurrent.futures
import threading
from collections import OrderedDict, deque
from typing import Dict, Hashable, Optional, Tuple


class Scheduler:
    """Worker-pool lifecycle, extracted from ``TuningSession``.

    The session (and through it the service daemon) asks the scheduler
    for an executor instead of owning one; a broken pool is remembered
    so the engine degrades to serial exactly once instead of thrashing
    through re-creation attempts.  ``shutdown`` is idempotent and safe
    to call from error paths (including ``KeyboardInterrupt`` handling
    mid-batch): it cancels queued futures and never blocks by default,
    so no orphaned workers outlive the session.
    """

    def __init__(self, jobs: int = 1):
        self.jobs = int(jobs)
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._broken = False

    @property
    def broken(self) -> bool:
        return self._broken

    def pool(self) -> Optional[concurrent.futures.ProcessPoolExecutor]:
        """The executor, or None when running serially (``jobs=1``, a
        previously broken pool, or a platform that cannot fork)."""
        if self.jobs <= 1 or self._broken:
            return None
        if self._pool is None:
            try:
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.jobs)
            except (OSError, ValueError):
                self._broken = True
                return None
        return self._pool

    def mark_broken(self) -> None:
        """Remember that the pool died; subsequent ``pool()`` calls
        return None so callers fall back to serial evaluation."""
        self._broken = True
        self.shutdown()

    def shutdown(self, wait: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=True)
            self._pool = None


class FairQueue:
    """FIFO within a client, round-robin across clients.

    A single greedy client enqueueing a hundred tune requests must not
    starve everyone else: the queue keeps one FIFO lane per client key
    and serves lanes round-robin, so each ``pop`` takes the next item
    of the least-recently-served client.  With a single client this
    degenerates to plain FIFO — arrival order, fully deterministic.
    """

    def __init__(self):
        self._lanes: "OrderedDict[Hashable, deque]" = OrderedDict()
        self._lock = threading.Lock()
        self._size = 0

    def push(self, item, client: Hashable = "") -> None:
        with self._lock:
            lane = self._lanes.get(client)
            if lane is None:
                lane = self._lanes[client] = deque()
            lane.append(item)
            self._size += 1

    def pop(self):
        """Next item, or None when empty.  The served client's lane
        moves to the back, which is the whole fairness policy."""
        with self._lock:
            while self._lanes:
                client, lane = next(iter(self._lanes.items()))
                if not lane:
                    del self._lanes[client]
                    continue
                item = lane.popleft()
                self._size -= 1
                self._lanes.move_to_end(client)
                if not lane:
                    del self._lanes[client]
                return item
            return None

    def remove(self, item) -> bool:
        """Withdraw a queued item (e.g. a cancelled job); True if found."""
        with self._lock:
            for client, lane in list(self._lanes.items()):
                try:
                    lane.remove(item)
                except ValueError:
                    continue
                self._size -= 1
                if not lane:
                    del self._lanes[client]
                return True
            return False

    def __len__(self) -> int:
        with self._lock:
            return self._size


class InflightTable:
    """Coalesces identical concurrent requests onto one running job.

    Keyed by the request's canonical digest: the first ``claim`` for a
    digest creates the slot (``created=True``); every later claim while
    the work is in flight returns the same slot (``created=False``), so
    all subscribers end up watching the same job.  ``release`` frees
    the digest once the work has a durable answer (or failed) — repeat
    requests after that are the *result store's* business, not the
    in-flight table's.
    """

    def __init__(self):
        self._slots: Dict[str, object] = {}
        self._lock = threading.Lock()
        self.coalesced = 0

    def claim(self, digest: str, make) -> Tuple[object, bool]:
        with self._lock:
            slot = self._slots.get(digest)
            if slot is not None:
                self.coalesced += 1
                return slot, False
            slot = make()
            self._slots[digest] = slot
            return slot, True

    def get(self, digest: str):
        with self._lock:
            return self._slots.get(digest)

    def release(self, digest: str) -> None:
        with self._lock:
            self._slots.pop(digest, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._slots)


class BudgetLedger:
    """Evaluation-budget accounting across jobs.

    Each job charges the evaluations (and cache hits) it actually
    consumed; the ledger keeps per-job rows and running totals so a
    long-lived daemon can report where its evaluation budget went
    (``GET /v1/stats``) and enforce an optional global ceiling.
    """

    def __init__(self, max_total_evals: Optional[int] = None):
        self.max_total_evals = max_total_evals
        self._rows: Dict[str, Dict[str, int]] = {}
        self._lock = threading.Lock()
        self.total_evaluations = 0
        self.total_cache_hits = 0

    def charge(self, job_id: str, evaluations: int,
               cache_hits: int = 0) -> None:
        with self._lock:
            row = self._rows.setdefault(job_id, {"evaluations": 0,
                                                 "cache_hits": 0})
            row["evaluations"] += int(evaluations)
            row["cache_hits"] += int(cache_hits)
            self.total_evaluations += int(evaluations)
            self.total_cache_hits += int(cache_hits)

    def exhausted(self) -> bool:
        with self._lock:
            return (self.max_total_evals is not None
                    and self.total_evaluations >= self.max_total_evals)

    def rows(self) -> Dict[str, Dict[str, int]]:
        with self._lock:
            return {k: dict(v) for k, v in self._rows.items()}

    def to_dict(self) -> Dict:
        with self._lock:
            return {"total_evaluations": self.total_evaluations,
                    "total_cache_hits": self.total_cache_hits,
                    "max_total_evals": self.max_total_evals,
                    "jobs": {k: dict(v) for k, v in self._rows.items()}}


__all__ = ["Scheduler", "FairQueue", "InflightTable", "BudgetLedger"]
