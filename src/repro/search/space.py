"""The optimization space searched by ifko (section 2.3).

"Finding the best values for N_T empirically tuned transformations
consists of finding the points in an N_T dimensional space that
maximize performance."

The space is built per kernel from FKO's analysis feedback plus the
machine's architecture report: which arrays are prefetchable, which
prefetch instruction flavors exist, the cache line size (distance
granularity), whether SV is legal, whether accumulators exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..fko.analysis import KernelAnalysis
from ..ir import PrefetchHint
from ..machine.config import MachineConfig


@dataclass
class SearchSpace:
    sv_options: List[bool]
    wnt_options: List[bool]
    unroll_options: List[int]
    ae_options: List[int]
    prefetch_arrays: List[str]
    hint_options: List[Optional[PrefetchHint]]
    dist_options: List[int]                    # bytes; 0 = off
    line: int
    block_fetch_options: List[bool] = field(default_factory=lambda: [False])

    def describe(self) -> str:
        return (f"SV{self.sv_options} WNT{self.wnt_options} "
                f"UR{self.unroll_options} AE{self.ae_options} "
                f"PF arrays={self.prefetch_arrays} "
                f"hints={[h.value if h else 'none' for h in self.hint_options]} "
                f"dists={self.dist_options}")

    @property
    def size(self) -> int:
        """Cardinality of the full cross product (for reporting how much
        the line search saves)."""
        pf = (len(self.hint_options) * len(self.dist_options)) or 1
        n = (len(self.sv_options) * len(self.wnt_options)
             * len(self.unroll_options) * len(self.ae_options))
        for _ in self.prefetch_arrays:
            n *= pf
        return n


DEFAULT_UNROLLS = (1, 2, 4, 8, 16, 32, 64)
DEFAULT_AES = (1, 2, 3, 4, 6, 8, 16)
#: distance grid in cache lines (Table 3 distances are 56..2048 bytes)
DEFAULT_DIST_LINES = (1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 28, 32)


def build_space(analysis: KernelAnalysis, machine: MachineConfig,
                unrolls: Sequence[int] = DEFAULT_UNROLLS,
                aes: Sequence[int] = DEFAULT_AES,
                dist_lines: Sequence[int] = DEFAULT_DIST_LINES,
                enable_block_fetch: bool = False) -> SearchSpace:
    line = machine.l1.line
    return SearchSpace(
        sv_options=[True, False] if analysis.vectorizable else [False],
        wnt_options=[False, True] if analysis.output_arrays else [False],
        unroll_options=[u for u in unrolls if u <= analysis.max_unroll],
        ae_options=(list(aes) if analysis.accumulators else [1]),
        prefetch_arrays=list(analysis.prefetch_arrays),
        hint_options=list(machine.prefetch_hints),
        dist_options=[0] + [k * line for k in dist_lines],
        line=line,
        block_fetch_options=([False, True] if enable_block_fetch
                             else [False]),
    )
