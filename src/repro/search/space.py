"""The optimization space searched by ifko (section 2.3).

"Finding the best values for N_T empirically tuned transformations
consists of finding the points in an N_T dimensional space that
maximize performance."

The space is built per kernel from FKO's analysis feedback plus the
machine's architecture report: which arrays are prefetchable, which
prefetch instruction flavors exist, the cache line size (distance
granularity), whether SV is legal, whether accumulators exist — and,
for kernels whose source is a tileable loop nest, which loop variables
take cache-blocking tile sizes (bounded by the L2 working set).

Two views of the same space coexist:

* the **legacy fields** (``sv_options``, ``unroll_options``, ...) —
  kept so existing callers and explicit ``TuneConfig(space=...)``
  constructions keep working unchanged;
* the **declarative dimension list** (:meth:`SearchSpace.dimensions`)
  — every knob as a :class:`Dimension` with its ordered options, its
  interaction group and its legality predicate.  Strategies, the qa
  fuzzer and cardinality accounting iterate this list generically, so
  a new dimension (a tile size, say) reaches every consumer without
  any of them pattern-matching field names.

:func:`dim_get` / :func:`dim_set` are the generic accessors mapping a
dimension name onto :class:`~repro.fko.params.TransformParams`:
attribute dimensions (``sv``, ``unroll``, ...) read/write the field,
``pf_dist:X`` / ``pf_hint:X`` go through ``with_pf``, and ``tile:v``
lives in the namespaced ``ext`` dict (so legacy parameter keys never
move).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Optional, Sequence, Tuple)

from ..fko.analysis import KernelAnalysis
from ..fko.params import TransformParams
from ..hil.tiling import NestInfo
from ..ir import PrefetchHint
from ..machine.config import MachineConfig


@dataclass(frozen=True)
class Dimension:
    """One searchable axis: a name, its ordered candidate values, and
    (optionally) when it is legal to set.

    ``options[0]`` is the null/off value by convention.  ``group``
    names an interaction unit: dimensions sharing a group are sampled,
    inherited and counted jointly (a prefetch distance and its
    instruction hint are one unit — a hint without a distance is not a
    point in the space).  ``legal_when`` receives the partial
    assignment of same-group dimensions declared before this one and
    gates whether this dimension exists at that point (an illegal
    dimension contributes nothing — no random draw, no cardinality).
    ``sampled=False`` marks dimensions the seeded global strategies do
    not draw (block fetch: reachable by the line search's BF phase and
    explicit configs only, mirroring its opt-in status)."""

    name: str
    options: Tuple
    group: str = ""
    legal_when: Optional[Callable[[Dict], bool]] = None
    sampled: bool = True

    def legal(self, assignment: Dict) -> bool:
        return self.legal_when is None or bool(self.legal_when(assignment))

    @property
    def key(self) -> str:
        """The grouping key (its own name when ungrouped)."""
        return self.group or self.name


# ---------------------------------------------------------------------------
# generic accessors: dimension name <-> TransformParams

def dim_get(params: TransformParams, name: str):
    """Read the value of dimension ``name`` from ``params``."""
    if name.startswith("pf_dist:"):
        return params.pf(name[len("pf_dist:"):]).dist
    if name.startswith("pf_hint:"):
        return params.pf(name[len("pf_hint:"):]).hint
    if name.startswith("tile:"):
        return params.ext.get(name, 0)
    return getattr(params, name)


def dim_set(params: TransformParams, name: str, value) -> TransformParams:
    """A copy of ``params`` with dimension ``name`` set to ``value``
    (types are normalized, so numpy scalars from ``rng.choice`` are
    safe)."""
    if name.startswith("pf_dist:"):
        arr = name[len("pf_dist:"):]
        d = int(value)
        if d <= 0:
            return params.with_pf(arr, None, 0)
        hint = params.pf(arr).hint or PrefetchHint.NTA
        return params.with_pf(arr, hint, d)
    if name.startswith("pf_hint:"):
        arr = name[len("pf_hint:"):]
        pf = params.pf(arr)
        if value is None or pf.dist <= 0:
            return params if pf.dist <= 0 \
                else params.with_pf(arr, None, 0)
        return params.with_pf(arr, value, pf.dist)
    if name.startswith("tile:"):
        return params.with_ext(name, int(value))
    if name in ("sv", "wnt", "lc", "block_fetch"):
        return params.copy(**{name: bool(value)})
    if name in ("unroll", "ae"):
        return params.copy(**{name: int(value)})
    return params.copy(**{name: value})


@dataclass
class SearchSpace:
    sv_options: List[bool]
    wnt_options: List[bool]
    unroll_options: List[int]
    ae_options: List[int]
    prefetch_arrays: List[str]
    hint_options: List[Optional[PrefetchHint]]
    dist_options: List[int]                    # bytes; 0 = off
    line: int
    block_fetch_options: List[bool] = field(default_factory=lambda: [False])
    #: loop variable -> ordered tile-size options (0 = untiled); empty
    #: for kernels without a tileable nest
    tile_options: Dict[str, Tuple[int, ...]] = field(default_factory=dict)

    def describe(self) -> str:
        tiles = (" TILE{" + ", ".join(
            f"{v}:{list(o)}" for v, o in self.tile_options.items()) + "}"
            if self.tile_options else "")
        return (f"SV{self.sv_options} WNT{self.wnt_options} "
                f"UR{self.unroll_options} AE{self.ae_options} "
                f"PF arrays={self.prefetch_arrays} "
                f"hints={[h.value if h else 'none' for h in self.hint_options]} "
                f"dists={self.dist_options}" + tiles)

    # -- the declarative view ------------------------------------------
    @property
    def dimensions(self) -> List[Dimension]:
        """Every searchable axis, in the canonical draw order: the core
        transforms, then each prefetch array's (distance, hint) pair,
        then block fetch, then tile sizes.  New kinds of dimension are
        appended after the existing ones, so seeded draw streams over
        legacy spaces never move."""
        dims = [
            Dimension("sv", tuple(self.sv_options)),
            Dimension("unroll", tuple(self.unroll_options) or (1,)),
            Dimension("ae", tuple(self.ae_options)),
            Dimension("wnt", tuple(self.wnt_options)),
        ]
        for arr in self.prefetch_arrays:
            dist_name = f"pf_dist:{arr}"
            dims.append(Dimension(dist_name, tuple(self.dist_options),
                                  group=f"pf:{arr}"))
            dims.append(Dimension(
                f"pf_hint:{arr}", tuple(self.hint_options),
                group=f"pf:{arr}",
                legal_when=(lambda asg, _d=dist_name:
                            asg.get(_d, 0) and asg[_d] > 0)))
        dims.append(Dimension("block_fetch",
                              tuple(self.block_fetch_options),
                              sampled=False))
        for ivar, options in self.tile_options.items():
            dims.append(Dimension(f"tile:{ivar}", tuple(options),
                                  group="tile"))
        return dims

    @property
    def tile_dims(self) -> List[Dimension]:
        """The tile-size dimensions (empty for non-nest kernels)."""
        return [d for d in self.dimensions if d.name.startswith("tile:")]

    def groups(self) -> List[List[Dimension]]:
        """Dimensions partitioned into interaction units, ordered by
        first declaration; singleton groups for ungrouped dimensions."""
        buckets: Dict[str, List[Dimension]] = {}
        for dim in self.dimensions:
            buckets.setdefault(dim.key, []).append(dim)
        return list(buckets.values())

    def draw(self, choose: Callable[[Dimension], object]
             ) -> TransformParams:
        """One generic point: walk every sampled dimension in declared
        order, calling ``choose(dim)`` for each *legal* one (illegal
        dimensions are skipped without consuming a draw — a prefetch
        hint only exists once its distance is non-zero).  This is the
        single sampling loop every seeded strategy shares, so their
        streams stay mirror-aligned by construction."""
        params = TransformParams()
        assignment: Dict[str, object] = {}
        for dim in self.dimensions:
            if not dim.sampled or not dim.legal(assignment):
                continue
            params = dim_set(params, dim.name, choose(dim))
            assignment[dim.name] = dim_get(params, dim.name)
        return params

    # -- feature encoding (surrogate models, transfer distance) --------
    def encode(self, params: TransformParams) -> List[float]:
        """``params`` as a numeric feature vector for surrogate models:
        one value per dimension — the index of the dimension's current
        value on its *ordered* option grid, scaled to [0, 1] (option
        grids are monotone, so grid index is the meaningful geometry;
        raw values would make UR=64 dominate SV=1).

        Reproducibility contract (the cross-process digest test pins
        it): dimensions are visited in the declared
        :meth:`dimensions` order — a list built the same way in every
        process, never a dict/set iteration — and values are read
        through :func:`dim_get`, so a null-erased ``ext`` key (a tile
        size stored as 0 and dropped by ``TransformParams``) encodes
        identically to an absent one.  A value off its grid (a
        hand-built start point) snaps to the nearest option, so the
        model still places it."""
        feats: List[float] = []
        for dim in self.dimensions:
            feats.append(self._feature(dim, dim_get(params, dim.name)))
        return feats

    @staticmethod
    def _feature(dim: Dimension, value) -> float:
        options = list(dim.options)
        if len(options) <= 1:
            return 0.0
        if value in options:
            idx = options.index(value)
        else:
            numeric = [(i, o) for i, o in enumerate(options)
                       if isinstance(o, (int, float))
                       and not isinstance(o, bool)]
            if numeric and isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                idx = min(numeric, key=lambda t: (abs(t[1] - value), t[0]))[0]
            else:
                idx = 0
        return idx / (len(options) - 1)

    def distance(self, a: TransformParams, b: TransformParams) -> float:
        """Normalized L1 distance between two points' feature encodings
        (0 = identical assignment, ``n_dims`` = maximally far on every
        axis).  Used to rank warm-start candidates and to measure how
        much a transferred point had to move to become legal here."""
        return float(sum(abs(x - y)
                         for x, y in zip(self.encode(a), self.encode(b))))

    def project(self, params: TransformParams,
                fallback: Optional[TransformParams] = None
                ) -> TransformParams:
        """The nearest *legal* point of this space to ``params``: every
        sampled dimension keeps ``params``'s value when it is on the
        option grid, else takes ``fallback``'s (the start point) when
        that is, else the null option.  This is how a neighbor's best
        parameters — tuned in a possibly different space — become a
        valid warm-start candidate here."""
        def choose(dim: Dimension):
            for src in (params, fallback):
                if src is None:
                    continue
                value = dim_get(src, dim.name)
                if value in dim.options:
                    return value
            return dim.options[0]
        return self.draw(choose)

    @property
    def size(self) -> int:
        """Cardinality of the full cross product (for reporting how
        much the line search saves): the product over interaction
        groups of each group's count of distinct legal assignments.
        Computed generically from :meth:`dimensions`, so every axis —
        including block fetch and tile sizes — is counted exactly
        once."""
        total = 1
        for dims in self.groups():
            total *= _group_size(dims)
        return total


def _group_size(dims: Sequence[Dimension]) -> int:
    """Distinct legal assignments of one interaction group.  Illegal
    dimensions collapse to "absent", so a disabled prefetch counts one
    point regardless of how many hints the machine offers."""
    if len(dims) == 1:
        return max(1, len(dims[0].options))
    seen = set()
    for combo in itertools.product(*(d.options for d in dims)):
        assignment: Dict[str, object] = {}
        normalized = []
        for dim, value in zip(dims, combo):
            if dim.legal(assignment):
                assignment[dim.name] = value
                normalized.append(value)
            else:
                normalized.append(None)
        seen.add(tuple(normalized))
    return max(1, len(seen))


DEFAULT_UNROLLS = (1, 2, 4, 8, 16, 32, 64)
DEFAULT_AES = (1, 2, 3, 4, 6, 8, 16)
#: distance grid in cache lines (Table 3 distances are 56..2048 bytes)
DEFAULT_DIST_LINES = (1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 28, 32)
#: candidate tile sizes before the capacity filter
DEFAULT_TILES = (16, 24, 32, 48, 64, 96, 128, 192, 256)
#: fraction of L2 a blocked working set may claim (matches the timing
#: model's residency threshold in :mod:`repro.machine.blocking`)
TILE_L2_UTIL = 0.75


def tile_options(nest: Optional[NestInfo], machine: MachineConfig,
                 tiles: Sequence[int] = DEFAULT_TILES,
                 util: float = TILE_L2_UTIL) -> Dict[str, Tuple[int, ...]]:
    """Per-ivar tile-size options for a tileable nest: candidate sizes
    whose square blocked working set (every nest array holding a
    ``T x T`` block) still fits the residency share of L2 — larger
    tiles cannot keep their reuse resident, so searching them is
    wasted budget.  ``0`` (untiled) always leads."""
    if nest is None:
        return {}
    n_arrays = max(1, len(nest.pointers))
    elem = max(nest.pointers.values(), default=8)
    cap = util * machine.l2.size
    legal = tuple(t for t in tiles if n_arrays * t * t * elem <= cap)
    if not legal:
        return {}
    return {ivar: (0,) + legal for ivar in nest.ivars}


def build_space(analysis: KernelAnalysis, machine: MachineConfig,
                unrolls: Sequence[int] = DEFAULT_UNROLLS,
                aes: Sequence[int] = DEFAULT_AES,
                dist_lines: Sequence[int] = DEFAULT_DIST_LINES,
                enable_block_fetch: bool = False,
                nest: Optional[NestInfo] = None,
                tiles: Sequence[int] = DEFAULT_TILES) -> SearchSpace:
    line = machine.l1.line
    return SearchSpace(
        sv_options=[True, False] if analysis.vectorizable else [False],
        wnt_options=[False, True] if analysis.output_arrays else [False],
        unroll_options=[u for u in unrolls if u <= analysis.max_unroll],
        ae_options=(list(aes) if analysis.accumulators else [1]),
        prefetch_arrays=list(analysis.prefetch_arrays),
        hint_options=list(machine.prefetch_hints),
        dist_options=[0] + [k * line for k in dist_lines],
        line=line,
        block_fetch_options=([False, True] if enable_block_fetch
                             else [False]),
        tile_options=tile_options(nest, machine, tiles),
    )
