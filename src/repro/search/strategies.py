"""Pluggable global-search strategies — the ask/tell ``Searcher`` protocol.

The paper names its own search as the weakest link: "There are several
ways of performing this search, including simulated annealing and
genetic algorithms.  We currently use a much simpler technique, a
modified line search" (section 2.3), and lists more sophisticated
searches as future work.  This module is that extension point: every
global search is a :class:`Searcher` — an object that *asks* for a
batch of candidate :class:`~repro.fko.params.TransformParams` and is
*told* their cycle counts — registered under a short name so drivers
pick a strategy by string (``TuneConfig(strategy="anneal")``).

The protocol::

    searcher = make_searcher("genetic", space=space, start=start,
                             max_evals=200, seed=7)
    while not searcher.finished:
        batch = searcher.ask()          # candidates needing cycles
        cycles = evaluate_batch(batch)  # caller: serial, pooled, cached...
        searcher.tell(list(zip(batch, cycles)))
    result = searcher.result()          # a SearchResult

Why ask/tell?  Because it splits *what to try next* (strategy logic,
pure and seeded) from *how evaluations happen* (the engine's worker
pool, persistent cache and trace).  The base class owns the budget
bookkeeping exactly as the line search always did: candidates are
deduplicated against an in-memory memo, charged to ``max_evals`` in
ask-order, and recorded to ``history`` in ask-order — regardless of
who computes the cycle counts or in what order they finish.  That is
the invariant that makes every strategy deterministic under a fixed
seed and bit-identical between ``jobs=1`` and ``jobs=N``: parallelism
only changes who fills in the numbers, never which candidates are
charged or how the strategy reduces them.

Strategies are implemented as *plan coroutines*: :meth:`Searcher._plan`
is a generator that yields raw candidate batches and receives their
cycles (cached values are resolved internally and never re-asked), so
strategy code reads like the straight-line algorithm it is.
"""

from __future__ import annotations

import itertools
import math
from typing import (Callable, Dict, Generator, Hashable, List, Optional,
                    Sequence, Tuple, Type)

import numpy as np

from ..errors import SearchError
from ..fko.params import PrefetchParams, TransformParams
from ..ir import PrefetchHint
from .space import Dimension, SearchSpace, dim_get, dim_set

Evaluator = Callable[[TransformParams], float]   # -> cycles (lower = better)
#: optional vectorized evaluator: a whole candidate list at once (the
#: engine fans these across its worker pool); must return cycles in the
#: same order as its input
BatchEvaluator = Callable[[List[TransformParams]], List[float]]

#: what a plan yields (candidates) and receives (their cycles)
Plan = Generator[List[TransformParams], List[float], None]


class Searcher:
    """Base class of all search strategies: budget accounting, memo
    cache, history and the ask/tell state machine.  Subclasses override
    :meth:`_plan` (and :attr:`name` for the registry)."""

    #: registry name (subclasses set it; see :func:`register_searcher`)
    name = "?"

    def __init__(self, space: SearchSpace, start: TransformParams,
                 max_evals: int = 400, min_gain: float = 0.005,
                 seed: int = 0, output_arrays: Sequence[str] = ()):
        if max_evals <= 0:
            raise SearchError("max_evals must be positive")
        if min_gain < 0:
            raise SearchError(f"min_gain must be >= 0, got {min_gain}")
        self.space = space
        self.start = start
        self.max_evals = max_evals
        # a move requires improvement beyond timing noise, so plateaus
        # and noise-level ties resolve to the incumbent (FKO defaults)
        self.min_gain = min_gain
        self.seed = seed
        self.output_arrays = list(output_arrays)

        self.n_evaluations = 0
        self.history: List[Tuple[str, Tuple, float]] = []
        #: label of the strategy step currently evaluating (trace
        #: observers and ``history`` read this)
        self.phase = "start"
        #: completed ask/tell exchanges (a "round"; the GA's generation)
        self.rounds = 0
        self.best_params = start
        self.best_cycles = float("inf")
        self.start_cycles = float("inf")
        self.phase_gains: Dict[str, float] = {}

        self._memo: Dict[Tuple, float] = {}
        self._finished = False
        self._raw: List[TransformParams] = []
        self._out: List[Optional[float]] = []
        self._fresh: List[Tuple[int, TransformParams, Tuple]] = []
        self._gen = self._plan()
        self._advance(None)

    # -- the protocol ---------------------------------------------------
    def ask(self) -> List[TransformParams]:
        """The next batch of candidates needing evaluation, in the order
        they were charged to the budget.  Never empty while not
        :attr:`finished`; cached and over-budget candidates are resolved
        internally and never re-asked."""
        if self._finished:
            raise SearchError(f"{self.name} search already finished")
        return [params for _, params, _ in self._fresh]

    def ask_batch(self, limit: int = 0,
                  key: Optional[Callable[[TransformParams], Hashable]]
                  = None) -> List[List[TransformParams]]:
        """The current :meth:`ask` batch, partitioned into evaluation
        groups: candidates with equal ``key(params)`` land in the same
        group (groups ordered by each key's first occurrence, members
        in ask order), and every group holds at most ``limit``
        candidates (0 = uncapped).  The default key is the fixed-order
        pipeline's early-transform prefix, so a group shares compile
        work up to the post-AE snapshot.

        This is purely an evaluation-*order* hint for batched
        evaluators: the flattened groups are a permutation of
        :meth:`ask`, budget charging stays in ask order, and
        :meth:`tell` still expects results in ask order — so grouping
        can never change a search decision."""
        batch = self.ask()
        if key is None:
            def key(p: TransformParams) -> Hashable:
                return (p.sv, p.unroll, p.lc, p.ae)
        buckets: Dict[Hashable, List[TransformParams]] = {}
        for params in batch:            # dict preserves first-occurrence
            buckets.setdefault(key(params), []).append(params)
        groups: List[List[TransformParams]] = []
        for members in buckets.values():
            if limit and limit > 0:
                groups.extend(members[i:i + limit]
                              for i in range(0, len(members), limit))
            else:
                groups.append(members)
        return groups

    def tell(self, results: Sequence[Tuple[TransformParams, float]]) -> None:
        """Report cycles for the batch from :meth:`ask`, same order.
        Accepts ``(params, cycles)`` pairs (or bare cycle floats)."""
        if self._finished:
            raise SearchError(f"{self.name} search already finished")
        if len(results) != len(self._fresh):
            raise SearchError(
                f"tell() got {len(results)} results for a batch of "
                f"{len(self._fresh)} candidates")
        for (i, _, key), item in zip(self._fresh, results):
            cycles = float(item[1] if isinstance(item, (tuple, list))
                           else item)
            self._memo[key] = cycles
            self.history.append((self.phase, key, cycles))
            self._out[i] = cycles
        self.rounds += 1
        self._advance(self._resolved())

    @property
    def finished(self) -> bool:
        return self._finished

    def result(self) -> "SearchResult":
        from .linesearch import SearchResult
        if not self._finished:
            raise SearchError(
                f"{self.name} search still in progress "
                f"({self.n_evaluations}/{self.max_evals} evaluations)")
        return SearchResult(best_params=self.best_params,
                            best_cycles=self.best_cycles,
                            start_cycles=self.start_cycles,
                            n_evaluations=self.n_evaluations,
                            phase_gains=dict(self.phase_gains),
                            history=self.history)

    # -- convenience driver (serial callers, tests, examples) -----------
    def run(self, evaluate: Evaluator,
            evaluate_many: Optional[BatchEvaluator] = None
            ) -> "SearchResult":
        """Drive ask/tell to completion against a plain evaluator.
        ``evaluate_many`` (when given) receives every multi-candidate
        batch — the engine points it at its worker pool."""
        while not self._finished:
            batch = self.ask()
            if evaluate_many is not None and len(batch) > 1:
                cycles = evaluate_many(batch)
            else:
                cycles = [evaluate(p) for p in batch]
            self.tell(list(zip(batch, cycles)))
        return self.result()

    # -- plan plumbing --------------------------------------------------
    def _plan(self) -> Plan:
        raise NotImplementedError

    def _advance(self, cycles: Optional[List[float]]) -> None:
        """Feed the last batch's cycles to the plan, then pull batches
        until one needs fresh evaluations (or the plan ends).  Batches
        fully resolved by the memo/budget are answered immediately."""
        while True:
            try:
                raw = self._gen.send(cycles)
            except StopIteration:
                self._finished = True
                self._raw, self._out, self._fresh = [], [], []
                return
            cycles = self._ingest(raw)
            if cycles is None:      # fresh work pending: caller's turn
                return

    def _ingest(self, raw: List[TransformParams]) -> Optional[List[float]]:
        """Bookkeeping identical to one-at-a-time evaluation: memo
        lookups, budget charged in candidate order, duplicates folded.
        Returns the full cycle list when nothing fresh is needed."""
        out: List[Optional[float]] = [None] * len(raw)
        fresh: List[Tuple[int, TransformParams, Tuple]] = []
        batch_pos: Dict[Tuple, int] = {}   # key -> position of first use
        for i, params in enumerate(raw):
            key = params.key()
            if key in self._memo:
                out[i] = self._memo[key]
            elif key in batch_pos:
                continue                   # duplicate: filled in below
            elif self.n_evaluations >= self.max_evals:
                out[i] = float("inf")
            else:
                self.n_evaluations += 1
                batch_pos[key] = i
                fresh.append((i, params, key))
        self._raw, self._out, self._fresh = raw, out, fresh
        if fresh:
            return None
        return self._resolved()

    def _resolved(self) -> List[float]:
        for i, params in enumerate(self._raw):
            if self._out[i] is None:       # duplicate within the batch
                self._out[i] = self._memo.get(params.key(), float("inf"))
        return self._out

    def _note(self, params: TransformParams, cycles: float) -> None:
        """Track the global best (strict improvement keeps the earliest
        winner, so ties resolve deterministically)."""
        if cycles < self.best_cycles:
            self.best_cycles, self.best_params = cycles, params


# ---------------------------------------------------------------------------
# the registry

#: name -> Searcher subclass.  Populated by :func:`register_searcher`;
#: ``repro.search`` imports every strategy module, so the registry is
#: complete whenever the package is imported.
SEARCHERS: Dict[str, Type[Searcher]] = {}


def register_searcher(cls: Type[Searcher]) -> Type[Searcher]:
    """Class decorator: make ``cls`` available to ``make_searcher`` (and
    therefore to ``TuneConfig.strategy`` and ``repro tune --strategy``)
    under ``cls.name``."""
    if not cls.name or cls.name == "?":
        raise ValueError(f"{cls.__name__} needs a registry name")
    SEARCHERS[cls.name] = cls
    return cls


def _ensure_registered() -> None:
    # the line search lives in its own module; importing it here (not at
    # module top, which would be circular) completes the registry even
    # when this module is imported directly
    from . import linesearch   # noqa: F401


def searcher_names() -> List[str]:
    """Registered strategy names, sorted."""
    _ensure_registered()
    return sorted(SEARCHERS)


def split_strategy(name: str) -> Tuple[str, Optional[str]]:
    """Split a strategy spelling into ``(registry_name, inner)``.
    ``"transfer:genetic"`` is the compound form — the transfer wrapper
    around a named inner strategy; every other spelling has no inner
    part.  Raises nothing: validation belongs to the caller."""
    base, sep, inner = name.partition(":")
    if sep and base == "transfer":
        return base, inner
    return name, None


def valid_strategy(name: str) -> bool:
    """Whether ``name`` is an instantiable strategy spelling: a
    registered name, or ``transfer:<registered-name>`` (transfer cannot
    wrap itself)."""
    base, inner = split_strategy(name)
    names = searcher_names()
    if inner is not None:
        return base in names and inner in names and inner != base
    return base in names


def make_searcher(name: str, space: SearchSpace, start: TransformParams,
                  **kwargs) -> Searcher:
    """Instantiate a registered strategy by name.  The compound
    spelling ``transfer:<inner>`` builds the transfer wrapper around
    the named inner strategy (bare ``"transfer"`` defaults its inner
    to the surrogate)."""
    _ensure_registered()
    base, inner = split_strategy(name)
    if inner is not None:
        kwargs.setdefault("inner", inner)
    if base not in SEARCHERS:
        raise SearchError(
            f"unknown search strategy {name!r}; valid strategies: "
            f"{', '.join(sorted(SEARCHERS))}")
    return SEARCHERS[base](space, start, **kwargs)


# ---------------------------------------------------------------------------
# shared space geometry (seeded candidate generation + neighbor moves)

def _random_point(space: SearchSpace, rng: np.random.Generator,
                  ) -> TransformParams:
    """One uniform point: the space's generic dimension walk with a
    seeded ``rng.choice`` per legal dimension.  New dimensions (tile
    sizes) are declared after the legacy ones, so the draw stream over
    a legacy space is unchanged."""
    return space.draw(lambda dim: rng.choice(dim.options))


def _move_list(space: SearchSpace) -> List[str]:
    """The neighbor-move vocabulary, derived generically from the
    dimension list (legacy precedence preserved: unroll/ae first, then
    the toggles, then per-array prefetch moves, then tile moves)."""
    by_name = {d.name: d for d in space.dimensions}
    moves = ["unroll", "ae"]
    for name in ("sv", "wnt"):
        if len(by_name[name].options) > 1:
            moves.append(name)
    for arr in space.prefetch_arrays:
        moves.append(f"dist:{arr}")
        moves.append(f"hint:{arr}")
        # prefetch fully on/off as its own move: stepping a distance
        # down to 0 one option at a time almost never survives a walk,
        # but "off" is often the winning value (WNT'd outputs)
        moves.append(f"pftoggle:{arr}")
    for dim in space.tile_dims:
        if len(dim.options) > 1:
            moves.append(dim.name)
    return moves


def _neighbor(space: SearchSpace, rng: np.random.Generator,
              params: TransformParams,
              coarse: bool = False) -> TransformParams:
    """One random single-coordinate move on the option grids (the
    annealer's proposal, the GA's mutation).  Fine moves take the same
    +/-1 steps the line search's restricted 2-D refinements walk;
    ``coarse`` moves redraw the chosen coordinate uniformly — a Gibbs
    step that crosses deceptive valleys (e.g. a prefetch distance whose
    only good value is "off") in one proposal."""
    move = rng.choice(_move_list(space))

    def step(options, value):
        options = list(options)
        if coarse:
            return options[int(rng.integers(len(options)))]
        i = options.index(value) if value in options else 0
        j = min(len(options) - 1, max(0, i + int(rng.choice([-1, 1]))))
        return options[j]

    if move == "sv":
        return params.copy(sv=not params.sv)
    if move == "wnt":
        return params.copy(wnt=not params.wnt)
    if move == "unroll":
        return params.copy(unroll=step(space.unroll_options, params.unroll))
    if move == "ae":
        return params.copy(ae=step(space.ae_options, params.ae))
    if move.startswith("tile:"):
        dim = next(d for d in space.tile_dims if d.name == move)
        return dim_set(params, move,
                       step(dim.options, dim_get(params, move)))
    kind, arr = move.split(":")
    pf = params.pf(arr)
    if kind == "pftoggle":
        if pf.enabled:
            return params.with_pf(arr, None, 0)
        return params.with_pf(arr, PrefetchHint.NTA, space.line * 2)
    if kind == "dist":
        d = step(space.dist_options, pf.dist)
        h = (pf.hint or PrefetchHint.NTA) if d > 0 else None
        return params.with_pf(arr, h, d)
    hints = list(space.hint_options)
    h = hints[int(rng.integers(len(hints)))]
    d = pf.dist if pf.dist > 0 else space.line * 2
    return params.with_pf(arr, h, d)


# ---------------------------------------------------------------------------
# strategies

@register_searcher
class RandomSearch(Searcher):
    """Uniform random sampling of the space — the geometry-only
    baseline every smarter strategy has to beat."""

    name = "random"
    #: candidates asked per round (parallel fan-out grain; the answer is
    #: identical for any batch size, only wall time changes)
    batch = 8

    def _plan(self) -> Plan:
        rng = np.random.default_rng(self.seed)
        self.phase = "start"
        (c0,) = yield [self.start]
        self.start_cycles = c0
        self._note(self.start, c0)
        self.phase = "random"
        attempts = 0
        while (self.n_evaluations < self.max_evals
               and attempts < self.max_evals * 20):
            k = min(self.batch, self.max_evals - self.n_evaluations)
            cands = [_random_point(self.space, rng) for _ in range(k)]
            attempts += k
            cycles = yield cands
            for params, c in zip(cands, cycles):
                self._note(params, c)


@register_searcher
class AnnealSearch(Searcher):
    """Single-coordinate-move simulated annealing (one of the two
    alternatives section 2.3 names).

    The schedule is explore-then-anneal (annealing with random
    initialization).  The hot phase spends ``explore`` of the budget on
    uniform sampling — drawing the *identical* point stream
    :class:`RandomSearch` draws under the same seed, so the walk starts
    from a basin at least as good as random sampling finds at that
    budget share.  The cold phase is a Metropolis walk from the best
    point found: temperature is relative (fraction of current cycles),
    a move ``d`` fractionally worse is accepted with probability
    ``exp(-d / T)``, and T cools geometrically per proposal.  Cold
    proposals are inherently sequential (each depends on the last
    acceptance), so they are single-candidate batches — that half of
    the search gains nothing from the worker pool, and the trace shows
    it honestly.
    """

    name = "anneal"

    def __init__(self, space: SearchSpace, start: TransformParams,
                 t0: float = 0.05, cooling: float = 0.95,
                 explore: float = 0.85, **kwargs):
        self.t0 = t0
        self.cooling = cooling
        self.explore = explore
        super().__init__(space, start, **kwargs)

    def _plan(self) -> Plan:
        rng = np.random.default_rng(self.seed)
        self.phase = "start"
        (c0,) = yield [self.start]
        self.start_cycles = c0
        self._note(self.start, c0)

        # hot phase: uniform exploration, random search's exact stream
        self.phase = "explore"
        n_explore = max(1, int(self.max_evals * self.explore))
        drawn = 0
        while drawn < n_explore and self.n_evaluations < self.max_evals:
            k = min(8, n_explore - drawn)
            cands = [_random_point(self.space, rng) for _ in range(k)]
            drawn += k
            cycles = yield cands
            for params, c in zip(cands, cycles):
                self._note(params, c)

        # cold phase: Metropolis walk from the exploration winner
        self.phase = "anneal"
        cur, cur_c = self.best_params, self.best_cycles
        if not math.isfinite(cur_c):
            cur, cur_c = self.start, c0
        temp = self.t0
        for _ in range(self.max_evals * 20):
            if self.n_evaluations >= self.max_evals:
                break
            cand = _neighbor(self.space, rng, cur,
                             coarse=bool(rng.random() < 0.5))
            (c,) = yield [cand]
            if math.isfinite(c):
                delta = (c - cur_c) / max(cur_c, 1e-9)
                if (delta <= 0
                        or rng.random() < math.exp(-delta / max(temp, 1e-6))):
                    cur, cur_c = cand, c
                self._note(cand, c)
            temp *= self.cooling


@register_searcher
class GeneticSearch(Searcher):
    """A small generational GA (the other named alternative):
    elitist selection, uniform crossover over the parameter
    coordinates, single-coordinate mutation, plus a steady trickle of
    random immigrants (``immigrants`` per generation).

    Like :class:`AnnealSearch`, initialization is seeded sampling: the
    first generation spends ``explore`` of the budget on uniform points
    drawn from a dedicated rng whose stream is *identical* to
    :class:`RandomSearch`'s under the same seed (immigrants continue
    that same stream), so the population's coverage of the space is a
    strict prefix of what random sampling would have evaluated — the
    crossover/mutation tail only has to improve on it.  GA operator
    draws come from a second rng so they never desynchronize the
    mirror stream.  Each generation is one ask() batch, so its
    individuals evaluate concurrently under ``jobs=N``."""

    name = "genetic"

    def __init__(self, space: SearchSpace, start: TransformParams,
                 population: int = 12, elite: int = 3,
                 mutation: float = 0.35, immigrants: int = 3,
                 explore: float = 0.5, **kwargs):
        if population < 2:
            raise SearchError(f"population must be >= 2, got {population}")
        self.population = population
        self.elite = elite
        self.mutation = mutation
        self.immigrants = immigrants
        self.explore = explore
        super().__init__(space, start, **kwargs)

    def _crossover(self, rng: np.random.Generator, a: TransformParams,
                   b: TransformParams) -> TransformParams:
        """Uniform crossover over the space's interaction groups: one
        inheritance draw per group (a prefetch distance travels with
        its hint; a tile size is its own gene).  Generic over the
        dimension list, with unsampled groups (block fetch) left at
        their defaults exactly as before."""
        child = TransformParams()
        for dims in self.space.groups():
            if not all(d.sampled for d in dims):
                continue
            src = a if rng.random() < 0.5 else b
            if dims[0].group.startswith("pf:"):
                arr = dims[0].group[len("pf:"):]
                child.prefetch[arr] = src.pf(arr)
                continue
            for dim in dims:
                child = dim_set(child, dim.name, dim_get(src, dim.name))
        return child

    def _plan(self) -> Plan:
        # random search's exact point stream (gen0 + immigrants) ...
        mirror = np.random.default_rng(self.seed)
        # ... kept separate from GA operator draws so crossover and
        # mutation never desynchronize it
        rng = np.random.default_rng([self.seed, 1])
        # generation 0: the seed point plus the explore share of the
        # budget in seeded uniform samples
        self.phase = "gen0"
        n0 = min(self.max_evals,
                 max(self.population, int(self.max_evals * self.explore)))
        gen0 = [self.start] + [_random_point(self.space, mirror)
                               for _ in range(n0 - 1)]
        cycles = yield gen0
        self.start_cycles = cycles[0]
        pop = list(zip(cycles, gen0))
        for c, p in pop:
            self._note(p, c)

        self.phase = "ga"
        dry = 0
        for _gen in range(self.max_evals):
            if self.n_evaluations >= self.max_evals:
                break
            pop.sort(key=lambda t: t[0])
            pop = pop[:self.population]     # working set: the fittest
            parents = pop[:max(self.elite, 2)]
            n_children = self.population - len(parents)
            n_fresh = min(self.immigrants, n_children)
            if dry:
                # last generation added nothing new (memo hits only):
                # spend it all on exploration instead of re-breeding
                n_fresh = n_children
            children = [self._crossover(rng, parents[int(rng.integers(
                len(parents)))][1], parents[int(rng.integers(
                    len(parents)))][1])
                for _ in range(n_children - n_fresh)]
            children = [(_neighbor(self.space, rng, ch)
                         if rng.random() < self.mutation else ch)
                        for ch in children]
            children += [_random_point(self.space, mirror)
                         for _ in range(n_fresh)]
            before = self.n_evaluations
            cycles = yield children
            for p, c in zip(children, cycles):
                self._note(p, c)
            pop = parents + list(zip(cycles, children))
            if self.n_evaluations == before:
                dry += 1          # every child was already in the memo
                if dry >= 4:
                    break         # space (or budget) genuinely exhausted
            else:
                dry = 0


@register_searcher
class ExhaustiveSearch(Searcher):
    """Full cross-product sweep, restricted to a *shared* prefetch
    distance/hint across arrays to keep it tractable.  The gold
    standard the cheap searches are judged against in the ablations."""

    name = "exhaustive"
    batch = 16

    def _plan(self) -> Plan:
        sp = self.space
        self.phase = "start"
        (c0,) = yield [self.start]
        self.start_cycles = c0
        self._note(self.start, c0)
        self.phase = "grid"
        # the sweep axes, generically from the dimension list: the core
        # transforms in their legacy nesting order, then tile sizes
        # (inner to keep legacy candidate order unchanged when there
        # are none), then the shared prefetch pair innermost
        by_name = {d.name: d for d in sp.dimensions}
        grid_dims: List[Dimension] = [by_name[n]
                                      for n in ("sv", "wnt", "unroll", "ae")]
        grid_dims += sp.tile_dims
        pf_options: List[Tuple[Optional[PrefetchHint], int]] = [(None, 0)]
        pf_options += [(h, d) for d in sp.dist_options if d > 0
                       for h in sp.hint_options]
        chunk: List[TransformParams] = []

        def flush():
            batch = list(chunk)
            del chunk[:]
            cycles = yield batch
            for params, c in zip(batch, cycles):
                self._note(params, c)

        for combo in itertools.product(*(d.options for d in grid_dims)):
            point = TransformParams()
            for dim, value in zip(grid_dims, combo):
                point = dim_set(point, dim.name, value)
            for hint, dist in pf_options:
                p = point.copy()
                for arr in sp.prefetch_arrays:
                    p.prefetch[arr] = PrefetchParams(hint, dist)
                chunk.append(p)
                if len(chunk) >= self.batch:
                    yield from flush()
        if chunk:
            yield from flush()


# ---------------------------------------------------------------------------
# the surrogate model: bagged CART regression trees (random-forest-lite,
# numpy + stdlib only) over SearchSpace.encode feature vectors

class _RegressionTree:
    """A depth-bounded CART regression tree with deterministic splits:
    features are scanned in index order, thresholds in ascending order,
    and a split must *strictly* beat the incumbent to displace it — no
    tie is ever resolved by hash or insertion order, so two processes
    fitting the same data grow the identical tree."""

    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value: float):
        self.feature = -1
        self.threshold = 0.0
        self.left: Optional["_RegressionTree"] = None
        self.right: Optional["_RegressionTree"] = None
        self.value = value

    def predict(self, x: Sequence[float]) -> float:
        node = self
        while node.feature >= 0:
            node = node.left if x[node.feature] <= node.threshold \
                else node.right
        return node.value


def _fit_tree(X: np.ndarray, y: np.ndarray, depth: int,
              min_leaf: int = 2) -> _RegressionTree:
    node = _RegressionTree(float(np.mean(y)))
    n = len(y)
    if depth <= 0 or n < 2 * min_leaf or float(np.ptp(y)) == 0.0:
        return node
    best: Optional[Tuple[float, int, float]] = None   # (sse, j, t)
    for j in range(X.shape[1]):
        col = X[:, j]
        values = np.unique(col)
        if len(values) < 2:
            continue
        for t in (values[:-1] + values[1:]) / 2.0:
            mask = col <= t
            nl = int(mask.sum())
            if nl < min_leaf or n - nl < min_leaf:
                continue
            yl, yr = y[mask], y[~mask]
            sse = float(((yl - yl.mean()) ** 2).sum()
                        + ((yr - yr.mean()) ** 2).sum())
            if best is None or sse < best[0]:
                best = (sse, j, float(t))
    if best is None:
        return node
    _, j, t = best
    mask = X[:, j] <= t
    node.feature, node.threshold = j, t
    node.left = _fit_tree(X[mask], y[mask], depth - 1, min_leaf)
    node.right = _fit_tree(X[~mask], y[~mask], depth - 1, min_leaf)
    return node


class _Forest:
    """``bag`` trees, each fit on a seeded bootstrap resample of the
    observations.  The mean over trees is the prediction; the spread
    over trees is the uncertainty expected improvement consumes."""

    def __init__(self, trees: List[_RegressionTree]):
        self.trees = trees

    @classmethod
    def fit(cls, X: List[List[float]], y: List[float], bag: int,
            depth: int, rng: np.random.Generator) -> "_Forest":
        Xa = np.asarray(X, dtype=float)
        ya = np.asarray(y, dtype=float)
        n = len(ya)
        return cls([_fit_tree(Xa[idx], ya[idx], depth)
                    for idx in (rng.integers(0, n, n) for _ in range(bag))])

    def predict(self, x: Sequence[float]) -> Tuple[float, float]:
        p = [t.predict(x) for t in self.trees]
        return float(np.mean(p)), float(np.std(p))


def _expected_improvement(mu: float, sigma: float, best: float) -> float:
    """EI for minimization: how much below ``best`` the model expects a
    point to land, integrating over its predictive uncertainty."""
    if sigma < 1e-12:
        return max(best - mu, 0.0)
    z = (best - mu) / sigma
    cdf = 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
    pdf = math.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)
    return sigma * (z * cdf + pdf)


@register_searcher
class SurrogateSearch(Searcher):
    """Model-based search (ROADMAP item 1): fit a cheap bagged-tree
    surrogate on the evaluations seen so far and ask the candidates
    with the highest *expected improvement*.

    Structure mirrors :class:`GeneticSearch`'s budget split: the
    ``explore`` share of the budget draws random search's *identical*
    seeded point stream (the mirror rng), giving the model unbiased
    training data whose coverage is a strict prefix of what uniform
    sampling would have evaluated.  Each model round then fits a forest
    of ``bag`` CART trees on ``SearchSpace.encode`` features against
    log-cycles, scores a seeded candidate pool (coarse/fine neighbors
    of the incumbent plus uniform draws, all from a second rng so the
    mirror stream never desynchronizes) by expected improvement, and
    asks the top picks — topped up with ``immigrants`` more points
    continuing the mirror stream, so the model can never starve the
    baseline coverage the never-lose-to-random invariant depends on.

    Batch order inside a round (EI picks first, immigrants last) is a
    pure evaluation hint: the base class charges budget in ask order
    and ``ask_batch`` prefix grouping applies unchanged.

    The default split is deliberately conservative (``explore=0.8``):
    the simulated machines are noise-free, so a long mirror prefix
    plus a few high-EI picks empirically wins-or-ties uniform random
    on every benchmark grid point, which the strategy race hard-gates
    (``benchmarks/bench_strategies.py``)."""

    name = "surrogate"
    batch = 8

    def __init__(self, space: SearchSpace, start: TransformParams,
                 bag: int = 8, depth: int = 5, explore: float = 0.8,
                 immigrants: int = 2, pool: int = 128, **kwargs):
        if bag < 1:
            raise SearchError(f"bag must be >= 1, got {bag}")
        self.bag = bag
        self.depth = depth
        self.explore = explore
        self.immigrants = immigrants
        self.pool = pool
        super().__init__(space, start, **kwargs)

    def _plan(self) -> Plan:
        # random search's exact point stream (exploration + immigrants)
        mirror = np.random.default_rng(self.seed)
        # ... kept apart from model draws (bootstraps, candidate pool)
        # so fitting never desynchronizes it
        rng = np.random.default_rng([self.seed, 1])
        obs_x: List[List[float]] = []
        obs_y: List[float] = []        # log-cycles

        def observe(params: TransformParams, c: float) -> None:
            self._note(params, c)
            if math.isfinite(c) and c > 0:
                obs_x.append(self.space.encode(params))
                obs_y.append(math.log(c))

        self.phase = "start"
        (c0,) = yield [self.start]
        self.start_cycles = c0
        observe(self.start, c0)

        self.phase = "explore"
        n_explore = max(1, int(self.max_evals * self.explore))
        drawn = 0
        while drawn < n_explore and self.n_evaluations < self.max_evals:
            k = min(self.batch, n_explore - drawn)
            cands = [_random_point(self.space, mirror) for _ in range(k)]
            drawn += k
            cycles = yield cands
            for params, c in zip(cands, cycles):
                observe(params, c)

        self.phase = "model"
        dry = 0
        for _round in range(self.max_evals):
            if self.n_evaluations >= self.max_evals:
                break
            k = min(self.batch, self.max_evals - self.n_evaluations)
            n_fresh = min(self.immigrants, k)
            if dry:
                # the last round added nothing new (memo hits only):
                # spend this one entirely on exploration
                n_fresh = k
            picks: List[TransformParams] = []
            if k > n_fresh and len(obs_y) >= 4 \
                    and math.isfinite(self.best_cycles):
                pool = [_neighbor(self.space, rng, self.best_params,
                                  coarse=bool(rng.random() < 0.5))
                        for _ in range(self.pool // 2)]
                pool += [_random_point(self.space, rng)
                         for _ in range(self.pool - len(pool))]
                model = _Forest.fit(obs_x, obs_y, self.bag, self.depth,
                                    rng)
                best_log = math.log(self.best_cycles)
                scored = []
                seen = set()
                for i, p in enumerate(pool):
                    key = p.key()
                    if key in self._memo or key in seen:
                        continue
                    seen.add(key)
                    mu, sigma = model.predict(self.space.encode(p))
                    ei = _expected_improvement(mu, sigma, best_log)
                    scored.append((-ei, i, p))
                # ties (equal EI) resolve by pool position, so the
                # ranking is a total order independent of dict/set state
                scored.sort(key=lambda t: (t[0], t[1]))
                picks = [p for _, _, p in scored[:k - n_fresh]]
            cands = picks + [_random_point(self.space, mirror)
                             for _ in range(k - len(picks))]
            before = self.n_evaluations
            cycles = yield cands
            for params, c in zip(cands, cycles):
                observe(params, c)
            if self.n_evaluations == before:
                dry += 1
                if dry >= 4:
                    break       # space (or budget) genuinely exhausted
            else:
                dry = 0


@register_searcher
class TransferSearch(Searcher):
    """Transfer-aware wrapper (the other half of ROADMAP item 1): seed
    any registered strategy with the best known parameters of the
    nearest previously-tuned problem.

    ``warm`` carries parameter points recovered from a result store
    (the engine resolves them via
    :func:`repro.search.warmstart.lookup_warm_start` when
    ``TuneConfig.warm_start`` names a store).  Each is *projected* onto
    this kernel's space — off-grid coordinates snap to the start
    point's values — evaluated right after the start point, and then
    the inner strategy (``inner``, default the surrogate; spelled
    ``transfer:<name>`` to pick another) runs on the remaining budget
    from the best point seen so far.  The wrapper shares the outer
    memo and budget: candidates the inner strategy re-asks are answered
    from the memo without re-charging, and the outer budget is charged
    exactly once per distinct candidate, in ask order — so the standing
    jobs=1 vs jobs=N bit-identity holds unchanged.

    With an empty ``warm`` list (no store, or an empty one) the search
    degenerates to exactly the inner strategy under the same seed."""

    name = "transfer"

    def __init__(self, space: SearchSpace, start: TransformParams,
                 inner: str = "surrogate",
                 warm: Sequence[TransformParams] = (),
                 warm_source: str = "", **kwargs):
        _ensure_registered()
        if inner == self.name:
            raise SearchError("transfer cannot wrap itself")
        if inner not in SEARCHERS:
            raise SearchError(
                f"unknown inner strategy {inner!r} for transfer; valid: "
                f"{', '.join(sorted(SEARCHERS))}")
        self.inner_name = inner
        self.warm = list(warm)
        self.warm_source = warm_source
        super().__init__(space, start, **kwargs)

    def _plan(self) -> Plan:
        self.phase = "start"
        (c0,) = yield [self.start]
        self.start_cycles = c0
        self._note(self.start, c0)

        # warm candidates: neighbor bests projected legally into this
        # space, deduplicated, evaluated before any strategy draws
        seen = {self.start.key()}
        warm: List[TransformParams] = []
        for p in self.warm:
            q = self.space.project(p, fallback=self.start)
            if q.key() not in seen:
                seen.add(q.key())
                warm.append(q)
        if warm:
            self.phase = "warm"
            cycles = yield warm
            for params, c in zip(warm, cycles):
                self._note(params, c)

        remaining = self.max_evals - self.n_evaluations
        if remaining <= 0:
            return
        inner_start = (self.best_params
                       if math.isfinite(self.best_cycles) else self.start)
        # the inner strategy re-evaluates its start point, which the
        # outer memo already holds: grant it that one extra charge so
        # the *outer* budget (which never re-charges a memo hit, and
        # hard-caps at max_evals regardless) is spent in full
        inner = make_searcher(
            self.inner_name, self.space, inner_start,
            max_evals=remaining + 1, min_gain=self.min_gain,
            seed=self.seed, output_arrays=self.output_arrays)
        while not inner.finished:
            batch = inner.ask()
            self.phase = inner.phase
            cycles = yield batch
            inner.tell(list(zip(batch, cycles)))
            for params, c in zip(batch, cycles):
                self._note(params, c)
