"""Structured search tracing — one JSON-lines event per evaluation.

The engine records what the search *did* (every compile+time, every
cache hit, every phase move, every job boundary) so a run can be
audited after the fact: how many evaluations a figure cost, where the
wall time went, whether a warm-cache rerun really re-evaluated nothing.
ELAPS (Peise & Bientinesi) treats performance experiments as jobs with
recorded measurement traces; this is that idea for the ifko search.

Event schema v2 (all events share ``t`` — POSIX timestamp — and
``event``; v2 adds the ``pass`` and ``attribution`` kinds, emitted only
when the session observes with ``TuneConfig(observe=True)``):

========== =========================================================
event      extra fields
========== =========================================================
batch-start  jobs (list of job keys), njobs
job-start    job, kernel, machine, context, n, space (cardinality),
             strategy (registry name), seed
pass         job, phase, params, pass (pipeline pass name), wall,
             applied (False = no-op), instrs/blocks/vregs (IR size
             after the pass), d_instrs/d_blocks/d_vregs (the pass's
             delta), detail (per-transform counters, e.g. regalloc's
             ``ra.spill_loads``) — one per executed pass, emitted
             before the eval they belong to
eval         job, phase, params (describe()), cycles, wall, status
             (``ok`` | ``timeout`` | ``fault: ...``), fast (True when
             the timing model's steady-state replay fired)
attribution  job, phase, params, total, compute, memory_stall,
             prefetch_waste, other, bus_busy, prefetch_issued/
             dropped/wasted, demand_misses, hw_prefetches, lines,
             lines_extrapolated, steady_period — the timing model's
             cycle decomposition for the eval just recorded
cache-hit    job, phase, params, cycles, wall (0.0)
phase        job, phase, cycles (best so far entering the phase)
round        job, strategy, round (ask/tell cycle — a line-search
             phase batch, an anneal proposal, a GA generation),
             phase, evaluations (budget charged so far), best_cycles
curve        job, strategy, seed, round, evaluations, best_cycles,
             improved — one best-so-far convergence sample per tell
             (the anytime-performance curve behind ``repro curves``);
             off-path: nothing in the search reads it, and its fields
             are deterministic, so jobs=1 and jobs=N traces carry
             identical curves
best-rejected  job, params, best_cycles, error — the search's winning
             kernel failed the tester (``TuneConfig.test_best``); the
             job raises instead of storing the kernel
job-end      job, best_cycles, evaluations, mflops, params, plus the
             session-cumulative batched-evaluation counters
             batch_prefix_hits/misses, batch_walk_hits, batch_groups,
             batch_size_total
job-resumed  job (reloaded from a checkpoint, no search ran)
job-error    job, error
pool-broken  job (optional) — worker pool died, run fell back serial
batch-end    completed, errors, wall, evaluations, cache_hits,
             evals_per_sec, cache_hit_rate, fast_path, slow_path, and
             the merged batch_* counters (as on job-end, batch-wide)
========== =========================================================

Failed evaluations carry ``cycles: null`` (the search treats them as
infinitely slow); non-finite floats are sanitized to null recursively,
including inside nested payloads, so JSON stays strict.
"""

from __future__ import annotations

import json
import math
import pathlib
import time
from collections import Counter
from typing import Dict, List, Optional

TRACE_VERSION = 2


def _sanitize(value):
    """Replace non-finite floats with None, recursively: event payloads
    nest (``params`` dicts, attribution breakdowns, detail counters),
    and an ``Infinity`` smuggled inside a list or dict would produce
    JSON that strict parsers reject."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return value


class TraceWriter:
    """Appends JSON-lines events to a file (or buffers them when
    constructed with ``path=None`` — the engine's worker processes do
    this and ship the buffer back to the parent, which owns the file).

    Usable as a context manager; the file handle is closed on exit
    whether the block completed or raised."""

    def __init__(self, path: Optional[str] = None):
        self.path = pathlib.Path(path) if path else None
        self.buffer: List[Dict] = []
        self._fh = None
        self._listeners: List = []
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", buffering=1)

    # -- live subscription (the transport layer's streaming seam) ------
    def subscribe(self, listener) -> None:
        """Register ``listener(record)`` to be called for every record
        written (file-backed or buffered, locally emitted or shipped
        back from a worker).  The service daemon uses this to route
        events to per-job streams; a listener that raises is dropped
        rather than allowed to poison the search."""
        self._listeners.append(listener)

    def unsubscribe(self, listener) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def emit(self, event: str, **fields) -> Dict:
        record = {"t": time.time(), "event": event}
        for k, v in fields.items():
            record[k] = _sanitize(v)
        self.write(record)
        return record

    def write(self, record: Dict) -> None:
        if self._fh is not None:
            self._fh.write(json.dumps(record) + "\n")
        else:
            self.buffer.append(record)
        for listener in list(self._listeners):
            try:
                listener(record)
            except Exception:   # noqa: BLE001 — observers never perturb
                self.unsubscribe(listener)

    def write_many(self, records: List[Dict]) -> None:
        for r in records:
            self.write(r)

    def drain(self) -> List[Dict]:
        out, self.buffer = self.buffer, []
        return out

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class TraceEvents(List[Dict]):
    """A list of trace events that remembers how many lines could not
    be parsed.  It behaves exactly like a plain list (existing callers
    are unaffected); ``malformed`` lets consumers report skips instead
    of hiding a truncated or corrupted trace."""

    def __init__(self, events=(), malformed: int = 0):
        super().__init__(events)
        self.malformed = malformed


class TraceStream:
    """An iterable view over a JSONL trace that never materializes the
    file: each ``__iter__`` re-opens the file and yields one parsed
    event at a time, so consumers that scan a trace several times
    (``repro report``) stay O(1) in memory even over multi-hundred-MB
    study traces.

    Mirrors :class:`TraceEvents`' malformed-line contract: unparsable
    lines are skipped and counted on ``.malformed``.  The counter is
    reset at the start of every iteration pass, so after any complete
    pass it holds the file's (current) malformed-line count rather
    than a multiple of it."""

    def __init__(self, path: str):
        self.path = path
        self.malformed = 0

    def __iter__(self):
        self.malformed = 0
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    self.malformed += 1


def read_trace(path: str) -> TraceEvents:
    """Load a JSONL trace into memory; malformed lines are skipped, not
    fatal — but they are *counted* (``.malformed`` on the returned
    list), and ``summarize_trace`` surfaces the count.  Consumers that
    only scan (``repro report``, ``repro curves``) should prefer
    :class:`TraceStream`."""
    stream = TraceStream(path)
    events = TraceEvents(stream)
    events.malformed = stream.malformed
    return events


def summarize_trace(events) -> Dict:
    """Aggregate a trace into the numbers a human asks first:
    evaluations vs cache hits, wall time, phase mix, per-job results.
    ``events`` may be a materialized :class:`TraceEvents` list or a
    :class:`TraceStream` — the summary is built in one pass either
    way, and the malformed-line count is read *after* the pass (a
    stream only knows it once the file has been walked)."""
    n_events = 0
    totals = Counter()
    phases = Counter()
    statuses = Counter()
    eval_wall = 0.0
    fast_path = 0
    slow_path = 0
    batch_wall = 0.0
    # batched-evaluation counters are emitted cumulatively on job-end /
    # batch-end, so the latest carrier in file order holds the totals
    # (batch-end, the merged batch-wide view, always comes last)
    batch = {"prefix_hits": 0, "prefix_misses": 0, "walk_hits": 0,
             "groups": 0, "size_total": 0}
    jobs: Dict[str, Dict] = {}

    def job_entry(key):
        return jobs.setdefault(key, {"evaluations": 0, "cache_hits": 0,
                                     "best_cycles": None, "mflops": None,
                                     "params": None, "status": "ran"})

    for ev in events:
        n_events += 1
        kind = ev.get("event", "?")
        totals[kind] += 1
        job = ev.get("job")
        if kind == "eval":
            phases[ev.get("phase", "?")] += 1
            statuses[ev.get("status", "ok")] += 1
            eval_wall += ev.get("wall") or 0.0
            if ev.get("fast"):
                fast_path += 1
            else:
                slow_path += 1
            if job:
                job_entry(job)["evaluations"] += 1
        elif kind == "batch-end":
            batch_wall += ev.get("wall") or 0.0
        elif kind == "cache-hit":
            if job:
                job_entry(job)["cache_hits"] += 1
        elif kind == "job-end" and job:
            entry = job_entry(job)
            entry["best_cycles"] = ev.get("best_cycles")
            entry["mflops"] = ev.get("mflops")
            entry["params"] = ev.get("params")
        elif kind == "job-resumed" and job:
            job_entry(job)["status"] = "resumed"
        elif kind == "job-error" and job:
            entry = job_entry(job)
            entry["status"] = "error"
            entry["error"] = ev.get("error")
        if "batch_prefix_hits" in ev:   # job-end and batch-end carriers
            for k in batch:
                batch[k] = int(ev.get(f"batch_{k}") or 0)

    n_evals = totals["eval"]
    n_hits = totals["cache-hit"]
    seen = n_evals + n_hits
    wall = batch_wall or eval_wall
    return {"n_events": n_events,
            "malformed_lines": getattr(events, "malformed", 0),
            "events": dict(totals),
            "evaluations": n_evals,
            "cache_hits": n_hits,
            "eval_wall": eval_wall,
            "evals_per_sec": (n_evals / wall) if wall > 0 else 0.0,
            "cache_hit_rate": (n_hits / seen) if seen else 0.0,
            "fast_path": fast_path,
            "slow_path": slow_path,
            "batch": dict(batch,
                          mean_size=(batch["size_total"] / batch["groups"]
                                     if batch["groups"] else 0.0)),
            "statuses": dict(statuses),
            "phases": dict(phases),
            "jobs": jobs}


def render_trace_summary(summary: Dict) -> str:
    lines = [f"# trace: {summary['n_events']} events, "
             f"{summary['evaluations']} evaluations, "
             f"{summary['cache_hits']} cache hits, "
             f"{summary['eval_wall']:.2f}s in evaluation"]
    if summary.get("malformed_lines"):
        lines.append(f"# WARNING: {summary['malformed_lines']} malformed "
                     f"line(s) skipped while reading the trace")
    if summary["evaluations"] or summary["cache_hits"]:
        lines.append(
            f"# throughput: {summary.get('evals_per_sec', 0.0):.1f} evals/s, "
            f"cache hit rate {summary.get('cache_hit_rate', 0.0):.1%}, "
            f"fast-path {summary.get('fast_path', 0)}"
            f"/slow-path {summary.get('slow_path', 0)}")
    bad = {k: v for k, v in summary["statuses"].items() if k != "ok"}
    if bad:
        lines.append("# non-ok evaluations: "
                     + "  ".join(f"{k}={v}" for k, v in sorted(bad.items())))
    if summary["phases"]:
        lines.append("# evaluations by phase: "
                     + "  ".join(f"{p}={n}" for p, n in
                                 sorted(summary["phases"].items())))
    if summary["jobs"]:
        lines.append(f"# jobs ({len(summary['jobs'])}):")
        width = max(len(k) for k in summary["jobs"])
        for key, j in summary["jobs"].items():
            desc = (f"  {key:{width}s}  evals={j['evaluations']:<4d} "
                    f"hits={j['cache_hits']:<4d}")
            if j["status"] == "resumed":
                desc += " [resumed from checkpoint]"
            elif j["status"] == "error":
                desc += f" [ERROR: {j.get('error')}]"
            elif j["best_cycles"] is not None:
                desc += f" best={j['best_cycles']:.0f}cy"
                if j["mflops"] is not None:
                    desc += f" {j['mflops']:.1f}MFLOPS"
                if j["params"]:
                    desc += f"  {j['params']}"
            lines.append(desc)
    return "\n".join(lines)
