"""Warm-start lookup: nearest-neighbor retrieval over a result store.

The transfer searcher (ROADMAP item 1) seeds a search with the best
known parameters of the nearest previously-tuned problem.  This module
is the retrieval half: it reads a ``repro serve`` result-store
directory (one JSON file per answered request — the layout
:class:`repro.service.jobs.ServeResultStore` writes), recovers each
entry's (kernel, machine, context, n, best params), and ranks entries
by a deterministic lexicographic distance to the query problem.

Canonicalization is the load-bearing part.  Stored results spell their
machine however the writer did (``TunedKernel.to_dict`` records the
config's canonical-case name, e.g. ``"P4E"``; the wire schema
lowercases to ``"p4e"``) and their context as either the enum value or
a CLI short form.  Every spelling is folded through the *same* path the
wire schema uses — ``get_machine(...).name.lower()`` and
``parse_context`` — on both the stored and the query side, and a
missing problem size takes the wire's ``default_n``.  Without that, a
result served by the daemon is invisible to an in-process warm-start of
the identical problem (the satellite bugfix this module's regression
tests pin).

The neighbor metric is lexicographic, most-significant first: same
kernel, then same kernel family (``dasum``/``sasum`` share a base),
then same machine, then same context, then the ``|log2|`` ratio of
problem sizes — tie-broken by recorded cycles and finally by file name,
so the ranking is a total order and the lookup is deterministic across
processes and filesystems.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..fko.params import TransformParams

__all__ = ["WarmEntry", "load_entries", "lookup_warm_start",
           "write_warm_entry"]


@dataclass(frozen=True)
class WarmEntry:
    """One stored tuning result, canonicalized for neighbor ranking."""

    kernel: str
    base: str                  # kernel family (precision-independent)
    machine: str               # canonical lowercase (wire spelling)
    context: str               # Context value string
    n: int
    params: TransformParams
    cycles: float
    source: str                # file name (deterministic tiebreak)


# -- canonicalization (the wire schema's own paths, imported lazily to
#    keep repro.search free of an import cycle with repro.service) ------

def canon_machine(machine) -> str:
    """Machine spelling -> the wire schema's canonical form (alias fold
    through ``get_machine``, lowercased)."""
    from ..machine import get_machine
    name = getattr(machine, "name", machine)
    return get_machine(str(name)).name.lower()


def canon_context(context) -> str:
    """Context spelling (enum, value string or CLI short form) -> the
    canonical value string, via the wire schema's ``parse_context``."""
    from ..service.schema import parse_context
    return parse_context(context).value


def canon_n(kernel: str, context, n) -> int:
    """Problem size with the wire schema's defaulting: ``None`` takes
    ``default_n(kernel, context)`` so an unsized query matches what the
    daemon stored for the same unsized request."""
    if n:
        return int(n)
    from ..service.schema import default_n, parse_context
    return default_n(kernel, parse_context(context))


def _kernel_base(kernel: str) -> str:
    """The precision-independent kernel family, from the registry when
    the kernel is known (``dasum`` and ``sasum`` -> ``asum``)."""
    from ..kernels import REGISTRY
    spec = REGISTRY.get(kernel)
    if spec is not None:
        return spec.base
    return kernel


# -- reading a store ----------------------------------------------------

def _parse_entry(data, source: str) -> Optional[WarmEntry]:
    """One store file -> a :class:`WarmEntry`, or None for anything
    unusable (wrong shape, failed request, undecodable params).  Both
    the :class:`TuneResponse` envelope and a bare ``TunedKernel`` dict
    are accepted."""
    if not isinstance(data, dict):
        return None
    result = data.get("result") if isinstance(data.get("result"), dict) \
        else data
    kernel = result.get("kernel")
    params = result.get("params") or result.get("best_params")
    if not isinstance(kernel, str) or not isinstance(params, dict):
        return None
    cycles = float("inf")
    search = result.get("search")
    if isinstance(search, dict) \
            and isinstance(search.get("best_cycles"), (int, float)):
        cycles = float(search["best_cycles"])
    elif isinstance(result.get("timing"), dict) \
            and isinstance(result["timing"].get("cycles"), (int, float)):
        cycles = float(result["timing"]["cycles"])
    try:
        return WarmEntry(
            kernel=kernel,
            base=_kernel_base(kernel),
            machine=canon_machine(result.get("machine", "p4e")),
            context=canon_context(result.get("context", "out-of-cache")),
            n=canon_n(kernel, result.get("context", "out-of-cache"),
                      result.get("n")),
            params=TransformParams.from_dict(params),
            cycles=cycles,
            source=source)
    except (KeyError, ValueError, TypeError):
        return None


def load_entries(root) -> List[WarmEntry]:
    """Every parseable entry under ``root`` (a serve result-store
    directory), in deterministic (sorted-path) order.  A missing or
    empty directory is an empty list, never an error — warm-starting is
    always best-effort."""
    rootp = pathlib.Path(root)
    if not rootp.is_dir():
        return []
    entries: List[WarmEntry] = []
    for path in sorted(rootp.rglob("*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        entry = _parse_entry(data, path.name)
        if entry is not None:
            entries.append(entry)
    return entries


# -- the neighbor metric ------------------------------------------------

def _rank_key(entry: WarmEntry, kernel: str, base: str, machine: str,
              context: str, n: int) -> Tuple:
    return (entry.kernel != kernel,
            entry.base != base,
            entry.machine != machine,
            entry.context != context,
            abs(math.log2(entry.n / n)) if entry.n > 0 and n > 0 else 0.0,
            entry.cycles,
            entry.source)


def lookup_warm_start(root, kernel: str, machine, context,
                      n: Optional[int] = None, k: int = 2
                      ) -> Tuple[List[TransformParams], str]:
    """The ``k`` best warm-start candidates for (kernel, machine,
    context, n) from the store at ``root``, nearest problem first, plus
    a human-readable tag of the nearest neighbor (for the trace).
    Candidates are deduplicated by parameter key; an empty or missing
    store yields ``([], "")``."""
    entries = load_entries(root)
    if not entries:
        return [], ""
    machine = canon_machine(machine)
    context = canon_context(context)
    n = canon_n(kernel, context, n)
    base = _kernel_base(kernel)
    ranked = sorted(entries,
                    key=lambda e: _rank_key(e, kernel, base, machine,
                                            context, n))
    picks: List[TransformParams] = []
    seen = set()
    for entry in ranked:
        key = entry.params.key()
        if key in seen:
            continue
        seen.add(key)
        picks.append(entry.params)
        if len(picks) >= max(1, k):
            break
    nearest = ranked[0]
    source = f"{nearest.kernel}:{nearest.machine}:{nearest.context}:" \
             f"{nearest.n}"
    return picks, source


# -- writing entries (benchmarks, tests, offline store builders) --------

def write_warm_entry(root, kernel: str, machine, context, n,
                     params: TransformParams, cycles: float,
                     extra: Optional[Dict] = None) -> pathlib.Path:
    """Record one tuned result in the serve result-store layout
    (``root/<digest[:2]>/<digest>.json`` keyed by the canonical
    request digest), so benchmarks and tests can build warm stores
    without running a daemon.  Returns the written path."""
    from ..service.schema import TuneRequest
    request = TuneRequest(kernel=kernel,
                          machine=getattr(machine, "name", machine),
                          context=context, n=n, test=False)
    digest = request.digest()
    entry = {"schema": 1, "digest": digest, "job_id": "",
             "status": "done",
             "result": {"schema": 1, "kernel": kernel,
                        "machine": getattr(machine, "name", machine),
                        "context": getattr(context, "value",
                                           str(context)),
                        "n": request.n,
                        "params": params.to_dict(),
                        "search": {"best_cycles": float(cycles)}}}
    if extra:
        entry["result"].update(extra)
    target = pathlib.Path(root) / digest[:2] / f"{digest}.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_suffix(".tmp")
    tmp.write_text(json.dumps(entry, indent=1, sort_keys=True))
    os.replace(tmp, target)
    return target
