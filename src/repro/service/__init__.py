"""Tuning-as-a-service: the transport layer over engine + scheduler.

The batch tuner is a process you run; this package makes it a service
you query — the ROADMAP's "millions of users" shape: many clients, one
shared evaluation cache, fair scheduling across jobs, deterministic
answers.  ELAPS (PAPERS.md) treats performance experiments as recorded,
queryable jobs rather than one-shot scripts; this is that idea with a
daemon in front of it.

* :mod:`~repro.service.schema` — the versioned ``TuneRequest`` /
  ``TuneResponse`` wire forms and the canonical request digest that
  drives dedup and cache-backed answers;
* :mod:`~repro.service.jobs` — the async job queue: one shared
  :class:`~repro.search.engine.TuningSession`, in-flight coalescing,
  a persistent result store, per-job event streams;
* :mod:`~repro.service.daemon` — the ``repro serve`` HTTP/JSON API.

Clients use :mod:`repro.client`, which speaks to either a daemon
(:class:`~repro.client.ServeClient`) or an in-process manager
(:class:`~repro.client.LocalClient`) through one interface.
"""

from .schema import TuneRequest, TuneResponse, history_digest, parse_context
from .jobs import (BudgetExhaustedError, JobManager, ServeJob,
                   ServeResultStore)
from .daemon import ServerHandle, serve, start_server

__all__ = ["TuneRequest", "TuneResponse", "history_digest",
           "parse_context", "BudgetExhaustedError", "JobManager",
           "ServeJob", "ServeResultStore", "ServerHandle", "serve",
           "start_server"]
