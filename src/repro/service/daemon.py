"""``repro serve`` — the HTTP/JSON transport over the job layer.

A deliberately dependency-free daemon: stdlib ``ThreadingHTTPServer``
in front of one :class:`~repro.service.jobs.JobManager`.  The API is
versioned under ``/v1``:

=======  ==========================  =================================
method   path                        body / answer
=======  ==========================  =================================
POST     /v1/tune                    TuneRequest JSON -> submit ticket
                                     {job_id, digest, status, how};
                                     ``?wait=1`` blocks and answers
                                     the full TuneResponse instead
POST     /v1/compile                 {kernel, machine, params} -> one
                                     verified compile's IR digest (the
                                     fuzzer's ``--via-serve`` oracle)
GET      /v1/jobs/{id}               job snapshot (+ response if done)
GET      /v1/jobs/{id}/events        NDJSON stream of the job's trace
                                     v2 events; ``?from=N`` replays
                                     from an offset, ``?follow=1``
                                     streams live until the job ends
GET      /v1/results                 completed TuneResponses, newest
                                     first (result store + resident)
GET      /v1/stats                   dedup/cache counters, engine
                                     stats, budget ledger, config
GET      /v1/metrics                 process metrics registry in the
                                     Prometheus text exposition format
                                     (``?format=json`` for the JSON
                                     snapshot)
GET      /v1/healthz                 {ok, version}
=======  ==========================  =================================

Transport is the *only* thing this module adds: every decision about
dedup, caching, ordering and execution lives in the job and scheduler
layers, so an in-process :class:`~repro.client.LocalClient` and an HTTP
client get bit-identical answers by construction.
"""

from __future__ import annotations

import json
import sys
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional
from urllib.parse import parse_qs, urlparse

from .. import __version__
from ..obs import metrics as _metrics
from ..search.config import TuneConfig
from .jobs import BudgetExhaustedError, JobManager
from .schema import TuneRequest

#: cap on accepted request bodies (a tune request is ~hundreds of bytes)
MAX_BODY = 1 << 20


class ServiceHandler(BaseHTTPRequestHandler):
    server_version = f"repro-serve/{__version__}"

    # -- plumbing -------------------------------------------------------
    @property
    def manager(self) -> JobManager:
        return self.server.manager   # type: ignore[attr-defined]

    def log_message(self, fmt, *args):   # noqa: A003 — stdlib signature
        if getattr(self.server, "verbose", False):
            sys.stderr.write("serve: %s - %s\n"
                             % (self.address_string(), fmt % args))

    def _json(self, code: int, payload: Dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _text(self, code: int, body: str,
              content_type: str = "text/plain; version=0.0.4; "
                                  "charset=utf-8") -> None:
        data = body.encode()
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _error(self, code: int, message: str) -> None:
        self._json(code, {"error": message})

    def _body(self) -> Optional[Dict]:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            return None
        if not 0 < length <= MAX_BODY:
            return None
        try:
            data = json.loads(self.rfile.read(length))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return data if isinstance(data, dict) else None

    # -- routes ---------------------------------------------------------
    def do_POST(self):   # noqa: N802 — stdlib naming
        url = urlparse(self.path)
        query = parse_qs(url.query)
        try:
            if url.path == "/v1/tune":
                return self._post_tune(query)
            if url.path == "/v1/compile":
                return self._post_compile()
            return self._error(404, f"no such endpoint {url.path!r}")
        except BrokenPipeError:
            pass
        except Exception as exc:   # noqa: BLE001 — a 500, not a crash
            try:
                self._error(500, f"{type(exc).__name__}: {exc}")
            except OSError:
                pass

    def do_GET(self):   # noqa: N802 — stdlib naming
        url = urlparse(self.path)
        query = parse_qs(url.query)
        try:
            if url.path == "/v1/healthz":
                return self._json(200, {"ok": True,
                                        "version": __version__})
            if url.path == "/v1/stats":
                return self._json(200, self.manager.stats_dict())
            if url.path == "/v1/metrics":
                if _arg(query, "format") == "json":
                    return self._json(200, _metrics.snapshot())
                return self._text(200, _metrics.render_prometheus())
            if url.path == "/v1/results":
                limit = _int_arg(query, "limit")
                return self._json(200, {"results":
                                        self.manager.results(limit=limit)})
            parts = [p for p in url.path.split("/") if p]
            if len(parts) >= 3 and parts[:2] == ["v1", "jobs"]:
                job = self.manager.get(parts[2])
                if job is None:
                    return self._error(404, f"unknown job {parts[2]!r}")
                if len(parts) == 3:
                    return self._json(200, job.snapshot())
                if len(parts) == 4 and parts[3] == "events":
                    return self._stream_events(job, query)
            return self._error(404, f"no such endpoint {url.path!r}")
        except BrokenPipeError:
            pass
        except Exception as exc:   # noqa: BLE001 — a 500, not a crash
            try:
                self._error(500, f"{type(exc).__name__}: {exc}")
            except OSError:
                pass

    # -- endpoint bodies ------------------------------------------------
    def _post_tune(self, query) -> None:
        data = self._body()
        if data is None:
            return self._error(400, "body must be a JSON TuneRequest")
        try:
            request = TuneRequest.from_dict(data)
        except (ValueError, KeyError, TypeError) as exc:
            return self._error(400, f"bad TuneRequest: {exc}")
        try:
            job, how = self.manager.submit(request,
                                           client=self.client_address[0])
        except BudgetExhaustedError as exc:
            return self._error(429, str(exc))
        if _flag(query, "wait"):
            response = self.manager.annotate(self.manager.wait(job.id),
                                             how)
            payload = response.to_dict()
            payload["how"] = how
            return self._json(200, payload)
        return self._json(202, {"job_id": job.id, "digest": job.digest,
                                "status": job.state, "how": how})

    def _post_compile(self) -> None:
        data = self._body()
        if data is None:
            return self._error(400, "body must be JSON "
                                    "{kernel, machine, params}")
        try:
            info = self.manager.compile_info(data["kernel"],
                                             data.get("machine", "p4e"),
                                             data.get("params") or {})
        except (KeyError, ValueError, TypeError) as exc:
            return self._error(400, f"bad compile request: {exc}")
        except Exception as exc:   # noqa: BLE001 — compile faults are data
            return self._json(200, {"ok": False,
                                    "error": f"{type(exc).__name__}: {exc}"})
        info["ok"] = True
        return self._json(200, info)

    def _stream_events(self, job, query) -> None:
        """NDJSON event replay/stream.  HTTP/1.0 close-delimited body:
        the connection closing is the end-of-stream marker, which keeps
        both this handler and the stdlib client trivially simple."""
        start = _int_arg(query, "from") or 0
        follow = _flag(query, "follow")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        idx = start
        while True:
            events, finished = self.manager.events_since(
                job.id, idx, wait=follow, timeout=0.25)
            for record in events:
                self.wfile.write(json.dumps(record).encode() + b"\n")
            idx += len(events)
            self.wfile.flush()
            if not follow or (finished and not events):
                more, _ = self.manager.events_since(job.id, idx)
                for record in more:
                    self.wfile.write(json.dumps(record).encode() + b"\n")
                self.wfile.flush()
                return


def _arg(query: Dict, name: str) -> Optional[str]:
    values = query.get(name)
    return values[0] if values else None


def _int_arg(query: Dict, name: str) -> Optional[int]:
    values = query.get(name)
    if not values:
        return None
    try:
        return int(values[0])
    except ValueError:
        return None


def _flag(query: Dict, name: str) -> bool:
    values = query.get(name)
    return bool(values) and values[0] not in ("0", "false", "no", "")


class ReproHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


@dataclass
class ServerHandle:
    """A running daemon: its URL, server, manager and teardown."""

    server: ReproHTTPServer
    manager: JobManager
    thread: threading.Thread

    @property
    def url(self) -> str:
        host, port = self.server.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=5.0)
        self.manager.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def start_server(host: str = "127.0.0.1", port: int = 0,
                 config: Optional[TuneConfig] = None,
                 results_dir: Optional[str] = None,
                 manager: Optional[JobManager] = None,
                 autostart: bool = True,
                 verbose: bool = False,
                 max_total_evals: Optional[int] = None,
                 metrics: bool = True) -> ServerHandle:
    """Boot a daemon on ``host:port`` (``port=0`` picks a free one) and
    return a handle; the HTTP loop runs in a background thread.  With
    ``autostart=False`` the dispatcher is not started — submissions
    queue until ``handle.manager.start()`` (tests use this to stage
    deterministic concurrency).  ``metrics=True`` (the default: a
    serving process is the primary scrape target) enables the
    process-wide registry behind ``GET /v1/metrics``."""
    if metrics:
        _metrics.enable()
    if manager is None:
        manager = JobManager(config=config, results_dir=results_dir,
                             max_total_evals=max_total_evals)
    if autostart:
        manager.start()
    server = ReproHTTPServer((host, port), ServiceHandler)
    server.manager = manager      # type: ignore[attr-defined]
    server.verbose = verbose      # type: ignore[attr-defined]
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-serve-http", daemon=True)
    thread.start()
    return ServerHandle(server=server, manager=manager, thread=thread)


def serve(host: str = "127.0.0.1", port: int = 8642,
          config: Optional[TuneConfig] = None,
          results_dir: Optional[str] = None,
          verbose: bool = False,
          max_total_evals: Optional[int] = None,
          metrics: bool = True) -> int:
    """Blocking entry point behind ``repro serve``: boot, print the
    URL, run until interrupted, tear down cleanly (scheduler pool shut
    down, trace file closed) on the way out."""
    handle = start_server(host=host, port=port, config=config,
                          results_dir=results_dir, verbose=verbose,
                          max_total_evals=max_total_evals,
                          metrics=metrics)
    print(f"# repro serve: listening on {handle.url} "
          f"(jobs={handle.manager.config.jobs}, "
          f"cache={handle.manager.config.cache_dir or 'off'}, "
          f"results={results_dir or 'off'})", flush=True)
    try:
        while handle.thread.is_alive():
            handle.thread.join(timeout=0.5)
        return 0
    except KeyboardInterrupt:
        print("# repro serve: shutting down", flush=True)
        return 0
    finally:
        handle.close()


__all__ = ["ServerHandle", "ServiceHandler", "ReproHTTPServer",
           "start_server", "serve", "MAX_BODY"]
