"""The service's job layer: an async queue over one shared engine.

:class:`JobManager` is the piece between transport and scheduler: it
accepts :class:`~repro.service.schema.TuneRequest` submissions from any
number of threads, coalesces identical in-flight requests onto one job
(:class:`~repro.search.scheduler.InflightTable`), answers repeats of
completed requests from the persistent :class:`ServeResultStore` (or
from memory) without touching the engine, and drains fresh work through
one shared :class:`~repro.search.engine.TuningSession` in fair order
(:class:`~repro.search.scheduler.FairQueue` — FIFO per client,
round-robin across clients).

One session serves every job, so all jobs share the engine's worker
pool, its persistent evaluation cache and its warm FKO front-end
caches.  Jobs execute one at a time in arrival order (parallelism lives
*inside* a job: candidate fan-out across the pool), which keeps the
daemon's answers bit-identical to the in-process API — the standing
determinism invariant is proven end-to-end by the service test suite.

Every trace event the engine emits while a job runs is routed onto that
job's event list (the :meth:`~repro.search.trace.TraceWriter.subscribe`
seam), so clients can stream or replay exactly what a local
``--trace-out`` file would contain.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import pathlib
import tempfile
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError
from ..fko import FKO, TransformParams
from ..kernels import get_kernel
from ..machine import Context, get_machine
from ..obs import metrics as _metrics
from ..search.config import TuneConfig
from ..search.engine import TuningSession
from ..search.scheduler import BudgetLedger, FairQueue, InflightTable
from .schema import TuneRequest, TuneResponse, history_digest

#: job states
QUEUED, RUNNING, DONE, ERROR = "queued", "running", "done", "error"


class BudgetExhaustedError(ReproError):
    """The daemon's global evaluation budget (``--max-total-evals``) is
    spent: fresh engine runs are refused; coalesced and cached answers
    still work because they cost nothing."""


class ServeJob:
    """One submitted request's lifecycle inside the daemon."""

    def __init__(self, job_id: str, request: TuneRequest):
        self.id = job_id
        self.request = request
        self.digest = request.digest()
        self.state = QUEUED
        self.events: List[Dict] = []
        self.response: Optional[TuneResponse] = None
        self.error: Optional[str] = None
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.state in (QUEUED, RUNNING)

    def snapshot(self) -> Dict:
        """The ``GET /v1/jobs/{id}`` body."""
        out = {"job_id": self.id, "digest": self.digest,
               "state": self.state, "request": self.request.to_dict(),
               "created": self.created, "started": self.started,
               "finished": self.finished, "n_events": len(self.events),
               "error": self.error}
        if self.response is not None:
            out["response"] = self.response.to_dict()
        return out


class ServeResultStore:
    """Persistent request-digest -> :class:`TuneResponse` store.

    The same one-tiny-JSON-file-per-entry shape as the evaluation cache
    (atomic ``os.replace`` writes, digest-prefix subdirectories), one
    level up: where the eval cache remembers single candidate timings,
    this remembers whole answered requests, so a daemon restart — or a
    different daemon pointed at the same directory — keeps answering
    repeats instantly."""

    def __init__(self, root: str):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, digest: str) -> pathlib.Path:
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> Optional[Dict]:
        try:
            data = json.loads(self._path(digest).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return data if isinstance(data, dict) else None

    def put(self, digest: str, response: TuneResponse) -> None:
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(response.to_dict(), fh)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def list(self, limit: Optional[int] = None) -> List[Dict]:
        paths = sorted(self.root.glob("*/*.json"),
                       key=lambda p: p.stat().st_mtime, reverse=True)
        out = []
        for p in paths[:limit] if limit else paths:
            try:
                data = json.loads(p.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(data, dict):
                out.append(data)
        return out

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))


class JobManager:
    """Submissions in, deterministic answers out.

    ``config`` is the daemon's base :class:`TuneConfig` — its ``jobs``,
    ``cache_dir`` and ``trace`` apply to every request; the
    search-shaping fields are overridden per request.  ``results_dir``
    enables the persistent result store.  Call :meth:`start` for the
    background dispatcher (the daemon does), or :meth:`run_inline` to
    drain work in the calling thread (the local client does) — both go
    through the identical submit/execute path.
    """

    def __init__(self, config: Optional[TuneConfig] = None,
                 results_dir: Optional[str] = None,
                 retention: int = 256,
                 max_total_evals: Optional[int] = None):
        self.config = config or TuneConfig()
        # buffer_events=True guarantees a trace writer exists even
        # without a trace file, so the event stream always works; the
        # buffer is drained after every job (events live on the job)
        self.session = TuningSession(self.config, buffer_events=True)
        self.session.trace_writer.subscribe(self._on_event)
        self.store = (ServeResultStore(results_dir)
                      if results_dir else None)
        self.queue = FairQueue()
        self.inflight = InflightTable()
        self.ledger = BudgetLedger(max_total_evals)
        self.retention = retention
        self.jobs: "OrderedDict[str, ServeJob]" = OrderedDict()
        self._done_by_digest: Dict[str, str] = {}
        self._lock = threading.RLock()
        self.cond = threading.Condition(self._lock)
        self._current: Optional[ServeJob] = None
        self._dispatcher: Optional[threading.Thread] = None
        self._stop = False
        self._seq = 0
        self.started_at = time.time()
        # transport-level counters (engine counters live on the session)
        self.submitted = 0        # every POST /v1/tune
        self.launched = 0         # jobs that actually ran the engine
        self.coalesced = 0        # joined an identical in-flight job
        self.cache_answers = 0    # served from store/memory, no run
        self.completed = 0
        self.errors = 0
        # /v1/compile counter (compiles use a fresh FKO each — see
        # compile_info — so there is no shared front-end to guard)
        self._compile_lock = threading.Lock()
        self.compiles = 0

    # -- submission -----------------------------------------------------
    def submit(self, request: TuneRequest,
               client: str = "") -> Tuple[ServeJob, str]:
        """Submit one request; returns ``(job, how)`` where ``how`` is
        ``"new"`` (queued for the engine), ``"coalesced"`` (joined an
        identical queued/running job) or ``"cached"`` (answered from
        the result store or a resident completed job — no engine run).
        """
        with self.cond:
            self.submitted += 1
            if _metrics._ENABLED:
                _metrics.inc("repro_client_requests_total",
                             client=client or "anonymous")
            digest = request.digest()
            # identical request already in flight -> same job
            slot = self.inflight.get(digest)
            if slot is not None and slot.active:
                self.coalesced += 1
                _metrics.inc("repro_requests_total", how="coalesced")
                self._set_queue_gauges()
                return slot, "coalesced"
            # already answered and still resident?
            done_id = self._done_by_digest.get(digest)
            if done_id is not None:
                job = self.jobs.get(done_id)
                if job is not None and job.state == DONE:
                    self.cache_answers += 1
                    _metrics.inc("repro_requests_total", how="cached")
                    return job, "cached"
            # persisted by an earlier run (or another daemon)?
            if self.store is not None:
                data = self.store.get(digest)
                if data is not None:
                    try:
                        response = TuneResponse.from_dict(data)
                    except (ValueError, KeyError, TypeError):
                        response = None
                    if response is not None and response.ok:
                        job = self._admit(request)
                        response.served_from = "store"
                        response.job_id = job.id
                        job.response = response
                        job.state = DONE
                        job.finished = time.time()
                        self._done_by_digest[digest] = job.id
                        self.cache_answers += 1
                        _metrics.inc("repro_requests_total", how="cached")
                        self.cond.notify_all()
                        return job, "cached"
            # fresh work: claim the digest and queue fairly (all
            # submitters hold the manager lock, so the claim is ours)
            if self.ledger.exhausted():
                raise BudgetExhaustedError(
                    f"global evaluation budget spent "
                    f"({self.ledger.total_evaluations}"
                    f"/{self.ledger.max_total_evals}); "
                    f"fresh tune requests are refused")
            job = self._admit(request)
            self.inflight.claim(digest, lambda: job)
            self.queue.push(job, client=client)
            _metrics.inc("repro_requests_total", how="new")
            self._set_queue_gauges()
            self.cond.notify_all()
            return job, "new"

    def _set_queue_gauges(self) -> None:
        """Refresh the daemon's live gauges (queue depth, in-flight
        dedup table, budget remaining).  Called with the lock held at
        every queue transition; free when metrics are disabled."""
        if not _metrics._ENABLED:
            return
        _metrics.set_gauge("repro_queue_depth", len(self.queue))
        _metrics.set_gauge("repro_inflight", len(self.inflight))
        ledger = self.ledger
        remaining = (-1 if ledger.max_total_evals is None
                     else max(0, ledger.max_total_evals
                              - ledger.total_evaluations))
        _metrics.set_gauge("repro_budget_remaining_evals", remaining)

    def _admit(self, request: TuneRequest) -> ServeJob:
        self._seq += 1
        job = ServeJob(f"j-{self._seq:06d}", request)
        self.jobs[job.id] = job
        self._trim()
        return job

    def _trim(self) -> None:
        """Bound resident finished jobs to ``retention`` (persisted
        responses stay reachable through the store)."""
        finished = [j for j in self.jobs.values() if not j.active]
        excess = len(finished) - self.retention
        for job in finished:
            if excess <= 0:
                break
            del self.jobs[job.id]
            if self._done_by_digest.get(job.digest) == job.id:
                del self._done_by_digest[job.digest]
            excess -= 1

    def get(self, job_id: str) -> Optional[ServeJob]:
        with self.cond:
            return self.jobs.get(job_id)

    # -- execution ------------------------------------------------------
    def _execute(self, job: ServeJob) -> None:
        with self.cond:
            job.state = RUNNING
            job.started = time.time()
            self._current = job
            self.launched += 1
            self.cond.notify_all()
        stats = self.session.stats
        before = stats.to_dict()
        request = job.request
        base, t0 = self.session.config, time.perf_counter()
        response: Optional[TuneResponse] = None
        try:
            # the shared session runs this request's search shape; the
            # operational knobs (jobs/cache/trace) stay the daemon's
            self.session.config = request.to_config(base)
            tuned = self.session.tune(request.kernel, request.machine,
                                      Context(request.context), request.n,
                                      max_evals=request.budget)
            delta = {k: v - before.get(k, 0)
                     for k, v in stats.to_dict().items()}
            response = TuneResponse(
                digest=job.digest, job_id=job.id, status=DONE,
                result=tuned.to_dict(),
                history_digest=history_digest(tuned.search),
                stats=delta, wall=time.perf_counter() - t0)
            response._kernel = tuned
        except Exception as exc:   # noqa: BLE001 — report, client decides
            response = TuneResponse(
                digest=job.digest, job_id=job.id, status=ERROR,
                error=f"{type(exc).__name__}: {exc}",
                wall=time.perf_counter() - t0)
        finally:
            self.session.config = base
            # events already live on the job via the listener; drain
            # the writer's buffer so a file-less daemon stays bounded
            self.session.drain_events()
            with self.cond:
                self._current = None
                if response is None:   # KeyboardInterrupt/SystemExit
                    job.state = ERROR
                    job.error = "interrupted"
                else:
                    job.response = response
                    job.state = response.status
                    job.error = response.error
                    delta = response.stats
                    self.ledger.charge(job.id,
                                       delta.get("evaluations", 0),
                                       delta.get("cache_hits", 0))
                    if response.ok:
                        self.completed += 1
                        _metrics.inc("repro_jobs_completed_total")
                        if _metrics._ENABLED and response.wall:
                            _metrics.set_gauge(
                                "repro_evals_per_sec",
                                round(delta.get("evaluations", 0)
                                      / response.wall, 2), scope="job")
                        self._done_by_digest[job.digest] = job.id
                        if self.store is not None:
                            self.store.put(job.digest, response)
                    else:
                        self.errors += 1
                        _metrics.inc("repro_jobs_errored_total")
                job.finished = time.time()
                self.inflight.release(job.digest)
                self._set_queue_gauges()
                self.cond.notify_all()

    def _on_event(self, record: Dict) -> None:
        job = self._current
        if job is not None:
            with self.cond:
                job.events.append(record)
                self.cond.notify_all()

    # -- driving the queue ---------------------------------------------
    def start(self) -> None:
        """Start the background dispatcher (the daemon's mode)."""
        if self._dispatcher is not None and self._dispatcher.is_alive():
            return
        self._stop = False
        self._dispatcher = threading.Thread(target=self._loop,
                                            name="repro-serve-dispatch",
                                            daemon=True)
        self._dispatcher.start()

    def _loop(self) -> None:
        while True:
            with self.cond:
                while not self._stop and len(self.queue) == 0:
                    self.cond.wait(0.1)
                if self._stop:
                    return
            job = self.queue.pop()
            if job is not None:
                self._execute(job)

    def run_inline(self, request: TuneRequest,
                   client: str = "") -> TuneResponse:
        """Submit and drain in the calling thread (the local client's
        mode — no dispatcher, same code path)."""
        job, how = self.submit(request, client=client)
        if self._dispatcher is None or not self._dispatcher.is_alive():
            while job.active:
                head = self.queue.pop()
                if head is None:
                    break
                self._execute(head)
        return self.annotate(self.wait(job.id), how)

    @staticmethod
    def annotate(response: TuneResponse, how: str) -> TuneResponse:
        """Mark a repeat answered from a resident completed job, so
        clients can tell an instant answer from an engine run (the
        store path stamps ``served_from="store"`` itself)."""
        if how == "cached" and response.served_from is None:
            response = copy.copy(response)
            response.served_from = "memory"
        return response

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> TuneResponse:
        deadline = (time.time() + timeout) if timeout is not None else None
        with self.cond:
            job = self.jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            while job.active:
                remaining = (deadline - time.time()
                             if deadline is not None else 0.25)
                if deadline is not None and remaining <= 0:
                    raise TimeoutError(f"job {job_id} still {job.state} "
                                       f"after {timeout}s")
                self.cond.wait(min(0.25, remaining) if deadline is not None
                               else 0.25)
            if job.response is None:
                return TuneResponse(digest=job.digest, job_id=job.id,
                                    status=ERROR,
                                    error=job.error or "job lost")
            return job.response

    def events_since(self, job_id: str, start: int = 0,
                     wait: bool = False,
                     timeout: float = 0.25) -> Tuple[List[Dict], bool]:
        """Events ``[start:]`` plus a finished flag; with ``wait``,
        blocks up to ``timeout`` for news when there is none yet."""
        with self.cond:
            job = self.jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            if wait and job.active and len(job.events) <= start:
                self.cond.wait(timeout)
            return list(job.events[start:]), not job.active

    # -- one-shot compile (the fuzzer's soak hook) ----------------------
    def compile_info(self, kernel: str, machine: str,
                     params: Dict) -> Dict:
        """Compile one (kernel, machine, params) point with IR
        verification on and return a content digest of the produced IR
        — the differential fuzzer's ``--via-serve`` oracle.  A fresh
        front-end per compile (FKO's symbol generation is stateful
        across compiles) and the *canonical* IR dump (VReg uids
        renumbered by first appearance, so the global uid counter's
        position does not leak into the text): together these make the
        digest a pure function of (kernel, machine, params), matching
        what ``repro.qa.differ.compile_digest`` computes locally."""
        from ..ir import canonical_function_text
        spec = get_kernel(kernel)
        mach = get_machine(machine)
        tp = TransformParams.from_dict(params)
        compiled = FKO(mach).compile(spec.hil, tp, debug_verify=True)
        text = canonical_function_text(compiled.fn)
        with self._compile_lock:
            self.compiles += 1
        _metrics.inc("repro_compiles_total")
        return {"kernel": spec.name, "machine": mach.name.lower(),
                "applied": list(compiled.applied),
                "ir_digest": hashlib.sha256(text.encode()).hexdigest()}

    # -- introspection --------------------------------------------------
    def stats_dict(self) -> Dict:
        with self.cond:
            engine = self.session.stats.to_dict()
            return {"uptime": time.time() - self.started_at,
                    "submitted": self.submitted,
                    "launched": self.launched,
                    "deduped": self.coalesced,
                    "cache_answers": self.cache_answers,
                    "completed": self.completed,
                    "errors": self.errors,
                    "compiles": self.compiles,
                    "queued": len(self.queue),
                    "inflight": len(self.inflight),
                    "resident_jobs": len(self.jobs),
                    "stored_results": (len(self.store)
                                       if self.store is not None else 0),
                    "engine": engine,
                    "batch": {
                        "batch.prefix_hits":
                            engine.get("batch_prefix_hits", 0),
                        "batch.prefix_misses":
                            engine.get("batch_prefix_misses", 0),
                        "batch.walk_hits":
                            engine.get("batch_walk_hits", 0),
                        "batch.size": (
                            engine.get("batch_size_total", 0)
                            / engine["batch_groups"]
                            if engine.get("batch_groups") else 0.0)},
                    "budget": self.ledger.to_dict(),
                    "config": self.config.to_public_dict()}

    def results(self, limit: Optional[int] = None) -> List[Dict]:
        """Completed responses, newest first — persisted ones from the
        result store plus any resident-only completions."""
        with self.cond:
            resident = [j.response.to_dict() for j in self.jobs.values()
                        if j.state == DONE and j.response is not None]
        if self.store is None:
            resident.reverse()
            return resident[:limit] if limit else resident
        stored = self.store.list(limit=limit)
        have = {r.get("digest") for r in stored}
        extra = [r for r in reversed(resident)
                 if r.get("digest") not in have]
        merged = extra + stored
        return merged[:limit] if limit else merged

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        with self.cond:
            self._stop = True
            self.cond.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5.0)
            self._dispatcher = None
        self.session.close()

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


__all__ = ["BudgetExhaustedError", "JobManager", "ServeJob",
           "ServeResultStore", "QUEUED", "RUNNING", "DONE", "ERROR"]
