"""The versioned wire schema of the tuning service.

A :class:`TuneRequest` names one tuning problem plus everything that
shapes how it is searched — the same fields a local
:class:`~repro.search.config.TuneConfig` run takes, minus the purely
operational knobs (``jobs``, ``cache_dir``, ``trace``), which belong to
the *daemon*, not the request.  Requests canonicalize on construction
(machine aliases, context spellings, the paper's default N) so that
every spelling of the same problem produces the same canonical
:meth:`~TuneRequest.digest`; that digest is the service's unit of
identity — it drives both in-flight coalescing (two concurrent
identical requests share one engine run) and cache-backed instant
answers (a repeat of a completed request is served from the result
store without re-evaluation).

Both payloads are schema-versioned with the repo-wide tolerant
``from_dict`` convention: unknown keys are ignored (a newer client may
send fields an older daemon does not know), missing optional keys take
their defaults, and a schema number from the future is refused loudly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from .. import __version__
from ..kernels import REGISTRY
from ..machine import Context, get_machine
from ..search.config import TuneConfig
from ..search.drivers import TunedKernel
from ..search.linesearch import SearchResult
from ..timing.timer import paper_n
from ..util import check_schema


def default_n(kernel: str, ctx: Context) -> int:
    """The canonical problem size when the request leaves ``n`` unset.
    Vector kernels use the paper's N (so every pre-existing request
    digest is unchanged); cubic nest kernels scale as N^1.5 in memory,
    so their defaults are matrix orders: 512 puts the working set well
    out of cache, 160 keeps all three operands resident in a 1MB L2
    (3 * 160^2 * 8 bytes = 600KB)."""
    spec = REGISTRY.get(kernel)
    if spec is not None and spec.flops_order >= 3:
        return 512 if ctx is Context.OUT_OF_CACHE else 160
    return paper_n(ctx)


def parse_context(value) -> Context:
    """Canonicalize a context spelling: a :class:`Context`, its value
    ("out-of-cache"), or the CLI short forms ("oc", "ic", "in-l2"...)."""
    if isinstance(value, Context):
        return value
    v = str(value).lower()
    if v in ("oc", "ooc", "out", "out-of-cache"):
        return Context.OUT_OF_CACHE
    # "in-l2-cache" is Context.IN_L2.value lowercased: the enum's own
    # value string must always round-trip (stored results record it),
    # not just the CLI short forms
    if v in ("ic", "inl2", "in-l2", "in-cache", "in-l2-cache"):
        return Context.IN_L2
    raise ValueError(f"unknown context {value!r}")


def history_digest(search: Optional[SearchResult]) -> Optional[str]:
    """SHA-256 over the search's full (phase, params-key, cycles)
    history — the strongest cheap witness that two runs of the same
    request walked the identical search.  The determinism acceptance
    tests compare this digest between the daemon and the in-process
    API."""
    if search is None:
        return None
    blob = json.dumps(search.to_dict()["history"], sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class TuneRequest:
    """One tuning problem, canonicalized and digestible.

    ``budget`` is the evaluation budget (``TuneConfig.max_evals``);
    ``test`` runs the tester on the winner before it is returned.  All
    other fields mirror their :class:`TuneConfig` namesakes.
    """

    kernel: str
    machine: str = "p4e"
    context: str = "out-of-cache"
    n: Optional[int] = None
    strategy: str = "line"
    seed: int = 0
    budget: int = 400
    observe: bool = False
    verify_ir: bool = False
    fast_timing: bool = True
    min_gain: float = 0.005
    enable_block_fetch: bool = False
    timeout: Optional[float] = None
    test: bool = True

    def __post_init__(self):
        if self.kernel not in REGISTRY:
            raise ValueError(f"unknown kernel {self.kernel!r}; the "
                             f"service tunes registry kernels")
        self.machine = get_machine(self.machine).name.lower()
        ctx = parse_context(self.context)
        self.context = ctx.value
        self.n = (int(self.n) if self.n is not None
                  else default_n(self.kernel, ctx))
        if self.n <= 0:
            raise ValueError(f"n must be positive, got {self.n}")
        # borrow TuneConfig's validation for the search-shaping fields
        # (strategy registry membership, seed/budget/min_gain ranges)
        self.to_config()

    # -- identity -------------------------------------------------------
    def canonical(self) -> Dict:
        """The digest-relevant fields in canonical form."""
        return {"kernel": self.kernel, "machine": self.machine,
                "context": self.context, "n": self.n,
                "strategy": self.strategy, "seed": int(self.seed),
                "budget": int(self.budget), "observe": bool(self.observe),
                "verify_ir": bool(self.verify_ir),
                "fast_timing": bool(self.fast_timing),
                "min_gain": float(self.min_gain),
                "enable_block_fetch": bool(self.enable_block_fetch),
                "timeout": self.timeout, "test": bool(self.test)}

    def digest(self) -> str:
        """Canonical request identity: every spelling of the same
        problem (machine aliases, context short forms, defaulted N)
        digests identically; any field that could change the answer —
        including the code version — changes the digest."""
        blob = json.dumps({"v": __version__, **self.canonical()},
                          sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()

    def key(self) -> str:
        """Human-readable job key (matches the engine's trace keys)."""
        return f"{self.kernel}:{self.machine}:{self.context}:{self.n}"

    # -- conversions ----------------------------------------------------
    def to_config(self, base: Optional[TuneConfig] = None) -> TuneConfig:
        """The per-request :class:`TuneConfig`: request fields override
        the search-shaping knobs; operational knobs (``jobs``,
        ``cache_dir``, ``trace``, ``resume``) come from ``base`` — the
        daemon's own configuration."""
        base = base if base is not None else TuneConfig()
        return base.replace(
            max_evals=int(self.budget), strategy=self.strategy,
            seed=int(self.seed), observe=bool(self.observe),
            verify_ir=bool(self.verify_ir),
            fast_timing=bool(self.fast_timing),
            min_gain=float(self.min_gain),
            enable_block_fetch=bool(self.enable_block_fetch),
            timeout=self.timeout, run_tester=bool(self.test),
            space=None, start=None, resume=None)

    def to_dict(self) -> Dict:
        return {"schema": 1, **self.canonical()}

    @staticmethod
    def from_dict(data: Dict) -> "TuneRequest":
        """Tolerant: unknown keys are ignored, ``max_evals`` is an
        accepted alias for ``budget``, missing fields take defaults."""
        check_schema(data, "TuneRequest")
        if "kernel" not in data:
            raise ValueError("TuneRequest: missing required field 'kernel'")
        kw = {}
        for name in ("kernel", "machine", "context", "n", "strategy",
                     "seed", "budget", "observe", "verify_ir",
                     "fast_timing", "min_gain", "enable_block_fetch",
                     "timeout", "test"):
            if name in data:
                kw[name] = data[name]
        if "budget" not in kw and "max_evals" in data:
            kw["budget"] = data["max_evals"]
        return TuneRequest(**kw)


@dataclass
class TuneResponse:
    """What the service answers a :class:`TuneRequest` with.

    ``result`` is the :class:`~repro.search.drivers.TunedKernel`
    summary dict (FKO is deterministic, so the client can recompile the
    winning kernel from it bit-identically); ``history_digest`` hashes
    the full search history, and ``stats`` is the per-job slice of the
    engine counters (evaluations actually run, cache hits, ...).
    """

    digest: str
    job_id: str
    status: str                      # queued | running | done | error
    result: Optional[Dict] = None    # TunedKernel.to_dict()
    history_digest: Optional[str] = None
    stats: Dict = field(default_factory=dict)
    wall: float = 0.0
    error: Optional[str] = None
    #: answered without an engine run: "store" (persistent result
    #: store) or "memory" (completed job still resident); None = ran
    served_from: Optional[str] = None

    def __post_init__(self):
        self._kernel: Optional[TunedKernel] = None

    @property
    def ok(self) -> bool:
        return self.status == "done" and self.error is None

    def tuned(self) -> TunedKernel:
        """The winning kernel, recompiled from the response (memoized;
        the local transport attaches the original object instead)."""
        if self._kernel is None:
            if not self.ok or self.result is None:
                raise ValueError(f"no result on a {self.status!r} "
                                 f"response ({self.error})")
            self._kernel = TunedKernel.from_dict(self.result)
        return self._kernel

    def to_dict(self) -> Dict:
        return {"schema": 1, "digest": self.digest, "job_id": self.job_id,
                "status": self.status, "result": self.result,
                "history_digest": self.history_digest,
                "stats": dict(self.stats), "wall": self.wall,
                "error": self.error, "served_from": self.served_from}

    @staticmethod
    def from_dict(data: Dict) -> "TuneResponse":
        check_schema(data, "TuneResponse")
        return TuneResponse(
            digest=data["digest"], job_id=data.get("job_id", ""),
            status=data.get("status", "done"),
            result=data.get("result"),
            history_digest=data.get("history_digest"),
            stats=dict(data.get("stats") or {}),
            wall=float(data.get("wall") or 0.0),
            error=data.get("error"),
            served_from=data.get("served_from"))


__all__ = ["TuneRequest", "TuneResponse", "default_n", "history_digest",
           "parse_context"]
