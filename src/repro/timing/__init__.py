"""Timers and testers — the feedback half of the empirical loop."""

from .timer import KernelTiming, Timer, paper_n
from .tester import (DEFAULT_SIZES, make_inputs, test_function, test_kernel)

__all__ = ["KernelTiming", "Timer", "paper_n", "DEFAULT_SIZES",
           "make_inputs", "test_function", "test_kernel"]
