"""Kernel tester (section 2.1).

"... the tester to ensure that the answer is correct (unnecessary in
theory, but useful in practice)."

Runs the compiled kernel in the functional interpreter against the
NumPy reference on several problem sizes (chosen to hit remainder-loop
corner cases) and random data.  Element-wise kernels must match exactly
(the interpreter rounds at every step like the hardware would);
reductions get an association-tolerant relative bound because SIMD and
accumulator expansion legitimately reorder the adds.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from ..errors import KernelTestFailure
from ..fko.pipeline import CompiledKernel
from ..ir import Function
from ..kernels.blas1 import KernelSpec, reference
from ..machine.interp import run_function

DEFAULT_SIZES = (0, 1, 2, 3, 7, 8, 16, 33, 100, 257)


def _tolerance(spec: KernelSpec, n: int) -> float:
    eps = 1.2e-7 if spec.precision == "s" else 2.3e-16
    return eps * max(4, n) * 8


def _reduction_close(got: np.ndarray, want: np.ndarray,
                     tol: float) -> bool:
    """Association-tolerant comparison for reduction-fed arrays: a
    relative bound with a unit floor on the denominator (mirroring the
    scalar-return check), because a dot-product element can cancel to
    near zero while its absolute rounding error stays proportional to
    the summand magnitudes.  NaNs never compare close."""
    with np.errstate(invalid="ignore"):
        ok = np.abs(got - want) <= tol * np.maximum(1.0, np.abs(want))
    return bool(np.all(ok))


def _first_mismatch(got: np.ndarray, want: np.ndarray) -> int:
    """Index of the first bitwise difference (arrays are known unequal)."""
    ib = np.dtype(f"i{got.dtype.itemsize}")
    diff = np.nonzero(got.view(ib) != want.view(ib))[0]
    return int(diff[0]) if len(diff) else 0


def make_inputs(spec: KernelSpec, n: int, rng: np.random.Generator):
    arrays = {v: rng.standard_normal(max(spec.arg_elems(v, n), 1))
              .astype(spec.dtype) for v in spec.array_args}
    scalars: Dict[str, float] = {"N": n}
    for s in spec.scalar_args:
        scalars[s] = float(rng.standard_normal())
    return arrays, scalars


def ref_views(spec: KernelSpec, arrays: Dict[str, np.ndarray],
              n: int) -> Dict[str, np.ndarray]:
    """Per-argument views of exactly the elements the kernel owns at
    size ``n`` (arrays are padded to length >= 1 for the allocator;
    matrix arguments hold ``n*n`` elements)."""
    return {k: v[:spec.arg_elems(k, n)] for k, v in arrays.items()}


def test_function(fn: Function, spec: KernelSpec,
                  sizes: Optional[Sequence[int]] = None,
                  seed: int = 0xC0FFEE,
                  trials_per_size: int = 1) -> None:
    """Raise :class:`KernelTestFailure` if ``fn`` disagrees with the
    reference on any size/trial."""
    if sizes is None:
        sizes = spec.test_sizes or DEFAULT_SIZES
    rng = np.random.default_rng(seed)
    for n in sizes:
        for _ in range(trials_per_size):
            arrays, scalars = make_inputs(spec, n, rng)
            got_arrays = {k: v.copy() for k, v in arrays.items()}
            ref_arrays = {k: v.copy() for k, v in arrays.items()}

            fscalars = {k: v for k, v in scalars.items() if k != "N"}
            result = run_function(fn, got_arrays,
                                  {"N": n, **fscalars})
            # the reference must see exactly the elements each argument
            # owns at size n (arrays are padded to length >= 1 for the
            # interpreter's allocator; matrices hold n*n elements)
            ref = reference(spec, ref_views(spec, ref_arrays, n), fscalars)

            # vector outputs: element-wise outputs must match the
            # reference bitwise (the interpreter rounds at every step,
            # so there is no legitimate source of divergence — and NaNs
            # must agree, not be masked); reduction-fed outputs get the
            # association-tolerant bound scaled by the real reduction
            # length, because SIMD/AE legitimately reorder the adds
            for name in spec.output_args:
                elems = spec.arg_elems(name, n)
                got = got_arrays[name][:elems]
                want = ref_arrays[name][:elems]
                if name in spec.reduction_outputs:
                    if not _reduction_close(got, want, _tolerance(spec, n)):
                        with np.errstate(invalid="ignore"):
                            bad = int(np.argmax(np.abs(got - want)))
                        raise KernelTestFailure(
                            f"{spec.name} N={n}: array {name}[{bad}] = "
                            f"{got[bad]!r}, expected {want[bad]!r}")
                elif got.tobytes() != want.tobytes():
                    bad = _first_mismatch(got, want)
                    raise KernelTestFailure(
                        f"{spec.name} N={n}: array {name}[{bad}] = "
                        f"{got[bad]!r}, expected {want[bad]!r} "
                        f"(element-wise outputs must match bitwise)")

            # scalar result: a kernel that promises a return value and
            # produces none is broken — never coerce to 0.0, which would
            # silently pass whenever the reference is near zero
            if spec.returns is not None and result.ret is None:
                raise KernelTestFailure(
                    f"{spec.name} N={n}: kernel returned nothing, "
                    f"expected {ref!r}")
            if spec.returns == "int":
                if int(result.ret) != int(ref):
                    raise KernelTestFailure(
                        f"{spec.name} N={n}: returned index {result.ret}, "
                        f"expected {ref}")
            elif spec.returns is not None:
                got = float(result.ret)
                tol = _tolerance(spec, n)
                denom = max(1.0, abs(ref))
                if not abs(got - ref) / denom <= tol:
                    raise KernelTestFailure(
                        f"{spec.name} N={n}: returned {got!r}, expected "
                        f"{ref!r} (rel err {abs(got-ref)/denom:.3e})")


def test_kernel(compiled: CompiledKernel, spec: KernelSpec,
                sizes: Optional[Sequence[int]] = None,
                seed: int = 0xC0FFEE) -> None:
    test_function(compiled.fn, spec, sizes=sizes, seed=seed)
