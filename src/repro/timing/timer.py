"""Kernel timer, mirroring the paper's methodology (section 3.2).

"We enabled ATLAS's assembly-coded walltimer that accesses hardware
performance counters in order to get cycle-accurate results.  Since
walltime is prone to outside interference, each timing was repeated six
times (on an unloaded machine), and the minimum was taken."

The simulated machine is deterministic, so to keep the methodology
honest (and the min-of-6 protocol meaningful) the timer injects a small
deterministic pseudo-noise — multiplicative, ~0.3% — seeded from the
kernel identity.  The *minimum* over repetitions is reported, exactly
like the paper.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..fko.pipeline import CompiledKernel
from ..util import check_schema
from ..kernels.blas1 import KernelSpec
from ..machine.config import MachineConfig
from ..machine.loopinfo import LoopSummary, summarize
from ..machine.timing import Context, LoopTimer, TimingResult


@dataclass
class KernelTiming:
    """Result of timing one kernel configuration."""

    cycles: float                     # min over repetitions
    seconds: float
    mflops: float
    n: int
    machine: str
    context: Context
    samples: List[float] = field(default_factory=list)
    raw: Optional[TimingResult] = None

    def __repr__(self) -> str:
        return (f"<{self.machine}/{self.context.value} N={self.n}: "
                f"{self.cycles:.0f} cy, {self.mflops:.1f} MFLOPS>")

    # -- JSON round-trip (evaluation cache, checkpoints) ----------------
    # ``raw`` (the per-level TimingResult breakdown) is derived data and
    # is not serialized; a reloaded timing carries ``raw=None``.
    def to_dict(self) -> dict:
        return {"schema": 1,
                "cycles": self.cycles, "seconds": self.seconds,
                "mflops": self.mflops, "n": self.n, "machine": self.machine,
                "context": self.context.value,
                "samples": [float(s) for s in self.samples]}

    @staticmethod
    def from_dict(data: dict) -> "KernelTiming":
        check_schema(data, "KernelTiming")
        return KernelTiming(cycles=float(data["cycles"]),
                            seconds=float(data["seconds"]),
                            mflops=float(data["mflops"]),
                            n=int(data["n"]), machine=data["machine"],
                            context=Context(data["context"]),
                            samples=[float(s) for s in
                                     data.get("samples", [])])


class Timer:
    def __init__(self, machine: MachineConfig, context: Context,
                 n: int, repeats: int = 6, noise: float = 0.003,
                 fast: bool = True):
        self.machine = machine
        self.context = context
        self.n = n
        self.repeats = repeats
        self.noise = noise
        self.fast = fast
        self._loop_timer = LoopTimer(machine, context, fast=fast)

    def time_summary(self, summary: LoopSummary, flops: float,
                     ident: str = "") -> KernelTiming:
        base = self._loop_timer.time(summary, self.n)
        seed = zlib.crc32(
            f"{ident}|{self.machine.name}|{self.context.value}|{self.n}"
            .encode()) & 0xFFFFFFFF
        rng = np.random.default_rng(seed)
        samples = [float(base.cycles * (1.0 + abs(rng.normal(0, self.noise))))
                   for _ in range(self.repeats)]
        cycles = min(samples)
        seconds = cycles / self.machine.freq_hz
        mflops = (flops / seconds / 1e6) if seconds > 0 else 0.0
        return KernelTiming(cycles=cycles, seconds=seconds, mflops=mflops,
                            n=self.n, machine=self.machine.name,
                            context=self.context, samples=samples, raw=base)

    def time(self, compiled: CompiledKernel, spec: KernelSpec) -> KernelTiming:
        summary = summarize(compiled.fn)
        return self.time_summary(summary, spec.flops(self.n),
                                 ident=f"{spec.name}|{compiled.params.key()}")


def paper_n(context: Context) -> int:
    """The paper's problem sizes: N=80000 out of cache, N=1024 in-L2."""
    return 80000 if context is Context.OUT_OF_CACHE else 1024
